"""Shared fixtures for the benchmark harness.

The central fixture is ``study``: one scaled-down-but-complete run of the
paper's experiment — every pair of an 8-stock universe, the full 42-set
parameter grid (3 correlation treatments × 14 factor levels), 3 synthetic
trading days.  Tables III–V, Figure 2 and the ablations all read from it.

Every benchmark writes the rows/series it reproduces to
``benchmarks/out/<name>.txt`` (and stdout) plus a machine-readable
``benchmarks/out/<name>.json`` sibling, so the paper-facing artefacts
survive pytest's output capture and downstream tooling never has to parse
the text.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backtest.sweep import SweepConfig, run_sweep
from repro.strategy.params import StrategyParams

OUT_DIR = Path(__file__).parent / "out"

#: The study's shape: 8 symbols -> 28 pairs; half-length trading days keep
#: the full 42-set grid affordable on one core.  Scale n_symbols to 61 and
#: trading_seconds to 23400 to reproduce at paper scale.
STUDY_CONFIG = SweepConfig(
    n_symbols=8,
    n_days=3,
    trading_seconds=23_400 // 2,
    seed=2008,
    base_params=StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001),
    ranks=2,
)


@pytest.fixture(scope="session")
def study():
    """(ResultStore, grid) for the full Tables III-V / Figure 2 study."""
    store, grid = run_sweep(STUDY_CONFIG)
    return store, grid


def emit(name: str, text: str, data: dict | None = None) -> None:
    """Print a reproduced table/series and persist it under benchmarks/out.

    Writes ``<name>.txt`` (the human-facing artefact) and a ``<name>.json``
    sibling: ``{"bench": name, "data": data, "text": text}``, with ``data``
    holding whatever structured numbers the benchmark derived.
    """
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    (OUT_DIR / f"{name}.json").write_text(
        json.dumps(
            {"bench": name, "data": data or {}, "text": text},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\n===== {name} =====\n{text}")
