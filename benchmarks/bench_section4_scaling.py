"""Section IV — the computational story: Approaches 1, 2 and 3.

Reproduces the paper's scaling arithmetic with measured numbers:

* the cost of one (pair, day, parameter set) job — the paper's Matlab
  unit ran "in approximately 2 seconds";
* Approach 1's memory commitment ("we were unable to read in multiple
  matrices due to memory constraints ... 680 such matrices" of 61×61 per
  day per spec);
* the paper's extrapolations: 1830 pairs × 20 days × 42 sets ≈ 854 hours
  serial, a year ≈ 445 days, 1000 pairs ≈ 53 years — re-derived from our
  measured per-job cost;
* the SGE-distributed makespan (Approach 2's mitigation) and the
  integrated Approach 3 speedup from sharing correlation series.
"""

import time

from benchmarks.conftest import emit
from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.matrices import MatrixSeriesBacktester
from repro.backtest.runner import SequentialBacktester, backtest_pair_day
from repro.sge.scheduler import SgeScheduler
from repro.strategy.params import StrategyParams, paper_parameter_grid
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)


def _provider(n_symbols=8, seconds=23_400 // 2):
    market = SyntheticMarket(
        default_universe(n_symbols),
        SyntheticMarketConfig(trading_seconds=seconds),
        seed=2008,
    )
    return BarProvider(market, TimeGrid(30, trading_seconds=seconds))


def test_section4_per_job_cost_and_extrapolation(benchmark):
    """Benchmark the paper's unit of work; print the scaling arithmetic."""
    provider = _provider()
    prices = provider.prices(0)[:, [0, 1]]
    params = BASE.with_ctype("maronna")  # the expensive treatment

    trades = benchmark(backtest_pair_day, prices, params)
    per_job = benchmark.stats["mean"]

    paper_jobs_month = 1830 * 20 * 42
    serial_hours = paper_jobs_month * per_job / 3600
    paper_hours = paper_jobs_month * 2.0 / 3600  # the paper's ~2 s/job
    year_days = serial_hours * (250 / 20) / 24
    pairs_1000 = 1000 * 999 // 2
    jobs_1000 = pairs_1000 * 20 * 42
    years_1000 = jobs_1000 * per_job / 3600 / 24 / 365

    sge = SgeScheduler(n_slots=50)
    makespan = sge.simulate(
        {f"j{i}": per_job for i in range(10_000)}
    ).makespan * (paper_jobs_month / 10_000)

    text = (
        f"Unit job (pair, day, parameter set), Maronna, smax={provider.smax}: "
        f"{per_job * 1e3:.1f} ms ({len(trades)} trades)\n"
        f"\nPaper-scale extrapolations (1830 pairs x 20 days x 42 sets):\n"
        f"  serial, our per-job cost:      {serial_hours:10.1f} h\n"
        f"  serial, paper's 2 s/job:       {paper_hours:10.1f} h  (paper: ~854 h)\n"
        f"  one year (250 days), ours:     {year_days:10.1f} days "
        f"(paper: ~445 days at 2 s/job)\n"
        f"  1000 pairs, one month, ours:   {years_1000 * 365:10.1f} days "
        f"(paper: 19425 days = 53 years at 2 s/job)\n"
        f"  SGE, 50 slots, our cost:       {makespan / 3600:10.1f} h makespan\n"
    )
    emit("section4_per_job", text)


def test_section4_approach_comparison(benchmark):
    """Time all three architectures on an identical workload."""
    provider = _provider(n_symbols=6, seconds=23_400 // 4)
    pairs = list(default_universe(6).pairs())  # 15 pairs
    # Vary only the trading thresholds so all sets of a treatment share one
    # correlation spec — the sharing the integrated architecture exploits.
    from dataclasses import replace

    levels = [
        replace(BASE, d=d, l=l)
        for d in (0.0005, 0.001, 0.002)
        for l in (1 / 3, 2 / 3)
    ]
    grid = [
        lvl.with_ctype(ct) for ct in ("pearson", "maronna", "combined")
        for lvl in levels
    ]  # 18 sets, 3 correlation specs
    days = [0]

    timings = {}

    def run_sequential():
        return SequentialBacktester(provider).run(pairs, grid, days)

    t0 = time.perf_counter()
    store_a2 = run_sequential()
    timings["approach2_sequential"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    store_a2s = SequentialBacktester(provider, share_correlation=True).run(
        pairs, grid, days
    )
    timings["approach2_shared_corr"] = time.perf_counter() - t0

    matrix_bt = MatrixSeriesBacktester(provider)
    t0 = time.perf_counter()
    store_a1 = matrix_bt.run(pairs, grid, days)
    timings["approach1_matrix_series"] = time.perf_counter() - t0

    def run_integrated():
        def spmd(comm):
            return DistributedBacktester(provider).run(comm, pairs, grid, days)

        return mpi.run_spmd(spmd, size=2)[0]

    store_a3 = benchmark.pedantic(run_integrated, rounds=3, iterations=1)
    timings["approach3_integrated(2 ranks)"] = benchmark.stats["mean"]

    assert store_a1 == store_a2 == store_a2s == store_a3

    paper_day_bytes = MatrixSeriesBacktester.matrix_series_bytes(780, 100, 61)
    lines = ["Identical workload (15 pairs x 18 sets x 1 day), identical results:"]
    for name, seconds in timings.items():
        lines.append(f"  {name:<32} {seconds:8.2f} s")
    lines.append(
        f"\nApproach 1 memory committed (measured): "
        f"{matrix_bt.peak_matrix_bytes / 1e6:.1f} MB"
    )
    lines.append(
        f"Approach 1 at paper scale (61 stocks, Δs=30, M=100): "
        f"{paper_day_bytes / 1e6:.1f} MB per day per spec — the paper's "
        f"'680 such matrices ... for just one day t out of 20'"
    )
    emit("section4_approaches", "\n".join(lines))
