"""Section IV — the computational story: Approaches 1, 2 and 3.

Reproduces the paper's scaling arithmetic with measured numbers:

* the cost of one (pair, day, parameter set) job — the paper's Matlab
  unit ran "in approximately 2 seconds";
* Approach 1's memory commitment ("we were unable to read in multiple
  matrices due to memory constraints ... 680 such matrices" of 61×61 per
  day per spec);
* the paper's extrapolations: 1830 pairs × 20 days × 42 sets ≈ 854 hours
  serial, a year ≈ 445 days, 1000 pairs ≈ 53 years — re-derived from our
  measured per-job cost;
* the SGE-distributed makespan (Approach 2's mitigation) and the
  integrated Approach 3 speedup from sharing correlation series.

All job costs are read from the observability layer (the shared
``backtest.pair_day.seconds`` histogram and per-approach span trees)
rather than ad-hoc stopwatches, so the benchmark numbers are exactly the
numbers ``repro stats`` reports for the same runs.
"""

from benchmarks.conftest import emit
from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.matrices import MatrixSeriesBacktester
from repro.backtest.runner import (
    PAIR_DAY_HIST,
    SequentialBacktester,
    backtest_pair_day,
)
from repro.obs import MetricsRegistry, Obs, attach_to_comm
from repro.sge.scheduler import SgeScheduler
from repro.strategy.params import StrategyParams, paper_parameter_grid
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)


def _provider(n_symbols=8, seconds=23_400 // 2):
    market = SyntheticMarket(
        default_universe(n_symbols),
        SyntheticMarketConfig(trading_seconds=seconds),
        seed=2008,
    )
    return BarProvider(market, TimeGrid(30, trading_seconds=seconds))


def test_section4_per_job_cost_and_extrapolation(benchmark):
    """Benchmark the paper's unit of work; print the scaling arithmetic.

    Every timed invocation records into the job-cost histogram, so the
    per-job figure below is the histogram's mean — the same statistic the
    observability report publishes — not the harness's private stopwatch.
    """
    provider = _provider()
    prices = provider.prices(0)[:, [0, 1]]
    params = BASE.with_ctype("maronna")  # the expensive treatment
    obs = Obs(enabled=True)

    trades = benchmark(backtest_pair_day, prices, params, obs=obs)
    hist = obs.metrics.histogram(PAIR_DAY_HIST)
    assert hist.count > 0
    per_job = hist.mean

    paper_jobs_month = 1830 * 20 * 42
    serial_hours = paper_jobs_month * per_job / 3600
    paper_hours = paper_jobs_month * 2.0 / 3600  # the paper's ~2 s/job
    year_days = serial_hours * (250 / 20) / 24
    pairs_1000 = 1000 * 999 // 2
    jobs_1000 = pairs_1000 * 20 * 42
    years_1000 = jobs_1000 * per_job / 3600 / 24 / 365

    sge = SgeScheduler(n_slots=50)
    makespan = sge.simulate(
        {f"j{i}": per_job for i in range(10_000)}
    ).makespan * (paper_jobs_month / 10_000)

    text = (
        f"Unit job (pair, day, parameter set), Maronna, smax={provider.smax}: "
        f"{per_job * 1e3:.1f} ms ({len(trades)} trades)\n"
        f"\nPaper-scale extrapolations (1830 pairs x 20 days x 42 sets):\n"
        f"  serial, our per-job cost:      {serial_hours:10.1f} h\n"
        f"  serial, paper's 2 s/job:       {paper_hours:10.1f} h  (paper: ~854 h)\n"
        f"  one year (250 days), ours:     {year_days:10.1f} days "
        f"(paper: ~445 days at 2 s/job)\n"
        f"  1000 pairs, one month, ours:   {years_1000 * 365:10.1f} days "
        f"(paper: 19425 days = 53 years at 2 s/job)\n"
        f"  SGE, 50 slots, our cost:       {makespan / 3600:10.1f} h makespan\n"
    )
    emit(
        "section4_per_job",
        text,
        data={
            "per_job_seconds": hist.summary(),
            "serial_hours": serial_hours,
            "paper_hours": paper_hours,
            "year_days": year_days,
            "pairs_1000_days": years_1000 * 365,
            "sge_50_slots_makespan_hours": makespan / 3600,
        },
    )


def test_section4_approach_comparison(benchmark):
    """Time all three architectures on an identical workload."""
    provider = _provider(n_symbols=6, seconds=23_400 // 4)
    pairs = list(default_universe(6).pairs())  # 15 pairs
    # Vary only the trading thresholds so all sets of a treatment share one
    # correlation spec — the sharing the integrated architecture exploits.
    from dataclasses import replace

    levels = [
        replace(BASE, d=d, l=l)
        for d in (0.0005, 0.001, 0.002)
        for l in (1 / 3, 2 / 3)
    ]
    grid = [
        lvl.with_ctype(ct) for ct in ("pearson", "maronna", "combined")
        for lvl in levels
    ]  # 18 sets, 3 correlation specs
    days = [0]

    def root_wall(obs, name):
        """Wall seconds of the approach's root span in the trace."""
        spans = [s for s in obs.trace.to_list() if s["name"] == name]
        assert spans, f"no {name!r} span recorded"
        return sum(s["wall"] for s in spans)

    timings = {}
    job_hists = {}

    obs_a2 = Obs(enabled=True)
    store_a2 = SequentialBacktester(provider, obs=obs_a2, profile=True).run(
        pairs, grid, days
    )
    timings["approach2_sequential"] = root_wall(obs_a2, "approach2")
    job_hists["approach2_sequential"] = obs_a2.metrics.histogram(
        PAIR_DAY_HIST
    )

    obs_a2s = Obs(enabled=True)
    store_a2s = SequentialBacktester(
        provider, share_correlation=True, obs=obs_a2s
    ).run(pairs, grid, days)
    timings["approach2_shared_corr"] = root_wall(obs_a2s, "approach2")
    job_hists["approach2_shared_corr"] = obs_a2s.metrics.histogram(
        PAIR_DAY_HIST
    )

    obs_a1 = Obs(enabled=True)
    matrix_bt = MatrixSeriesBacktester(provider, obs=obs_a1)
    store_a1 = matrix_bt.run(pairs, grid, days)
    timings["approach1_matrix_series"] = root_wall(obs_a1, "approach1")
    job_hists["approach1_matrix_series"] = obs_a1.metrics.histogram(
        PAIR_DAY_HIST
    )

    rank_dicts = []

    def run_integrated():
        def spmd(comm):
            local = Obs(enabled=True)
            attach_to_comm(comm, local)
            store = DistributedBacktester(provider).run(
                comm, pairs, grid, days, obs=local
            )
            return store, local.to_dict()

        results = mpi.run_spmd(spmd, size=2)
        rank_dicts.extend(d for _, d in results)
        return results[0][0]

    store_a3 = benchmark.pedantic(run_integrated, rounds=3, iterations=1)
    # Approach 3's wall per round = the slowest rank's root span; average
    # the per-round maxima across the benchmark rounds.
    a3_reg = MetricsRegistry.merged(d["metrics"] for d in rank_dicts)
    a3_walls = sorted(
        (
            s["wall"]
            for d in rank_dicts
            for s in d["spans"]
            if s["name"] == "approach3"
        ),
        reverse=True,
    )
    rounds = len(a3_walls) // 2  # two ranks per round
    assert rounds > 0
    timings["approach3_integrated(2 ranks)"] = sum(a3_walls[:rounds]) / rounds
    job_hists["approach3_integrated(2 ranks)"] = a3_reg.histogram(
        PAIR_DAY_HIST
    )

    assert store_a1 == store_a2 == store_a2s == store_a3

    # Where does Approach 2 actually spend its wall time?  The sampling
    # profiler answers from the same run that produced the timing above.
    from repro.obs.live.profiler import (
        attributed_fraction,
        render_flame_table,
        span_totals,
    )

    profile = obs_a2.profile
    assert profile is not None and profile["n_samples"] > 0

    paper_day_bytes = MatrixSeriesBacktester.matrix_series_bytes(780, 100, 61)
    lines = ["Identical workload (15 pairs x 18 sets x 1 day), identical results:"]
    for name, seconds in timings.items():
        hist = job_hists[name]
        lines.append(
            f"  {name:<32} {seconds:8.2f} s"
            f"   ({hist.count} jobs, p50 {hist.quantile(0.5) * 1e3:.1f} ms)"
        )
    lines.append(
        f"\nApproach 1 memory committed (measured): "
        f"{matrix_bt.peak_matrix_bytes / 1e6:.1f} MB"
    )
    lines.append(
        f"Approach 1 at paper scale (61 stocks, Δs=30, M=100): "
        f"{paper_day_bytes / 1e6:.1f} MB per day per spec — the paper's "
        f"'680 such matrices ... for just one day t out of 20'"
    )
    lines.append("")
    lines.append(
        f"Approach 2 sampling profile "
        f"({attributed_fraction(profile):.0%} of samples span-attributed):"
    )
    lines.append(render_flame_table(profile, top=10))
    emit(
        "section4_approaches",
        "\n".join(lines),
        data={
            "timings_seconds": dict(timings),
            "job_histograms": {n: h.summary() for n, h in job_hists.items()},
            "approach1_peak_matrix_bytes": matrix_bt.peak_matrix_bytes,
            "paper_scale_day_bytes": paper_day_bytes,
            "approach2_profile": {
                "n_samples": profile["n_samples"],
                "attributed_fraction": attributed_fraction(profile),
                "span_seconds": dict(span_totals(profile)),
            },
        },
    )
