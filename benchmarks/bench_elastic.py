"""Elastic-runtime benchmark: work-stealing vs stragglers, resize vs fixed.

Two headline measurements, both gated here (not just reported):

1. **Work-stealing beats the straggler.**  A seeded skewed-cost scenario
   — every ``n_slots``-th job is a long straggler, so the static
   round-robin partition piles all of them onto slot 0 — is placed twice
   through :meth:`~repro.sge.scheduler.SgeScheduler.simulate_partitioned`,
   with and without stealing.  Gate: the stolen schedule's makespan is at
   most ``STEAL_GATE`` (0.75) of the no-steal one, and re-running the
   same jobs *executed* (:meth:`~repro.sge.scheduler.SgeScheduler.run_partitioned`)
   under both disciplines produces bitwise-equal results — placement may
   move work, never change it.

2. **Resize is free of result drift.**  A toy supervised Figure-1
   session resized 2 → 4 → 3 at epoch boundaries is compared bitwise
   against the fixed-size run (the elastic headline invariant), and the
   wall cost of the resizes is reported next to the fixed-size wall.

Full mode writes ``benchmarks/out/elastic.{txt,json}`` plus the
repo-level artefact ``BENCH_elastic.json``.  ``--smoke`` is the
sub-10-second steal-gate burst used by ``scripts/check.sh`` (the session
resize smoke has its own check.sh stage via ``repro elastic``).
"""

import json
import random
import time
from pathlib import Path

import numpy as np

from repro.sge.scheduler import Job, SgeScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Makespan gate: stolen schedule must be at most this fraction of the
#: no-steal schedule on the skewed scenario.
STEAL_GATE = 0.75

#: Straggler scenario shape (full mode).
N_SLOTS = 8
N_JOBS = 128
STRAGGLER_SECONDS = 9.0
SHORT_SECONDS = 0.45
JITTER = 0.1
SEED = 2008


def straggler_durations(
    n_jobs: int, n_slots: int, seed: int = SEED
) -> dict[str, float]:
    """Seeded skewed costs: every ``n_slots``-th job is a straggler.

    Round-robin pre-assignment sends job ``i`` to slot ``i % n_slots``,
    so this shape lands *every* straggler on slot 0 — the worst case a
    static partition produces and exactly what the paper's fixed SGE
    split suffers when one parameter set is pathologically slow.
    """
    rng = random.Random(seed)
    durations = {}
    for i in range(n_jobs):
        base = STRAGGLER_SECONDS if i % n_slots == 0 else SHORT_SECONDS
        durations[f"cell{i:04d}"] = base * (1.0 + JITTER * rng.random())
    return durations


def _corr_job(seed: int):
    """A real, deterministic unit of work: rolling correlation of a pair."""
    def job():
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(2048)
        y = 0.6 * x + 0.8 * rng.standard_normal(2048)
        m = 64
        out = np.empty(len(x) - m)
        for s in range(len(out)):
            out[s] = np.corrcoef(x[s:s + m], y[s:s + m])[0, 1]
        return float(out.sum())
    return job


def run_steal(n_jobs: int, n_slots: int) -> dict:
    """Measure the steal gate on the seeded straggler scenario."""
    durations = straggler_durations(n_jobs, n_slots)
    sched = SgeScheduler(n_slots=n_slots)
    no_steal = sched.simulate_partitioned(durations, steal=False)
    steal = sched.simulate_partitioned(durations, steal=True)
    ratio = steal.makespan / no_steal.makespan

    # Executed twice — stolen placement must not perturb results.
    exec_sched = SgeScheduler(n_slots=n_slots)
    n_exec = min(n_jobs, 32)
    exec_sched.submit_many(
        Job(f"corr{i:03d}", _corr_job(i)) for i in range(n_exec)
    )
    plain = exec_sched.run_partitioned(steal=False)
    exec_sched.submit_many(
        Job(f"corr{i:03d}", _corr_job(i)) for i in range(n_exec)
    )
    stolen = exec_sched.run_partitioned(steal=True)
    results_equal = [r.result for r in plain.results] == [
        r.result for r in stolen.results
    ]

    return {
        "n_jobs": n_jobs,
        "n_slots": n_slots,
        "no_steal_makespan": no_steal.makespan,
        "steal_makespan": steal.makespan,
        "ratio": ratio,
        "gate": STEAL_GATE,
        "n_stolen": steal.n_stolen,
        "stolen_seconds": steal.stolen_seconds,
        "executed_jobs": n_exec,
        "executed_results_equal": results_equal,
    }


def run_resize() -> dict:
    """Toy supervised session: resized 2->4->3 vs fixed-size 3, bitwise."""
    from repro.elastic import ResizePlan, ResizeRequest
    from repro.faults import run_supervised_session, session_results_equal
    from repro.marketminer.session import build_figure1_workflow
    from repro.strategy.params import StrategyParams
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    seconds = 23_400 // 16
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)

    def build():
        market = SyntheticMarket(
            default_universe(4),
            SyntheticMarketConfig(trading_seconds=seconds, quote_rate=0.9),
            seed=33,
        )
        return build_figure1_workflow(
            market, TimeGrid(30, trading_seconds=seconds),
            [(0, 1), (2, 3)], [params],
        )

    options = {"default_timeout": 10.0}
    t0 = time.perf_counter()
    fixed = run_supervised_session(
        build, size=3, checkpoint_every=20, backend_options=options
    )
    fixed_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    elastic = run_supervised_session(
        build, size=2, checkpoint_every=20,
        resize=ResizePlan((ResizeRequest(1, 4), ResizeRequest(2, 3))),
        backend_options=options,
    )
    elastic_wall = time.perf_counter() - t0
    return {
        "pool_sizes": list(elastic.pool_sizes),
        "resizes": [list(r) for r in elastic.resizes],
        "bitwise_equal": session_results_equal(
            fixed.results, elastic.results
        ),
        "fixed_wall_s": fixed_wall,
        "elastic_wall_s": elastic_wall,
    }


def _gate(steal: dict, resize: dict | None) -> None:
    assert steal["ratio"] <= STEAL_GATE, (
        f"steal makespan ratio {steal['ratio']:.3f} exceeds the "
        f"{STEAL_GATE} gate (no-steal {steal['no_steal_makespan']:.1f}s, "
        f"steal {steal['steal_makespan']:.1f}s)"
    )
    assert steal["executed_results_equal"], (
        "work-stealing changed executed job results; placement must never "
        "touch results"
    )
    if resize is not None:
        assert resize["bitwise_equal"], (
            f"resized session diverged from the fixed-size run "
            f"(pool sizes {resize['pool_sizes']})"
        )


def run_full() -> None:
    """Headline run: straggler gate at full shape + the resize invariant."""
    steal = run_steal(N_JOBS, N_SLOTS)
    resize = run_resize()
    _gate(steal, resize)
    data = {"steal": steal, "resize": resize}

    lines = [
        f"elastic: straggler scenario {steal['n_jobs']} jobs / "
        f"{steal['n_slots']} slots",
        f"  no-steal makespan {steal['no_steal_makespan']:8.1f}s",
        f"  steal makespan    {steal['steal_makespan']:8.1f}s   "
        f"ratio {steal['ratio']:.3f}  (gate <= {STEAL_GATE})",
        f"  {steal['n_stolen']} jobs stolen "
        f"({steal['stolen_seconds']:.1f}s of load rebalanced); "
        f"executed results bitwise-equal: "
        f"{steal['executed_results_equal']}",
        f"elastic: session resized 2->4->3 vs fixed-size 3: "
        f"bitwise_equal={resize['bitwise_equal']} "
        f"(pool sizes {resize['pool_sizes']})",
        f"  fixed wall {resize['fixed_wall_s']:.2f}s, "
        f"elastic wall {resize['elastic_wall_s']:.2f}s "
        f"({len(resize['resizes'])} rebuild boundaries resized)",
    ]
    text = "\n".join(lines)
    from benchmarks.conftest import emit

    emit("elastic", text, data)
    (REPO_ROOT / "BENCH_elastic.json").write_text(
        json.dumps({"bench": "elastic", "data": data}, indent=2,
                   sort_keys=True) + "\n"
    )


def run_smoke() -> None:
    """check.sh stage: the steal gate on a reduced scenario, sub-second."""
    steal = run_steal(n_jobs=64, n_slots=8)
    _gate(steal, None)
    print(
        f"ok: elastic smoke — steal makespan ratio {steal['ratio']:.3f} "
        f"(gate <= {STEAL_GATE}), {steal['n_stolen']} stolen, executed "
        f"results bitwise-equal"
    )


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="steal-gate burst (used by scripts/check.sh)")
    if ap.parse_args().smoke:
        run_smoke()
    else:
        run_full()
