"""Figure 2(a,b,c) — box plots of the three performance metrics.

Regenerates the numeric content of the paper's box plots: median,
quartiles, Tukey whiskers and outliers of the per-pair samples, per
correlation treatment, for all three measures.
"""

from benchmarks.conftest import emit
from repro.corr.measures import CorrelationType
from repro.metrics.summary import boxplot_by_treatment

PANELS = (
    ("a", "returns", "Average cumulative monthly returns"),
    ("b", "drawdown", "Average maximum daily drawdown"),
    ("c", "winloss", "Average win-loss ratio"),
)


def _render(measure_title, boxes):
    lines = [measure_title]
    lines.append(
        f"  {'treatment':<10} {'median':>9} {'q1':>9} {'q3':>9} "
        f"{'whisk_lo':>9} {'whisk_hi':>9} {'#outliers':>9}"
    )
    for ctype in CorrelationType:
        b = boxes[ctype]
        lines.append(
            f"  {ctype.value:<10} {b.median:>9.4f} {b.q1:>9.4f} {b.q3:>9.4f} "
            f"{b.whisker_low:>9.4f} {b.whisker_high:>9.4f} "
            f"{len(b.outliers):>9d}"
        )
    return "\n".join(lines)


def test_figure2_boxplots(benchmark, study):
    store, grid = study

    def all_panels():
        return {
            measure: boxplot_by_treatment(store, grid, measure)
            for _, measure, _ in PANELS
        }

    panels = benchmark(all_panels)

    sections = []
    for tag, measure, title in PANELS:
        boxes = panels[measure]
        for b in boxes.values():
            assert b.q1 <= b.median <= b.q3
        sections.append(_render(f"Figure 2({tag}): {title}", boxes))
    emit("figure2_boxplots", "\n\n".join(sections))
