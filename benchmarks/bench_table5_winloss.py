"""Table V — average win-loss ratio by correlation type.

Regenerates eq (8)'s winning/losing trade ratio per (pair, parameter set)
over the whole period, averaged over factor levels, summarised per
treatment.
"""

from benchmarks.conftest import emit
from repro.metrics.summary import format_treatment_table, treatment_summaries


def test_table5_win_loss_ratio(benchmark, study):
    store, grid = study
    summaries = benchmark(treatment_summaries, store, grid, "winloss")
    assert len(summaries) == 3
    for s in summaries.values():
        assert s.stats.mean >= 0.0

    text = format_treatment_table(summaries, "Table V: average win-loss ratio")
    emit("table5_winloss", text)
