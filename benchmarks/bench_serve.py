"""Load benchmark for the serving layer: thousands of simulated clients.

Boots a real :class:`~repro.serve.http.ServeHTTPServer` in-process on an
ephemeral port, seeds it with live Figure-1 sessions and per-user
watchlists, then drives a read-heavy mixed workload — session listings,
per-session status and audit reads, telemetry snapshots, health probes,
watchlist reads and a thin stream of watchlist writes — from a pool of
worker threads.  Each simulated client opens its own HTTP/1.1 connection
and issues a burst of requests from the mix, so connection setup cost is
part of the measurement, exactly as it would be for real tenants.

Two gates (both enforced here, not just reported):

* the **read path serves zero errors** — any 5xx, or any 4xx on a
  well-formed read, fails the run;
* the **per-route p99 latency** stays under ``P99_BUDGET`` seconds.

Full mode writes ``benchmarks/out/serve_load.{txt,json}`` plus the
repo-level artefact ``BENCH_serve.json`` (per-route p50/p95/p99,
throughput, error rate).  ``python -m benchmarks.bench_serve --smoke``
is the sub-10-second burst used by ``scripts/check.sh``: 200 mixed
requests, zero 5xx, clean shutdown.
"""

import http.client
import json
import threading
import time
from pathlib import Path

from repro.obs import Obs
from repro.serve import ServeApp, SessionManager, make_server

REPO_ROOT = Path(__file__).resolve().parent.parent

TOKEN = "bench-token"

#: Full-mode shape: ``N_THREADS`` workers each simulate
#: ``CLIENTS_PER_THREAD`` sequential clients; every client opens a fresh
#: connection and issues ``REQUESTS_PER_CLIENT`` requests from the mix.
N_THREADS = 24
CLIENTS_PER_THREAD = 50          # 24 * 50 = 1200 simulated clients
REQUESTS_PER_CLIENT = 8

#: Per-route p99 latency budget (seconds).  Generous for a shared CI
#: box, but far below anything a human tenant would notice.
P99_BUDGET = 0.5

#: The workload mix, in cumulative percent: (threshold, route template).
#: ``{sid}`` / ``{user}`` are filled per request; only the final entry
#: writes.
_MIX = (
    (30, "GET", "/sessions"),
    (55, "GET", "/sessions/{sid}"),
    (70, "GET", "/sessions/{sid}/audit?limit=50"),
    (80, "GET", "/health"),
    (88, "GET", "/telemetry"),
    (95, "GET", "/users/{user}/watchlist"),
    (100, "PUT", "/users/{user}/watchlist"),
)

_WATCHLIST_BODY = json.dumps({"symbols": ["XOM", "CVX", "BP"]})


def _pick(i: int):
    """Deterministic route choice for request number ``i`` (no RNG)."""
    bucket = (i * 2654435761) % 100
    for threshold, method, template in _MIX:
        if bucket < threshold:
            return method, template
    raise AssertionError("unreachable: mix covers [0, 100)")


def _boot(max_live: int = 8):
    """Server + manager seeded with sessions and watchlists; returns both."""
    manager = SessionManager(max_live=max_live, retain=max_live + 8)
    app = ServeApp(manager, token=TOKEN, obs=Obs(enabled=True))
    server = make_server(app, host="127.0.0.1", port=0)
    threading.Thread(
        target=server.serve_forever, name="bench-serve", daemon=True
    ).start()
    for k in range(2):
        manager.submit(
            f"bench-fig{k}",
            "figure1",
            {"seconds": 1200, "ranks": 2, "checkpoint_every": 10},
            user=f"user{k}",
        )
    for k in range(4):
        manager.set_watchlist(f"user{k}", ["XOM", "CVX"])
    return server, manager


class _Stats:
    """Per-route latency samples and outcome counts (lock-guarded)."""

    def __init__(self):
        self.latencies: dict[str, list[float]] = {}
        self.statuses: dict[int, int] = {}
        self.read_errors = 0
        self.transport_errors = 0
        self._lock = threading.Lock()

    def record(self, route: str, status: int, elapsed: float, wrote: bool):
        with self._lock:
            self.latencies.setdefault(route, []).append(elapsed)
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status >= 400 and not wrote:
                self.read_errors += 1


def _client_burst(host, port, stats: _Stats, base: int, n_requests: int):
    """One simulated client: fresh connection, ``n_requests`` from the mix."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    headers = {"Authorization": f"Bearer {TOKEN}"}
    try:
        for i in range(base, base + n_requests):
            method, template = _pick(i)
            path = template.replace("{sid}", f"bench-fig{i % 2}").replace(
                "{user}", f"user{i % 4}"
            )
            body = _WATCHLIST_BODY if method == "PUT" else None
            route = template.split("?")[0]
            t0 = time.perf_counter()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                resp.read()
                status = resp.status
            except (OSError, http.client.HTTPException):
                with stats._lock:
                    stats.transport_errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                continue
            stats.record(
                route, status, time.perf_counter() - t0, wrote=method == "PUT"
            )
    finally:
        conn.close()


def _run_load(n_threads: int, clients_per_thread: int,
              requests_per_client: int) -> tuple[_Stats, float]:
    server, manager = _boot()
    host, port = server.server_address[:2]
    stats = _Stats()

    def worker(worker_idx: int):
        for c in range(clients_per_thread):
            client_idx = worker_idx * clients_per_thread + c
            _client_burst(
                host, port, stats,
                base=client_idx * requests_per_client,
                n_requests=requests_per_client,
            )

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(n_threads)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    manager.kill_all()
    server.shutdown()
    server.server_close()
    return stats, wall


def _quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _summarise(stats: _Stats, wall: float, n_clients: int) -> dict:
    per_route = {}
    for route, lat in sorted(stats.latencies.items()):
        per_route[route] = {
            "n": len(lat),
            "p50": _quantile(lat, 0.50),
            "p95": _quantile(lat, 0.95),
            "p99": _quantile(lat, 0.99),
        }
    n_requests = sum(len(lat) for lat in stats.latencies.values())
    return {
        "n_clients": n_clients,
        "n_requests": n_requests,
        "wall_seconds": wall,
        "throughput_rps": n_requests / wall if wall > 0 else 0.0,
        "statuses": {str(k): v for k, v in sorted(stats.statuses.items())},
        "read_errors": stats.read_errors,
        "transport_errors": stats.transport_errors,
        "error_rate": stats.read_errors / n_requests if n_requests else 0.0,
        "routes": per_route,
    }


def _gate(data: dict) -> None:
    assert data["read_errors"] == 0, (
        f"read path served {data['read_errors']} errors "
        f"(statuses {data['statuses']})"
    )
    assert data["transport_errors"] == 0, (
        f"{data['transport_errors']} requests failed at the transport"
    )
    for route, q in data["routes"].items():
        assert q["p99"] <= P99_BUDGET, (
            f"route {route} p99 {q['p99'] * 1e3:.1f}ms exceeds the "
            f"{P99_BUDGET * 1e3:.0f}ms budget"
        )


def run_full() -> None:
    """The headline load run: 1200 clients, ~9600 mixed requests."""
    n_clients = N_THREADS * CLIENTS_PER_THREAD
    stats, wall = _run_load(N_THREADS, CLIENTS_PER_THREAD,
                            REQUESTS_PER_CLIENT)
    data = _summarise(stats, wall, n_clients)
    _gate(data)

    lines = [
        f"serve load: {data['n_clients']} simulated clients, "
        f"{data['n_requests']} requests in {wall:.1f}s "
        f"({data['throughput_rps']:.0f} req/s, {N_THREADS} threads)",
        f"  read errors: {data['read_errors']}  "
        f"statuses: {data['statuses']}",
        f"  {'route':<28} {'n':>6} {'p50':>8} {'p95':>8} {'p99':>8}",
    ]
    for route, q in data["routes"].items():
        lines.append(
            f"  {route:<28} {q['n']:>6} {q['p50'] * 1e3:>7.1f}m "
            f"{q['p95'] * 1e3:>7.1f}m {q['p99'] * 1e3:>7.1f}m"
        )
    text = "\n".join(lines)
    from benchmarks.conftest import emit

    emit("serve_load", text, data)
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps({"bench": "serve_load", "data": data}, indent=2,
                   sort_keys=True) + "\n"
    )


def run_smoke() -> None:
    """check.sh stage: a 200-request mixed burst, zero 5xx, clean exit."""
    stats, wall = _run_load(n_threads=8, clients_per_thread=5,
                            requests_per_client=5)
    data = _summarise(stats, wall, n_clients=40)
    assert data["n_requests"] == 200, f"expected 200 requests, {data}"
    _gate(data)
    print(
        f"ok: serve smoke — {data['n_requests']} requests in {wall:.1f}s "
        f"({data['throughput_rps']:.0f} req/s), zero read errors, "
        f"worst p99 "
        f"{max(q['p99'] for q in data['routes'].values()) * 1e3:.1f}ms"
    )


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="200-request burst (used by scripts/check.sh)")
    if ap.parse_args().smoke:
        run_smoke()
    else:
        run_full()
