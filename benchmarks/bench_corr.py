"""All-pairs batch correlation vs the scalar per-pair/per-window path.

The paper-scale correlation stage — 61 stocks, all 1830 pairs, the full
42-set Table-I grid over 20 days — reduces to 9 distinct (window M,
treatment) specs per day (every parameter set sharing an (M, Ctype) shares
its correlation series, which is exactly what ``share_correlation`` and the
batch backend exploit).  This benchmark feeds a store-ingested day through
the zero-copy memmap reader and times three implementations of that stage:

* ``scalar``  — the fully scalar oracle: one rolling-moment pass per pair
  (Pearson) and one fixed-point iteration per *window* (robust measures),
  i.e. the per-pair while-loops the batch kernels replace;
* ``perpair`` — the engines' historical path (`corr_series` once per pair,
  windows batched within the pair);
* ``batch``   — the all-pairs kernels of :mod:`repro.corr.batch` behind
  ``backend="batch"``.

The batch path is measured in full (all 1830 pairs, all 9 specs).  The
scalar and (for the robust specs) perpair baselines are measured on
documented pair subsets and extrapolated linearly — per-pair cost is
uniform, and the subset sizes are recorded in the JSON.  Day 0 is measured
and scaled to 20 days (every day has identical shape).  The headline gate:
batch must be >= 10x the scalar oracle on the full study, with results
bitwise-identical (asserted here on every spec).

Results land in ``benchmarks/out/corr_batch.{txt,json}`` and the repo-level
artefact ``BENCH_corr.json``.  ``python -m benchmarks.bench_corr --smoke``
runs the toy-scale bitwise gate used by ``scripts/check.sh``.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.backtest.data import BarProvider
from repro.corr.batch import (
    BatchWorkspace,
    all_pairs,
    batch_pair_series,
    reference_pair_series,
    scalar_pair_series,
)
from repro.corr.measures import CorrelationType
from repro.strategy.params import paper_parameter_grid
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

N_DAYS = 20
SECONDS = 23_400 // 2  # half-length sessions: the smallest day that fits
#                        the grid's M=200 window (precedent: bench_paper_scale)
DELTA_S = 30

#: Pair subsets the extrapolated baselines are measured on.
PERPAIR_SAMPLE = 64
SCALAR_SAMPLE = 6
#: Pairs the per-window reference is bitwise-checked on, every spec.
BITWISE_SAMPLE = 4

REPO_ROOT = Path(__file__).resolve().parent.parent


def _store_fed_returns(tmp_path):
    """Day-0 returns for the 61-symbol universe via the tick store."""
    from repro.store import StoreQuoteSource, StoreReader, ingest_synthetic

    market = SyntheticMarket(
        default_universe(),  # all 61 symbols, as in the paper
        SyntheticMarketConfig(trading_seconds=SECONDS),
        seed=2008,
    )
    root = tmp_path / "store"
    ingest_synthetic(root, market, n_days=1, n_shards=8)
    source = StoreQuoteSource(StoreReader(root))
    grid = TimeGrid(DELTA_S, trading_seconds=SECONDS)
    return BarProvider(source, grid).returns(0)


def _specs():
    grid = paper_parameter_grid()
    specs = sorted(
        {(p.m, p.ctype) for p in grid}, key=lambda s: (s[0], s[1].value)
    )
    return grid, specs


def test_corr_batch_paper_scale(tmp_path):
    returns = _store_fed_returns(tmp_path)
    grid, specs = _specs()
    pairs = all_pairs(returns.shape[1])
    n_pairs = len(pairs)
    ws = BatchWorkspace()

    rows = []
    for m, ctype in specs:
        robust = ctype is not CorrelationType.PEARSON
        # Full batch measurement (the claim under test).
        t0 = time.perf_counter()
        batch = batch_pair_series(returns, m, ctype, pairs=pairs, workspace=ws)
        batch_s = time.perf_counter() - t0

        # perpair: full for Pearson (cheap), extrapolated from a pair
        # subset for the robust specs.
        perpair_pairs = pairs if not robust else pairs[:PERPAIR_SAMPLE]
        t0 = time.perf_counter()
        perpair = scalar_pair_series(
            returns, m, ctype, pairs=perpair_pairs
        )
        perpair_s = (time.perf_counter() - t0) * (n_pairs / len(perpair_pairs))
        np.testing.assert_array_equal(
            batch[:, : len(perpair_pairs)], perpair,
            err_msg=f"batch != perpair for {ctype.value}@{m}",
        )

        # scalar oracle: for Pearson the rolling series IS the scalar
        # path; for robust specs run the genuine per-window loop on a
        # small subset and extrapolate.
        if robust:
            t0 = time.perf_counter()
            ref = reference_pair_series(
                returns, m, ctype, pairs=pairs[:SCALAR_SAMPLE]
            )
            scalar_s = (time.perf_counter() - t0) * (n_pairs / SCALAR_SAMPLE)
            np.testing.assert_array_equal(
                batch[:, :SCALAR_SAMPLE], ref,
                err_msg=f"batch != per-window scalar for {ctype.value}@{m}",
            )
        else:
            scalar_s = perpair_s
        rows.append(
            {
                "m": m,
                "ctype": ctype.value,
                "batch_s": batch_s,
                "perpair_s": perpair_s,
                "perpair_pairs_measured": len(perpair_pairs),
                "scalar_s": scalar_s,
                "scalar_pairs_measured": SCALAR_SAMPLE if robust else n_pairs,
                "speedup_vs_scalar": scalar_s / batch_s,
                "speedup_vs_perpair": perpair_s / batch_s,
            }
        )

    day = {k: sum(r[f"{k}_s"] for r in rows) for k in ("batch", "perpair", "scalar")}
    study = {k: v * N_DAYS for k, v in day.items()}
    speedup = study["scalar"] / study["batch"]
    speedup_perpair = study["perpair"] / study["batch"]
    assert speedup >= 10.0, (
        f"batch must be >=10x the scalar oracle at paper scale, got "
        f"{speedup:.1f}x"
    )

    data = {
        "n_symbols": returns.shape[1] + 0,
        "n_pairs": n_pairs,
        "n_days": N_DAYS,
        "n_param_sets": len(grid),
        "n_corr_specs": len(specs),
        "trading_seconds": SECONDS,
        "delta_s": DELTA_S,
        "return_rows_per_day": int(returns.shape[0]),
        "feed": "store (zero-copy memmap reader)",
        "days_measured": 1,
        "extrapolation": (
            "batch measured in full (all pairs, all specs) on day 0; "
            "perpair extrapolated from "
            f"{PERPAIR_SAMPLE} pairs on robust specs; scalar per-window "
            f"loop extrapolated from {SCALAR_SAMPLE} pairs; day-0 stage "
            f"cost scaled by n_days={N_DAYS} (identical day shapes)"
        ),
        "bitwise_identical": True,
        "per_spec": rows,
        "day_seconds": day,
        "study_seconds": study,
        "speedup_batch_vs_scalar": speedup,
        "speedup_batch_vs_perpair": speedup_perpair,
    }
    lines = [
        f"all-pairs correlation stage: {data['n_symbols']} symbols "
        f"({n_pairs} pairs) x {N_DAYS} days x {len(grid)} parameter sets "
        f"({len(specs)} distinct (M, Ctype) specs, {SECONDS} s days)",
        f"  {'spec':<14} {'scalar':>9} {'perpair':>9} {'batch':>9} "
        f"{'vs scalar':>10} {'vs perpair':>11}",
    ]
    for r in rows:
        lines.append(
            f"  {r['ctype']:<10}@{r['m']:<3} {r['scalar_s']:>8.2f}s "
            f"{r['perpair_s']:>8.2f}s {r['batch_s']:>8.2f}s "
            f"{r['speedup_vs_scalar']:>9.1f}x {r['speedup_vs_perpair']:>10.1f}x"
        )
    lines.append(
        f"  study totals ({N_DAYS} days): scalar {study['scalar']:.0f}s, "
        f"perpair {study['perpair']:.0f}s, batch {study['batch']:.0f}s"
    )
    lines.append(
        f"  batch is {speedup:.0f}x the scalar oracle "
        f"({speedup_perpair:.1f}x the per-pair path), bitwise-identical"
    )
    text = "\n".join(lines)
    from benchmarks.conftest import emit

    emit("corr_batch", text, data)
    (REPO_ROOT / "BENCH_corr.json").write_text(
        json.dumps({"bench": "corr_batch", "data": data}, indent=2,
                   sort_keys=True) + "\n"
    )
    print("\n" + text)


def run_smoke() -> None:
    """Toy-scale bitwise gate for scripts/check.sh: batch == scalar ==
    per-window reference on every treatment, to the last bit."""
    market = SyntheticMarket(
        default_universe(8),
        SyntheticMarketConfig(trading_seconds=3600, quote_rate=0.8),
        seed=7,
    )
    provider = BarProvider(market, TimeGrid(30, trading_seconds=3600))
    returns = provider.returns(0)
    m = 20
    ws = BatchWorkspace()
    for ctype in ("pearson", "maronna", "combined"):
        batch = batch_pair_series(returns, m, ctype, workspace=ws)
        scalar = scalar_pair_series(returns, m, ctype)
        np.testing.assert_array_equal(
            batch, scalar, err_msg=f"batch != scalar for {ctype}"
        )
        sample = all_pairs(returns.shape[1])[:BITWISE_SAMPLE]
        ref = reference_pair_series(returns, m, ctype, pairs=sample)
        np.testing.assert_array_equal(
            batch[:, :BITWISE_SAMPLE], ref,
            err_msg=f"batch != per-window reference for {ctype}",
        )
        print(f"  {ctype:<9} batch == scalar == reference "
              f"({batch.shape[1]} pairs x {batch.shape[0]} windows)")
    print("ok: batch backend is bitwise-identical at toy scale")


if __name__ == "__main__":
    import argparse
    import tempfile

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="toy-scale bitwise gate (used by scripts/check.sh)")
    if ap.parse_args().smoke:
        run_smoke()
    else:
        with tempfile.TemporaryDirectory() as td:
            test_corr_batch_paper_scale(Path(td))
