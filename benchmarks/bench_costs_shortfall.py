"""Section VI (future work) — implementation shortfalls.

"transaction costs, moving the market (on big orders) and lost
opportunity (inability to fill an order)".  This benchmark sweeps the
friction level and locates the crossover where the canonical strategy's
gross profitability disappears — the practically decisive number a
deployment would need.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.strategy.costs import ExecutionModel
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)

SLIPPAGE_BPS = (0.0, 0.25, 0.5, 1.0, 2.0, 5.0)


def test_costs_shortfall_sweep(benchmark):
    market = SyntheticMarket(
        default_universe(6),
        SyntheticMarketConfig(trading_seconds=23_400 // 2),
        seed=2008,
    )
    provider = BarProvider(market, TimeGrid(30, trading_seconds=23_400 // 2))
    pairs = list(market.universe.pairs())
    days = [0, 1]

    def run_frictions():
        rows = {}
        for bps in SLIPPAGE_BPS:
            model = ExecutionModel(slippage_frac=bps * 1e-4)
            store = SequentialBacktester(
                provider, share_correlation=True, execution=model
            ).run(pairs, [BASE], days)
            rows[bps] = store
        return rows

    stores = benchmark.pedantic(run_frictions, rounds=1, iterations=1)

    lines = [
        f"{'slippage':>9} {'mean cum ret':>13} {'mean trade ret':>15} "
        f"{'trades':>7}"
    ]
    mean_rets = {}
    for bps, store in stores.items():
        all_rets = np.concatenate(
            [store.period_returns(p, 0) for p in store.pairs]
        )
        cum = float(np.mean([store.total_return(p, 0) for p in store.pairs]))
        mean_rets[bps] = cum
        lines.append(
            f"{bps:>7.2f}bp {cum:>+13.5f} {all_rets.mean():>+15.6f} "
            f"{all_rets.size:>7d}"
        )

    # Costs must be monotone in friction; trade sets are identical.
    cums = [mean_rets[b] for b in SLIPPAGE_BPS]
    assert all(a >= b for a, b in zip(cums, cums[1:]))

    crossover = next((b for b in SLIPPAGE_BPS if mean_rets[b] < 0), None)
    lines.append(
        f"\nGross-to-net crossover: the strategy's mean cumulative return "
        f"turns negative at "
        + (f"{crossover} bps slippage per leg." if crossover is not None
           else "no tested friction level (profitable through "
           f"{SLIPPAGE_BPS[-1]} bps).")
    )
    lines.append(
        "Lost opportunity (fill_probability < 1) and sqrt-impact are "
        "modelled in repro.strategy.costs and covered by tests; the "
        "high-turnover intra-day strategy is, as the paper anticipates, "
        "acutely friction-sensitive."
    )
    emit("costs_shortfall", "\n".join(lines))
