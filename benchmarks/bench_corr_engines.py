"""Section II — correlation engine costs: Pearson vs Maronna vs Combined.

The paper's platform exists because "the robust method is computationally
expensive" and a "parallel algorithm for computing robust correlation
matrices" makes it affordable.  These benchmarks measure the per-window
cost ratio, the full-matrix cost, and the block-parallel engine against
its serial counterpart.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import mpi
from repro.corr.measures import corr_matrix, corr_series
from repro.corr.parallel import ParallelCorrelationEngine

M = 100
N_SYMBOLS = 16
RNG = np.random.default_rng(2008)
_SHAPE = 0.5 * np.ones((N_SYMBOLS, N_SYMBOLS)) + 0.5 * np.eye(N_SYMBOLS)
RETURNS = RNG.normal(size=(500, N_SYMBOLS)) @ np.linalg.cholesky(_SHAPE).T


@pytest.mark.parametrize("ctype", ["pearson", "maronna", "combined"])
def test_corr_series_cost(benchmark, ctype):
    """Rolling series over one day's returns for one pair."""
    x, y = RETURNS[:, 0], RETURNS[:, 1]
    series = benchmark(corr_series, x, y, M, ctype)
    assert series.shape == (RETURNS.shape[0] - M + 1,)
    assert np.all(np.abs(series) <= 1.0)


@pytest.mark.parametrize("ctype", ["pearson", "maronna"])
def test_corr_matrix_cost(benchmark, ctype):
    """One full correlation matrix over a 16-symbol window."""
    window = RETURNS[:M]
    matrix = benchmark(corr_matrix, window, ctype)
    assert matrix.shape == (N_SYMBOLS, N_SYMBOLS)


def test_parallel_engine_vs_serial(benchmark):
    """Block-parallel matrix series vs the serial loop, plus cost table."""
    r = RETURNS[:300]

    def parallel_run():
        def spmd(comm):
            return ParallelCorrelationEngine("maronna").matrix_series(comm, r, M)

        return mpi.run_spmd(spmd, size=2)[0]

    result = benchmark.pedantic(parallel_run, rounds=3, iterations=1)
    assert result.shape == (300 - M + 1, N_SYMBOLS, N_SYMBOLS)

    # Per-measure cost table for the summary artefact.
    costs = {}
    for ctype in ("pearson", "maronna", "combined"):
        t0 = time.perf_counter()
        corr_series(RETURNS[:, 0], RETURNS[:, 1], M, ctype)
        costs[ctype] = time.perf_counter() - t0
    ratio = costs["maronna"] / costs["pearson"]
    lines = [
        f"Per-pair rolling correlation series ({RETURNS.shape[0]} returns, M={M}):"
    ]
    for ctype, seconds in costs.items():
        lines.append(f"  {ctype:<10} {seconds * 1e3:9.2f} ms")
    lines.append(
        f"\nMaronna / Pearson cost ratio: {ratio:.0f}x — the paper's reason "
        f"the robust measure is 'not commonly used in statistical software "
        f"packages' without a parallel engine."
    )
    emit("corr_engine_costs", "\n".join(lines))
