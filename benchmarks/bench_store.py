"""Tick-store data plane — store-backed vs CSV vs in-memory feeds.

The paper's motivation for a custom data path is the size of raw TAQ
(">50 GB per day"): parsing flat files per run is the baseline the store
has to beat.  This benchmark builds a 61-symbol × 20-day synthetic
universe, ingests it once, then measures per-feed throughput:

* ``memory``    — regenerating days from the synthetic generator;
* ``csv``       — the vectorised Table-II CSV reader;
* ``store``     — zero-copy memmap column scans;
* ``replay``    — CRC-verified block reads through the LRU cache
                  (cold, then warm to show the hit rate).

The store's scan throughput must beat CSV parsing by >= 5x (it is
typically >= 2 orders of magnitude), and day 0 must reassemble bitwise.
Results land in ``benchmarks/out/store_data_plane.{txt,json}`` and, for
the repo-level artefact, ``BENCH_store.json`` at the repository root.
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from repro.store import (
    StoreQuoteSource,
    StoreReader,
    ingest_synthetic,
    verify_store,
)
from repro.taq.io import read_taq_csv, write_taq_csv
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe

N_DAYS = 20
SECONDS = 23_400 // 20  # short days keep 61 symbols x 20 days affordable
SCAN_COLUMNS = ("t", "bid", "ask")

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_store_data_plane(tmp_path):
    market = SyntheticMarket(
        default_universe(),  # all 61 symbols, as in the paper
        SyntheticMarketConfig(trading_seconds=SECONDS),
        seed=2008,
    )

    # -- in-memory baseline: generate (and hold) every day ------------------
    t0 = time.perf_counter()
    days = [market.quotes(d) for d in range(N_DAYS)]
    gen_s = time.perf_counter() - t0
    total_rows = int(sum(q.size for q in days))

    # -- CSV baseline: write once, time the (vectorised) read back ----------
    csv_paths = []
    for d, quotes in enumerate(days):
        p = tmp_path / f"day{d:03d}.csv"
        write_taq_csv(p, quotes, market.universe)
        csv_paths.append(p)
    t0 = time.perf_counter()
    csv_rows = sum(
        read_taq_csv(p, market.universe).size for p in csv_paths
    )
    csv_s = time.perf_counter() - t0
    assert csv_rows == total_rows

    # -- store: ingest once, then memmap scans ------------------------------
    root = tmp_path / "store"
    t0 = time.perf_counter()
    ingest_synthetic(root, market, n_days=N_DAYS, n_shards=8)
    ingest_s = time.perf_counter() - t0

    reader = StoreReader(root)
    t0 = time.perf_counter()
    scanned = 0
    sink = 0.0
    for batch in reader.scan(columns=list(SCAN_COLUMNS)):
        scanned += batch.rows
        for col in batch.columns.values():
            sink += float(col.sum())  # force the pages to be read
    scan_s = time.perf_counter() - t0
    assert scanned == total_rows and np.isfinite(sink)

    # -- replay: verified block reads, cold then warm ------------------------
    t0 = time.perf_counter()
    source = StoreQuoteSource(reader)
    cold_rows = sum(source.quotes(d).size for d in range(N_DAYS))
    replay_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_rows = sum(source.quotes(d).size for d in range(N_DAYS))
    replay_warm_s = time.perf_counter() - t0
    assert cold_rows == warm_rows == total_rows

    # -- correctness anchor: all 20 days re-derive bitwise -------------------
    summary = verify_store(reader, deep=True)
    assert summary["deep_days"] == N_DAYS

    per_s = {
        "memory": total_rows / gen_s,
        "csv": total_rows / csv_s,
        "store_scan": total_rows / scan_s,
        "replay_cold": total_rows / replay_cold_s,
        "replay_warm": total_rows / replay_warm_s,
    }
    speedup = per_s["store_scan"] / per_s["csv"]
    assert speedup >= 5.0, (
        f"store scans must be >=5x faster than CSV parsing, got "
        f"{speedup:.1f}x"
    )

    cache = reader.cache.stats()
    data = {
        "n_symbols": len(market.universe),
        "n_days": N_DAYS,
        "trading_seconds": SECONDS,
        "rows": total_rows,
        "ingest_rows_per_s": total_rows / ingest_s,
        "rows_per_s": per_s,
        "scan_vs_csv_speedup": speedup,
        "cache": cache,
    }
    lines = [
        f"store data plane: {len(market.universe)} symbols x {N_DAYS} days "
        f"({SECONDS} s each) = {total_rows} quote rows",
        f"  ingest            {total_rows / ingest_s:12.0f} rows/s "
        f"({ingest_s:.2f} s once)",
    ]
    for name, label in (
        ("memory", "in-memory regen"),
        ("csv", "CSV parse"),
        ("store_scan", "store scan"),
        ("replay_cold", "replay (cold)"),
        ("replay_warm", "replay (warm)"),
    ):
        lines.append(f"  {label:<17} {per_s[name]:12.0f} rows/s")
    lines.append(
        f"  store scan is {speedup:.0f}x CSV; cache hit rate "
        f"{cache['hit_rate']:.0%} after one warm pass"
    )
    text = "\n".join(lines)
    emit("store_data_plane", text, data)
    (REPO_ROOT / "BENCH_store.json").write_text(
        json.dumps({"bench": "store_data_plane", "data": data}, indent=2,
                   sort_keys=True) + "\n"
    )
