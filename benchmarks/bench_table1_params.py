"""Table I — strategy parameter descriptions and values.

Regenerates the paper's parameter table and benchmarks construction of the
full 42-set grid (3 correlation treatments × 14 factor levels).
"""

from benchmarks.conftest import emit
from repro.strategy.params import format_table1, paper_parameter_grid


def test_table1_parameter_grid(benchmark):
    grid = benchmark(paper_parameter_grid)
    assert len(grid) == 42

    lines = [format_table1(), "", "Parameter sets (3 treatments x 14 levels):"]
    for k, params in enumerate(grid):
        lines.append(f"  k={k:2d}  {params.label()}")
    emit("table1_params", "\n".join(lines))
