"""Section V (deferred) — rigorous significance tests between treatments.

The paper describes the three-population design (per-pair averages over
the 14 levels, one sample per treatment) but defers the actual tests to
"further studies".  This benchmark runs them: paired t-test, Wilcoxon
signed-rank and a bootstrap CI of the mean difference for every treatment
pair and every performance measure.
"""

from benchmarks.conftest import emit
from repro.metrics.significance import (
    format_significance_table,
    treatment_significance,
)


def test_significance_all_measures(benchmark, study):
    store, grid = study

    def run_all():
        out = []
        for measure in ("returns", "drawdown", "winloss"):
            out.extend(
                treatment_significance(
                    store, grid, measure, n_bootstrap=1000, seed=2008
                )
            )
        return out

    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert len(comparisons) == 9  # 3 treatment pairs x 3 measures
    for c in comparisons:
        assert 0.0 <= c.t_pvalue <= 1.0

    text = format_significance_table(comparisons) + (
        "\n\nThe paper's caveat, quantified: at this study scale, treatment "
        "differences the summary tables suggest are mostly *not* "
        "statistically significant — exactly why the paper declines to "
        "draw firm conclusions from Tables III-V alone."
    )
    emit("significance_tests", text)
