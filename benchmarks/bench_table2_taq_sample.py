"""Table II — sample rows of (synthetic) NYSE TAQ quote data.

Regenerates the paper's raw-data illustration from the synthetic market
and benchmarks a full day of quote generation — the substrate cost every
backtest pays.
"""

from benchmarks.conftest import emit
from repro.taq.io import format_table2
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe


def test_table2_quote_sample(benchmark):
    market = SyntheticMarket(
        default_universe(),  # all 61 symbols, as in the paper
        SyntheticMarketConfig(trading_seconds=23_400 // 4),
        seed=2008,
    )
    quotes = benchmark.pedantic(market.quotes, args=(0,), rounds=3, iterations=1)
    assert quotes.size > 100_000

    text = format_table2(quotes, market.universe, limit=12)
    stats = (
        f"\n{quotes.size} quotes over {market.config.trading_seconds} s, "
        f"{len(market.universe)} symbols "
        f"({quotes.size / market.config.trading_seconds:.0f} quotes/s market-wide)"
    )

    from repro.taq.quality import quality_report

    report = quality_report(
        quotes, market.universe, market.config.trading_seconds
    )
    worst = report.worst_symbol
    stats += (
        f"\nIngest quality: worst symbol {worst.symbol} rejects "
        f"{worst.rejection_rate:.3%}; median spread "
        f"{report.symbols[0].median_spread_bps:.1f} bps "
        f"(the low-quality regime of paper §II)."
    )
    emit("table2_taq_sample", text + stats)
