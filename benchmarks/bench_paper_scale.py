"""Paper-scale smoke run: the full 61-stock universe, all 1830 pairs.

The paper's headline workload is market-wide: every pair of 61 liquid
stocks.  This benchmark runs one full trading day end-to-end at that
width — synthetic quotes, cleaning, bars, per-pair correlation series,
and the canonical strategy for one parameter set per treatment — through
the integrated (Approach 3) engine, and compares the wall-clock against
the paper's Matlab arithmetic (2 s per pair-day-set ⇒ ~61 minutes per
parameter set per day).
"""

import time

from benchmarks.conftest import emit
from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)


def test_paper_scale_one_day(benchmark):
    universe = default_universe()  # 61 stocks
    config = SyntheticMarketConfig(trading_seconds=23_400 // 2)
    market = SyntheticMarket(universe, config, seed=2008)
    grid_time = TimeGrid(30, trading_seconds=config.trading_seconds)
    provider = BarProvider(market, grid_time)
    pairs = list(universe.pairs())
    assert len(pairs) == 1830
    grid = [BASE, BASE.with_ctype("maronna"), BASE.with_ctype("combined")]

    t_data0 = time.perf_counter()
    provider.prices(0)  # quotes + cleaning + bars, measured separately
    data_seconds = time.perf_counter() - t_data0

    def run_day():
        def spmd(comm):
            return DistributedBacktester(provider).run(
                comm, pairs, grid, [0]
            )

        return mpi.run_spmd(spmd, size=2)[0]

    store = benchmark.pedantic(run_day, rounds=1, iterations=1)
    backtest_seconds = benchmark.stats["mean"]
    assert len(store) == 1830 * 3
    assert store.n_trades > 0

    paper_seconds = 1830 * 3 * 2.0  # the paper's ~2 s per pair-day-set
    text = (
        f"Full paper universe, one half-length day, integrated engine:\n"
        f"  pairs x parameter sets:   1830 x 3 (one per treatment)\n"
        f"  data preparation:         {data_seconds:8.1f} s "
        f"(quotes, TCP cleaning, bars)\n"
        f"  backtest (2 ranks):       {backtest_seconds:8.1f} s\n"
        f"  trades produced:          {store.n_trades:8d}\n"
        f"  paper's Matlab estimate:  {paper_seconds:8.0f} s "
        f"({paper_seconds / 3600:.1f} h) for the same cells\n"
        f"  speedup vs 2 s/job:       {paper_seconds / backtest_seconds:8.0f}x\n"
        f"Market-wide brute force over every pair — the capability the "
        f"paper builds MarketMiner to reach — fits in under a minute at "
        f"61 stocks on one core."
    )
    emit("paper_scale", text)
