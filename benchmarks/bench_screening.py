"""Section II — candidate-pair identification at market scale.

"If there are n stocks then |Φ| = n(n-1)/2.  If our goal was to backtest
over all US stocks, of which there are approximately 8000, this would
require our strategy to support backtesting on over 32 million pairs!"
The screening funnel (cluster, then screen with statistical certainty) is
what keeps the brute-force approach honest; this benchmark measures it on
the full 61-stock universe and prints the funnel counts.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bars.returns import log_returns
from repro.corr.clustering import correlation_clusters, screen_candidate_pairs
from repro.corr.measures import corr_matrix
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def test_screening_funnel(benchmark):
    universe = default_universe()  # all 61 stocks, 1830 pairs
    config = SyntheticMarketConfig(trading_seconds=23_400 // 4)
    market = SyntheticMarket(universe, config, seed=2008)
    grid = TimeGrid(30, trading_seconds=config.trading_seconds)
    returns = log_returns(market.true_bam_grid(0, grid))
    matrix = corr_matrix(returns, "pearson")

    def funnel():
        clusters = correlation_clusters(matrix, 0.72)
        candidates = screen_candidate_pairs(
            matrix, n_obs=returns.shape[0], threshold=0.5
        )
        return clusters, candidates

    clusters, candidates = benchmark(funnel)
    n_pairs = universe.n_pairs()
    assert n_pairs == 1830
    assert candidates

    multi = [c for c in clusters if len(c) > 1]
    same_sector = sum(
        1
        for c in candidates
        if universe.sectors[c.pair[0]] == universe.sectors[c.pair[1]]
    )
    lines = [
        f"Screening funnel, 61 stocks (one synthetic quarter-day):",
        f"  all pairs:                  {n_pairs}",
        f"  clusters (rho >= 0.72):     {len(multi)} multi-stock clusters, "
        f"sizes {sorted((len(c) for c in multi), reverse=True)}",
        f"  screened candidates         {len(candidates)} "
        f"(Fisher-z lower bound >= 0.5)",
        f"  of which same-sector:       {same_sector}",
        f"  top candidate:              "
        f"{universe.symbols[candidates[0].pair[0]]}/"
        f"{universe.symbols[candidates[0].pair[1]]} "
        f"rho={candidates[0].correlation:.3f}",
        "",
        "At the paper's 8000-stock scale the same funnel reduces 32 million "
        "pairs to the clusters' internal pairs before any backtest runs.",
    ]
    emit("screening_funnel", "\n".join(lines))
