"""Selection robustness — walk-forward validation of the optimal-set study.

The selection benchmark finds an in-sample best parameter set; this one
asks whether that choice survives out-of-sample: roll a one-day selection
window across the study, evaluate the chosen set the next day, and
compare against hindsight-best and the median set.
"""

from benchmarks.conftest import emit
from repro.backtest.walkforward import format_walk_forward, walk_forward
from repro.corr.measures import CorrelationType


def test_walkforward_validation(benchmark, study):
    store, grid = study

    def run_folds():
        overall = walk_forward(store, grid, window=1)
        per_treatment = {
            ctype: walk_forward(store, grid, window=1, ctype=ctype)
            for ctype in CorrelationType
        }
        return overall, per_treatment

    overall, per_treatment = benchmark.pedantic(run_folds, rounds=1, iterations=1)
    assert overall.steps

    sections = [
        "Walk-forward validation (select on day t-1, evaluate on day t):",
        format_walk_forward(overall),
        "\nCapture ratio per treatment:",
    ]
    for ctype, report in per_treatment.items():
        sections.append(
            f"  {ctype.value:<10} chosen {report.mean_chosen_return:+.5f} "
            f"vs hindsight {report.mean_best_return:+.5f} "
            f"(capture {report.capture_ratio:+.2f})"
        )
    sections.append(
        "\nA capture ratio near 1 says yesterday's best parameters keep "
        "working; near or below 0 says the selection study's edge is "
        "in-sample only."
    )
    emit("walkforward", "\n".join(sections))
