"""Figure 1 — the MarketMiner pipeline, built and run end-to-end.

Regenerates the architecture figure as a topology listing and benchmarks
streaming one synthetic trading day through the full component chain
(collector → cleaning → bars → technical analysis → correlation engine →
pair trading strategy → order sink) over the MPI substrate.
"""

from benchmarks.conftest import emit
from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

PARAMS = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)


def test_figure1_pipeline_session(benchmark):
    cfg = SyntheticMarketConfig(trading_seconds=23_400 // 4, quote_rate=0.9)
    market = SyntheticMarket(default_universe(8), cfg, seed=2008)
    grid_time = TimeGrid(30, trading_seconds=cfg.trading_seconds)
    pairs = list(market.universe.pairs())  # all 28 pairs

    def build_and_run():
        # Components are stateful; each round streams through a fresh build.
        workflow = build_figure1_workflow(
            market, grid_time, pairs, [PARAMS], day=0
        )
        return workflow, run_figure1_session(workflow, size=3)

    workflow, results = benchmark.pedantic(build_and_run, rounds=3, iterations=1)

    assert results["bar_accumulator"]["bars_emitted"] == grid_time.smax
    n_trades = sum(len(v) for v in results["pair_trading"]["trades"].values())
    sink = results["order_sink"]
    assert sink["open_pairs_at_close"] == 0

    from repro.marketminer.scheduler import WorkflowRunner

    rank_map = WorkflowRunner(workflow).rank_map(3)
    placement = "\n".join(
        f"  rank {r}: {', '.join(map(str, rank_map.components_of(r)))}"
        for r in range(3)
    )

    # The figure's Parallel Correlation Engine: same day, 3 block engines.
    parallel_wf = build_figure1_workflow(
        market, grid_time, pairs, [PARAMS], day=0, n_corr_engines=3
    )
    parallel_results = run_figure1_session(
        parallel_wf, size=4, collect_stats=True
    )
    assert (
        parallel_results["pair_trading"]["trades"]
        == results["pair_trading"]["trades"]
    )
    comm_profile = "\n".join(
        f"  rank {r}: {s['messages_local']} local / "
        f"{s['messages_remote']} cross-rank "
        f"({', '.join(s['components'])})"
        for r, s in parallel_results["_runtime"].items()
    )

    text = (
        workflow.describe()
        + "\n\nPlacement over 3 ranks:\n"
        + placement
        + f"\n\nOne day through the pipeline: {grid_time.smax} bars, "
        f"{results['correlation']['matrices_emitted']} correlation matrices, "
        f"{n_trades} trades, {sink['accepted_orders']} orders, "
        f"cleaning dropped {results['cleaning']['rejected_outlier']} outlier "
        f"and {results['cleaning']['rejected_crossed']} crossed quotes "
        f"of {results['cleaning']['total']}."
        + "\n\nParallel Correlation Engine variant (3 block engines over 4 "
        "ranks, identical trades), communication profile:\n"
        + comm_profile
    )
    emit("figure1_pipeline", text)
