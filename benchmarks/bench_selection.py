"""Section VI (future work) — optimal parameter sets and best pairs.

"identification of optimal parameter sets for a given correlation
measure" and "Identifying which pairs perform well is worthy a further
investigation."  This benchmark ranks both over the full study.
"""

from benchmarks.conftest import STUDY_CONFIG, emit
from repro.backtest.selection import (
    format_selection_report,
    rank_pairs,
    rank_parameter_sets,
)
from repro.corr.measures import CorrelationType


def test_selection_rankings(benchmark, study):
    store, grid = study
    symbols = STUDY_CONFIG.build_universe().symbols

    def run_rankings():
        return (
            rank_parameter_sets(store, grid, "returns"),
            rank_pairs(store, grid, "returns"),
            {
                ctype: rank_parameter_sets(store, grid, "returns", ctype)[0]
                for ctype in CorrelationType
            },
        )

    params_ranked, pairs_ranked, best_per_treatment = benchmark.pedantic(
        run_rankings, rounds=1, iterations=1
    )
    assert len(params_ranked) == len(grid)
    assert len(pairs_ranked) == len(store.pairs)

    sections = [
        format_selection_report(
            params_ranked, pairs_ranked, "returns", top=5, symbols=symbols
        ),
        "\nBest parameter set per correlation measure:",
    ]
    for ctype, score in best_per_treatment.items():
        sections.append(
            f"  {ctype.value:<10} k={score.param_index:2d} "
            f"score={score.score:+.5f}  {score.params.label()}"
        )
    emit("selection_rankings", "\n".join(sections))
