"""Ablations — the design choices DESIGN.md calls out.

1. Reversal-rule extensions the paper names but defers (stop-loss,
   correlation reversion) against the canonical retracement/HP/EOD rules.
2. The RT-vs-M retracement-window reading of step 5.
3. PSD repair of pairwise-assembled robust matrices.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import emit
from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.corr.measures import corr_matrix
from repro.corr.psd import is_psd, nearest_psd_correlation
from repro.metrics.returns import cumulative_return
from repro.metrics.winloss import win_loss_ratio
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)

VARIANTS = {
    "canonical": BASE,
    "stop_loss_0.5%": replace(BASE, stop_loss=0.005),
    "corr_reversion": replace(BASE, correlation_reversion=True),
    "both_extensions": replace(BASE, stop_loss=0.005, correlation_reversion=True),
    "rt_equals_m": replace(BASE, rt=BASE.m),  # the step-5 literal reading
}


def _provider():
    market = SyntheticMarket(
        default_universe(6),
        SyntheticMarketConfig(trading_seconds=23_400 // 2),
        seed=2008,
    )
    return BarProvider(market, TimeGrid(30, trading_seconds=23_400 // 2))


def test_ablation_reversal_rules(benchmark):
    provider = _provider()
    pairs = list(default_universe(6).pairs())
    days = [0, 1]

    def run_all():
        out = {}
        for name, params in VARIANTS.items():
            out[name] = SequentialBacktester(
                provider, share_correlation=True
            ).run(pairs, [params], days)
        return out

    stores = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'variant':<18} {'trades':>7} {'mean cum ret':>13} {'win/loss':>9}"
    ]
    for name, store in stores.items():
        all_returns = np.concatenate(
            [store.period_returns(p, 0) for p in store.pairs]
        )
        cum = np.mean(
            [store.total_return(p, 0) for p in store.pairs]
        )
        lines.append(
            f"{name:<18} {all_returns.size:>7d} {cum:>13.5f} "
            f"{win_loss_ratio(all_returns):>9.3f}"
        )
    assert stores["canonical"].n_trades > 0
    emit("ablation_reversal", "\n".join(lines))


def test_ablation_psd_repair(benchmark):
    """Approach-2 assembly breaks PSD-ness; measure the repair.

    Approach 2 runs each (pair, parameter set) job independently, so the
    entries of an assembled matrix come from *different windows* (different
    M per parameter set, different job timing).  With regime-switching
    data those independently-estimated coefficients are mutually
    inconsistent and the assembled matrix is indefinite — the paper's
    caveat that pairwise Maronna "no longer assures the resulting matrix
    is positive semi-definite".
    """
    from repro.corr.measures import pairwise_corr

    rng = np.random.default_rng(7)
    T = 300
    base = rng.normal(size=T)
    noise = lambda: 0.2 * rng.normal(size=T)  # noqa: E731
    x = base + noise()
    y = base + noise()
    z = np.where(np.arange(T) < 200, base, -base) + noise()  # regime flip

    # Three independent "jobs", each measuring its pair on its own window.
    windows = {(0, 1): slice(0, 100), (1, 2): slice(100, 200), (0, 2): slice(200, 300)}
    series = {0: x, 1: y, 2: z}
    matrix = np.eye(3)
    for (i, j), win in windows.items():
        matrix[i, j] = matrix[j, i] = pairwise_corr(
            series[i][win], series[j][win], "maronna"
        )

    eigvals = np.linalg.eigvalsh(matrix)
    assert eigvals.min() < 0, "assembled matrix should be indefinite"
    repaired = benchmark(nearest_psd_correlation, matrix)
    assert is_psd(repaired)

    drift = np.abs(repaired - matrix).max()
    text = (
        f"Pairwise Maronna coefficients assembled from independent jobs\n"
        f"(each pair measured on its own window, as Approach 2 does):\n"
        f"  matrix:\n{np.array2string(matrix, precision=3)}\n"
        f"  min eigenvalue before repair: {eigvals.min():+.4f} "
        f"(PSD: {is_psd(matrix)})\n"
        f"  min eigenvalue after repair:  "
        f"{np.linalg.eigvalsh(repaired).min():+.4f}\n"
        f"  max |entry drift| from repair: {drift:.4f}\n"
        f"Within one shared window the pairwise matrix stays PSD in "
        f"practice; the integrated Approach 3 computes all pairs on the "
        f"same window and sidesteps the problem."
    )
    emit("ablation_psd", text)
