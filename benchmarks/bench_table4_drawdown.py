"""Table IV — average maximum daily drawdown by correlation type.

Regenerates the paper's risk comparison: eq (7) maximum drawdown on each
(pair, parameter set)'s daily cumulative-return path, averaged over factor
levels, summarised per treatment.
"""

from benchmarks.conftest import emit
from repro.metrics.summary import format_treatment_table, treatment_summaries


def test_table4_max_daily_drawdown(benchmark, study):
    store, grid = study
    summaries = benchmark(treatment_summaries, store, grid, "drawdown")
    assert len(summaries) == 3
    for s in summaries.values():
        assert s.stats.mean >= 0.0  # drawdowns are non-negative

    text = format_treatment_table(
        summaries, "Table IV: average maximum daily drawdown"
    )
    emit("table4_drawdown", text)
