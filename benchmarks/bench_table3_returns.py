"""Table III — average cumulative monthly returns by correlation type.

Regenerates the paper's headline comparison: per-pair total cumulative
returns averaged over the 14 factor levels, summarised per treatment
(mean, median, std, Sharpe, skewness, kurtosis).  The benchmarked unit is
the summary computation over the full study's result store.
"""

from benchmarks.conftest import emit
from repro.metrics.summary import format_treatment_table, treatment_summaries


def test_table3_cumulative_returns(benchmark, study):
    store, grid = study
    summaries = benchmark(treatment_summaries, store, grid, "returns")
    assert len(summaries) == 3
    for s in summaries.values():
        assert s.stats.n == len(store.pairs)

    text = format_treatment_table(
        summaries, "Table III: average cumulative returns (gross, +1)"
    )
    emit("table3_returns", text)
