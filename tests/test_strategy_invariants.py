"""Property tests of strategy invariants over random market scenarios.

Whatever the market does, the canonical strategy must respect its own
contract: positions never exceed the holding period, never straddle the
close, never overlap; entries respect ST; exit reasons are consistent
with the spread path; returns are bounded by the legs' gross moves.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corr.measures import corr_series
from repro.strategy.engine import TradeReason, align_corr_series, run_pair_day
from repro.strategy.params import StrategyParams

PARAMS = StrategyParams(m=12, w=6, y=3, rt=8, hp=7, st=4, d=0.005, a=0.05)
SMAX = 70


def random_market(seed: int):
    """A correlated random-walk pair with occasional idiosyncratic kicks."""
    gen = np.random.default_rng(seed)
    common = gen.normal(0, 0.004, size=SMAX - 1)
    kick = np.zeros(SMAX - 1)
    n_kicks = gen.integers(0, 4)
    for _ in range(n_kicks):
        at = gen.integers(0, SMAX - 1)
        kick[at] += gen.normal(0, 0.01)
    r0 = common + gen.normal(0, 0.002, SMAX - 1)
    r1 = common + gen.normal(0, 0.002, SMAX - 1) + kick
    p0 = 40 * np.exp(np.concatenate([[0], np.cumsum(r0)]))
    p1 = 60 * np.exp(np.concatenate([[0], np.cumsum(r1)]))
    prices = np.column_stack([p0, p1])
    returns = np.diff(np.log(prices), axis=0)
    series = corr_series(returns[:, 0], returns[:, 1], PARAMS.m, "pearson")
    return prices, align_corr_series(series, SMAX, PARAMS.m)


@settings(deadline=None, max_examples=60)
@given(seed=st.integers(0, 100_000))
def test_trade_contract(seed):
    prices, corr = random_market(seed)
    trades = run_pair_day(prices, corr, PARAMS)

    for trade in trades:
        # Timing contract.
        assert PARAMS.first_active_interval <= trade.entry_s < SMAX
        assert trade.entry_s < trade.exit_s <= SMAX - 1
        assert trade.holding_periods <= PARAMS.hp
        # ST: entries leave at least ST intervals to the close.
        assert (SMAX - 1 - trade.entry_s) >= PARAMS.st
        # Sizing contract: cash-neutral slightly long.
        long_price = prices[trade.entry_s, trade.long_leg]
        short_price = prices[trade.entry_s, 1 - trade.long_leg]
        assert trade.n_long * long_price >= trade.n_short * short_price - 1e-9
        # Return bounded by the legs' gross moves over the holding window.
        window = prices[trade.entry_s : trade.exit_s + 1]
        gross_move = (
            np.abs(np.log(window[-1] / window[0])).sum()
        )
        assert abs(trade.ret) <= 2.5 * gross_move + 1e-9
        # HP exits take exactly HP periods; EOD exits end at the close.
        if trade.reason is TradeReason.MAX_HOLDING:
            assert trade.holding_periods == PARAMS.hp
        if trade.reason is TradeReason.END_OF_DAY:
            assert trade.exit_s == SMAX - 1

    # No overlapping positions.
    for prev, nxt in zip(trades, trades[1:]):
        assert nxt.entry_s > prev.exit_s


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 100_000))
def test_determinism(seed):
    prices, corr = random_market(seed)
    assert run_pair_day(prices, corr, PARAMS) == run_pair_day(
        prices, corr, PARAMS
    )


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 100_000))
def test_price_scale_invariance_of_timing(seed):
    """Scaling both legs by a common factor preserves trade timing.

    Returns and share counts may differ (integer ratios), but entries,
    exits and reasons depend only on relative moves.
    """
    prices, corr = random_market(seed)
    base = run_pair_day(prices, corr, PARAMS)
    scaled = run_pair_day(prices * 3.0, corr, PARAMS)
    assert [(t.entry_s, t.exit_s, t.reason) for t in base] == [
        (t.entry_s, t.exit_s, t.reason) for t in scaled
    ]
