"""Flight recorder: unit behaviour, session dumps, backend determinism.

Covers the per-stream indexing and canonical ordering that make dumps
deterministic, the JSONL dump/load roundtrip, the per-rank dumps a
Figure-1 session writes, the headline cross-backend identity invariant
(the same seeded chaos session dumps byte-identical rings on the thread
and the process backend), the supervised-recovery counter-merge
invariant, and the attribution of recv-retry backoff time to the
retrying span.
"""

import time

import pytest

from repro import mpi
from repro.faults import (
    BackoffPolicy,
    fold_obs_counters,
    named_plan,
    run_supervised_session,
)
from repro.marketminer.session import (
    build_figure1_workflow,
    run_figure1_session,
)
from repro.obs import Obs
from repro.obs.live import FLIGHT_SCHEMA, FlightRecorder, load_flight_dump
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 23_400 // 16


def tiny_workflow():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=33,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        [(0, 1), (2, 3)],
        [params],
    )


class TestFlightRecorderUnit:
    def test_per_stream_indices(self):
        fr = FlightRecorder(rank=0)
        fr.record_send(peer=1, tag=5)
        fr.record_send(peer=1, tag=5)
        fr.record_send(peer=2, tag=5)
        fr.record_recv(peer=1, tag=5)
        by_stream = {
            (e["kind"], e.get("peer"), e.get("tag")): []
            for e in fr.events()
        }
        for e in fr.events():
            by_stream[(e["kind"], e.get("peer"), e.get("tag"))].append(e["i"])
        assert by_stream[("send", 1, 5)] == [0, 1]
        assert by_stream[("send", 2, 5)] == [0]
        assert by_stream[("recv", 1, 5)] == [0]

    def test_canonical_order_ignores_cross_stream_interleave(self):
        # The same per-stream traffic, arriving in two different global
        # orders (what the thread and process backends legitimately do),
        # must canonicalise identically.
        a, b = FlightRecorder(rank=0), FlightRecorder(rank=0)
        a.record_send(peer=1, tag=0)
        a.record_emit("cleaning", "quotes")
        a.record_send(peer=1, tag=0)
        b.record_emit("cleaning", "quotes")
        b.record_send(peer=1, tag=0)
        b.record_send(peer=1, tag=0)
        assert a.events() != b.events()  # arrival order differs...
        assert a.canonical_events() == b.canonical_events()  # ...canon doesn't

    def test_dump_roundtrip(self, tmp_path):
        fr = FlightRecorder(rank=3)
        fr.record_send(peer=0, tag=7)
        fr.record_checkpoint(epoch=2)
        path = fr.dump_jsonl(tmp_path / "rank3.jsonl", reason="unit-test")
        header, events = load_flight_dump(path)
        assert header["schema"] == FLIGHT_SCHEMA
        assert header["rank"] == 3
        assert header["reason"] == "unit-test"
        assert header["n_seen"] == 2
        assert header["n_dropped"] == 0
        assert events == fr.canonical_events()

    def test_load_rejects_foreign_and_empty(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"schema": "something/else"}\n')
        with pytest.raises(ValueError, match="not a flight dump"):
            load_flight_dump(foreign)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_flight_dump(empty)

    def test_ring_bounds_memory_but_keeps_stream_indices(self):
        fr = FlightRecorder(rank=0, capacity=3)
        for _ in range(10):
            fr.record_send(peer=1, tag=0)
        assert fr.n_seen == 10
        assert fr.n_dropped == 7
        events = fr.events()
        assert len(events) == 3
        # Indices keep counting across overwrites: the retained tail is
        # identifiably "the last 3 of 10", not a fresh sequence.
        assert [e["i"] for e in events] == [7, 8, 9]

    def test_typed_helpers_map_fields(self):
        fr = FlightRecorder(rank=0)
        fr.record_fault(("drop", 0, 1, 1))
        fr.record_checkpoint()
        fr.record_health("queue-depth", "mpi.pending.depth", fired=True)
        kinds = {e["kind"]: e for e in fr.events()}
        assert kinds["fault.drop"]["detail"] == [0, 1, 1]
        assert "epoch" not in kinds["checkpoint"]
        health = kinds["health"]
        assert health["component"] == "queue-depth"
        assert health["port"] == "fired"
        assert health["peer"] == "mpi.pending.depth"


class TestSessionFlightDump:
    def test_figure1_session_dumps_every_rank(self, tmp_path):
        run_figure1_session(
            tiny_workflow(), size=2, flight_dump=str(tmp_path)
        )
        files = sorted(tmp_path.glob("rank*-attempt*.jsonl"))
        assert [f.name for f in files] == [
            "rank0-attempt0.jsonl", "rank1-attempt0.jsonl",
        ]
        kinds: set[str] = set()
        for f in files:
            header, events = load_flight_dump(f)
            assert header["schema"] == FLIGHT_SCHEMA
            assert header["reason"] == "end"
            assert events
            kinds.update(e["kind"] for e in events)
        assert {"send", "recv", "emit"} <= kinds


class TestCrossBackendDumpIdentity:
    """The determinism contract the flight recorder is designed around."""

    def test_thread_and_process_dumps_byte_identical(self, tmp_path):
        dumps = {}
        for backend in ("thread", "process"):
            directory = tmp_path / backend
            run = run_supervised_session(
                tiny_workflow,
                size=2,
                backend=backend,
                plan=named_plan("crash-mid", size=2),
                checkpoint_every=20,
                backend_options={"default_timeout": 2.0},
                flight_dump=str(directory),
            )
            assert run.restarts >= 1, f"{backend}: crash-mid never fired"
            dumps[backend] = {
                f.name: f.read_bytes()
                for f in directory.glob("rank*-attempt*.jsonl")
            }
        assert dumps["thread"].keys() == dumps["process"].keys()
        assert dumps["thread"], "no flight dumps written"
        for name in dumps["thread"]:
            assert dumps["thread"][name] == dumps["process"][name], (
                f"{name}: flight dump differs between backends"
            )


class TestRecoveryCounterMerge:
    """Cumulative counters fold identically across a recovered session."""

    def test_folded_counters_match_fault_free_run(self):
        options = {"default_timeout": 10.0}
        clean = run_supervised_session(
            tiny_workflow, size=2, obs_enabled=True, backend_options=options
        )
        chaos = run_supervised_session(
            tiny_workflow,
            size=2,
            obs_enabled=True,
            plan=named_plan("crash-mid", size=2),
            checkpoint_every=20,
            backend_options={"default_timeout": 2.0},
        )
        assert chaos.restarts >= 1, "crash-mid never fired: test is vacuous"
        assert clean.obs_reports and chaos.obs_reports
        # Substrate counters (mpi.*, faults.*, recovery.*, obs.*) may
        # legitimately differ under chaos — the fault plan itself adds
        # collective traffic and bookkeeping.  The *domain* counters
        # (what flowed through the pipeline) must fold identically.
        exclude = ("mpi.", "faults.", "recovery.", "obs.")
        folded_clean = fold_obs_counters(
            clean.obs_reports, exclude_prefixes=exclude
        )
        folded_chaos = fold_obs_counters(
            chaos.obs_reports, exclude_prefixes=exclude
        )
        assert folded_clean == folded_chaos
        assert "pipeline.bar_accumulator.bars" in folded_clean
        assert any(k.startswith("component.") for k in folded_clean)


class TestRecvRetrySpanAttribution:
    """Backoff sleeps inside recv are attributed to the retrying span."""

    def test_retry_span_child_of_retrying_span(self):
        policy = BackoffPolicy(retries=5, base=0.1, factor=1.0, cap=0.1)

        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.15)  # force >= 1 retry on the receiver
                comm.send("late", 1, tag=0)
                return None
            obs = Obs(enabled=True)
            comm.attach_obs(obs)
            comm.attach_recv_retry(policy)
            with obs.trace.span("consume"):
                value = comm.recv(source=0, tag=0, timeout=0.05)
            assert value == "late"
            return obs

        results = mpi.run_spmd(prog, size=2, default_timeout=10.0)
        obs = results[1]
        spans = obs.trace.to_list()
        retries = [s for s in spans if s["name"] == "mpi.recv.retry"]
        assert len(retries) == 1
        span = retries[0]
        assert span["tags"]["attempts"] >= 1
        assert span["tags"]["source"] == 0
        assert span["tags"]["tag"] == 0
        assert span["wall"] > 0.0
        parents = {s["id"]: s for s in spans}
        assert parents[span["parent"]]["name"] == "consume"
        hist = obs.metrics.histogram("mpi.recv.retry.seconds")
        assert hist.count == 1
        assert hist.total == pytest.approx(span["wall"])
        assert obs.metrics.counter("mpi.recv.retries").value >= 1
