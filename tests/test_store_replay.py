"""Replay tests: cursor batches match the collectors' interval slicing
bitwise, the Figure-1 session is source-agnostic, and store-backed
backtests equal in-memory ones exactly."""

import numpy as np
import pytest

from repro.backtest import SequentialBacktester
from repro.backtest.data import BarProvider
from repro.marketminer.components import StoreCollector
from repro.marketminer.session import (
    build_figure1_workflow,
    run_figure1_session,
)
from repro.store import (
    ReplayCursor,
    StoreQuoteSource,
    StoreReader,
    ingest_synthetic,
)
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 1800
N_DAYS = 2
PARAMS = StrategyParams(m=20, w=10, y=4, rt=30, hp=20, st=10, d=0.001)


@pytest.fixture(scope="module")
def market():
    return SyntheticMarket(
        default_universe(6),
        SyntheticMarketConfig(trading_seconds=SECONDS),
        seed=21,
    )


@pytest.fixture(scope="module")
def reader(tmp_path_factory, market):
    root = tmp_path_factory.mktemp("replay-store")
    ingest_synthetic(root, market, n_days=N_DAYS, n_shards=4, block_rows=512)
    return StoreReader(root)


@pytest.fixture(scope="module")
def grid():
    return TimeGrid(30, trading_seconds=SECONDS)


class TestReplayCursor:
    def test_batches_match_interval_slices_bitwise(self, reader, market, grid):
        quotes = market.quotes(1)
        cutoff = grid.smax * grid.delta_s
        quotes = quotes[quotes["t"] < cutoff]
        boundaries = np.searchsorted(
            quotes["t"],
            np.arange(1, grid.smax + 1) * grid.delta_s,
            side="left",
        )
        cursor = ReplayCursor(reader, 1, grid)
        start = 0
        seen = 0
        for s, batch in cursor:
            expected = quotes[start:boundaries[s]]
            assert batch.dtype == QUOTE_DTYPE
            assert batch.tobytes() == expected.tobytes(), f"interval {s}"
            start = boundaries[s]
            seen += 1
        assert seen == grid.smax == len(cursor)
        assert cursor.total_rows == quotes.size

    def test_interval_index_bounds_checked(self, reader, grid):
        cursor = ReplayCursor(reader, 0, grid)
        with pytest.raises(IndexError):
            cursor.interval(grid.smax)
        with pytest.raises(IndexError):
            cursor.interval(-1)

    def test_grid_longer_than_session_rejected(self, reader):
        with pytest.raises(ValueError, match="session"):
            ReplayCursor(reader, 0, TimeGrid(30, SECONDS * 2))


class TestStoreQuoteSource:
    def test_duck_types_the_market_surface(self, reader, market):
        source = StoreQuoteSource(reader)
        assert source.universe == market.universe
        assert source.trading_seconds == SECONDS
        assert source.days == list(range(N_DAYS))
        for day in range(N_DAYS):
            assert (
                source.quotes(day).tobytes() == market.quotes(day).tobytes()
            )

    def test_bar_provider_prices_identical(self, reader, market, grid):
        mem = BarProvider(market, grid)
        stored = BarProvider(StoreQuoteSource(reader), grid)
        assert stored.n_symbols == mem.n_symbols
        for day in range(N_DAYS):
            np.testing.assert_array_equal(
                stored.prices(day), mem.prices(day)
            )


class TestBacktestIdentity:
    def test_sequential_backtest_results_equal(self, reader, market, grid):
        pairs = list(market.universe.pairs())
        days = list(range(N_DAYS))
        mem = SequentialBacktester(BarProvider(market, grid)).run(
            pairs, [PARAMS], days
        )
        stored = SequentialBacktester(
            BarProvider(StoreQuoteSource(reader), grid)
        ).run(pairs, [PARAMS], days)
        assert mem == stored


class TestStoreCollector:
    def test_figure1_session_matches_live_collector(
        self, reader, market, grid
    ):
        pairs = list(market.universe.pairs())
        live = run_figure1_session(
            build_figure1_workflow(market, grid, pairs, [PARAMS], day=1),
            size=2,
        )
        stored = run_figure1_session(
            build_figure1_workflow(
                market, grid, pairs, [PARAMS], day=1,
                collector=StoreCollector(reader, grid, day=1),
            ),
            size=2,
        )
        assert (
            live["pair_trading"]["trades"]
            == stored["pair_trading"]["trades"]
        )
        assert live["order_sink"] == stored["order_sink"]
        assert (
            live["bar_accumulator"]["bars_emitted"]
            == stored["bar_accumulator"]["bars_emitted"]
        )
