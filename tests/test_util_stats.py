"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as sps

from repro.util.stats import (
    boxplot_stats,
    describe,
    kurtosis,
    sharpe_ratio,
    skewness,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=2, max_size=200)


class TestSkewness:
    def test_symmetric_sample_zero(self):
        assert skewness([-2, -1, 0, 1, 2]) == pytest.approx(0.0)

    def test_right_skew_positive(self):
        assert skewness([0, 0, 0, 0, 10]) > 0

    def test_left_skew_negative(self):
        assert skewness([0, 10, 10, 10, 10]) < 0

    def test_constant_sample_is_zero(self):
        assert skewness([3.0, 3.0, 3.0]) == 0.0

    def test_matches_scipy_biased(self, rng):
        x = rng.normal(size=500)
        assert skewness(x) == pytest.approx(sps.skew(x, bias=True), abs=1e-12)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            skewness([1.0, float("nan")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            skewness([])


class TestKurtosis:
    def test_normal_sample_near_three(self, rng):
        x = rng.normal(size=200_00)
        assert kurtosis(x) == pytest.approx(3.0, abs=0.15)

    def test_constant_sample_is_three(self):
        assert kurtosis([5.0] * 10) == 3.0

    def test_matches_scipy_plain(self, rng):
        x = rng.normal(size=500)
        expected = sps.kurtosis(x, fisher=False, bias=True)
        assert kurtosis(x) == pytest.approx(expected, abs=1e-12)

    def test_fat_tails_exceed_three(self, rng):
        x = rng.standard_t(df=3, size=5000)
        assert kurtosis(x) > 3.0


class TestSharpeRatio:
    def test_definition(self):
        x = np.array([1.0, 2.0, 3.0])
        assert sharpe_ratio(x) == pytest.approx(x.mean() / x.std())

    def test_constant_positive_is_inf(self):
        assert sharpe_ratio([2.0, 2.0]) == np.inf

    def test_constant_negative_is_neg_inf(self):
        assert sharpe_ratio([-2.0, -2.0]) == -np.inf

    def test_constant_zero_is_zero(self):
        assert sharpe_ratio([0.0, 0.0]) == 0.0

    @given(samples)
    def test_scale_invariant(self, xs):
        arr = np.asarray(xs)
        # Near-constant samples have catastrophically cancelled std; the
        # ratio is then numerically meaningless, so restrict the property.
        if arr.std() <= 1e-6 * (1.0 + np.abs(arr).max()):
            return
        base = sharpe_ratio(xs)
        scaled = sharpe_ratio([3.0 * x for x in xs])
        assert scaled == pytest.approx(base, rel=1e-6, abs=1e-9)


class TestDescribe:
    def test_fields(self, rng):
        x = rng.normal(loc=1.0, size=100)
        d = describe(x)
        assert d.n == 100
        assert d.mean == pytest.approx(x.mean())
        assert d.median == pytest.approx(np.median(x))
        assert d.std == pytest.approx(x.std())
        assert d.sharpe == pytest.approx(x.mean() / x.std())

    def test_as_dict_round_trip(self):
        d = describe([1.0, 2.0, 3.0])
        dd = d.as_dict()
        assert set(dd) == {"n", "mean", "median", "std", "sharpe", "skewness", "kurtosis"}
        assert dd["n"] == 3


class TestBoxplotStats:
    def test_quartiles(self):
        b = boxplot_stats(np.arange(101, dtype=float))
        assert b.median == 50.0
        assert b.q1 == 25.0
        assert b.q3 == 75.0
        assert b.iqr == 50.0
        assert b.outliers == ()
        assert b.whisker_low == 0.0
        assert b.whisker_high == 100.0

    def test_outliers_detected(self):
        data = list(np.arange(0, 20, dtype=float)) + [1000.0]
        b = boxplot_stats(data)
        assert 1000.0 in b.outliers
        assert b.whisker_high < 1000.0

    def test_low_outliers(self):
        data = [-1000.0] + list(np.arange(0, 20, dtype=float))
        b = boxplot_stats(data)
        assert -1000.0 in b.outliers

    @given(samples)
    def test_invariants(self, xs):
        b = boxplot_stats(xs)
        assert b.q1 <= b.median <= b.q3
        assert b.whisker_low <= b.whisker_high
        lo_fence = b.q1 - 1.5 * b.iqr
        hi_fence = b.q3 + 1.5 * b.iqr
        for o in b.outliers:
            assert o < lo_fence or o > hi_fence
        # Whiskers are actual data points.
        assert b.whisker_low in np.asarray(xs)
        assert b.whisker_high in np.asarray(xs)

    def test_constant_sample(self):
        b = boxplot_stats([4.0, 4.0, 4.0])
        assert b.median == b.q1 == b.q3 == 4.0
        assert b.outliers == ()
