"""Tests for repro.util.logging."""

import logging

from repro.util.logging import configure, get_logger


class TestGetLogger:
    def test_namespaced(self):
        assert get_logger("corr.parallel").name == "repro.corr.parallel"

    def test_already_namespaced(self):
        assert get_logger("repro.taq").name == "repro.taq"

    def test_root_package_logger(self):
        assert get_logger("repro").name == "repro"

    def test_repro_prefixed_but_foreign_name(self):
        # "reproduce_x" merely starts with the letters "repro" — it must
        # still be namespaced under the library hierarchy.
        assert get_logger("reproduce_x").name == "repro.reproduce_x"
        assert get_logger("repro_extras").name == "repro.repro_extras"


class TestConfigure:
    def test_attaches_single_handler(self):
        logger = configure()
        n = len(logger.handlers)
        configure()
        assert len(logger.handlers) == n  # idempotent

    def test_sets_level(self):
        logger = configure(level=logging.DEBUG)
        assert logger.level == logging.DEBUG
        configure(level=logging.INFO)

    def test_child_propagates(self, caplog):
        configure()
        child = get_logger("test.child")
        with caplog.at_level(logging.INFO, logger="repro"):
            child.info("hello from child")
        assert "hello from child" in caplog.text
