"""Tests for implementation shortfalls (ExecutionModel)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.strategy.costs import ExecutionModel, execution_salt
from repro.strategy.positions import PairPosition


def mk_position(n_long=5, n_short=1):
    return PairPosition(
        entry_s=10,
        long_leg=0,
        n_long=n_long,
        n_short=n_short,
        entry_price_long=30.0,
        entry_price_short=130.0,
        entry_spread=-100.0,
        retracement_level=-95.0,
        retracement_direction=+1,
    )


class TestValidation:
    def test_defaults_frictionless(self):
        assert ExecutionModel().frictionless

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"commission_per_share": -0.01},
            {"slippage_frac": -1e-4},
            {"impact_coeff": -1e-4},
            {"fill_probability": 1.5},
            {"fill_probability": -0.1},
        ],
    )
    def test_rejects_bad(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionModel(**kwargs)

    def test_any_friction_clears_flag(self):
        assert not ExecutionModel(commission_per_share=0.01).frictionless
        assert not ExecutionModel(slippage_frac=1e-4).frictionless
        assert not ExecutionModel(fill_probability=0.9).frictionless


class TestRoundTripCost:
    def test_commission_counts_all_four_fills(self):
        model = ExecutionModel(commission_per_share=0.01)
        cost = model.round_trip_cost(mk_position(), 30.0, 130.0)
        # (5 + 1) shares, entry + exit => 12 share-fills at 1 cent.
        assert cost == pytest.approx(0.12)

    def test_slippage_proportional_to_traded_value(self):
        model = ExecutionModel(slippage_frac=1e-4)
        cost = model.round_trip_cost(mk_position(), 30.0, 130.0)
        traded = 2 * (5 * 30.0 + 1 * 130.0)
        assert cost == pytest.approx(1e-4 * traded)

    def test_impact_grows_with_size(self):
        model = ExecutionModel(impact_coeff=1e-4)
        small = model.round_trip_cost(mk_position(n_long=1), 30.0, 130.0)
        large = model.round_trip_cost(mk_position(n_long=100), 30.0, 130.0)
        assert large > small

    def test_impact_is_concave_in_shares(self):
        # sqrt law: quadrupling shares should less-than-quadruple the
        # per-dollar impact.
        model = ExecutionModel(impact_coeff=1e-4)
        c1 = model.round_trip_cost(mk_position(n_long=4), 30.0, 130.0)
        c2 = model.round_trip_cost(mk_position(n_long=16), 30.0, 130.0)
        # long-leg value scales 4x, sqrt(shares) scales 2x => cost < 8x.
        assert c2 < 8 * c1


class TestNetReturn:
    def test_frictionless_identity(self):
        model = ExecutionModel()
        assert model.net_return(0.01, mk_position(), 30.0, 130.0) == 0.01

    def test_costs_reduce_return(self):
        model = ExecutionModel(commission_per_share=0.01, slippage_frac=1e-4)
        net = model.net_return(0.01, mk_position(), 30.0, 130.0)
        assert net < 0.01

    def test_cost_against_basis(self):
        model = ExecutionModel(commission_per_share=0.01)
        pos = mk_position()
        net = model.net_return(0.0, pos, 30.0, 130.0)
        assert net == pytest.approx(-0.12 / pos.basis)

    @given(
        slip=st.floats(0, 1e-3),
        comm=st.floats(0, 0.05),
        gross=st.floats(-0.02, 0.02),
    )
    def test_net_never_exceeds_gross(self, slip, comm, gross):
        model = ExecutionModel(commission_per_share=comm, slippage_frac=slip)
        net = model.net_return(gross, mk_position(), 30.0, 130.0)
        assert net <= gross + 1e-15


class TestFillLottery:
    def test_always_fills_at_one(self):
        model = ExecutionModel(fill_probability=1.0)
        assert all(model.entry_fills(s) for s in range(100))

    def test_never_fills_at_zero(self):
        model = ExecutionModel(fill_probability=0.0)
        assert not any(model.entry_fills(s) for s in range(100))

    def test_deterministic(self):
        a = ExecutionModel(fill_probability=0.5, seed=3)
        b = ExecutionModel(fill_probability=0.5, seed=3)
        outcomes_a = [a.entry_fills(s, salt=7) for s in range(50)]
        outcomes_b = [b.entry_fills(s, salt=7) for s in range(50)]
        assert outcomes_a == outcomes_b

    def test_salt_decorrelates(self):
        model = ExecutionModel(fill_probability=0.5, seed=3)
        a = [model.entry_fills(s, salt=1) for s in range(200)]
        b = [model.entry_fills(s, salt=2) for s in range(200)]
        assert a != b

    def test_rate_approximates_probability(self):
        model = ExecutionModel(fill_probability=0.7, seed=0)
        fills = sum(model.entry_fills(s) for s in range(2000))
        assert abs(fills / 2000 - 0.7) < 0.05


class TestExecutionSalt:
    def test_distinct_for_distinct_cells(self):
        salts = {
            execution_salt((i, j), k)
            for i in range(5)
            for j in range(i + 1, 5)
            for k in range(10)
        }
        assert len(salts) == 10 * 10  # C(5,2)=10 pairs x 10 sets

    def test_stable(self):
        assert execution_salt((2, 7), 3) == execution_salt((2, 7), 3)


class TestEngineIntegration:
    def _scenario(self):
        from tests.test_strategy_engine import PARAMS, diverging_scenario

        return diverging_scenario() + (PARAMS,)

    def test_costs_shift_every_trade_down(self):
        from repro.strategy.engine import run_pair_day

        prices, corr, params = self._scenario()
        gross = run_pair_day(prices, corr, params)
        net = run_pair_day(
            prices, corr, params, execution=ExecutionModel(slippage_frac=1e-4)
        )
        assert len(gross) == len(net)
        for g, n in zip(gross, net):
            assert n.ret < g.ret
            assert (g.entry_s, g.exit_s, g.reason) == (n.entry_s, n.exit_s, n.reason)

    def test_lost_opportunity_skips_trades(self):
        from repro.strategy.engine import run_pair_day

        prices, corr, params = self._scenario()
        full = run_pair_day(prices, corr, params)
        sparse = run_pair_day(
            prices, corr, params,
            execution=ExecutionModel(fill_probability=0.0),
        )
        assert len(full) > 0
        assert sparse == []

    def test_streaming_equivalence_with_execution(self):
        from repro.strategy.engine import PairStrategy, run_pair_day

        prices, corr, params = self._scenario()
        model = ExecutionModel(
            commission_per_share=0.005,
            slippage_frac=5e-5,
            fill_probability=0.6,
            seed=11,
        )
        batch = run_pair_day(prices, corr, params, execution=model, salt=9)
        strat = PairStrategy(params, prices.shape[0], execution=model, salt=9)
        stream = []
        for s in range(prices.shape[0]):
            t = strat.step(s, prices[s, 0], prices[s, 1], corr[s])
            if t is not None:
                stream.append(t)
        assert stream == batch

    def test_engines_agree_under_execution(self):
        from repro import mpi
        from repro.backtest.data import BarProvider
        from repro.backtest.distributed import DistributedBacktester
        from repro.backtest.runner import SequentialBacktester
        from repro.strategy.params import StrategyParams
        from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
        from repro.taq.universe import default_universe
        from repro.util.timeutil import TimeGrid

        cfg = SyntheticMarketConfig(trading_seconds=23_400 // 8)
        market = SyntheticMarket(default_universe(4), cfg, seed=5)
        provider = BarProvider(
            market, TimeGrid(30, trading_seconds=cfg.trading_seconds)
        )
        params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
        model = ExecutionModel(
            slippage_frac=5e-5, fill_probability=0.5, seed=42
        )
        pairs = [(0, 1), (2, 3), (0, 2)]
        seq = SequentialBacktester(provider, execution=model).run(
            pairs, [params], [0]
        )

        def spmd(comm):
            return DistributedBacktester(provider, execution=model).run(
                comm, pairs, [params], [0]
            )

        dist = mpi.run_spmd(spmd, size=2)[0]
        assert seq == dist
