"""Tests for PSD checking and repair."""

import numpy as np
import pytest

from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import corr_matrix
from repro.corr.psd import is_psd, nearest_psd_correlation


class TestIsPsd:
    def test_identity(self):
        assert is_psd(np.eye(4))

    def test_valid_correlation(self):
        c = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert is_psd(c)

    def test_indefinite(self):
        c = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        assert not is_psd(c)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            is_psd(np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            is_psd(np.array([[1.0, 0.5], [0.1, 1.0]]))


class TestNearestPsd:
    def test_repairs_indefinite(self):
        c = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        fixed = nearest_psd_correlation(c)
        assert is_psd(fixed)
        np.testing.assert_allclose(np.diag(fixed), 1.0)
        np.testing.assert_allclose(fixed, fixed.T)
        assert np.all(np.abs(fixed) <= 1.0 + 1e-12)

    def test_psd_input_unchanged(self):
        c = np.array([[1.0, 0.3], [0.3, 1.0]])
        np.testing.assert_allclose(nearest_psd_correlation(c), c, atol=1e-12)

    def test_repair_is_close(self):
        c = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        fixed = nearest_psd_correlation(c)
        # Off-diagonal signs preserved for a mild repair.
        assert np.sign(fixed[0, 1]) == 1 and np.sign(fixed[0, 2]) == -1

    def test_paper_caveat_pairwise_maronna_repairable(self):
        """Approach-2 caveat: pairwise Maronna matrices may not be PSD.

        Build adversarial data where pairwise-robust estimates disagree
        enough to break PSD-ness, then check the repair restores it while
        staying a correlation matrix.  (On typical data the pairwise
        matrix *is* PSD; the point here is the repair path.)
        """
        gen = np.random.default_rng(12)
        r = gen.standard_t(df=2, size=(40, 5))
        r[::7] *= 20  # heavy contamination, pairwise fits disagree
        c = corr_matrix(r, "maronna", MaronnaConfig(max_iter=5))
        fixed = nearest_psd_correlation(c)
        assert is_psd(fixed)
        np.testing.assert_allclose(np.diag(fixed), 1.0)

    def test_eig_floor(self):
        c = np.array([[1.0, 1.0], [1.0, 1.0]])
        fixed = nearest_psd_correlation(c, eig_floor=0.05)
        eigvals = np.linalg.eigvalsh(fixed)
        assert eigvals.min() >= 0.0
