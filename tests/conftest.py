"""Shared fixtures: small deterministic markets, grids and RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20080331)


@pytest.fixture(scope="session")
def small_market() -> SyntheticMarket:
    """Six symbols, a 1-hour session — enough structure, fast to generate."""
    cfg = SyntheticMarketConfig(trading_seconds=3600, quote_rate=0.8)
    return SyntheticMarket(default_universe(6), cfg, seed=7)


@pytest.fixture(scope="session")
def small_grid() -> TimeGrid:
    return TimeGrid(30, trading_seconds=3600)


@pytest.fixture(scope="session")
def small_sweep():
    """A complete small study: 6 symbols (15 pairs), 2 days, 6 param sets."""
    from repro.backtest.sweep import SweepConfig, run_sweep

    cfg = SweepConfig(
        n_symbols=6, n_days=2, n_levels=2, trading_seconds=23_400 // 4, ranks=2
    )
    store, grid = run_sweep(cfg)
    return store, grid


@pytest.fixture(scope="session")
def correlated_returns() -> np.ndarray:
    """(400, 6) return rows with genuine cross-correlation ~0.5."""
    gen = np.random.default_rng(99)
    n = 6
    shape = 0.5 * np.ones((n, n)) + 0.5 * np.eye(n)
    chol = np.linalg.cholesky(shape)
    return gen.normal(size=(400, n)) @ chol.T
