"""Tests for the TCP-like cleaning filter."""

import numpy as np
import pytest

from repro.clean.filters import CleaningStats, TcpLikeFilter, clean_quotes
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import default_universe


class TestTcpLikeFilter:
    def test_accepts_stable_stream(self):
        f = TcpLikeFilter()
        assert all(f.update(100.0 + 0.01 * (i % 3)) for i in range(200))

    def test_rejects_decimal_slip(self):
        f = TcpLikeFilter()
        for _ in range(50):
            f.update(100.0)
        assert not f.update(1000.0)  # 10x typo
        assert not f.update(10.0)  # 0.1x typo

    def test_rejection_does_not_poison_estimates(self):
        f = TcpLikeFilter()
        for _ in range(50):
            f.update(100.0)
        avg_before = f.average
        f.update(1000.0)
        assert f.average == avg_before

    def test_recovers_after_outlier_burst(self):
        f = TcpLikeFilter()
        for _ in range(50):
            f.update(100.0)
        for _ in range(5):
            assert not f.update(999.0)
        assert f.update(100.05)

    def test_warmup_accepts_everything(self):
        f = TcpLikeFilter(warmup=10)
        # Wild swings during warmup are accepted (estimates are forming).
        assert f.update(100.0)
        assert f.update(500.0)
        assert f.update(50.0)

    def test_tracks_drifting_price(self):
        f = TcpLikeFilter()
        price = 100.0
        rejected = 0
        for _ in range(1000):
            price *= 1.0001  # steady 1bp drift per tick
            if not f.update(price):
                rejected += 1
        assert rejected == 0

    def test_rejects_nonpositive_and_nan(self):
        f = TcpLikeFilter()
        f.update(100.0)
        assert not f.update(0.0)
        assert not f.update(-5.0)
        assert not f.update(float("nan"))

    def test_deviation_floor_prevents_zero_band(self):
        f = TcpLikeFilter(min_dev_frac=1e-3)
        for _ in range(100):
            f.update(100.0)  # constant stream, dev decays toward 0
        # A move within the floor band is still accepted.
        assert f.update(100.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"beta": -0.1},
            {"k": 0.0},
            {"warmup": 0},
            {"min_dev_frac": 0.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            TcpLikeFilter(**kwargs)


class TestCleanQuotes:
    @pytest.fixture(scope="class")
    def dirty_and_clean(self):
        cfg = SyntheticMarketConfig(
            trading_seconds=3600, quote_rate=0.9, outlier_prob=2e-3
        )
        mkt = SyntheticMarket(default_universe(6), cfg, seed=11)
        return mkt.quotes(0, with_outliers=True), mkt.quotes(0, with_outliers=False)

    def test_removes_most_outliers_keeps_good_data(self, dirty_and_clean):
        dirty, clean = dirty_and_clean
        corrupted = (dirty["bid"] != clean["bid"]) | (dirty["ask"] != clean["ask"])
        kept, stats = clean_quotes(dirty, 6)
        assert stats.total == dirty.size
        # At least 80% of corrupted quotes removed...
        assert stats.rejected_outlier >= 0.8 * corrupted.sum()
        # ...with under 1% collateral damage.
        assert stats.accepted >= 0.99 * (dirty.size - corrupted.sum())

    def test_clean_input_passes_through(self, dirty_and_clean):
        _, clean = dirty_and_clean
        kept, stats = clean_quotes(clean, 6)
        assert stats.rejected_outlier / stats.total < 0.01
        assert stats.rejected_crossed == 0

    def test_crossed_quotes_dropped(self):
        arr = np.zeros(3, dtype=QUOTE_DTYPE)
        arr["t"] = [0.0, 1.0, 2.0]
        arr["bid"] = [10.0, 11.0, 10.0]
        arr["ask"] = [10.1, 10.5, 10.1]  # middle quote crossed
        arr["bid_size"] = arr["ask_size"] = 1
        kept, stats = clean_quotes(arr, 1)
        assert stats.rejected_crossed == 1
        assert kept.size == 2

    def test_preserves_chronological_order(self, dirty_and_clean):
        dirty, _ = dirty_and_clean
        kept, _ = clean_quotes(dirty, 6)
        assert np.all(np.diff(kept["t"]) >= 0)

    def test_empty_input(self):
        kept, stats = clean_quotes(np.empty(0, dtype=QUOTE_DTYPE), 3)
        assert kept.size == 0
        assert stats.acceptance_rate == 1.0


class TestCleaningStats:
    def test_derived_fields(self):
        stats = CleaningStats(
            total=100, accepted=90, rejected_outlier=7, rejected_crossed=3
        )
        assert stats.rejected == 10
        assert stats.acceptance_rate == pytest.approx(0.9)
