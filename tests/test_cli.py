"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

# Small/fast argument sets shared by the command tests.
FAST = ["--symbols", "4", "--seconds", "2400", "--seed", "7"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.symbols == 8
        assert args.levels == 4
        assert args.engine == "distributed"
        assert args.obs_json is None
        assert args.log_level is None

    def test_log_level_choices(self):
        args = build_parser().parse_args(["--log-level", "debug", "table1"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "trace", "table1"])


class TestTable1:
    def test_prints_grid(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "42 parameter sets" in out
        assert "Ctype" in out


class TestTaqSample:
    def test_prints_rows(self, capsys):
        assert main(["taq-sample", *FAST, "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "Bid Price" in out
        assert "09:30:" in out


class TestSweep:
    def test_prints_all_tables(self, capsys):
        assert main(
            ["sweep", *FAST, "--days", "1", "--levels", "1", "--ranks", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        assert "Table V" in out
        assert "Sharpe Ratio" in out

    def test_sequential_engine(self, capsys):
        assert main(
            ["sweep", *FAST, "--days", "1", "--levels", "1",
             "--engine", "sequential"]
        ) == 0
        assert "Table III" in capsys.readouterr().out

    def test_corr_backend_flag(self, capsys):
        args = build_parser().parse_args(["sweep"])
        assert args.corr_backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--corr-backend", "simd"])
        assert main(
            ["sweep", *FAST, "--days", "1", "--levels", "1", "--ranks", "1",
             "--corr-backend", "batch"]
        ) == 0
        assert "Table III" in capsys.readouterr().out


class TestPipeline:
    def test_streams_session(self, capsys):
        assert main(["pipeline", *FAST, "--ranks", "2"]) == 0
        out = capsys.readouterr().out
        assert "Workflow 'figure1'" in out
        assert "bars" in out
        assert "rank 0:" in out

    def test_multi_engine(self, capsys):
        assert main(["pipeline", *FAST, "--ranks", "2", "--engines", "2"]) == 0
        out = capsys.readouterr().out
        assert "correlation_0" in out


class TestObservability:
    def test_pipeline_obs_json_and_stats(self, capsys, tmp_path):
        path = tmp_path / "obs.json"
        assert main(
            ["pipeline", *FAST, "--ranks", "2", "--obs-json", str(path)]
        ) == 0
        assert f"written to {path}" in capsys.readouterr().out
        assert path.exists()

        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs/v1" in out
        assert "mpi.sent.messages" in out
        assert "component.pair_trading.on_message.seconds" in out
        assert "span tree:" in out

    def test_sweep_obs_json(self, capsys, tmp_path):
        path = tmp_path / "sweep-obs.json"
        assert main(
            ["sweep", *FAST, "--days", "1", "--levels", "1",
             "--obs-json", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        assert "backtest.pair_day.seconds" in capsys.readouterr().out

    def test_stats_rejects_foreign_json(self, tmp_path, capsys):
        path = tmp_path / "not-obs.json"
        path.write_text('{"schema": "nope"}')
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert "stats:" in err
        assert "repro.obs" in err

    def test_stats_rejects_non_json(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        assert main(["stats", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_stats_rejects_structural_mismatch(self, tmp_path, capsys):
        path = tmp_path / "hollow.json"
        path.write_text('{"schema": "repro.obs/v1", "metrics": [], '
                        '"ranks": {}, "spans": []}')
        assert main(["stats", str(path)]) == 2
        assert "invalid repro.obs/v1 report" in capsys.readouterr().err

    def test_stats_missing_file(self, capsys):
        assert main(["stats", "does/not/exist.json"]) == 2
        assert "no such report" in capsys.readouterr().err

    def test_log_level_configures_repro_logger(self):
        import logging

        assert main(["--log-level", "debug", "table1"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        logging.getLogger("repro").setLevel(logging.INFO)


class TestScreen:
    def test_prints_candidates(self, capsys):
        assert main(["screen", *FAST, "--threshold", "0.2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "candidates" in out
        assert "rho=" in out

    def test_measure_choice(self, capsys):
        assert main(
            ["screen", *FAST, "--threshold", "0.2", "--measure", "maronna"]
        ) == 0
        assert "Clusters" in capsys.readouterr().out


class TestChaos:
    def test_list_plans(self, capsys):
        assert main(["chaos", "--list-plans"]) == 0
        out = capsys.readouterr().out
        for name in ("dup", "drop-dup", "crash-mid", "stall", "delay"):
            assert name in out

    def test_plan_or_list_required(self, capsys):
        assert main(["chaos", *FAST]) == 2
        assert "--plan" in capsys.readouterr().err

    def test_figure1_dup_plan_recovers(self, capsys):
        assert (
            main(["chaos", *FAST, "--plan", "dup", "--timeout", "10"]) == 0
        )
        out = capsys.readouterr().out
        assert "plan 'dup' on figure1" in out
        assert "identical to fault-free run: True" in out

    def test_sweep_crash_plan_recovers(self, capsys):
        assert (
            main(
                [
                    "chaos", *FAST, "--target", "sweep",
                    "--plan", "crash-mid", "--timeout", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "restart(s)" in out
        assert "identical to fault-free run: True" in out

    def test_figure1_flight_dump(self, capsys, tmp_path):
        dump = tmp_path / "flight"
        assert main(
            ["chaos", *FAST, "--plan", "crash-mid", "--ranks", "2",
             "--flight-dump", str(dump), "--timeout", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "flight dump(s)" in out
        files = sorted(dump.glob("rank*-attempt*.jsonl"))
        assert files, "chaos --flight-dump produced no dumps"
        from repro.obs.live import load_flight_dump

        header, events = load_flight_dump(files[0])
        assert header["schema"] == "repro.flight/v1"
        assert events

    def test_sweep_target_rejects_flight_dump(self, capsys):
        assert main(
            ["chaos", *FAST, "--plan", "crash-mid", "--target", "sweep",
             "--flight-dump", "somewhere"]
        ) == 2
        assert "figure1" in capsys.readouterr().err


class TestTop:
    def test_pipeline_renders_live_frames(self, capsys):
        # capsys stdout is not a tty, so frames append (plain mode).
        assert main(["top", *FAST, "--ranks", "2", "--refresh", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "repro top — uptime" in out
        assert "sent/s" in out
        assert "session complete" in out

    def test_chaos_target_reports_recovery(self, capsys):
        assert main(
            ["top", *FAST, "--ranks", "2", "--target", "chaos",
             "--refresh", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "session complete" in out
        assert "restart(s)" in out

    def test_rejects_bad_health_rule(self, capsys):
        assert main(["top", *FAST, "--health", "nonsense rule"]) == 2
        assert "bad --health rule" in capsys.readouterr().err

    def test_obs_json_round_trips_through_stats(self, capsys, tmp_path):
        path = tmp_path / "top-obs.json"
        assert main(
            ["top", *FAST, "--ranks", "2", "--refresh", "0.1",
             "--obs-json", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        assert "mpi.sent.messages" in capsys.readouterr().out


class TestReport:
    def test_prints_full_report(self, capsys):
        assert main(
            ["report", *FAST, "--days", "2", "--levels", "1",
             "--bootstrap", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Significance" in out
        assert "Walk-forward" in out


class TestLint:
    def test_clean_repo_and_spec_exit_zero(self, capsys):
        assert main(["lint", *FAST, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_strict_flag_parsed(self):
        args = build_parser().parse_args(["lint", "--strict"])
        assert args.strict is True
        assert args.skip_graph is False
        assert args.ranks == 2

    def test_violating_tree_fails(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n")
        assert main(
            ["lint", *FAST, "--skip-graph", "--root", str(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "repo.mutable-default" in out

    def test_warning_only_fails_under_strict(self, tmp_path, capsys):
        warn = tmp_path / "mod.py"
        warn.write_text('obs.counter("BadName")\n')
        argv = ["lint", *FAST, "--skip-graph", "--root", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main([*argv, "--strict"]) == 1
        assert "repo.metric-name" in capsys.readouterr().out

    def test_missing_root_is_usage_error(self, capsys):
        assert main(
            ["lint", *FAST, "--skip-graph", "--root", "/no/such/dir"]
        ) == 2


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8972
        assert args.token is None and args.store_root is None
        assert args.max_sessions == 8 and args.retain == 64
        assert args.flight_root is None

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--token", "s3cret", "--store-root", "/tmp/store",
            "--max-sessions", "2", "--retain", "8",
            "--flight-root", "/tmp/flight",
        ])
        assert args.port == 0 and args.token == "s3cret"
        assert args.max_sessions == 2 and args.flight_root == "/tmp/flight"

    def test_serve_is_wired_into_main(self):
        from repro.cli import _COMMANDS

        assert "serve" in _COMMANDS
