"""protocheck: static emit/handle tag sets vs. the graph contract."""

from pathlib import Path

from repro.analysis.deepcheck import ModuleIndex, check_protocol
from repro.marketminer.graph import ComponentSpec, Edge, GraphSpec

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

FIXTURE = '''
class Component:
    pass

class Producer(Component):
    def generate(self, ctx):
        ctx.emit("ticks", 1)
        self._flush(ctx)
    def _flush(self, ctx):
        ctx.emit("summary", 2)

class ModuleHelperProducer(Component):
    def generate(self, ctx):
        _emit_all(ctx)

def _emit_all(ctx):
    ctx.emit("ticks", 1)

class ClosedConsumer(Component):
    def on_message(self, ctx, port, payload):
        if port == "ticks":
            pass
        elif port == "control":
            pass
        else:
            raise ValueError(port)

class OpenConsumer(Component):
    def on_message(self, ctx, port, payload):
        self.handle(port, payload)
    def handle(self, port, payload):
        pass

class SilentProducer(Component):
    def generate(self, ctx):
        pass

class DynamicProducer(Component):
    def generate(self, ctx):
        for port in ("a", "b"):
            ctx.emit(port, 1)
'''


def index() -> ModuleIndex:
    return ModuleIndex.from_sources({"repro/fixture.py": FIXTURE})


def spec(components, edges, name="g") -> GraphSpec:
    return GraphSpec(name=name, components=components, edges=tuple(edges))


def rules(diags) -> set:
    return {d.rule for d in diags}


class TestEmitSide:
    def test_clean_wiring_passes(self):
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("ticks", "summary")),
                "cons": ComponentSpec("cons", input_ports=("ticks", "control")),
            },
            [
                Edge("prod", "ticks", "cons", "ticks"),
                Edge("prod", "summary", "cons", "control"),
            ],
        )
        diags = check_protocol(s, index(), {"prod": "Producer",
                                            "cons": "ClosedConsumer"})
        assert diags == []

    def test_undeclared_emit_flagged(self):
        s = spec(
            {"prod": ComponentSpec("prod", output_ports=("ticks",))},
            [],
        )
        diags = check_protocol(s, index(), {"prod": "Producer"})
        assert "proto.undeclared-emit" in rules(diags)  # "summary"

    def test_emit_through_module_helper_found(self):
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("ticks",)),
                "cons": ComponentSpec("cons", input_ports=("ticks",)),
            },
            [Edge("prod", "ticks", "cons", "ticks")],
        )
        diags = check_protocol(
            s, index(), {"prod": "ModuleHelperProducer", "cons": "OpenConsumer"}
        )
        assert "proto.dead-edge" not in rules(diags)

    def test_dead_edge_flagged_when_source_never_emits(self):
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("ticks",)),
                "cons": ComponentSpec("cons", input_ports=("ticks",)),
            },
            [Edge("prod", "ticks", "cons", "ticks")],
        )
        diags = check_protocol(
            s, index(), {"prod": "SilentProducer", "cons": "OpenConsumer"}
        )
        assert "proto.dead-edge" in rules(diags)

    def test_dropped_emit_flagged_without_edge(self):
        s = spec(
            {"prod": ComponentSpec("prod", output_ports=("ticks", "summary"))},
            [],
        )
        diags = check_protocol(s, index(), {"prod": "Producer"})
        dropped = [d for d in diags if d.rule == "proto.dropped-emit"]
        assert {str(d.location) for d in dropped} == {
            "g::prod.ticks", "g::prod.summary",
        }

    def test_dynamic_emit_reported_as_info_and_quiets_dead_edge(self):
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("a", "b")),
                "cons": ComponentSpec("cons", input_ports=("a",)),
            },
            [Edge("prod", "a", "cons", "a")],
        )
        diags = check_protocol(
            s, index(), {"prod": "DynamicProducer", "cons": "OpenConsumer"}
        )
        assert rules(diags) == {"proto.dynamic-emit"}


class TestReceiveSide:
    def test_emitted_but_unhandled_tag_fails(self):
        # Acceptance fixture: producer emits "summary" into the consumer's
        # "summary" input, but the closed on_message dispatch only covers
        # "ticks"/"control" — the message would be silently dropped.
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("ticks", "summary")),
                "cons": ComponentSpec(
                    "cons", input_ports=("ticks", "summary")
                ),
            },
            [
                Edge("prod", "ticks", "cons", "ticks"),
                Edge("prod", "summary", "cons", "summary"),
            ],
        )
        diags = check_protocol(s, index(), {"prod": "Producer",
                                            "cons": "ClosedConsumer"})
        unhandled = [d for d in diags if d.rule == "proto.unhandled-input"]
        assert len(unhandled) == 1
        assert "'summary'" in unhandled[0].message

    def test_open_dispatch_handles_everything(self):
        s = spec(
            {
                "prod": ComponentSpec("prod", output_ports=("ticks",)),
                "cons": ComponentSpec("cons", input_ports=("ticks",)),
            },
            [Edge("prod", "ticks", "cons", "ticks")],
        )
        diags = check_protocol(s, index(), {"prod": "Producer",
                                            "cons": "OpenConsumer"})
        assert "proto.unhandled-input" not in rules(diags)

    def test_eos_gap_on_unconnected_input(self):
        s = spec(
            {"cons": ComponentSpec("cons", input_ports=("ticks",))},
            [],
        )
        diags = check_protocol(s, index(), {"cons": "OpenConsumer"})
        assert "proto.eos-gap" in rules(diags)


class TestLiveness:
    def test_wait_cycle_through_live_edges(self):
        fixture = FIXTURE + '''
class Echo(Component):
    def on_message(self, ctx, port, payload):
        ctx.emit("out", payload)
'''
        idx = ModuleIndex.from_sources({"repro/fixture.py": fixture})
        s = spec(
            {
                "a": ComponentSpec("a", input_ports=("in",),
                                   output_ports=("out",)),
                "b": ComponentSpec("b", input_ports=("in",),
                                   output_ports=("out",)),
            },
            [
                Edge("a", "out", "b", "in"),
                Edge("b", "out", "a", "in"),
            ],
        )
        diags = check_protocol(s, idx, {"a": "Echo", "b": "Echo"})
        assert "proto.wait-cycle" in rules(diags)


class TestRealFigure1:
    def _workflow(self):
        from repro.marketminer.session import build_figure1_workflow
        from repro.strategy.params import StrategyParams
        from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
        from repro.taq.universe import default_universe
        from repro.util.timeutil import TimeGrid

        market = SyntheticMarket(
            default_universe(4),
            SyntheticMarketConfig(trading_seconds=600, quote_rate=0.9),
            seed=7,
        )
        params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
        return build_figure1_workflow(
            market, TimeGrid(30, trading_seconds=600),
            list(market.universe.pairs()), [params],
        )

    def test_figure1_has_only_the_known_bars_tap(self):
        index = ModuleIndex.from_tree(SRC_ROOT)
        diags = check_protocol(self._workflow(), index)
        assert [(d.rule, str(d.location)) for d in diags] == [
            ("proto.dropped-emit", "figure1::bar_accumulator.bars"),
        ]
