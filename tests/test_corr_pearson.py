"""Tests for Pearson correlation kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corr.pearson import (
    pearson_corr,
    pearson_corr_batched,
    pearson_matrix,
    pearson_series,
)


class TestPearsonCorr:
    def test_perfect_positive(self):
        x = np.arange(10, dtype=float)
        assert pearson_corr(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10, dtype=float)
        assert pearson_corr(x, -x) == pytest.approx(-1.0)

    def test_matches_numpy(self, rng):
        x, y = rng.normal(size=(2, 200))
        assert pearson_corr(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1], abs=1e-12)

    def test_constant_series_zero(self):
        assert pearson_corr(np.ones(10), np.arange(10.0)) == 0.0
        assert pearson_corr(np.ones(10), np.ones(10)) == 0.0

    def test_shift_and_scale_invariant(self, rng):
        x, y = rng.normal(size=(2, 100))
        base = pearson_corr(x, y)
        assert pearson_corr(3 * x + 10, 0.5 * y - 2) == pytest.approx(base, abs=1e-10)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson_corr(np.ones(5), np.ones(6))

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            pearson_corr([1.0], [1.0])

    @given(st.integers(min_value=2, max_value=60), st.integers(0, 2**31 - 1))
    def test_bounded(self, n, seed):
        gen = np.random.default_rng(seed)
        x, y = gen.normal(size=(2, n))
        assert -1.0 <= pearson_corr(x, y) <= 1.0


class TestBatched:
    def test_matches_scalar(self, rng):
        xw = rng.normal(size=(20, 50))
        yw = rng.normal(size=(20, 50))
        batched = pearson_corr_batched(xw, yw)
        for b in range(20):
            assert batched[b] == pytest.approx(pearson_corr(xw[b], yw[b]), abs=1e-12)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pearson_corr_batched(np.ones((2, 5)), np.ones((3, 5)))
        with pytest.raises(ValueError):
            pearson_corr_batched(np.ones(5), np.ones(5))


class TestMatrix:
    def test_matches_numpy_corrcoef(self, correlated_returns):
        window = correlated_returns[:100]
        ours = pearson_matrix(window)
        ref = np.corrcoef(window.T)
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_unit_diagonal_symmetric(self, correlated_returns):
        c = pearson_matrix(correlated_returns[:50])
        np.testing.assert_allclose(np.diag(c), 1.0)
        np.testing.assert_allclose(c, c.T)

    def test_degenerate_column_zeroed(self):
        window = np.random.default_rng(0).normal(size=(50, 3))
        window[:, 1] = 7.0  # constant column
        c = pearson_matrix(window)
        assert c[1, 1] == 1.0
        assert c[0, 1] == 0.0 and c[1, 2] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.ones(10))


class TestSeries:
    def test_matches_windowed_scalar(self, rng):
        x, y = rng.normal(size=(2, 300))
        m = 50
        series = pearson_series(x, y, m)
        assert series.shape == (251,)
        for k in (0, 100, 250):
            assert series[k] == pytest.approx(
                pearson_corr(x[k : k + m], y[k : k + m]), abs=1e-9
            )

    def test_window_equal_to_length(self, rng):
        x, y = rng.normal(size=(2, 40))
        series = pearson_series(x, y, 40)
        assert series.shape == (1,)
        assert series[0] == pytest.approx(pearson_corr(x, y), abs=1e-10)

    def test_rejects_m_too_large(self, rng):
        x, y = rng.normal(size=(2, 10))
        with pytest.raises(ValueError):
            pearson_series(x, y, 11)

    def test_rejects_m_one(self, rng):
        x, y = rng.normal(size=(2, 10))
        with pytest.raises(ValueError):
            pearson_series(x, y, 1)

    def test_numerically_stable_large_offsets(self):
        # Cumulative-sum identities cancel catastrophically if naive;
        # large price-like offsets must not corrupt the series.
        gen = np.random.default_rng(3)
        x = 1e6 + gen.normal(size=500)
        y = 1e6 + gen.normal(size=500)
        series = pearson_series(x, y, 100)
        direct = np.array(
            [pearson_corr(x[k : k + 100], y[k : k + 100]) for k in range(401)]
        )
        np.testing.assert_allclose(series, direct, atol=1e-6)
