"""Baseline round-trip and the `repro analyze` CLI surface."""

import json
from pathlib import Path

from repro.analysis.deepcheck import (
    ModuleIndex,
    apply_baseline,
    check_determinism,
    load_baseline,
    make_baseline,
    save_baseline,
)
from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

HAZARD = '''
import time

def run_pipeline():
    t0 = time.time()
    return t0
'''


def report_for(sources: dict) -> tuple[DiagnosticReport, ModuleIndex]:
    index = ModuleIndex.from_sources(sources)
    report = DiagnosticReport()
    report.extend(check_determinism(index))
    return report, index


class TestRoundTrip:
    def test_present_baselined_silent_changed_resurfaces(self, tmp_path):
        path = tmp_path / "baseline.json"
        sources = {"repro/fixture.py": HAZARD}

        # 1. finding present
        report, index = report_for(sources)
        assert report.errors == 1

        # 2. baselined -> 3. silent
        save_baseline(make_baseline(report, index), path)
        report, index = report_for(sources)
        kept, stale = apply_baseline(report, load_baseline(path), index)
        assert len(kept) == 0 and stale == []

        # 4. the flagged line changes -> 5. finding resurfaces (plus a
        # stale INFO for the orphaned entry), even though rule/path/line
        # number all stay identical.
        sources = {
            "repro/fixture.py": HAZARD.replace(
                "t0 = time.time()", "t0 = time.time() + 1"
            )
        }
        report, index = report_for(sources)
        kept, stale = apply_baseline(report, load_baseline(path), index)
        assert kept.errors == 1
        assert len(stale) == 1
        assert [d.rule for d in kept if d.severity is Severity.INFO] == [
            "baseline.stale"
        ]

    def test_unrelated_line_moves_do_not_resurface(self, tmp_path):
        path = tmp_path / "baseline.json"
        sources = {"repro/fixture.py": HAZARD}
        report, index = report_for(sources)
        save_baseline(make_baseline(report, index), path)

        # Insert code above: the finding's line number shifts but its
        # text is unchanged, so the fingerprint still matches.
        sources = {"repro/fixture.py": "X = 1\n" + HAZARD}
        report, index = report_for(sources)
        kept, stale = apply_baseline(report, load_baseline(path), index)
        assert len(kept) == 0 and stale == []

    def test_justifications_survive_update(self, tmp_path):
        path = tmp_path / "baseline.json"
        sources = {"repro/fixture.py": HAZARD}
        report, index = report_for(sources)
        doc = make_baseline(report, index)
        doc["entries"][0]["justification"] = "audited: telemetry only"
        save_baseline(doc, path)

        refreshed = make_baseline(report, index, previous=load_baseline(path))
        assert refreshed["entries"][0]["justification"] == (
            "audited: telemetry only"
        )


class TestCommittedBaseline:
    def test_repo_is_clean_under_the_committed_baseline(self, monkeypatch):
        # Acceptance criterion: strict analyze exits 0 on the repo with
        # the committed baseline (and every entry is justified).
        monkeypatch.chdir(REPO_ROOT)
        doc = json.loads(
            (REPO_ROOT / "analysis_baseline.json").read_text(encoding="utf-8")
        )
        assert doc["entries"], "committed baseline unexpectedly empty"
        assert all(
            e["justification"] and "TODO" not in e["justification"]
            for e in doc["entries"]
        )
        rc = main([
            "analyze", "--root", str(SRC_ROOT), "--strict",
            "--baseline", str(REPO_ROOT / "analysis_baseline.json"),
            "--symbols", "4", "--seconds", "600",
        ])
        assert rc == 0


class TestAnalyzeCli:
    def test_strict_fails_without_baseline(self, capsys):
        # The repo has real audited findings; without the baseline the
        # strict run must flag them and exit nonzero.
        rc = main([
            "analyze", "--root", str(SRC_ROOT), "--strict",
            "--symbols", "4", "--seconds", "600",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "det.wall-clock" in out

    def test_adversarial_tree_fails_strict(self, tmp_path, capsys):
        # Missing-snapshot attr and unseeded random in a throwaway tree.
        pkg = tmp_path / "badpkg"
        pkg.mkdir()
        (pkg / "component.py").write_text(
            "class Component:\n"
            "    def snapshot(self):\n"
            "        return None\n"
            "    def restore(self, state):\n"
            "        raise NotImplementedError\n"
        )
        (pkg / "bad.py").write_text(
            "import random\n"
            "from badpkg.component import Component\n"
            "\n"
            "class Leaky(Component):\n"
            "    def __init__(self):\n"
            "        self._buf = []\n"
            "    def on_message(self, ctx, port, payload):\n"
            "        self._buf.append(payload)\n"
            "        return random.random()\n"
            "    def snapshot(self):\n"
            "        return {}\n"
            "    def restore(self, state):\n"
            "        pass\n"
        )
        rc = main([
            "analyze", "--root", str(pkg), "--strict", "--skip", "proto",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "state.snapshot-missing" in out
        assert "det.unseeded-random" in out

    def test_json_document_shape(self, capsys):
        rc = main([
            "analyze", "--root", str(SRC_ROOT), "--json", "--skip", "proto",
            "--baseline", str(REPO_ROOT / "analysis_baseline.json"),
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.analysis/v1"
        assert doc["summary"]["errors"] == 0

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("state.snapshot-missing", "det.wall-clock",
                     "proto.unhandled-input", "baseline.stale"):
            assert rule in out

    def test_graph_provider_fails_on_unhandled_tag(self, tmp_path,
                                                   monkeypatch, capsys):
        # Acceptance criterion: a GraphSpec with an emitted-but-unhandled
        # tag fails `repro analyze --strict` end to end via --graph.
        mod = tmp_path / "badgraph.py"
        mod.write_text(
            "from repro.marketminer.graph import ComponentSpec, Edge, "
            "GraphSpec\n"
            "\n"
            "FIXTURE = '''\n"
            "class Component:\n"
            "    pass\n"
            "\n"
            "class Prod(Component):\n"
            "    def generate(self, ctx):\n"
            "        ctx.emit(\"ticks\", 1)\n"
            "        ctx.emit(\"extra\", 2)\n"
            "\n"
            "class Cons(Component):\n"
            "    def on_message(self, ctx, port, payload):\n"
            "        if port == \"ticks\":\n"
            "            pass\n"
            "        else:\n"
            "            raise ValueError(port)\n"
            "'''\n"
            "\n"
            "def provide():\n"
            "    spec = GraphSpec(\n"
            "        name='bad',\n"
            "        components={\n"
            "            'p': ComponentSpec('p', output_ports=('ticks', "
            "'extra')),\n"
            "            'c': ComponentSpec('c', input_ports=('ticks', "
            "'extra')),\n"
            "        },\n"
            "        edges=(\n"
            "            Edge('p', 'ticks', 'c', 'ticks'),\n"
            "            Edge('p', 'extra', 'c', 'extra'),\n"
            "        ),\n"
            "    )\n"
            "    return spec, {'p': 'Prod', 'c': 'Cons'}\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        # Point --root at a tree that also indexes the fixture classes.
        pkg = tmp_path / "fixpkg"
        pkg.mkdir()
        fixture = __import__("badgraph").FIXTURE
        (pkg / "fixture.py").write_text(fixture)
        rc = main([
            "analyze", "--root", str(pkg), "--strict",
            "--graph", "badgraph:provide",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "proto.unhandled-input" in out

    def test_unknown_graph_provider_is_a_usage_error(self, capsys):
        rc = main([
            "analyze", "--root", str(SRC_ROOT), "--graph", "no.such.mod:f",
        ])
        assert rc == 2
