"""End-to-end observability: pipeline telemetry, cross-rank merge, report IO.

The headline invariant is the issue's acceptance criterion: one Figure-1
session with observability on yields a report whose span tree covers
collectors -> bars -> correlation -> strategy -> orders and whose merged
metrics hold per-component latency histograms and per-rank MPI counters.
"""

import pytest

from repro.backtest.sweep import SweepConfig, run_sweep
from repro.marketminer.session import (
    build_figure1_workflow,
    run_figure1_session,
)
from repro.mpi.launcher import run_spmd
from repro.obs import Obs, build_report, load_report, write_json
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

#: Every box of Figure 1 that the default workflow instantiates.
FIGURE1_COMPONENTS = (
    "live_collector",
    "cleaning",
    "bar_accumulator",
    "technical",
    "correlation",
    "pair_trading",
    "order_sink",
)


def tiny_workflow(seconds=2400, symbols=4):
    market = SyntheticMarket(
        default_universe(symbols),
        SyntheticMarketConfig(trading_seconds=seconds, quote_rate=0.9),
        seed=7,
    )
    grid_time = TimeGrid(30, trading_seconds=seconds)
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
    return build_figure1_workflow(
        market, grid_time, list(market.universe.pairs()), [params]
    )


@pytest.fixture(scope="module")
def pipeline_report():
    results = run_figure1_session(tiny_workflow(), size=2, obs_enabled=True)
    return results["_obs"]


class TestPipelineReport:
    def test_schema(self, pipeline_report):
        assert pipeline_report["schema"] == "repro.obs/v1"

    def test_span_tree_names_every_figure1_component(self, pipeline_report):
        names = {s["name"] for s in pipeline_report["spans"]}
        for component in FIGURE1_COMPONENTS:
            assert component in names, f"missing span for {component}"
        assert "session" in names

    def test_handler_latency_histograms_with_quantiles(self, pipeline_report):
        hists = pipeline_report["metrics"]["histograms"]
        for component in FIGURE1_COMPONENTS:
            if component == "live_collector":
                key = f"component.{component}.generate.seconds"
            else:
                key = f"component.{component}.on_message.seconds"
            assert key in hists, f"missing handler histogram for {component}"
            h = hists[key]
            assert h["count"] > 0
            assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"]

    def test_per_rank_mpi_counters(self, pipeline_report):
        ranks = pipeline_report["ranks"]
        assert set(ranks) == {"0", "1"}
        total_sent = sum(
            r["counters"].get("mpi.sent.messages", 0) for r in ranks.values()
        )
        total_recv = sum(
            r["counters"].get("mpi.recv.messages", 0) for r in ranks.values()
        )
        assert total_sent == total_recv > 0
        assert (
            pipeline_report["metrics"]["counters"]["mpi.sent.messages"]
            == total_sent
        )
        assert pipeline_report["metrics"]["counters"]["mpi.sent.bytes"] > 0

    def test_emit_counters_present(self, pipeline_report):
        counters = pipeline_report["metrics"]["counters"]
        assert counters["component.live_collector.emit[quotes]"] > 0
        assert counters["component.pair_trading.emit[orders]"] >= 0
        assert counters["pipeline.bar_accumulator.bars"] > 0

    def test_domain_counters_deterministic_across_runs(self, pipeline_report):
        again = run_figure1_session(
            tiny_workflow(), size=2, obs_enabled=True
        )["_obs"]
        # Timing histograms differ run to run; the counted telemetry (what
        # flowed where) must not under the deterministic thread backend.
        assert again["metrics"]["counters"] == (
            pipeline_report["metrics"]["counters"]
        )

    def test_disabled_session_has_no_obs_entry(self):
        results = run_figure1_session(tiny_workflow(), size=2)
        assert "_obs" not in results


class TestRegistryMergeAcrossRanks:
    @staticmethod
    def _spmd(comm):
        obs = Obs(enabled=True)
        obs.metrics.counter("events").inc(comm.rank + 1)
        obs.metrics.histogram("lat").observe(float(comm.rank))
        with obs.trace.span("session", rank=comm.rank):
            pass
        return obs.to_dict()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_merge(self, backend):
        dicts = run_spmd(self._spmd, size=3, backend=backend)
        report = build_report(dict(enumerate(dicts)))
        assert report["metrics"]["counters"]["events"] == 1 + 2 + 3
        assert report["metrics"]["histograms"]["lat"]["count"] == 3
        assert {s["rank"] for s in report["spans"]} == {0, 1, 2}


class TestReportRoundtrip:
    def test_write_then_load(self, tmp_path, pipeline_report):
        path = write_json(pipeline_report, tmp_path / "obs.json")
        loaded = load_report(path)
        assert loaded["schema"] == "repro.obs/v1"
        assert loaded["metrics"]["counters"] == {
            k: v
            for k, v in pipeline_report["metrics"]["counters"].items()
        }

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="repro.obs"):
            load_report(path)


class TestSweepWithObs:
    def test_distributed_sweep_records_job_costs(self):
        obs = Obs(enabled=True)
        config = SweepConfig(n_symbols=4, n_days=1, ranks=2)
        store, grid = run_sweep(config, obs=obs)
        report = obs.report()
        hist = report["metrics"]["histograms"]["backtest.pair_day.seconds"]
        n_pairs = 4 * 3 // 2
        assert hist["count"] == n_pairs * len(grid)
        assert {s["name"] for s in report["spans"]} >= {
            "approach3", "day", "correlation", "strategy",
        }

    def test_sweep_without_obs_unchanged(self):
        config = SweepConfig(n_symbols=4, n_days=1, ranks=2)
        store_plain, grid = run_sweep(config)
        obs = Obs(enabled=True)
        store_obs, _ = run_sweep(config, obs=obs)
        assert store_plain == store_obs
