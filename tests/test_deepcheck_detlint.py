"""detlint: nondeterminism hazards, reachability scaling, suppression."""

from pathlib import Path

from repro.analysis.deepcheck import ModuleIndex, check_determinism
from repro.analysis.diagnostics import Severity

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def analyze(source: str, path: str = "repro/fixture.py") -> list:
    return check_determinism(ModuleIndex.from_sources({path: source}))


def rules(diags) -> set:
    return {d.rule for d in diags}


class TestWallClock:
    def test_time_time_in_entry_point_is_error(self):
        diags = analyze('''
import time

def run_pipeline():
    return time.time()
''')
        assert [d.rule for d in diags] == ["det.wall-clock"]
        assert diags[0].severity is Severity.ERROR

    def test_from_import_alias_resolved(self):
        diags = analyze('''
from time import perf_counter as pc

def run():
    return pc()
''')
        assert rules(diags) == {"det.wall-clock"}

    def test_datetime_now_flagged(self):
        diags = analyze('''
from datetime import datetime

def run():
    return datetime.now()
''')
        assert rules(diags) == {"det.wall-clock"}

    def test_unreachable_site_is_warning(self):
        diags = analyze('''
import time

def _internal_probe():
    return time.monotonic()
''')
        assert [d.severity for d in diags] == [Severity.WARNING]

    def test_method_on_local_object_not_flagged(self):
        # self.clock.time() is a seam, not an ambient read.
        diags = analyze('''
class Sim:
    def __init__(self, clock):
        self.clock = clock
    def run(self):
        return self.clock.time()
''')
        assert diags == []


class TestRandomness:
    def test_seeded_random_is_not_flagged(self):
        diags = analyze('''
import random

def run(seed):
    rng = random.Random(seed)
    return rng.random()
''')
        assert diags == []

    def test_unseeded_random_ctor_flagged(self):
        diags = analyze('''
import random

def run():
    rng = random.Random()
    return rng.random()
''')
        assert rules(diags) == {"det.unseeded-random"}

    def test_global_random_module_flagged(self):
        diags = analyze('''
import random

def run():
    return random.random()
''')
        assert rules(diags) == {"det.unseeded-random"}

    def test_entropy_sources_flagged(self):
        diags = analyze('''
import os
import uuid

def run():
    return os.urandom(8), uuid.uuid4()
''')
        assert [d.rule for d in diags] == ["det.entropy", "det.entropy"]

    def test_faults_plan_module_is_clean(self):
        # Satellite audit: faults/plan.py draws only from seeded
        # random.Random(seed) — detlint must agree.
        path = "repro/faults/plan.py"
        source = (SRC_ROOT / "faults" / "plan.py").read_text(encoding="utf-8")
        assert analyze(source, path) == []

    def test_sge_scheduler_is_clean_after_clock_seam(self):
        # Satellite fix: the scheduler measures durations through the
        # injectable self._clock seam; the ambient default is only a
        # function *reference*, never an ambient call.
        path = "repro/sge/scheduler.py"
        source = (SRC_ROOT / "sge" / "scheduler.py").read_text(
            encoding="utf-8"
        )
        assert analyze(source, path) == []


class TestOrderingHazards:
    def test_set_iteration_flagged(self):
        diags = analyze('''
def run(items):
    for x in set(items):
        yield x
''')
        assert rules(diags) == {"det.set-order"}

    def test_sorted_set_not_flagged(self):
        diags = analyze('''
def run(items):
    for x in sorted(set(items)):
        yield x
''')
        assert diags == []

    def test_popitem_flagged_unless_ordereddict(self):
        diags = analyze('''
from collections import OrderedDict

class Cache:
    def __init__(self):
        self._entries = OrderedDict()
        self._plain = {}
    def evict(self):
        self._entries.popitem(last=False)   # proven OrderedDict: fine
    def bad(self):
        self._plain.popitem()
''')
        assert len(diags) == 1
        assert diags[0].rule == "det.set-order"
        assert "popitem" in diags[0].message

    def test_id_flagged(self):
        diags = analyze('''
def run(objs):
    return sorted(objs, key=lambda o: id(o))
''')
        assert rules(diags) == {"det.set-order"}

    def test_env_read_flagged(self):
        diags = analyze('''
import os

def run():
    return os.environ["HOME"], os.getenv("USER")
''')
        assert [d.rule for d in diags] == ["det.env-read", "det.env-read"]


class TestSuppression:
    def test_pragma_silences_a_hazard_line(self):
        diags = analyze('''
import time

def run():
    return time.time()  # repro-lint: disable=det.wall-clock
''')
        assert diags == []


class TestRepoBudget:
    def test_whole_repo_detlint_runs_and_is_bounded(self):
        index = ModuleIndex.from_tree(SRC_ROOT)
        diags = check_determinism(index)
        # Everything detlint flags in the repo today is audited into the
        # committed baseline; the count may drift but must stay small.
        assert 0 < len(diags) < 120
        assert all(d.rule.startswith("det.") for d in diags)
