"""Unit tests for the live telemetry plane: rings, sampler, health, export.

These cover the bounded-memory primitives (`SeriesRing` / `EventRing`),
the registry sampler and its query API, the declarative health rules and
their edge-triggered monitor, the Prometheus/JSONL exporters, and the
`repro top` hub + renderer.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.obs import Obs
from repro.obs.live import (
    EventRing,
    FlightRecorder,
    HealthMonitor,
    HealthRule,
    JsonlWriter,
    SeriesRing,
    TelemetryHub,
    TimeSeriesSampler,
    render_prometheus,
    render_top,
    sample_all,
)


class TestSeriesRing:
    def test_push_and_last_chronological(self):
        ring = SeriesRing(4)
        for i in range(3):
            ring.push(float(i), float(i * 10))
        t, v = ring.last(None)
        assert t.tolist() == [0.0, 1.0, 2.0]
        assert v.tolist() == [0.0, 10.0, 20.0]
        assert len(ring) == 3
        assert ring.n_dropped == 0

    def test_wraparound_keeps_newest(self):
        ring = SeriesRing(3)
        for i in range(7):
            ring.push(float(i), float(i))
        t, v = ring.last(None)
        assert t.tolist() == [4.0, 5.0, 6.0]
        assert len(ring) == 3
        assert ring.n_seen == 7
        assert ring.n_dropped == 4

    def test_last_n_subset_and_empty(self):
        ring = SeriesRing(8)
        for i in range(5):
            ring.push(float(i), float(i))
        t, v = ring.last(2)
        assert t.tolist() == [3.0, 4.0]
        t, v = ring.last(99)  # clamped to what's held
        assert t.size == 5
        empty = SeriesRing(4)
        t, v = empty.last(None)
        assert t.size == 0 and v.size == 0

    def test_last_returns_copies(self):
        ring = SeriesRing(4)
        ring.push(0.0, 1.0)
        t, v = ring.last(None)
        ring.push(1.0, 2.0)
        assert v.tolist() == [1.0]  # snapshot unaffected by later pushes

    def test_window_filters_by_age(self):
        ring = SeriesRing(16)
        for i in range(10):
            ring.push(float(i), float(i))
        t, v = ring.window(3.0)
        assert t.tolist() == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SeriesRing(1)


class TestEventRing:
    def test_append_and_events_oldest_first(self):
        ring = EventRing(4)
        for i in range(3):
            ring.append({"i": i})
        assert [e["i"] for e in ring.events()] == [0, 1, 2]

    def test_wraparound_overwrites_oldest(self):
        ring = EventRing(3)
        for i in range(8):
            ring.append(i)
        assert ring.events() == [5, 6, 7]
        assert ring.n_dropped == 5

    def test_clear(self):
        ring = EventRing(3)
        ring.append("x")
        ring.clear()
        assert ring.events() == []
        assert len(ring) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            EventRing(0)


def _obs_with_metrics() -> Obs:
    obs = Obs(enabled=True)
    obs.metrics.counter("mpi.sent.messages").inc(5)
    obs.metrics.gauge("mpi.pending.depth").set(2.0)
    obs.metrics.histogram("backtest.pair_day.seconds").observe(0.5)
    return obs


class TestTimeSeriesSampler:
    def test_samples_all_metric_families(self):
        obs = _obs_with_metrics()
        sampler = TimeSeriesSampler(obs, capacity=8)
        sampler.sample(now=1.0)
        names = sampler.names()
        assert "mpi.sent.messages" in names
        assert "mpi.pending.depth" in names
        assert "backtest.pair_day.seconds.count" in names
        assert "backtest.pair_day.seconds.sum" in names
        _, v = sampler.last("mpi.sent.messages", 1)
        assert v.tolist() == [5.0]
        _, v = sampler.last("backtest.pair_day.seconds.sum", 1)
        assert v.tolist() == [0.5]

    def test_delta_and_rate_from_counter_ticks(self):
        obs = Obs(enabled=True)
        counter = obs.metrics.counter("mpi.sent.messages")
        sampler = TimeSeriesSampler(obs, capacity=8)
        counter.inc(10)
        sampler.sample(now=0.0)
        counter.inc(30)
        sampler.sample(now=2.0)
        assert sampler.delta("mpi.sent.messages") == pytest.approx(30.0)
        assert sampler.rate("mpi.sent.messages") == pytest.approx(15.0)

    def test_rate_guards_degenerate_inputs(self):
        obs = Obs(enabled=True)
        obs.metrics.counter("c.n.total").inc()
        sampler = TimeSeriesSampler(obs, capacity=8)
        assert sampler.rate("missing.series") == 0.0
        sampler.sample(now=1.0)
        assert sampler.rate("c.n.total") == 0.0  # one sample, no slope
        sampler.sample(now=1.0)
        assert sampler.rate("c.n.total") == 0.0  # dt == 0

    def test_windowed_percentiles(self):
        obs = Obs(enabled=True)
        gauge = obs.metrics.gauge("q.depth.now")
        sampler = TimeSeriesSampler(obs, capacity=32)
        for i in range(11):
            gauge.set(float(i))
            sampler.sample(now=float(i))
        pct = sampler.percentiles("q.depth.now", qs=(0.5,))
        assert pct[0.5] == pytest.approx(5.0)
        pct = sampler.percentiles("q.depth.now", qs=(0.5,), window=4.0)
        assert pct[0.5] == pytest.approx(8.0)
        pct = sampler.percentiles("missing.series.x", qs=(0.5,))
        assert np.isnan(pct[0.5])

    def test_background_thread_ticks(self):
        obs = _obs_with_metrics()
        sampler = TimeSeriesSampler(obs, capacity=64)
        sampler.start(interval=0.005)
        try:
            deadline = time.monotonic() + 2.0
            while sampler.n_samples < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            sampler.stop()
        assert sampler.n_samples >= 3
        assert sampler._thread is None

    def test_ring_capacity_bounds_memory(self):
        obs = Obs(enabled=True)
        obs.metrics.counter("a.b.n").inc()
        sampler = TimeSeriesSampler(obs, capacity=4)
        for i in range(20):
            sampler.sample(now=float(i))
        t, _ = sampler.last("a.b.n", None)
        assert t.size == 4
        assert t.tolist() == [16.0, 17.0, 18.0, 19.0]


class TestHealthRule:
    def test_parse_full_form(self):
        rule = HealthRule.parse("mpi.pending.depth mean[5] > 100")
        assert rule.metric == "mpi.pending.depth"
        assert rule.agg == "mean"
        assert rule.window == 5.0
        assert rule.cmp == ">"
        assert rule.threshold == 100.0

    def test_parse_three_field_defaults_to_last(self):
        rule = HealthRule.parse("strategy.stale.age > 30")
        assert rule.agg == "last"
        assert rule.window is None

    @pytest.mark.parametrize("bad", [
        "too few",
        "a.b frobnicate > 1",
        "a.b mean[5 > 1",
        "a.b mean[5] ~ 1",
        "way too many parts here now",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            HealthRule.parse(bad)

    def test_breached_and_nan_never_fires(self):
        rule = HealthRule(name="r", metric="m", cmp=">=", threshold=5.0)
        assert rule.breached(5.0)
        assert not rule.breached(4.9)
        assert not rule.breached(float("nan"))

    def test_describe_round_trips_the_spec(self):
        rule = HealthRule.parse("mpi.recv.retries rate[10] > 2")
        assert rule.describe() == "mpi.recv.retries rate[10] > 2"


class TestHealthMonitor:
    def test_edge_triggered_fire_and_resolve(self):
        obs = Obs(enabled=True)
        gauge = obs.metrics.gauge("q.depth.now")
        monitor = HealthMonitor(["q.depth.now last > 10"])
        sampler = TimeSeriesSampler(obs, capacity=16, health=monitor)

        gauge.set(1.0)
        sampler.sample(now=0.0)
        assert sampler.health_events.events() == []

        gauge.set(50.0)
        sampler.sample(now=1.0)
        events = sampler.health_events.events()
        assert len(events) == 1 and events[0].fired

        gauge.set(60.0)  # still breached: no repeat event
        sampler.sample(now=2.0)
        assert len(sampler.health_events.events()) == 1

        gauge.set(2.0)
        sampler.sample(now=3.0)
        events = sampler.health_events.events()
        assert len(events) == 2 and not events[1].fired

    def test_fire_increments_counter_and_flight(self):
        obs = Obs(enabled=True)
        obs.flight = FlightRecorder(rank=0)
        gauge = obs.metrics.gauge("q.depth.now")
        monitor = HealthMonitor([HealthRule.parse("q.depth.now last > 10")])
        sampler = TimeSeriesSampler(obs, capacity=16, health=monitor)
        gauge.set(99.0)
        sampler.sample(now=0.0)
        assert obs.metrics.counter(
            "obs.health.events[q.depth.now]"
        ).value == 1
        kinds = [e["kind"] for e in obs.flight.events()]
        assert "health" in kinds

    def test_queue_depth_growth_fires(self):
        """The acceptance scenario: induced queue-depth growth trips a rule."""
        obs = Obs(enabled=True)
        gauge = obs.metrics.gauge("mpi.pending.depth")
        monitor = HealthMonitor(["mpi.pending.depth mean[3] > 25"])
        sampler = TimeSeriesSampler(obs, capacity=64, health=monitor)
        for i in range(10):  # depth grows 0, 10, 20, ... 90
            gauge.set(float(i * 10))
            sampler.sample(now=float(i))
        fired = [e for e in sampler.health_events.events() if e.fired]
        assert len(fired) == 1
        assert fired[0].metric == "mpi.pending.depth"


class TestExport:
    def test_prometheus_rendering(self):
        obs = _obs_with_metrics()
        obs.metrics.counter("component.cleaning.emit[quotes]").inc(7)
        text = render_prometheus(obs.metrics)
        assert "# TYPE mpi_sent_messages counter" in text
        assert "mpi_sent_messages 5" in text
        assert 'component_cleaning_emit{label="quotes"} 7' in text
        assert "mpi_pending_depth 2.0" in text
        assert "backtest_pair_day_seconds_count 1" in text
        assert 'backtest_pair_day_seconds{quantile="0.5"}' in text

    def test_prometheus_accepts_summary_dict(self):
        obs = _obs_with_metrics()
        assert render_prometheus(obs.metrics.summary()) == render_prometheus(
            obs.metrics
        )

    def test_jsonl_writer(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"b": 2, "a": 1})
            writer.write({"kind": "x"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"a": 1, "b": 2}
        # append mode by default
        with JsonlWriter(path) as writer:
            writer.write({"kind": "y"})
        assert len(path.read_text().splitlines()) == 3


class TestTelemetryHub:
    def test_register_is_idempotent_per_rank(self):
        hub = TelemetryHub()
        obs = Obs(enabled=True)
        s1 = hub.register(0, obs)
        s2 = hub.register(0, obs)
        assert s1 is s2
        assert len(hub.samplers) == 1

    def test_sample_all_shares_one_timestamp(self):
        obs_a, obs_b = Obs(enabled=True), Obs(enabled=True)
        obs_a.metrics.counter("c.x.n").inc()
        obs_b.metrics.counter("c.x.n").inc()
        a = TimeSeriesSampler(obs_a)
        b = TimeSeriesSampler(obs_b)
        sample_all([a, b])
        (ta, _), (tb, _) = a.last("c.x.n", 1), b.last("c.x.n", 1)
        assert ta.tolist() == tb.tolist()

    def test_render_top_frame_structure(self):
        hub = TelemetryHub(rules=["mpi.sent.messages last > 3"])
        obs = Obs(enabled=True)
        obs.metrics.counter("mpi.sent.messages").inc(10)
        obs.metrics.counter("component.cleaning.emit[quotes]").inc(4)
        obs.metrics.histogram(
            "component.cleaning.on_message.seconds"
        ).observe(0.2)
        hub.register(0, obs)
        hub.sample()
        frame = render_top(hub)
        assert "repro top" in frame
        assert "ranks 1" in frame
        assert "cleaning" in frame
        assert "health events:" in frame  # rule fired on registered rank


class TestRegistrySnapshot:
    """The shared race-tolerant walk behind the sampler and /telemetry."""

    def test_snapshot_shape_and_quantiles(self):
        from repro.obs import registry_snapshot

        obs = Obs(enabled=True)
        obs.metrics.counter("a.b").inc(3)
        obs.metrics.gauge("c.d").set(7.0)
        h = obs.metrics.histogram("e.f.seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = registry_snapshot(obs.metrics, quantiles=True)
        assert snap["counters"]["a.b"] == 3
        assert snap["gauges"]["c.d"]["last"] == 7.0
        entry = snap["histograms"]["e.f.seconds"]
        assert entry["count"] == 4 and entry["sum"] == 10.0
        assert entry["p50"] <= entry["p95"] <= entry["p99"]

    def test_snapshot_without_quantiles_is_lean(self):
        from repro.obs import registry_snapshot

        obs = Obs(enabled=True)
        obs.metrics.histogram("e.f.seconds").observe(1.0)
        entry = registry_snapshot(obs.metrics)["histograms"]["e.f.seconds"]
        assert "p99" not in entry

    def test_race_with_sampler_and_metric_creation(self):
        """Sampler ticking + writer creating metrics + snapshot reader,
        all concurrently: nothing crashes, snapshots stay well-formed."""
        import threading

        from repro.obs import registry_snapshot

        obs = Obs(enabled=True)
        sampler = TimeSeriesSampler(obs, capacity=64)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            i = 0
            while not stop.is_set():
                obs.metrics.counter(f"race.metric{i}").inc()
                obs.metrics.histogram(f"race.hist{i}.seconds").observe(0.01)
                i += 1

        def ticker():
            while not stop.is_set():
                try:
                    sampler.sample()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [
            threading.Thread(target=writer, daemon=True),
            threading.Thread(target=ticker, daemon=True),
        ]
        for t in threads:
            t.start()
        snapshots = 0
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            snap = registry_snapshot(obs.metrics, quantiles=True, retries=4)
            if snap is not None:
                snapshots += 1
                assert set(snap) == {"counters", "gauges", "histograms"}
                for entry in snap["histograms"].values():
                    assert entry["count"] >= 0
        stop.set()
        for t in threads:
            t.join(5.0)
        assert not errors, errors
        assert snapshots > 0
        assert sampler.n_samples > 0
