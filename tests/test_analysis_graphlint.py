"""Graph-spec linter tests: every rule has a triggering fixture, and the
shipped Figure-1 pipeline lints clean."""

import pytest

from repro.analysis import Severity, lint_graph
from repro.marketminer.graph import ComponentSpec, Edge, GraphSpec
from repro.marketminer.session import build_figure1_workflow
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def spec_of(components, edges, name="fixture"):
    return GraphSpec(
        name=name,
        components={c.name: c for c in components},
        edges=tuple(edges),
    )


SOURCE = ComponentSpec("src", output_ports=("out",))
SINK = ComponentSpec("sink", input_ports=("in",))


def rules(report):
    return {d.rule for d in report}


class TestStructuralRules:
    def test_clean_two_node_graph(self):
        report = lint_graph(
            spec_of([SOURCE, SINK], [Edge("src", "out", "sink", "in")])
        )
        assert len(report) == 0

    def test_empty_graph(self):
        report = lint_graph(spec_of([], []))
        assert rules(report) == {"graph.empty"}
        assert report.worst() is Severity.ERROR

    def test_no_source(self):
        loop = ComponentSpec("a", input_ports=("in",), output_ports=("out",))
        report = lint_graph(spec_of([loop], []))
        assert "graph.no-source" in rules(report)

    def test_cycle_reported_with_path(self):
        a = ComponentSpec("a", input_ports=("in",), output_ports=("out",))
        b = ComponentSpec("b", input_ports=("in",), output_ports=("out",))
        report = lint_graph(
            spec_of(
                [SOURCE, a, b],
                [
                    Edge("src", "out", "a", "in"),
                    Edge("a", "out", "b", "in"),
                    Edge("b", "out", "a", "in"),
                ],
            )
        )
        cycles = report.by_rule("graph.cycle")
        assert len(cycles) == 1
        assert "a" in cycles[0].message and "b" in cycles[0].message

    def test_unknown_component_and_port(self):
        report = lint_graph(
            spec_of(
                [SOURCE, SINK],
                [
                    Edge("src", "out", "ghost", "in"),
                    Edge("src", "bad_port", "sink", "in"),
                    Edge("src", "out", "sink", "in"),
                ],
            )
        )
        diags = report.by_rule("graph.unknown-endpoint")
        assert len(diags) == 2
        assert any("ghost" in d.message for d in diags)
        assert any("bad_port" in d.message for d in diags)

    def test_duplicate_edge(self):
        report = lint_graph(
            spec_of(
                [SOURCE, SINK],
                [
                    Edge("src", "out", "sink", "in"),
                    Edge("src", "out", "sink", "in", tag=4),
                ],
            )
        )
        assert len(report.by_rule("graph.duplicate-edge")) == 1

    def test_missing_input(self):
        report = lint_graph(spec_of([SOURCE, SINK], []))
        diags = report.by_rule("graph.missing-input")
        assert len(diags) == 1
        assert str(diags[0].location).endswith("sink.in")

    def test_unreachable_is_warning(self):
        orphan = ComponentSpec(
            "orphan", input_ports=("in",), output_ports=("out",)
        )
        island = ComponentSpec("island", output_ports=("out",))
        report = lint_graph(
            spec_of(
                [SOURCE, SINK, orphan, island],
                [
                    Edge("src", "out", "sink", "in"),
                    Edge("island", "out", "orphan", "in"),
                ],
            )
        )
        # 'island' is itself a source, so only nothing is orphaned here;
        # cut the island edge to strand 'orphan'.
        assert "graph.unreachable" not in rules(report)
        report = lint_graph(
            spec_of(
                [SOURCE, SINK, orphan],
                [
                    Edge("src", "out", "sink", "in"),
                    Edge("orphan", "out", "orphan", "in"),
                ],
            )
        )
        unreachable = report.by_rule("graph.unreachable")
        assert [d.severity for d in unreachable] == [Severity.WARNING]

    def test_negative_tag(self):
        report = lint_graph(
            spec_of([SOURCE, SINK], [Edge("src", "out", "sink", "in", tag=-3)])
        )
        assert len(report.by_rule("graph.tag-bounds")) == 1


class TestArityRules:
    def test_fan_in_cap(self):
        s2 = ComponentSpec("src2", output_ports=("out",))
        capped = ComponentSpec(
            "merge", input_ports=("in",), max_fan_in={"in": 1}
        )
        report = lint_graph(
            spec_of(
                [SOURCE, s2, capped],
                [
                    Edge("src", "out", "merge", "in"),
                    Edge("src2", "out", "merge", "in"),
                ],
            )
        )
        diags = report.by_rule("graph.fan-in")
        assert len(diags) == 1
        assert "2 inbound" in diags[0].message

    def test_fan_out_cap(self):
        capped_src = ComponentSpec(
            "src", output_ports=("out",), max_fan_out={"out": 1}
        )
        sink2 = ComponentSpec("sink2", input_ports=("in",))
        report = lint_graph(
            spec_of(
                [capped_src, SINK, sink2],
                [
                    Edge("src", "out", "sink", "in"),
                    Edge("src", "out", "sink2", "in"),
                ],
            )
        )
        assert len(report.by_rule("graph.fan-out")) == 1

    def test_uncapped_ports_allow_any_arity(self):
        sink2 = ComponentSpec("sink2", input_ports=("in",))
        report = lint_graph(
            spec_of(
                [SOURCE, SINK, sink2],
                [
                    Edge("src", "out", "sink", "in"),
                    Edge("src", "out", "sink2", "in"),
                ],
            )
        )
        assert len(report) == 0


class TestPlacementRules:
    def chain(self, n=3, weight=1.0, tags=None):
        comps = [ComponentSpec("c0", output_ports=("out",), weight=weight)]
        edges = []
        for i in range(1, n):
            comps.append(
                ComponentSpec(
                    f"c{i}",
                    input_ports=("in",),
                    output_ports=("out",),
                    weight=weight,
                )
            )
            edges.append(
                Edge(
                    f"c{i-1}", "out", f"c{i}", "in",
                    tag=None if tags is None else tags[i - 1],
                )
            )
        return spec_of(comps, edges)

    def test_idle_ranks_warning(self):
        report = lint_graph(self.chain(n=2), size=5)
        idle = report.by_rule("graph.idle-ranks")
        assert len(idle) == 3  # 2 components on 5 ranks -> 3 idle
        assert all(d.severity is Severity.WARNING for d in idle)

    def test_rank_budget_warning(self):
        # One rank must host >= 2 unit-weight components.
        report = lint_graph(self.chain(n=4), size=2, rank_budget=1.5)
        over = report.by_rule("graph.rank-budget")
        assert over
        assert "exceeds the rank budget" in over[0].message

    def test_tag_collision_on_shared_channel(self):
        # Every component lands on its own rank out of 4, so edges
        # c0->c1 and c2->c3 are on different channels; force a collision
        # by packing 4 components onto 2 ranks with equal tags.
        report = lint_graph(self.chain(n=4, tags=[7, 7, 7]), size=1)
        # All components on rank 0: all three edges share channel 0->0
        # with tag 7.
        collisions = report.by_rule("graph.tag-collision")
        assert len(collisions) == 1
        assert "3 edges" in collisions[0].message

    def test_distinct_tags_do_not_collide(self):
        report = lint_graph(self.chain(n=3, tags=[7, 8]), size=1)
        assert "graph.tag-collision" not in rules(report)

    def test_default_payload_routed_edges_never_collide(self):
        report = lint_graph(self.chain(n=4), size=1)
        assert "graph.tag-collision" not in rules(report)

    def test_placement_rules_skipped_without_size(self):
        report = lint_graph(self.chain(n=2))
        assert "graph.idle-ranks" not in rules(report)


class TestMalformedGraphGetsFullDiagnosis:
    def test_multiple_defects_reported_together(self):
        a = ComponentSpec("a", input_ports=("in",), output_ports=("out",))
        report = lint_graph(
            spec_of(
                [a],
                [
                    Edge("a", "out", "a", "in"),
                    Edge("a", "out", "ghost", "in"),
                ],
            )
        )
        found = rules(report)
        assert "graph.no-source" in found
        assert "graph.cycle" in found
        assert "graph.unknown-endpoint" in found


class TestShippedPipelineIsClean:
    @pytest.fixture()
    def figure1(self):
        market = SyntheticMarket(
            default_universe(4),
            SyntheticMarketConfig(trading_seconds=2400, quote_rate=0.9),
            seed=7,
        )
        grid = TimeGrid(30, trading_seconds=2400)
        params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
        return build_figure1_workflow(
            market, grid, list(market.universe.pairs()), [params]
        )

    def test_zero_diagnostics(self, figure1):
        report = lint_graph(figure1.spec(), size=7)
        assert len(report) == 0, report.render()

    def test_workflow_accepted_directly(self, figure1):
        assert len(lint_graph(figure1)) == 0
