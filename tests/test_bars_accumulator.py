"""Tests for bar accumulation (batch and streaming)."""

import numpy as np
import pytest

from repro.bars.accumulator import (
    StreamingBarAccumulator,
    accumulate_bam,
    accumulate_ohlc,
)
from repro.taq.types import QUOTE_DTYPE
from repro.util.timeutil import TimeGrid


def mk_quotes(rows):
    """rows: (t, symbol, bid, ask)"""
    arr = np.zeros(len(rows), dtype=QUOTE_DTYPE)
    for i, (t, sym, bid, ask) in enumerate(rows):
        arr[i] = (t, sym, bid, ask, 1, 1)
    return arr


GRID = TimeGrid(10, trading_seconds=50)  # 5 intervals


class TestAccumulateBam:
    def test_last_quote_wins_within_interval(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2), (5.0, 0, 11.0, 11.2), (9.9, 0, 12.0, 12.2)])
        out = accumulate_bam(q, GRID, 1)
        assert out[0, 0] == pytest.approx(12.1)

    def test_forward_fill_empty_intervals(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2), (45.0, 0, 20.0, 20.2)])
        out = accumulate_bam(q, GRID, 1)
        np.testing.assert_allclose(out[:, 0], [10.1, 10.1, 10.1, 10.1, 20.1])

    def test_back_fill_leading_gap(self):
        q = mk_quotes([(25.0, 0, 10.0, 10.2)])
        out = accumulate_bam(q, GRID, 1)
        np.testing.assert_allclose(out[:, 0], [10.1] * 5)

    def test_multiple_symbols_independent(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2), (0.0, 1, 50.0, 50.4), (15.0, 1, 51.0, 51.4)])
        out = accumulate_bam(q, GRID, 2)
        assert out.shape == (5, 2)
        np.testing.assert_allclose(out[:, 0], [10.1] * 5)
        np.testing.assert_allclose(out[:, 1], [50.2, 51.2, 51.2, 51.2, 51.2])

    def test_rejects_symbol_with_no_quotes(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2)])
        with pytest.raises(ValueError, match="no quotes"):
            accumulate_bam(q, GRID, 2)

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="empty"):
            accumulate_bam(np.empty(0, dtype=QUOTE_DTYPE), GRID, 1)

    def test_rejects_out_of_session_quote(self):
        q = mk_quotes([(55.0, 0, 10.0, 10.2)])
        with pytest.raises(ValueError, match="outside"):
            accumulate_bam(q, GRID, 1)


class TestAccumulateOhlc:
    def test_ohlc_fields(self):
        q = mk_quotes(
            [(0.0, 0, 10.0, 10.2), (3.0, 0, 12.0, 12.2), (6.0, 0, 9.0, 9.2), (9.0, 0, 11.0, 11.2)]
        )
        out = accumulate_ohlc(q, GRID, 1)
        bar = out[0, 0]
        assert bar["open"] == pytest.approx(10.1)
        assert bar["high"] == pytest.approx(12.1)
        assert bar["low"] == pytest.approx(9.1)
        assert bar["close"] == pytest.approx(11.1)
        assert bar["count"] == 4

    def test_empty_interval_carries_close(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2), (45.0, 0, 20.0, 20.2)])
        out = accumulate_ohlc(q, GRID, 1)
        mid_bar = out[2, 0]
        assert mid_bar["count"] == 0
        assert mid_bar["open"] == mid_bar["close"] == pytest.approx(10.1)

    def test_close_matches_bam(self):
        rng = np.random.default_rng(4)
        rows = []
        t = 0.0
        for _ in range(200):
            t += rng.random() * 0.5
            if t >= 50:
                break
            mid = 100 + rng.normal() * 0.1
            rows.append((t, int(rng.integers(0, 2)), mid - 0.05, mid + 0.05))
        q = mk_quotes(rows)
        ohlc = accumulate_ohlc(q, GRID, 2)
        bam = accumulate_bam(q, GRID, 2)
        np.testing.assert_allclose(ohlc["close"], bam)

    def test_high_ge_low(self):
        q = mk_quotes([(0.0, 0, 10.0, 10.2), (5.0, 0, 11.0, 11.2)])
        out = accumulate_ohlc(q, GRID, 1)
        assert np.all(out["high"] >= out["low"])


class TestStreamingEquivalence:
    def _stream(self, quotes, grid, n_symbols):
        acc = StreamingBarAccumulator(grid, n_symbols)
        rows = []
        for rec in quotes:
            s = grid.interval_of(float(rec["t"]))
            if s > acc.next_interval:
                rows.extend(acc.close_through(s - 1))
            acc.add_quote(
                float(rec["t"]), int(rec["symbol"]), float(rec["bid"]), float(rec["ask"])
            )
        rows.extend(acc.close_through(grid.smax - 1))
        return np.stack(rows)

    def test_matches_batch_when_all_symbols_quote_early(self):
        rng = np.random.default_rng(8)
        rows = [(0.1, 0, 10.0, 10.2), (0.2, 1, 20.0, 20.2)]
        t = 0.3
        while True:
            t += rng.random()
            if t >= 50:
                break
            mid = 15 + rng.normal()
            rows.append((t, int(rng.integers(0, 2)), mid - 0.1, mid + 0.1))
        q = mk_quotes(rows)
        streamed = self._stream(q, GRID, 2)
        batch = accumulate_ohlc(q, GRID, 2)
        for f in ("open", "high", "low", "close"):
            np.testing.assert_allclose(streamed[f], batch[f])
        np.testing.assert_array_equal(streamed["count"], batch["count"])

    def test_nan_head_before_first_quote(self):
        acc = StreamingBarAccumulator(GRID, 1)
        rows = acc.close_through(1)  # close 2 intervals with no quotes
        assert np.all(np.isnan(rows["close"]))

    def test_rejects_quote_for_closed_interval(self):
        acc = StreamingBarAccumulator(GRID, 1)
        acc.close_through(2)
        with pytest.raises(ValueError, match="already closed"):
            acc.add_quote(5.0, 0, 10.0, 10.2)

    def test_rejects_future_quote_without_close(self):
        acc = StreamingBarAccumulator(GRID, 1)
        with pytest.raises(ValueError, match="future interval"):
            acc.add_quote(25.0, 0, 10.0, 10.2)

    def test_rejects_double_close(self):
        acc = StreamingBarAccumulator(GRID, 1)
        acc.close_through(0)
        with pytest.raises(ValueError, match="already closed"):
            acc.close_through(0)

    def test_rejects_bad_symbol(self):
        acc = StreamingBarAccumulator(GRID, 1)
        with pytest.raises(ValueError, match="symbol"):
            acc.add_quote(0.0, 3, 10.0, 10.2)
