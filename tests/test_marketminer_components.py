"""Tests for the Figure-1 component library and full-pipeline session."""

import numpy as np
import pytest

from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.marketminer.components.collectors import (
    DbCollector,
    FileCollector,
    LiveCollector,
    QuoteDatabase,
)
from repro.marketminer.graph import Workflow
from repro.marketminer.scheduler import WorkflowRunner
from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.strategy.portfolio import RiskLimits
from repro.taq.io import write_taq_csv
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid
from tests.test_marketminer_graph import Sink

PARAMS = StrategyParams(m=30, w=15, y=5, rt=15, hp=10, st=5, d=0.002)


@pytest.fixture(scope="module")
def market():
    cfg = SyntheticMarketConfig(
        trading_seconds=23_400 // 4, quote_rate=0.95, outlier_prob=1e-3
    )
    return SyntheticMarket(default_universe(6), cfg, seed=21)


@pytest.fixture(scope="module")
def grid_time(market):
    return TimeGrid(30, trading_seconds=market.config.trading_seconds)


def collect_quotes(collector, grid_time):
    """Run a collector alone and gather its emitted interval batches."""
    wf = Workflow()
    wf.add(collector)
    sink = Sink()
    wf.add(sink)
    wf.connect(collector.name, "quotes", "sink", "in")
    from repro import mpi

    def spmd(comm):
        return WorkflowRunner(wf).run(comm)

    return mpi.run_spmd(spmd, size=1)[0]["sink"]


class TestCollectors:
    def test_live_collector_emits_every_interval(self, market, grid_time):
        batches = collect_quotes(LiveCollector(market, grid_time), grid_time)
        assert len(batches) == grid_time.smax
        assert [s for s, _ in batches] == list(range(grid_time.smax))

    def test_live_collector_batches_partition_day(self, market, grid_time):
        batches = collect_quotes(LiveCollector(market, grid_time), grid_time)
        total = sum(recs.size for _, recs in batches)
        cutoff = grid_time.smax * grid_time.delta_s
        quotes = market.quotes(0)
        assert total == int((quotes["t"] < cutoff).sum())
        for s, recs in batches:
            if recs.size:
                assert np.all(recs["t"] >= s * grid_time.delta_s)
                assert np.all(recs["t"] < (s + 1) * grid_time.delta_s)

    def test_file_collector_matches_live(self, market, grid_time, tmp_path):
        path = tmp_path / "day0.csv"
        write_taq_csv(path, market.quotes(0), market.universe)
        live = collect_quotes(LiveCollector(market, grid_time), grid_time)
        filed = collect_quotes(
            FileCollector(path, market.universe, grid_time), grid_time
        )
        assert len(live) == len(filed)
        for (s1, r1), (s2, r2) in zip(live, filed):
            assert s1 == s2
            np.testing.assert_array_equal(r1["symbol"], r2["symbol"])
            np.testing.assert_allclose(r1["bid"], r2["bid"])

    def test_db_collector_round_trip(self, market, grid_time):
        db = QuoteDatabase()
        db.store(0, market.quotes(0))
        assert db.days == [0]
        live = collect_quotes(LiveCollector(market, grid_time), grid_time)
        from_db = collect_quotes(DbCollector(db, grid_time, day=0), grid_time)
        for (s1, r1), (s2, r2) in zip(live, from_db):
            np.testing.assert_array_equal(r1, r2)

    def test_db_missing_day(self):
        with pytest.raises(KeyError):
            QuoteDatabase().load(3)


class TestFigure1Workflow:
    def test_topology_matches_figure(self, market, grid_time):
        wf = build_figure1_workflow(
            market, grid_time, [(0, 1)], [PARAMS], day=0
        )
        names = set(wf.components)
        assert names == {
            "live_collector",
            "cleaning",
            "bar_accumulator",
            "technical",
            "correlation",
            "pair_trading",
            "order_sink",
        }
        wf.validate()

    def test_rejects_mixed_specs(self, market, grid_time):
        with pytest.raises(ValueError, match="one correlation engine"):
            build_figure1_workflow(
                market,
                grid_time,
                [(0, 1)],
                [PARAMS, PARAMS.with_ctype("maronna")],
            )

    def test_rejects_delta_mismatch(self, market, grid_time):
        bad = StrategyParams(
            delta_s=15, m=30, w=15, y=5, rt=15, hp=10, st=5, d=0.002
        )
        with pytest.raises(ValueError, match="delta_s"):
            build_figure1_workflow(market, grid_time, [(0, 1)], [bad])

    def test_no_clean_variant(self, market, grid_time):
        wf = build_figure1_workflow(
            market, grid_time, [(0, 1)], [PARAMS], clean=False
        )
        assert "cleaning" not in wf.components
        wf.validate()


class TestFullSession:
    @pytest.fixture(scope="class")
    def session_results(self, market, grid_time):
        pairs = [(0, 1), (2, 3), (0, 4)]
        wf = build_figure1_workflow(market, grid_time, pairs, [PARAMS], day=0)
        return run_figure1_session(wf, size=3), pairs

    def test_every_interval_processed(self, session_results, grid_time):
        results, _ = session_results
        assert results["bar_accumulator"]["bars_emitted"] == grid_time.smax
        assert results["technical"]["returns_emitted"] == grid_time.smax - 1

    def test_correlation_matrices_after_warmup(self, session_results, grid_time):
        results, _ = session_results
        expected = (grid_time.smax - 1) - PARAMS.m + 1
        assert results["correlation"]["matrices_emitted"] == expected

    def test_trades_recorded_per_pair(self, session_results):
        results, pairs = session_results
        trades = results["pair_trading"]["trades"]
        assert set(trades) == {(p, 0) for p in pairs}

    def test_order_sink_balanced(self, session_results):
        results, _ = session_results
        sink = results["order_sink"]
        assert sink["open_pairs_at_close"] == 0
        assert sink["gross_notional_at_close"] == pytest.approx(0.0, abs=1e-9)
        n_trades = sum(
            len(v) for v in results["pair_trading"]["trades"].values()
        )
        # Two legs per entry + two per exit.
        assert sink["accepted_orders"] == 4 * n_trades

    def test_trade_tape_matches_trades(self, session_results):
        results, _ = session_results
        tape = results["order_sink"]["trade_tape"]
        n_trades = sum(
            len(v) for v in results["pair_trading"]["trades"].values()
        )
        assert len(tape) == n_trades

    def test_pipeline_matches_batch_backtester(self, market, grid_time, session_results):
        """The live pipeline reproduces the batch engines' trades exactly
        when every symbol quotes in interval 0 (no NaN head)."""
        results, pairs = session_results
        assert results["pair_trading"]["head"] == 0
        provider = BarProvider(market, grid_time, clean=True)
        store = SequentialBacktester(provider).run(pairs, [PARAMS], [0])
        for pair in pairs:
            pipeline_rets = [
                t.ret for t in results["pair_trading"]["trades"][(pair, 0)]
            ]
            np.testing.assert_allclose(
                pipeline_rets, store.cell(pair, 0, 0), atol=1e-12
            )

    def test_risk_limits_veto_entries(self, market, grid_time):
        wf = build_figure1_workflow(
            market,
            grid_time,
            [(0, 1), (2, 3), (0, 4)],
            [PARAMS],
            day=0,
            limits=RiskLimits(max_open_pairs=1),
        )
        results = run_figure1_session(wf, size=2)
        sink = results["order_sink"]
        total_entries = sum(
            len(v) for v in results["pair_trading"]["trades"].values()
        )
        if total_entries > 1:
            assert sink["entries_vetoed"] >= 0
        assert sink["open_pairs_at_close"] == 0
