"""Tests for the synthetic market generator."""

import numpy as np
import pytest

from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import validate_quote_array
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


@pytest.fixture(scope="module")
def market():
    cfg = SyntheticMarketConfig(trading_seconds=1800, quote_rate=0.7)
    return SyntheticMarket(default_universe(8), cfg, seed=123)


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticMarketConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("trading_seconds", 0),
            ("market_vol", -1.0),
            ("quote_rate", 1.5),
            ("outlier_prob", -0.1),
            ("spread_bps", 0.0),
            ("mean_size", 0.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises((ValueError, TypeError)):
            SyntheticMarketConfig(**{field: value})

    def test_rejects_inverted_beta_range(self):
        with pytest.raises(ValueError):
            SyntheticMarketConfig(beta_low=1.2, beta_high=0.8)

    def test_rejects_inverted_tau_range(self):
        with pytest.raises(ValueError):
            SyntheticMarketConfig(
                dislocation_tau_low=600, dislocation_tau_high=100
            )


class TestDeterminism:
    def test_same_seed_same_day(self, market):
        other = SyntheticMarket(default_universe(8), market.config, seed=123)
        np.testing.assert_array_equal(market.quotes(0), other.quotes(0))
        np.testing.assert_array_equal(market.mid_prices(1), other.mid_prices(1))

    def test_different_seeds_differ(self, market):
        other = SyntheticMarket(default_universe(8), market.config, seed=124)
        assert not np.array_equal(market.mid_prices(0), other.mid_prices(0))

    def test_different_days_differ(self, market):
        assert not np.array_equal(market.mid_prices(0), market.mid_prices(1))

    def test_rejects_negative_day(self, market):
        with pytest.raises(ValueError):
            market.mid_prices(-1)


class TestMidPrices:
    def test_shape(self, market):
        mids = market.mid_prices(0)
        assert mids.shape == (1801, 8)

    def test_positive_finite(self, market):
        mids = market.mid_prices(0)
        assert np.all(mids > 0)
        assert np.all(np.isfinite(mids))

    def test_starts_at_base_prices(self, market):
        mids = market.mid_prices(0)
        np.testing.assert_allclose(
            mids[0], market.universe.base_prices, rtol=1e-12
        )

    def test_same_sector_more_correlated(self):
        cfg = SyntheticMarketConfig(trading_seconds=23400 // 4)
        mkt = SyntheticMarket(default_universe(8), cfg, seed=5)
        corrs_same, corrs_cross = [], []
        for day in range(3):
            lr = np.diff(np.log(mkt.mid_prices(day)), axis=0)
            c = np.corrcoef(lr.T)
            sectors = mkt.universe.sectors
            for i in range(8):
                for j in range(i + 1, 8):
                    (corrs_same if sectors[i] == sectors[j] else corrs_cross).append(
                        c[i, j]
                    )
        assert np.mean(corrs_same) > np.mean(corrs_cross) + 0.05

    def test_dislocations_mean_revert(self):
        # With dislocations enabled, paths stay close to their
        # dislocation-free counterparts at long horizons (the jumps decay).
        cfg_on = SyntheticMarketConfig(
            trading_seconds=3600, dislocations_per_day=5.0
        )
        cfg_off = SyntheticMarketConfig(
            trading_seconds=3600, dislocations_per_day=0.0
        )
        u = default_universe(4)
        on = SyntheticMarket(u, cfg_on, seed=9).mid_prices(0)
        off = SyntheticMarket(u, cfg_off, seed=9).mid_prices(0)
        rel = np.abs(np.log(on) - np.log(off))
        # Jump sizes are <= 0.5%, several may stack; the deviation must stay
        # bounded (mean reversion) rather than accumulate like a random walk.
        assert rel.max() < 0.05


class TestQuotes:
    def test_valid_quote_array(self, market):
        q = market.quotes(0)
        validate_quote_array(q, n_symbols=8)

    def test_quote_rate_controls_volume(self):
        u = default_universe(4)
        lo = SyntheticMarket(
            u, SyntheticMarketConfig(trading_seconds=1800, quote_rate=0.1), seed=1
        ).quotes(0)
        hi = SyntheticMarket(
            u, SyntheticMarketConfig(trading_seconds=1800, quote_rate=0.9), seed=1
        ).quotes(0)
        assert hi.size > 5 * lo.size

    def test_expected_quote_count(self, market):
        q = market.quotes(0)
        expected = 1800 * 8 * market.config.quote_rate
        assert abs(q.size - expected) < 5 * np.sqrt(expected)

    def test_bids_below_asks(self, market):
        q = market.quotes(0, with_outliers=False)
        assert np.all(q["bid"] < q["ask"])

    def test_penny_prices(self, market):
        q = market.quotes(0)
        np.testing.assert_allclose(q["bid"] * 100, np.round(q["bid"] * 100), atol=1e-6)
        np.testing.assert_allclose(q["ask"] * 100, np.round(q["ask"] * 100), atol=1e-6)

    def test_bam_tracks_mid(self, market):
        q = market.quotes(0, with_outliers=False)
        mids = market.mid_prices(0)
        bam = 0.5 * (q["bid"] + q["ask"])
        ref = mids[q["t"].astype(int), q["symbol"]]
        np.testing.assert_allclose(bam, ref, rtol=5e-3)

    def test_outliers_injected(self):
        cfg = SyntheticMarketConfig(
            trading_seconds=3600, quote_rate=0.9, outlier_prob=5e-3
        )
        mkt = SyntheticMarket(default_universe(6), cfg, seed=77)
        dirty = mkt.quotes(0, with_outliers=True)
        clean = mkt.quotes(0, with_outliers=False)
        assert dirty.size == clean.size
        n_corrupted = np.sum(
            (dirty["bid"] != clean["bid"]) | (dirty["ask"] != clean["ask"])
        )
        expected = dirty.size * 5e-3
        assert 0 < n_corrupted < 4 * expected

    def test_outliers_preserve_positive_uncrossed(self):
        cfg = SyntheticMarketConfig(
            trading_seconds=3600, quote_rate=0.9, outlier_prob=1e-2
        )
        mkt = SyntheticMarket(default_universe(6), cfg, seed=78)
        q = mkt.quotes(0)
        assert np.all(q["bid"] > 0)
        assert np.all(q["ask"] > q["bid"])


class TestTrueBamGrid:
    def test_shape_and_alignment(self, market):
        grid = TimeGrid(30, trading_seconds=1800)
        bam = market.true_bam_grid(0, grid)
        assert bam.shape == (60, 8)
        mids = market.mid_prices(0)
        np.testing.assert_array_equal(bam[0], mids[30])
        np.testing.assert_array_equal(bam[-1], mids[1800])

    def test_rejects_oversized_grid(self, market):
        with pytest.raises(ValueError, match="longer"):
            market.true_bam_grid(0, TimeGrid(30, trading_seconds=3600))
