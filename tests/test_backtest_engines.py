"""Tests for the three backtest architectures and their equivalence.

The load-bearing invariant: Approaches 1 (matrix series), 2 (sequential
per-pair) and 3 (distributed integrated) produce byte-identical result
stores — they are architectures, not algorithms.
"""

import numpy as np
import pytest

from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.matrices import MatrixSeriesBacktester
from repro.backtest.results import ResultStore
from repro.backtest.runner import SequentialBacktester, backtest_pair_day
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = StrategyParams(m=30, w=15, y=5, rt=15, hp=10, st=5, d=0.002)


@pytest.fixture(scope="module")
def provider():
    cfg = SyntheticMarketConfig(trading_seconds=23_400 // 4, quote_rate=0.7)
    market = SyntheticMarket(default_universe(5), cfg, seed=404)
    grid = TimeGrid(30, trading_seconds=cfg.trading_seconds)
    return BarProvider(market, grid)


@pytest.fixture(scope="module")
def small_setup(provider):
    pairs = [(0, 1), (0, 2), (1, 3), (2, 4)]
    grid = [
        BASE,
        BASE.with_ctype("maronna"),
        BASE.with_ctype("combined"),
    ]
    days = [0, 1]
    return pairs, grid, days


class TestBarProvider:
    def test_prices_shape_positive(self, provider):
        prices = provider.prices(0)
        assert prices.shape == (provider.smax, 5)
        assert np.all(prices > 0)

    def test_cached(self, provider):
        a = provider.prices(0)
        b = provider.prices(0)
        assert a is b
        provider.clear_cache()
        c = provider.prices(0)
        assert c is not a
        np.testing.assert_array_equal(a, c)

    def test_returns_shape(self, provider):
        assert provider.returns(0).shape == (provider.smax - 1, 5)

    def test_cleaning_changes_prices(self):
        cfg = SyntheticMarketConfig(
            trading_seconds=3600, quote_rate=0.9, outlier_prob=5e-3
        )
        market = SyntheticMarket(default_universe(4), cfg, seed=3)
        grid = TimeGrid(30, trading_seconds=3600)
        dirty = BarProvider(market, grid, clean=False).prices(0)
        cleaned = BarProvider(market, grid, clean=True).prices(0)
        assert not np.allclose(dirty, cleaned)
        # Cleaned bars hug the true mid prices much more tightly.
        truth = market.true_bam_grid(0, grid)
        err_dirty = np.abs(np.log(dirty / truth)).max()
        err_clean = np.abs(np.log(cleaned / truth)).max()
        assert err_clean < err_dirty

    def test_rejects_oversized_grid(self):
        cfg = SyntheticMarketConfig(trading_seconds=600)
        market = SyntheticMarket(default_universe(3), cfg, seed=1)
        with pytest.raises(ValueError):
            BarProvider(market, TimeGrid(30, trading_seconds=1200))


class TestSequential:
    def test_covers_every_cell(self, provider, small_setup):
        pairs, grid, days = small_setup
        store = SequentialBacktester(provider).run(pairs, grid, days)
        assert len(store) == len(pairs) * len(grid) * len(days)
        assert store.pairs == sorted(pairs)

    def test_share_correlation_identical_results(self, provider, small_setup):
        pairs, grid, days = small_setup
        a = SequentialBacktester(provider, share_correlation=False).run(
            pairs, grid, days
        )
        b = SequentialBacktester(provider, share_correlation=True).run(
            pairs, grid, days
        )
        assert a == b

    def test_job_timings_recorded(self, provider, small_setup):
        pairs, grid, days = small_setup
        bt = SequentialBacktester(provider)
        bt.run(pairs, grid, days)
        assert len(bt.last_job_seconds) == len(pairs) * len(grid) * len(days)
        assert all(t >= 0 for t in bt.last_job_seconds)

    def test_validates_inputs(self, provider):
        bt = SequentialBacktester(provider)
        with pytest.raises(ValueError):
            bt.run([], [BASE], [0])
        with pytest.raises(ValueError):
            bt.run([(0, 9)], [BASE], [0])
        with pytest.raises(ValueError):
            bt.run([(0, 1)], [BASE], [0, 0])

    def test_backtest_pair_day_self_contained(self, provider):
        prices = provider.prices(0)[:, [0, 1]]
        trades = backtest_pair_day(prices, BASE)
        assert all(t.exit_s > t.entry_s for t in trades)


class TestMatrixSeries:
    def test_memory_accounting(self, provider, small_setup):
        pairs, grid, days = small_setup
        bt = MatrixSeriesBacktester(provider)
        bt.run(pairs, grid, days)
        # One shared (m=30, ctype) spec per treatment, n=5, smax windows.
        n_windows = provider.smax - 1 - 30 + 1
        expected = 3 * n_windows * 5 * 5 * 8
        assert bt.peak_matrix_bytes == expected

    def test_static_estimate_matches_paper_example(self):
        # Delta_s=30 => smax=780; M=100 => "680 such matrices" of 61x61.
        est = MatrixSeriesBacktester.matrix_series_bytes(780, 100, 61)
        assert est == 680 * 61 * 61 * 8

    def test_static_estimate_validates(self):
        with pytest.raises(ValueError):
            MatrixSeriesBacktester.matrix_series_bytes(50, 100, 61)


class TestEquivalence:
    def test_all_three_engines_agree(self, provider, small_setup):
        pairs, grid, days = small_setup
        seq = SequentialBacktester(provider).run(pairs, grid, days)
        mat = MatrixSeriesBacktester(provider).run(pairs, grid, days)

        def spmd(comm):
            return DistributedBacktester(provider).run(comm, pairs, grid, days)

        dist = mpi.run_spmd(spmd, size=3)[0]
        assert seq == mat
        assert seq == dist

    @pytest.mark.parametrize("size", [1, 2, 5])
    def test_distributed_rank_count_invariant(self, provider, small_setup, size):
        pairs, grid, days = small_setup

        def spmd(comm):
            return DistributedBacktester(provider).run(comm, pairs, grid, days)

        results = mpi.run_spmd(spmd, size=size)
        # Every rank holds the same merged store.
        assert all(r == results[0] for r in results)
        assert len(results[0]) == len(pairs) * len(grid) * len(days)

    def test_distributed_validates(self, provider):
        def spmd(comm):
            return DistributedBacktester(provider).run(comm, [], [BASE], [0])

        from repro.mpi.inproc import SpmdFailure

        with pytest.raises(SpmdFailure):
            mpi.run_spmd(spmd, size=1)


class TestBatchBackendEquivalence:
    """corr_backend="batch" must be bitwise-invisible in every engine."""

    @pytest.fixture(scope="class")
    def scalar_store(self, provider, small_setup):
        pairs, grid, days = small_setup
        return SequentialBacktester(provider, share_correlation=True).run(
            pairs, grid, days
        )

    def test_sequential_batch(self, provider, small_setup, scalar_store):
        pairs, grid, days = small_setup
        got = SequentialBacktester(
            provider, share_correlation=True, corr_backend="batch"
        ).run(pairs, grid, days)
        assert got == scalar_store

    def test_matrix_series_batch(self, provider, small_setup, scalar_store):
        pairs, grid, days = small_setup
        got = MatrixSeriesBacktester(provider, corr_backend="batch").run(
            pairs, grid, days
        )
        assert got == scalar_store

    @pytest.mark.parametrize("mpi_backend", ["thread", "process"])
    def test_distributed_batch_both_mpi_backends(
        self, provider, small_setup, scalar_store, mpi_backend
    ):
        pairs, grid, days = small_setup

        def spmd(comm):
            return DistributedBacktester(provider, corr_backend="batch").run(
                comm, pairs, grid, days
            )

        results = mpi.run_spmd(spmd, size=3, backend=mpi_backend)
        assert all(r == scalar_store for r in results)

    def test_engines_reject_unknown_backend(self, provider):
        with pytest.raises(ValueError, match="backend"):
            SequentialBacktester(
                provider, share_correlation=True, corr_backend="vector"
            )
        with pytest.raises(ValueError, match="backend"):
            MatrixSeriesBacktester(provider, corr_backend="vector")
        with pytest.raises(ValueError, match="backend"):
            DistributedBacktester(provider, corr_backend="vector")
