"""Tests for repro.obs.registry: metrics primitives and cross-rank merge."""

import math
import pickle

import numpy as np
import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    payload_nbytes,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_float_increments(self):
        c = Counter("x")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_tracks_last_and_max(self):
        g = Gauge("depth")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.last == 2.0
        assert g.max == 10.0
        assert g.n_sets == 3


class TestHistogramQuantiles:
    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0])
    @pytest.mark.parametrize("n", [1, 2, 5, 100, 1001])
    def test_matches_numpy_quantile(self, q, n):
        rng = np.random.default_rng(n)
        values = rng.exponential(size=n)
        h = Histogram("t")
        for v in values:
            h.observe(v)
        assert h.quantile(q) == pytest.approx(float(np.quantile(values, q)))

    def test_empty_is_nan(self):
        assert math.isnan(Histogram("t").quantile(0.5))
        assert Histogram("t").summary() == {"count": 0}

    def test_invalid_q(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("t").quantile(1.5)

    def test_summary_fields(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(10.0)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == pytest.approx(float(np.quantile([1, 2, 3, 4], 0.5)))
        assert set(s) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }


class TestDisabledRegistry:
    def test_hands_out_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_METRIC
        assert reg.gauge("b") is NULL_METRIC
        assert reg.histogram("c") is NULL_METRIC
        assert reg.timer("d") is NULL_METRIC

    def test_stays_empty_after_use(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(10)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(2.0)
        with reg.timer("d"):
            pass
        assert reg.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeSemantics:
    def _rank(self, counter, gauge, samples):
        reg = MetricsRegistry(enabled=True)
        reg.counter("msgs").inc(counter)
        reg.gauge("depth").set(gauge)
        for v in samples:
            reg.histogram("lat").observe(v)
        return reg.to_dict()

    def test_counters_add(self):
        merged = MetricsRegistry.merged(
            [self._rank(3, 1, []), self._rank(7, 2, [])]
        )
        assert merged.counters["msgs"].value == 10

    def test_gauges_keep_max(self):
        merged = MetricsRegistry.merged(
            [self._rank(0, 9, []), self._rank(0, 4, [])]
        )
        assert merged.gauges["depth"].max == 9.0
        assert merged.gauges["depth"].n_sets == 2

    def test_histogram_merge_is_exact(self):
        a = [0.1, 0.2, 0.7]
        b = [0.4, 0.5]
        merged = MetricsRegistry.merged(
            [self._rank(0, 0, a), self._rank(0, 0, b)]
        )
        pooled = a + b
        assert sorted(merged.histograms["lat"].values) == sorted(pooled)
        assert merged.histograms["lat"].quantile(0.5) == pytest.approx(
            float(np.quantile(pooled, 0.5))
        )

    def test_interchange_is_picklable(self):
        d = self._rank(1, 2, [0.5])
        assert pickle.loads(pickle.dumps(d)) == d


class TestPayloadNbytes:
    def test_numpy_exact(self):
        arr = np.zeros((4, 4))
        assert payload_nbytes(arr) == arr.nbytes

    def test_containers_sum(self):
        a, b = np.zeros(3), np.zeros(5)
        assert payload_nbytes((a, b)) == a.nbytes + b.nbytes
        assert payload_nbytes({"x": a}) >= a.nbytes

    def test_none_and_strings(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("abcd") == 4


class TestTimer:
    def test_records_elapsed(self):
        reg = MetricsRegistry(enabled=True)
        with reg.timer("t"):
            pass
        h = reg.histograms["t"]
        assert h.count == 1
        assert h.values[0] >= 0.0
