"""Repo AST-lint tests: each rule fires on a minimal violation, the
suppression comment works, and the repository's own sources are clean."""

import textwrap
from pathlib import Path

from repro.analysis import Severity, lint_source, lint_tree


def lint(code, path="pkg/mod.py"):
    return lint_source(textwrap.dedent(code), path)


def rules(diags):
    return [d.rule for d in diags]


class TestBareExcept:
    def test_fires(self):
        diags = lint(
            """
            def f():
                try:
                    g()
                except:
                    pass
            """
        )
        assert rules(diags) == ["repo.bare-except"]
        assert diags[0].severity is Severity.ERROR

    def test_typed_except_clean(self):
        assert lint(
            """
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """
        ) == []


class TestMutableDefault:
    def test_literal_default_fires(self):
        diags = lint("def f(x, acc=[]):\n    return acc\n")
        assert rules(diags) == ["repo.mutable-default"]

    def test_constructor_default_fires(self):
        diags = lint("def f(x, acc=dict()):\n    return acc\n")
        assert rules(diags) == ["repo.mutable-default"]

    def test_kwonly_default_fires(self):
        diags = lint("def f(*, acc={}):\n    return acc\n")
        assert rules(diags) == ["repo.mutable-default"]

    def test_none_default_clean(self):
        assert lint("def f(x, acc=None):\n    return acc\n") == []


class TestWallClock:
    def test_handler_reading_wall_clock_fires(self):
        diags = lint(
            """
            import time

            class Thing:
                def on_message(self, ctx, port, payload):
                    return time.time()
            """
        )
        assert rules(diags) == ["repo.wall-clock"]
        assert "session clock" in diags[0].hint

    def test_generate_handler_checked(self):
        diags = lint(
            """
            from datetime import datetime

            class Src:
                def generate(self, ctx):
                    ctx.emit("out", datetime.now())
            """
        )
        assert rules(diags) == ["repo.wall-clock"]

    def test_non_handler_method_clean(self):
        assert lint(
            """
            import time

            class Timer:
                def sample(self):
                    return time.time()
            """
        ) == []

    def test_handler_without_wall_clock_clean(self):
        assert lint(
            """
            class Thing:
                def on_message(self, ctx, port, payload):
                    ctx.emit("out", payload)
            """
        ) == []


class TestMetricName:
    def test_bad_literal_fires(self):
        diags = lint('obs.counter("BadName")\n')
        assert rules(diags) == ["repo.metric-name"]
        assert diags[0].severity is Severity.WARNING

    def test_missing_area_prefix_fires(self):
        diags = lint('obs.counter("messages")\n')
        assert rules(diags) == ["repo.metric-name"]

    def test_good_literal_clean(self):
        assert lint('obs.counter("mpi.sent.bytes")\n') == []

    def test_bucketed_name_clean(self):
        assert lint('obs.gauge("corr.block[0].pairs")\n') == []

    def test_fstring_prefix_checked(self):
        assert lint('obs.timer(f"rank.{r}.seconds")\n') == []
        diags = lint('obs.timer(f"{r}.seconds")\n')
        # No leading literal chunk -> nothing checkable; stays quiet.
        assert diags == []
        diags = lint('obs.timer(f"Rank{r}.seconds")\n')
        assert rules(diags) == ["repo.metric-name"]


class TestMpiBounds:
    def test_unchecked_entry_point_fires(self):
        diags = lint(
            """
            class LooseComm:
                def send(self, obj, dest, tag=0):
                    self._boxes[dest].put(obj)
            """,
            path="src/repro/mpi/loose.py",
        )
        assert rules(diags) == ["repo.mpi-bounds"]

    def test_checked_entry_point_clean(self):
        assert lint(
            """
            class SafeComm:
                def send(self, obj, dest, tag=0):
                    self._check_peer(dest)
                    self._check_user_tag(tag)
                    self._boxes[dest].put(obj)
            """,
            path="src/repro/mpi/safe.py",
        ) == []

    def test_delegating_entry_point_clean(self):
        assert lint(
            """
            class SafeComm:
                def isend(self, obj, dest, tag=0):
                    self.send(obj, dest, tag)
                    return Request(done=True)
            """,
            path="src/repro/mpi/safe.py",
        ) == []

    def test_abstract_declaration_exempt(self):
        assert lint(
            """
            class Comm:
                def send(self, obj, dest, tag=0):
                    raise NotImplementedError
            """,
            path="src/repro/mpi/api.py",
        ) == []

    def test_rule_scoped_to_mpi_tree(self):
        assert lint(
            """
            class Mailer:
                def send(self, obj, dest, tag=0):
                    post(obj, dest)
            """,
            path="src/repro/util/mailer.py",
        ) == []


class TestSuppression:
    def test_line_suppression(self):
        code = (
            "def f(x, acc=[]):  # repro-lint: disable=repo.mutable-default\n"
            "    return acc\n"
        )
        assert lint(code) == []

    def test_disable_all(self):
        code = "def f(x, acc=[]):  # repro-lint: disable=all\n    return acc\n"
        assert lint(code) == []

    def test_unrelated_suppression_does_not_hide(self):
        code = (
            "def f(x, acc=[]):  # repro-lint: disable=repo.bare-except\n"
            "    return acc\n"
        )
        assert rules(lint(code)) == ["repo.mutable-default"]


class TestSyntaxErrorHandling:
    def test_unparsable_module_reported_not_raised(self):
        diags = lint_source("def broken(:\n", "pkg/broken.py")
        assert rules(diags) == ["repo.syntax"]


class TestRepositoryIsClean:
    def test_src_tree_has_zero_diagnostics(self):
        root = Path(__file__).resolve().parent.parent / "src"
        report = lint_tree(root)
        assert len(report) == 0, report.render()


class TestStoreBounds:
    def test_unchecked_entry_point_fires(self):
        diags = lint(
            """
            class LooseSegment:
                def read_block(self, block):
                    return self._blocks[block]
            """,
            path="src/repro/store/loose.py",
        )
        assert rules(diags) == ["repo.store-bounds"]
        assert diags[0].severity is Severity.ERROR

    def test_checked_entry_point_clean(self):
        assert lint(
            """
            class SafeSegment:
                def read_block(self, block):
                    self._check_block(block)
                    return self._blocks[block]
            """,
            path="src/repro/store/safe.py",
        ) == []

    def test_delegating_entry_point_clean(self):
        assert lint(
            """
            class SafeReader:
                def day_quotes(self, day):
                    return merge(self.scan(days=[day]))
            """,
            path="src/repro/store/safe.py",
        ) == []

    def test_abstract_declaration_exempt(self):
        assert lint(
            """
            class Reader:
                def scan(self, columns=None):
                    raise NotImplementedError
            """,
            path="src/repro/store/api.py",
        ) == []

    def test_rule_scoped_to_store_tree(self):
        assert lint(
            """
            class Elsewhere:
                def read_block(self, block):
                    return self._blocks[block]
            """,
            path="src/repro/taq/elsewhere.py",
        ) == []


class TestStatefulSnapshot:
    def test_mutation_outside_init_fires(self):
        diags = lint(
            """
            class Counter(Component):
                def on_message(self, ctx, port, payload):
                    self.count = self.count + 1
            """
        )
        assert rules(diags) == ["repo.stateful-snapshot"]
        assert "snapshot" in diags[0].message

    def test_mutable_container_in_init_fires(self):
        diags = lint(
            """
            class Buffer(Component):
                def __init__(self):
                    super().__init__(name="buffer")
                    self._rows = []
            """
        )
        assert rules(diags) == ["repo.stateful-snapshot"]

    def test_both_methods_clean(self):
        assert lint(
            """
            class Buffer(Component):
                def __init__(self):
                    super().__init__(name="buffer")
                    self._rows = []

                def snapshot(self):
                    return {"rows": list(self._rows)}

                def restore(self, state):
                    self._rows = list(state["rows"])
            """
        ) == []

    def test_snapshot_without_restore_fires(self):
        diags = lint(
            """
            class Half(Component):
                def __init__(self):
                    self._rows = []

                def snapshot(self):
                    return {"rows": list(self._rows)}
            """
        )
        assert rules(diags) == ["repo.stateful-snapshot"]

    def test_stateless_component_clean(self):
        assert lint(
            """
            class Relay(Component):
                def __init__(self):
                    super().__init__(name="relay")
                    self.scale = 2.0

                def on_message(self, ctx, port, payload):
                    ctx.emit("out", payload * self.scale)
            """
        ) == []

    def test_non_component_class_ignored(self):
        assert lint(
            """
            class Accumulator:
                def __init__(self):
                    self._rows = []

                def add(self, row):
                    self._rows.append(row)
                    self.dirty = True
            """
        ) == []

    def test_suppression_comment_works(self):
        assert lint(
            """
            class Ephemeral(Component):  # repro-lint: disable=repo.stateful-snapshot
                def __init__(self):
                    self._rows = []
            """
        ) == []


class TestObsBounded:
    LIVE = "src/repro/obs/live/mod.py"

    def test_unbounded_append_fires_in_live_tree(self):
        diags = lint(
            """
            class Sampler:
                def __init__(self):
                    self.events = []

                def tick(self, ev):
                    self.events.append(ev)
            """,
            path=self.LIVE,
        )
        assert rules(diags) == ["repo.obs-bounded"]
        assert diags[0].severity is Severity.ERROR
        assert "Sampler.events" in diags[0].message

    def test_ring_backed_attr_clean(self):
        assert lint(
            """
            class Sampler:
                def __init__(self):
                    self.events = EventRing(600)
                    self.values = rings.SeriesRing(600)

                def tick(self, ev, t, v):
                    self.events.append(ev)
                    self.values.push(t, v)
            """,
            path=self.LIVE,
        ) == []

    def test_extend_also_fires(self):
        diags = lint(
            """
            class Hub:
                def __init__(self):
                    self.frames = []

                def flush(self, more):
                    self.frames.extend(more)
            """,
            path=self.LIVE,
        )
        assert rules(diags) == ["repo.obs-bounded"]

    def test_outside_live_tree_ignored(self):
        assert lint(
            """
            class Sampler:
                def __init__(self):
                    self.events = []

                def tick(self, ev):
                    self.events.append(ev)
            """,
            path="src/repro/taq/mod.py",
        ) == []

    def test_suppression_comment_works(self):
        assert lint(
            """
            class Monitor:
                def __init__(self):
                    self.rules = []

                def add(self, rule):
                    self.rules.append(rule)  # repro-lint: disable=repo.obs-bounded
            """,
            path=self.LIVE,
        ) == []

class TestPublicDocstring:
    """The corr/backtest packages must document their public surface."""

    DOCUMENTED = '''
        """Module docstring."""

        class Engine:
            """Class docstring."""

            def run(self):
                """Method docstring."""

            def _internal(self):
                return 1

        def helper():
            """Function docstring."""
    '''

    def test_missing_module_docstring_fires(self):
        diags = lint("x = 1\n", path="src/repro/corr/mod.py")
        assert rules(diags) == ["repo.public-docstring"]
        assert diags[0].severity is Severity.ERROR
        assert "module" in diags[0].message

    def test_missing_class_function_method_fire(self):
        diags = lint(
            '''
            """Module docstring."""

            class Engine:
                def run(self):
                    """Documented."""

            def helper():
                pass
            ''',
            path="src/repro/backtest/mod.py",
        )
        assert rules(diags) == [
            "repo.public-docstring", "repo.public-docstring"
        ]
        assert "'Engine'" in diags[0].message
        assert "'helper'" in diags[1].message

    def test_documented_module_clean(self):
        assert lint(self.DOCUMENTED, path="src/repro/corr/mod.py") == []

    def test_private_names_exempt(self):
        assert lint(
            '''
            """Module docstring."""

            def _private():
                pass

            class _Hidden:
                def run(self):
                    pass
            ''',
            path="src/repro/corr/mod.py",
        ) == []

    def test_rule_scoped_to_corr_and_backtest(self):
        assert lint("x = 1\n", path="src/repro/taq/mod.py") == []
        assert lint("x = 1\n", path="src/repro/obs/mod.py") == []

    def test_suppression_works(self):
        diags = lint(
            '''
            """Module docstring."""

            def helper():  # repro-lint: disable=repo.public-docstring
                pass
            ''',
            path="src/repro/corr/mod.py",
        )
        assert diags == []


class TestServeBounded:
    """Serving-layer state must be ring-backed, capped or evicted."""

    SERVE = "src/repro/serve/mod.py"

    def test_unbounded_append_fires(self):
        diags = lint(
            """
            class Session:
                def __init__(self):
                    self.audit = []

                def record(self, entry):
                    self.audit.append(entry)
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]
        assert diags[0].severity is Severity.ERROR
        assert "Session.audit" in diags[0].message

    def test_ring_backed_attr_clean(self):
        assert lint(
            """
            class Session:
                def __init__(self):
                    self.audit = EventRing(1024)

                def record(self, entry):
                    self.audit.append(entry)
            """,
            path=self.SERVE,
        ) == []

    def test_queue_without_maxsize_fires(self):
        diags = lint(
            """
            import queue

            class Session:
                def __init__(self):
                    self.commands = queue.Queue()
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]
        assert "without a positive maxsize" in diags[0].message

    def test_queue_with_zero_maxsize_fires(self):
        diags = lint(
            """
            import queue

            class Session:
                def __init__(self):
                    self.commands = queue.Queue(maxsize=0)
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]

    def test_queue_with_maxsize_clean(self):
        assert lint(
            """
            import queue

            class Session:
                def __init__(self, slots):
                    self.commands = queue.Queue(maxsize=slots)
                    self.other = queue.Queue(32)
            """,
            path=self.SERVE,
        ) == []

    def test_simple_queue_always_fires(self):
        diags = lint(
            """
            import queue

            class Session:
                def __init__(self):
                    self.commands = queue.SimpleQueue()
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]
        assert "cannot be bounded" in diags[0].message

    def test_deque_with_maxlen_clean_without_fires(self):
        diags = lint(
            """
            from collections import deque

            class Session:
                def __init__(self):
                    self.recent = deque(maxlen=64)
                    self.all_time = deque()

                def push(self, x):
                    self.recent.append(x)
                    self.all_time.append(x)
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]
        assert "all_time" in diags[0].message

    def test_dict_growth_without_eviction_fires(self):
        diags = lint(
            """
            class Manager:
                def __init__(self):
                    self.sessions = {}

                def submit(self, sid, session):
                    self.sessions[sid] = session
            """,
            path=self.SERVE,
        )
        assert rules(diags) == ["repo.serve-bounded"]
        assert "without any eviction path" in diags[0].message

    def test_dict_growth_with_eviction_clean(self):
        assert lint(
            """
            class Manager:
                def __init__(self):
                    self.sessions = {}

                def submit(self, sid, session):
                    self.sessions[sid] = session

                def prune(self, sid):
                    del self.sessions[sid]
            """,
            path=self.SERVE,
        ) == []

    def test_pop_counts_as_eviction(self):
        assert lint(
            """
            class Manager:
                def __init__(self):
                    self.jobs = {}

                def put(self, k, v):
                    self.jobs[k] = v

                def take(self, k):
                    return self.jobs.pop(k)
            """,
            path=self.SERVE,
        ) == []

    def test_outside_serve_tree_ignored(self):
        assert lint(
            """
            class Manager:
                def __init__(self):
                    self.items = []

                def add(self, x):
                    self.items.append(x)
            """,
            path="src/repro/taq/mod.py",
        ) == []

    def test_suppression_comment_works(self):
        assert lint(
            """
            class Manager:
                def __init__(self):
                    self.caps = {}

                def set(self, user, v):
                    self.caps[user] = v  # repro-lint: disable=repo.serve-bounded
            """,
            path=self.SERVE,
        ) == []


class TestTopologyEpoch:
    """`repo.topology-epoch`: only elastic/world.py touches comm worlds."""

    ROGUE = """
        from repro.mpi.launcher import run_spmd, ThreadBackend

        def sneak(spmd):
            return run_spmd(spmd, 4, ThreadBackend())
        """

    def test_world_import_fires_in_elastic(self):
        diags = lint(self.ROGUE, path="src/repro/elastic/rogue.py")
        assert "repo.topology-epoch" in rules(diags)
        # Two imported primitives, one backend construction, one call.
        assert rules(diags).count("repo.topology-epoch") >= 3

    def test_module_import_fires(self):
        diags = lint(
            "import repro.mpi.procs\n",
            path="src/repro/elastic/rogue.py",
        )
        assert rules(diags) == ["repo.topology-epoch"]

    def test_world_py_is_exempt(self):
        assert lint(self.ROGUE, path="src/repro/elastic/world.py") == []

    def test_silent_outside_elastic(self):
        assert lint(self.ROGUE, path="src/repro/faults/helper.py") == []

    def test_suppression_comment_works(self):
        diags = lint(
            "import repro.mpi.inproc  "
            "# repro-lint: disable=repo.topology-epoch\n",
            path="src/repro/elastic/rogue.py",
        )
        assert diags == []
