"""Tests for treatment summaries (Tables III-V, Figure 2)."""

import numpy as np
import pytest

from repro.backtest.results import ResultStore
from repro.corr.measures import CorrelationType
from repro.metrics.summary import (
    boxplot_by_treatment,
    format_treatment_table,
    treatment_samples,
    treatment_summaries,
)
from repro.strategy.params import StrategyParams


def tiny_study():
    """Hand-built store: 2 pairs x (2 ctypes x 2 levels) x 2 days."""
    grid = [
        StrategyParams(ctype="pearson", m=10, w=5, y=3, rt=8, hp=6, st=4),
        StrategyParams(ctype="pearson", m=20, w=5, y=3, rt=8, hp=6, st=4),
        StrategyParams(ctype="maronna", m=10, w=5, y=3, rt=8, hp=6, st=4),
        StrategyParams(ctype="maronna", m=20, w=5, y=3, rt=8, hp=6, st=4),
    ]
    store = ResultStore()
    returns = {
        # pair (0,1): pearson levels win, maronna levels lose
        ((0, 1), 0): [0.02, 0.01],
        ((0, 1), 1): [0.04],
        ((0, 1), 2): [-0.01],
        ((0, 1), 3): [-0.02, 0.01],
        # pair (2,3): everything flat-ish
        ((2, 3), 0): [0.00, 0.01],
        ((2, 3), 1): [0.01],
        ((2, 3), 2): [0.00],
        ((2, 3), 3): [0.01, -0.01],
    }
    for (pair, k), rs in returns.items():
        for day in (0, 1):
            half = rs if day == 0 else []
            store.add(pair, k, day, half)
    return store, grid


class TestTreatmentSamples:
    def test_returns_sample_shapes(self):
        store, grid = tiny_study()
        samples = treatment_samples(store, grid, "returns")
        assert set(samples) == {CorrelationType.PEARSON, CorrelationType.MARONNA}
        for vals in samples.values():
            assert vals.shape == (2,)  # one observation per pair

    def test_returns_use_gross_convention(self):
        # Samples are mean-over-levels of total returns, plus one.
        store, grid = tiny_study()
        samples = treatment_samples(store, grid, "returns")
        k0 = store.total_return((0, 1), 0)
        k1 = store.total_return((0, 1), 1)
        assert samples[CorrelationType.PEARSON][0] == pytest.approx(
            (k0 + k1) / 2 + 1.0
        )

    def test_pearson_beats_maronna_in_tiny_study(self):
        store, grid = tiny_study()
        samples = treatment_samples(store, grid, "returns")
        assert (
            samples[CorrelationType.PEARSON].mean()
            > samples[CorrelationType.MARONNA].mean()
        )

    def test_drawdown_nonnegative(self):
        store, grid = tiny_study()
        samples = treatment_samples(store, grid, "drawdown")
        for vals in samples.values():
            assert np.all(vals >= 0)

    def test_winloss_nonnegative(self):
        store, grid = tiny_study()
        samples = treatment_samples(store, grid, "winloss")
        for vals in samples.values():
            assert np.all(vals >= 0)

    def test_unknown_measure(self):
        store, grid = tiny_study()
        with pytest.raises(ValueError, match="unknown measure"):
            treatment_samples(store, grid, "sortino")

    def test_unbalanced_grid_rejected(self):
        store, grid = tiny_study()
        with pytest.raises(ValueError, match="unequal level counts"):
            treatment_samples(store, grid[:3], "returns")


class TestSummariesAndTables:
    def test_summary_stats_match_sample(self):
        store, grid = tiny_study()
        summaries = treatment_summaries(store, grid, "returns")
        s = summaries[CorrelationType.PEARSON]
        assert s.stats.mean == pytest.approx(s.samples.mean())
        assert s.stats.n == 2

    def test_format_returns_table_has_sharpe(self):
        store, grid = tiny_study()
        text = format_treatment_table(
            treatment_summaries(store, grid, "returns"), "Table III"
        )
        assert "Sharpe Ratio" in text
        assert "Pearson" in text and "Maronna" in text

    def test_format_drawdown_table_no_sharpe_percent(self):
        store, grid = tiny_study()
        text = format_treatment_table(
            treatment_summaries(store, grid, "drawdown"), "Table IV"
        )
        assert "Sharpe" not in text
        assert "%" in text

    def test_format_rejects_mixed_measures(self):
        store, grid = tiny_study()
        a = treatment_summaries(store, grid, "returns")
        b = treatment_summaries(store, grid, "winloss")
        mixed = {
            CorrelationType.PEARSON: a[CorrelationType.PEARSON],
            CorrelationType.MARONNA: b[CorrelationType.MARONNA],
        }
        with pytest.raises(ValueError, match="mixed measures"):
            format_treatment_table(mixed, "broken")

    def test_format_rejects_empty(self):
        with pytest.raises(ValueError):
            format_treatment_table({}, "empty")


class TestBoxplots:
    def test_boxplot_stats_per_treatment(self, small_sweep):
        store, grid = small_sweep
        boxes = boxplot_by_treatment(store, grid, "returns")
        assert set(boxes) == {
            CorrelationType.PEARSON,
            CorrelationType.MARONNA,
            CorrelationType.COMBINED,
        }
        for b in boxes.values():
            assert b.q1 <= b.median <= b.q3


class TestFullSweepTables:
    def test_all_three_tables_render(self, small_sweep):
        store, grid = small_sweep
        for measure, title in (
            ("returns", "Table III"),
            ("drawdown", "Table IV"),
            ("winloss", "Table V"),
        ):
            text = format_treatment_table(
                treatment_summaries(store, grid, measure), title
            )
            assert title in text
            assert "Combined" in text

    def test_returns_centred_near_one(self, small_sweep):
        # Gross monthly returns ~ 1.x; tiny sweeps should stay near 1.0.
        store, grid = small_sweep
        samples = treatment_samples(store, grid, "returns")
        for vals in samples.values():
            assert 0.8 < vals.mean() < 1.3
