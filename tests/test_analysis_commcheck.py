"""Dynamic comm-checker tests: tracing, leak/race/collective/cycle
detection, and replay confirmation of a flagged wildcard race.

SPMD functions are module-level so the same fixtures can run on the
process backend where needed (spawn must pickle them).
"""

import pytest

from repro.analysis import (
    CommTracer,
    check_collectives,
    check_leaks,
    check_sync_cycles,
    check_trace,
    find_wildcard_races,
    replay_race,
    run_traced,
)
from repro.mpi.api import ANY_SOURCE
from repro.mpi.collectives import barrier, bcast


# -- SPMD fixtures ----------------------------------------------------------


def _pingpong(comm):
    if comm.rank == 0:
        comm.send("hi", 1, tag=3)
        return comm.recv(source=1, tag=4)
    if comm.rank == 1:
        msg = comm.recv(source=0, tag=3)
        comm.send(msg + " back", 0, tag=4)
        return msg
    return None


def _leaky(comm):
    if comm.rank == 0:
        comm.send("wanted", 1, tag=1)
        comm.send("orphan-a", 1, tag=2)  # never received
        comm.send("orphan-b", 1, tag=2)  # never received
    elif comm.rank == 1:
        return comm.recv(source=0, tag=1)
    return None


def _wildcard_race(comm):
    if comm.rank == 0:
        first = comm.recv(source=ANY_SOURCE, tag=7)
        second = comm.recv(source=ANY_SOURCE, tag=7)
        return [first, second]
    comm.send(comm.rank, 0, tag=7)
    return None


def _named_sources(comm):
    """Same shape as _wildcard_race but with named sources: no race."""
    if comm.rank == 0:
        return [comm.recv(source=1, tag=7), comm.recv(source=2, tag=7)]
    comm.send(comm.rank, 0, tag=7)
    return None


def _fifo_same_source(comm):
    """Two sends from ONE source into a wildcard recv: FIFO, no race."""
    if comm.rank == 0:
        return [
            comm.recv(source=ANY_SOURCE, tag=7),
            comm.recv(source=ANY_SOURCE, tag=7),
        ]
    if comm.rank == 1:
        comm.send("a", 0, tag=7)
        comm.send("b", 0, tag=7)
    return None


def _causally_ordered(comm):
    """Rank 2 sends only after seeing rank 1's message relayed by rank 0:
    the two sends into the wildcard are ordered, not concurrent."""
    if comm.rank == 0:
        first = comm.recv(source=ANY_SOURCE, tag=7)
        comm.send("go", 2, tag=8)
        second = comm.recv(source=ANY_SOURCE, tag=7)
        return [first, second]
    if comm.rank == 1:
        comm.send("from-1", 0, tag=7)
    if comm.rank == 2:
        comm.recv(source=0, tag=8)
        comm.send("from-2", 0, tag=7)
    return None


def _lopsided_collective(comm):
    barrier(comm)
    if comm.rank == 0:
        barrier(comm)  # extra invocation only on rank 0
    return None


def _head_to_head(comm):
    peer = 1 - comm.rank
    comm.send(f"r{comm.rank}", peer, tag=5)
    return comm.recv(source=peer, tag=5)


def _bcast_chain(comm):
    return bcast(comm, "payload" if comm.rank == 0 else None, root=0)


# -- tests ------------------------------------------------------------------


class TestTracing:
    def test_clean_program_has_no_diagnostics(self):
        run = run_traced(_pingpong, 2, default_timeout=10.0)
        assert run.results == ["hi back", "hi"]
        report = check_trace(run.trace)
        assert len(report) == 0, report.render()

    def test_events_carry_vector_clocks(self):
        run = run_traced(_pingpong, 2, default_timeout=10.0)
        sends = run.trace.sends()
        recvs = run.trace.recvs()
        assert len(sends) == 2 and len(recvs) == 2
        reply = next(s for s in sends if s.rank == 1)
        # Rank 1's reply causally follows rank 0's first send.
        first = next(s for s in sends if s.rank == 0)
        assert reply.clock[0] >= first.clock[0]

    def test_recv_events_record_the_matched_send(self):
        run = run_traced(_pingpong, 2, default_timeout=10.0)
        for r in run.trace.recvs():
            assert r.matched_key in {s.key for s in run.trace.sends()}

    def test_collectives_traced(self):
        run = run_traced(_bcast_chain, 3, default_timeout=10.0)
        assert run.results == ["payload"] * 3
        names = {ev.name for ev in run.trace.collectives()}
        assert "bcast" in names
        report = check_trace(run.trace)
        assert len(report) == 0, report.render()

    def test_tracer_detaches_after_run(self):
        # A second untraced run must not see tracer state: run the same
        # program through the plain launcher and assert it still works.
        from repro.mpi.launcher import run_spmd

        run_traced(_pingpong, 2, default_timeout=10.0)
        assert run_spmd(_pingpong, size=2, default_timeout=10.0) == [
            "hi back",
            "hi",
        ]


class TestLeakDetection:
    def test_leaked_messages_flagged(self):
        run = run_traced(_leaky, 2, default_timeout=10.0)
        leaks = check_leaks(run.trace)
        assert len(leaks) == 1  # grouped by (rank, dest, tag, context)
        assert "2 message(s)" in leaks[0].message
        assert "tag 2" in leaks[0].message

    def test_consumed_messages_not_flagged(self):
        run = run_traced(_pingpong, 2, default_timeout=10.0)
        assert check_leaks(run.trace) == []


class TestWildcardRaces:
    def test_concurrent_senders_flagged(self):
        run = run_traced(_wildcard_race, 3, default_timeout=10.0)
        races = find_wildcard_races(run.trace)
        assert races, "two concurrent senders must race on the wildcard"
        race = races[0]
        assert race.recv_rank == 0
        assert race.matched[0] != race.alternative_source

    def test_named_sources_do_not_race(self):
        run = run_traced(_named_sources, 3, default_timeout=10.0)
        assert find_wildcard_races(run.trace) == []

    def test_same_source_fifo_does_not_race(self):
        run = run_traced(_fifo_same_source, 2, default_timeout=10.0)
        assert find_wildcard_races(run.trace) == []

    def test_causally_ordered_senders_do_not_race(self):
        run = run_traced(_causally_ordered, 3, default_timeout=10.0)
        assert find_wildcard_races(run.trace) == []

    def test_race_surfaces_as_warning_diagnostic(self):
        run = run_traced(_wildcard_race, 3, default_timeout=10.0)
        report = check_trace(run.trace)
        diags = report.by_rule("comm.wildcard-race")
        assert diags
        assert "schedule-dependent" in diags[0].message


class TestReplayConfirmation:
    def test_replay_confirms_real_race(self):
        run = run_traced(_wildcard_race, 3, default_timeout=10.0)
        races = find_wildcard_races(run.trace)
        assert races
        result = replay_race(
            _wildcard_race, 3, races[0], default_timeout=10.0
        )
        assert result.confirmed, result.reason
        assert bool(result) is True
        # The pinned run actually delivered the alternative first.
        rank0 = result.run.results[0]
        assert rank0[0] == races[0].alternative_source

    def test_replay_rejects_fabricated_race(self):
        # Claim rank 1's recv could have matched rank 1 itself at an
        # ordinal the program never reaches: replay must not confirm.
        from repro.analysis import Race

        fake = Race(
            recv_rank=0,
            recv_ordinal=99,
            recv_idx=99,
            source=ANY_SOURCE,
            tag=7,
            matched=(1, 0),
            alternative=(2, 0),
        )
        result = replay_race(_wildcard_race, 3, fake, default_timeout=5.0)
        assert not result.confirmed
        assert "never reached" in result.reason


class TestCollectiveMismatch:
    def test_lopsided_barrier_flagged(self):
        run = run_traced(_lopsided_collective, 3, default_timeout=2.0)
        diags = check_collectives(run.trace)
        assert len(diags) == 1
        assert "barrier" in diags[0].message
        assert "rank 0: 2" in diags[0].message

    def test_matched_collectives_clean(self):
        run = run_traced(_bcast_chain, 3, default_timeout=10.0)
        assert check_collectives(run.trace) == []


class TestSyncCycles:
    def test_head_to_head_sends_flagged(self):
        run = run_traced(_head_to_head, 2, default_timeout=10.0)
        diags = check_sync_cycles(run.trace)
        assert len(diags) == 1
        assert "rendezvous" in diags[0].message

    def test_ordered_sends_clean(self):
        run = run_traced(_pingpong, 2, default_timeout=10.0)
        assert check_sync_cycles(run.trace) == []


@pytest.mark.slow
class TestProcessBackend:
    def test_tracing_and_race_detection_cross_process(self):
        run = run_traced(
            _wildcard_race, 3, backend="process", default_timeout=30.0
        )
        races = find_wildcard_races(run.trace)
        assert races
        assert races[0].recv_rank == 0

    def test_clean_program_cross_process(self):
        run = run_traced(
            _pingpong, 2, backend="process", default_timeout=30.0
        )
        assert run.results == ["hi back", "hi"]
        assert len(check_trace(run.trace)) == 0
