"""Tests for cumulative returns (eq 2-5) and drawdown (eq 6-7)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.drawdown import max_drawdown, max_drawdown_path
from repro.metrics.returns import cumulative_return, total_cumulative_return

returns_lists = st.lists(
    st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
    min_size=0,
    max_size=50,
)


class TestCumulativeReturn:
    def test_compounding(self):
        # (1.10)(0.90) - 1 = -0.01
        assert cumulative_return([0.10, -0.10]) == pytest.approx(-0.01)

    def test_empty_is_zero(self):
        assert cumulative_return([]) == 0.0

    def test_single(self):
        assert cumulative_return([0.05]) == pytest.approx(0.05)

    def test_order_invariant(self, rng):
        r = rng.uniform(-0.05, 0.05, size=20)
        shuffled = r.copy()
        rng.shuffle(shuffled)
        assert cumulative_return(r) == pytest.approx(cumulative_return(shuffled))

    @given(returns_lists)
    def test_bounds(self, rs):
        c = cumulative_return(rs)
        assert c > -1.0
        if all(r >= 0 for r in rs):
            assert c >= 0.0

    @given(returns_lists, returns_lists)
    def test_composition(self, day1, day2):
        # eq (3) over daily returns == eq (2) over the concatenation:
        # compounding is associative.
        total = total_cumulative_return(
            [cumulative_return(day1), cumulative_return(day2)]
        )
        assert total == pytest.approx(
            cumulative_return(list(day1) + list(day2)), rel=1e-9, abs=1e-12
        )

    def test_rejects_minus_one(self):
        with pytest.raises(ValueError):
            cumulative_return([-1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            cumulative_return([0.1, float("nan")])


class TestMaxDrawdownPath:
    def test_monotone_no_drawdown(self):
        assert max_drawdown_path([1.0, 2.0, 3.0]) == 0.0

    def test_worst_peak_to_valley(self):
        path = [0.0, 0.10, 0.04, 0.12, 0.02, 0.08]
        assert max_drawdown_path(path) == pytest.approx(0.10)

    def test_empty_and_single(self):
        assert max_drawdown_path([]) == 0.0
        assert max_drawdown_path([5.0]) == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            max_drawdown_path([1.0, float("nan")])


class TestMaxDrawdown:
    def test_no_trades(self):
        assert max_drawdown([]) == 0.0

    def test_all_wins_no_drawdown(self):
        assert max_drawdown([0.01, 0.02, 0.03]) == 0.0

    def test_first_trade_loss_counts(self):
        # The path starts at 0, so an opening loss is already a drawdown.
        assert max_drawdown([-0.05]) == pytest.approx(0.05)

    def test_peak_to_valley_on_compounded_path(self):
        rs = [0.10, -0.05, -0.05, 0.20]
        path = np.concatenate([[0.0], np.cumprod(1 + np.asarray(rs)) - 1])
        expected = max(
            path[i] - path[j]
            for i in range(len(path))
            for j in range(i, len(path))
        )
        assert max_drawdown(rs) == pytest.approx(expected)

    @given(returns_lists)
    def test_nonnegative_and_bounded(self, rs):
        dd = max_drawdown(rs)
        assert dd >= 0.0
        if rs:
            path = np.concatenate([[0.0], np.cumprod(1 + np.asarray(rs)) - 1])
            assert dd <= path.max() - path.min() + 1e-12

    @given(returns_lists)
    def test_zero_iff_never_below_running_max(self, rs):
        dd = max_drawdown(rs)
        if all(r >= 0 for r in rs):
            assert dd == 0.0
