"""Tests for DAG→rank contraction (repro.mpi.topology)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.topology import RankMap, contract_dag


def chain(n):
    g = nx.DiGraph()
    nx.add_path(g, [f"c{i}" for i in range(n)])
    return g


class TestContractDag:
    def test_one_component_per_rank(self):
        rank_map = contract_dag(chain(4), size=4)
        ranks = {rank_map.rank_of(f"c{i}") for i in range(4)}
        assert ranks == {0, 1, 2, 3}

    def test_fewer_ranks_than_components(self):
        rank_map = contract_dag(chain(6), size=2)
        for node in ("c0", "c1", "c2", "c3", "c4", "c5"):
            assert 0 <= rank_map.rank_of(node) < 2
        # Balanced: 3 components per rank with unit weights.
        assert len(rank_map.components_of(0)) == 3
        assert len(rank_map.components_of(1)) == 3

    def test_more_ranks_than_components(self):
        rank_map = contract_dag(chain(2), size=5)
        assert rank_map.components_of(4) == ()

    def test_heavy_component_isolated(self):
        g = chain(4)
        weights = {"c1": 100.0}
        rank_map = contract_dag(g, size=2, weights=weights)
        heavy_rank = rank_map.rank_of("c1")
        # All light components share the other rank.
        assert rank_map.components_of(heavy_rank) == ("c1",)

    def test_deterministic(self):
        g = chain(7)
        a = contract_dag(g, size=3)
        b = contract_dag(g, size=3)
        assert a.assignment == b.assignment

    def test_rejects_cycle(self):
        g = nx.DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError, match="cycle"):
            contract_dag(g, size=2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            contract_dag(nx.DiGraph(), size=1)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            contract_dag(chain(2), size=0)

    def test_rejects_unknown_weight_node(self):
        with pytest.raises(ValueError, match="unknown node"):
            contract_dag(chain(2), size=1, weights={"ghost": 1.0})

    @given(
        n=st.integers(min_value=1, max_value=20),
        size=st.integers(min_value=1, max_value=8),
    )
    def test_every_node_assigned_to_valid_rank(self, n, size):
        rank_map = contract_dag(chain(n), size=size)
        assert len(rank_map.components) == n
        seen = set()
        for r in range(size):
            comps = rank_map.components_of(r)
            assert seen.isdisjoint(comps)
            seen.update(comps)
        assert len(seen) == n


class TestRankMap:
    def test_rank_of_unknown_raises(self):
        rank_map = contract_dag(chain(2), size=1)
        with pytest.raises(KeyError):
            rank_map.rank_of("nope")

    def test_components_of_bad_rank(self):
        rank_map = contract_dag(chain(2), size=1)
        with pytest.raises(ValueError):
            rank_map.components_of(1)

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ValueError, match="outside"):
            RankMap(assignment={"a": 5}, size=2)
