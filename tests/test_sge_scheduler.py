"""Tests for the SGE batch-scheduler simulator."""

import pytest

from repro.sge.scheduler import Job, SgeScheduler


class TestJobExecution:
    def test_jobs_run_and_return_results(self):
        sched = SgeScheduler(n_slots=2)
        sched.submit_many(Job(name=f"j{i}", fn=lambda i=i: i * i) for i in range(5))
        report = sched.run()
        assert [r.result for r in report.results] == [0, 1, 4, 9, 16]
        assert sched.queued == 0

    def test_job_exception_propagates(self):
        sched = SgeScheduler()

        def boom():
            raise RuntimeError("job failed")

        sched.submit(Job(name="bad", fn=boom))
        with pytest.raises(RuntimeError, match="job failed"):
            sched.run()

    def test_job_validates_callable(self):
        with pytest.raises(TypeError):
            Job(name="x", fn="not callable")

    def test_rejects_bad_slot_count(self):
        with pytest.raises((ValueError, TypeError)):
            SgeScheduler(n_slots=0)


class TestPlacementSimulation:
    def test_single_slot_serial_makespan(self):
        report = SgeScheduler(n_slots=1).simulate(
            {"a": 1.0, "b": 2.0, "c": 3.0}
        )
        assert report.makespan == pytest.approx(6.0)
        assert report.serial_time == pytest.approx(6.0)
        assert report.speedup == pytest.approx(1.0)

    def test_equal_jobs_perfect_speedup(self):
        report = SgeScheduler(n_slots=4).simulate(
            {f"j{i}": 1.0 for i in range(8)}
        )
        assert report.makespan == pytest.approx(2.0)
        assert report.speedup == pytest.approx(4.0)

    def test_fifo_greedy_placement(self):
        # Jobs 3,1,1: slot0 gets 3; slot1 gets 1 then 1. Makespan 3.
        report = SgeScheduler(n_slots=2).simulate({"a": 3.0, "b": 1.0, "c": 1.0})
        assert report.makespan == pytest.approx(3.0)
        loads = report.slot_loads()
        assert sorted(loads.values()) == pytest.approx([2.0, 3.0])

    def test_long_tail_limits_speedup(self):
        durations = {"long": 10.0, **{f"s{i}": 0.1 for i in range(20)}}
        report = SgeScheduler(n_slots=8).simulate(durations)
        assert report.makespan == pytest.approx(10.0)  # bound by the tail

    def test_sim_start_end_consistent(self):
        report = SgeScheduler(n_slots=3).simulate(
            {f"j{i}": float(i + 1) for i in range(6)}
        )
        for r in report.results:
            assert r.sim_end == pytest.approx(r.sim_start + r.duration)
        # No two jobs overlap on the same slot.
        by_slot = {}
        for r in report.results:
            by_slot.setdefault(r.slot, []).append((r.sim_start, r.sim_end))
        for spans in by_slot.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            SgeScheduler().simulate({"a": -1.0})

    def test_empty_report(self):
        report = SgeScheduler().simulate({})
        assert report.makespan == 0.0
        assert report.speedup == 1.0


class TestPaperExtrapolation:
    def test_854_hour_arithmetic(self):
        """The paper: 1830 pairs x 20 days x 42 sets at ~2s/job ~= 854 h."""
        n_jobs = 1830 * 20 * 42
        serial_hours = n_jobs * 2.0 / 3600.0
        assert serial_hours == pytest.approx(854.0, rel=0.01)

    def test_sge_slots_divide_makespan(self):
        # With equal 2s jobs, k slots give k-fold speedup; the paper's SGE
        # runs reduced but did not eliminate the problem.
        durations = {f"j{i}": 2.0 for i in range(1000)}
        report = SgeScheduler(n_slots=50).simulate(durations)
        assert report.speedup == pytest.approx(50.0)
        assert report.makespan == pytest.approx(40.0)
