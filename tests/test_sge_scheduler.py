"""Tests for the SGE batch-scheduler simulator."""

import pytest

from repro.obs import Obs
from repro.sge.scheduler import Job, JobFailure, RetryPolicy, SgeScheduler


def flaky(failures, exc=RuntimeError("transient slot failure")):
    """A callable that fails ``failures`` times, then returns "ok"."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc
        return "ok"

    return fn


class TestJobExecution:
    def test_jobs_run_and_return_results(self):
        sched = SgeScheduler(n_slots=2)
        sched.submit_many(Job(name=f"j{i}", fn=lambda i=i: i * i) for i in range(5))
        report = sched.run()
        assert [r.result for r in report.results] == [0, 1, 4, 9, 16]
        assert sched.queued == 0

    def test_job_exception_propagates(self):
        sched = SgeScheduler()

        def boom():
            raise RuntimeError("job failed")

        sched.submit(Job(name="bad", fn=boom))
        with pytest.raises(RuntimeError, match="job failed"):
            sched.run()

    def test_job_validates_callable(self):
        with pytest.raises(TypeError):
            Job(name="x", fn="not callable")

    def test_rejects_bad_slot_count(self):
        with pytest.raises((ValueError, TypeError)):
            SgeScheduler(n_slots=0)


class TestPlacementSimulation:
    def test_single_slot_serial_makespan(self):
        report = SgeScheduler(n_slots=1).simulate(
            {"a": 1.0, "b": 2.0, "c": 3.0}
        )
        assert report.makespan == pytest.approx(6.0)
        assert report.serial_time == pytest.approx(6.0)
        assert report.speedup == pytest.approx(1.0)

    def test_equal_jobs_perfect_speedup(self):
        report = SgeScheduler(n_slots=4).simulate(
            {f"j{i}": 1.0 for i in range(8)}
        )
        assert report.makespan == pytest.approx(2.0)
        assert report.speedup == pytest.approx(4.0)

    def test_fifo_greedy_placement(self):
        # Jobs 3,1,1: slot0 gets 3; slot1 gets 1 then 1. Makespan 3.
        report = SgeScheduler(n_slots=2).simulate({"a": 3.0, "b": 1.0, "c": 1.0})
        assert report.makespan == pytest.approx(3.0)
        loads = report.slot_loads()
        assert sorted(loads.values()) == pytest.approx([2.0, 3.0])

    def test_long_tail_limits_speedup(self):
        durations = {"long": 10.0, **{f"s{i}": 0.1 for i in range(20)}}
        report = SgeScheduler(n_slots=8).simulate(durations)
        assert report.makespan == pytest.approx(10.0)  # bound by the tail

    def test_sim_start_end_consistent(self):
        report = SgeScheduler(n_slots=3).simulate(
            {f"j{i}": float(i + 1) for i in range(6)}
        )
        for r in report.results:
            assert r.sim_end == pytest.approx(r.sim_start + r.duration)
        # No two jobs overlap on the same slot.
        by_slot = {}
        for r in report.results:
            by_slot.setdefault(r.slot, []).append((r.sim_start, r.sim_end))
        for spans in by_slot.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            SgeScheduler().simulate({"a": -1.0})

    def test_empty_report(self):
        report = SgeScheduler().simulate({})
        assert report.makespan == 0.0
        assert report.speedup == 1.0


class TestRetryPolicy:
    def test_transient_failure_retried_to_success(self):
        obs = Obs(enabled=True)
        sched = SgeScheduler(
            n_slots=1, obs=obs, retry=RetryPolicy(max_retries=3)
        )
        sched.submit(Job(name="flaky", fn=flaky(2)))
        report = sched.run()
        assert report.results[0].result == "ok"
        assert report.results[0].attempts == 3
        assert obs.metrics.counter("sge.job.retries").value == 2

    def test_without_policy_first_failure_propagates(self):
        sched = SgeScheduler(n_slots=1)
        sched.submit(Job(name="flaky", fn=flaky(1)))
        with pytest.raises(RuntimeError, match="transient slot failure"):
            sched.run()

    def test_exhausted_retries_raise_with_original_traceback(self):
        def boom():
            raise ValueError("bad cell geometry")

        sched = SgeScheduler(retry=RetryPolicy(max_retries=1))
        sched.submit(Job(name="doomed", fn=boom))
        with pytest.raises(JobFailure) as excinfo:
            sched.run()
        failure = excinfo.value
        assert failure.name == "doomed"
        assert failure.attempts == 2
        assert failure.exc_type == "ValueError"
        assert "bad cell geometry" in failure.original_traceback
        assert "in boom" in failure.original_traceback

    def test_backoff_charged_to_slot_not_slept(self):
        policy = RetryPolicy(max_retries=2, base=1.0, factor=2.0, jitter=0.0)
        sched = SgeScheduler(n_slots=1, retry=policy)
        sched.submit(Job(name="flaky", fn=flaky(2)))
        report = sched.run()
        record = report.results[0]
        # Two backoff waits (1s, 2s) occupy the simulated slot...
        assert record.sim_end - record.sim_start >= 3.0
        # ...but are never actually slept: real wall time stays tiny.
        assert record.duration < 1.0

    def test_seeded_jitter_is_deterministic(self):
        def run_once():
            policy = RetryPolicy(
                max_retries=2, base=1.0, jitter=0.5, seed=7
            )
            sched = SgeScheduler(n_slots=2, retry=policy)
            sched.submit(Job(name="a", fn=flaky(1)))
            sched.submit(Job(name="b", fn=flaky(2)))
            report = sched.run()
            return [(r.name, r.slot, r.sim_start, r.attempts)
                    for r in report.results]

        assert run_once() == run_once()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="base"):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_delay_caps(self):
        import random

        policy = RetryPolicy(base=1.0, factor=10.0, cap=5.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(1.0)
        assert policy.delay(3, rng) == pytest.approx(5.0)


class TestPaperExtrapolation:
    def test_854_hour_arithmetic(self):
        """The paper: 1830 pairs x 20 days x 42 sets at ~2s/job ~= 854 h."""
        n_jobs = 1830 * 20 * 42
        serial_hours = n_jobs * 2.0 / 3600.0
        assert serial_hours == pytest.approx(854.0, rel=0.01)

    def test_sge_slots_divide_makespan(self):
        # With equal 2s jobs, k slots give k-fold speedup; the paper's SGE
        # runs reduced but did not eliminate the problem.
        durations = {f"j{i}": 2.0 for i in range(1000)}
        report = SgeScheduler(n_slots=50).simulate(durations)
        assert report.speedup == pytest.approx(50.0)
        assert report.makespan == pytest.approx(40.0)


class TestClockSeam:
    """The injectable time source (deepcheck satellite: det.wall-clock).

    Durations feed the simulated placement, so with a virtual clock the
    whole schedule — makespan, speedup, per-slot loads — is bitwise
    deterministic.  The ambient default stays ``time.perf_counter`` but
    only as a reference, so detlint sees no ambient clock *call* here.
    """

    @staticmethod
    def ticking_clock(step=1.0):
        state = {"t": 0.0}

        def clock():
            state["t"] += step
            return state["t"]

        return clock

    def test_virtual_clock_makes_schedule_deterministic(self):
        def run_once():
            sched = SgeScheduler(n_slots=2, clock=self.ticking_clock(0.5))
            sched.submit_many(
                Job(name=f"j{i}", fn=lambda: None) for i in range(6)
            )
            report = sched.run()
            return (
                report.makespan,
                report.speedup,
                tuple(sorted(report.slot_loads().items())),
                tuple(r.duration for r in report.results),
            )

        assert run_once() == run_once()
        # Each job spans exactly one clock step: start and end reads are
        # consecutive ticks 0.5 apart.
        assert run_once()[3] == (0.5,) * 6

    def test_virtual_clock_covers_retry_path(self):
        sched = SgeScheduler(
            n_slots=1,
            retry=RetryPolicy(max_retries=2, jitter=0.0, base=1.0,
                              factor=1.0, cap=1.0),
            clock=self.ticking_clock(1.0),
        )
        sched.submit(Job(name="flaky", fn=flaky(1)))
        report = sched.run()
        result = report.results[0]
        assert result.attempts == 2
        # Two attempts, one clock step each; the 1.0 backoff is charged
        # to slot occupancy (sim span), not to wall duration.
        assert result.duration == pytest.approx(2.0)
        assert result.sim_end - result.sim_start == pytest.approx(3.0)

    def test_default_clock_still_measures_real_time(self):
        import time as _time

        sched = SgeScheduler(n_slots=1)
        assert sched._clock is _time.perf_counter


class TestWorkStealing:
    """Partitioned queues ± tail-stealing (the straggler discipline).

    The contract mirrors the elastic runtime's: placement never changes
    what a job computes, so stolen and unstolen runs are bitwise equal
    in results and differ only in the simulated schedule.
    """

    # One straggler-heavy home queue: round-robin over 2 slots parks
    # all the long jobs on slot 0, so without stealing slot 0 sets the
    # makespan while slot 1 idles.
    SKEWED = {
        "long0": 8.0, "short0": 1.0,
        "long1": 8.0, "short1": 1.0,
        "long2": 8.0, "short2": 1.0,
    }

    def test_round_robin_home_slots(self):
        report = SgeScheduler(n_slots=2).simulate_partitioned(
            {f"j{i}": 1.0 for i in range(5)}
        )
        assert [r.home_slot for r in report.results] == [0, 1, 0, 1, 0]

    def test_no_steal_never_moves_jobs(self):
        report = SgeScheduler(n_slots=2).simulate_partitioned(
            self.SKEWED, steal=False
        )
        assert all(r.slot == r.home_slot for r in report.results)
        assert report.n_stolen == 0
        assert report.stolen_seconds == 0.0

    def test_steal_moves_tail_work_and_cuts_makespan(self):
        sched = SgeScheduler(n_slots=2)
        no_steal = sched.simulate_partitioned(self.SKEWED, steal=False)
        steal = sched.simulate_partitioned(self.SKEWED, steal=True)
        assert steal.n_stolen >= 1
        assert steal.stolen_seconds > 0.0
        stolen = [r for r in steal.results if r.stolen]
        assert all(r.slot != r.home_slot for r in stolen)
        assert steal.makespan < no_steal.makespan
        # The straggler queue holds 3*8.0 = 24.0s of the 27.0s total, so
        # the unstolen makespan is 24.0 while a steal approaches 27/2.
        assert no_steal.makespan == pytest.approx(24.0)
        assert steal.makespan <= 0.75 * no_steal.makespan

    def test_partitioned_placement_is_deterministic(self):
        def once(steal):
            report = SgeScheduler(n_slots=3).simulate_partitioned(
                self.SKEWED, steal=steal
            )
            return tuple(
                (r.name, r.slot, r.home_slot, r.sim_start, r.sim_end)
                for r in report.results
            )

        assert once(False) == once(False)
        assert once(True) == once(True)

    def test_run_partitioned_results_bitwise_equal_with_and_without_steal(self):
        def run_once(steal):
            sched = SgeScheduler(
                n_slots=2, clock=TestClockSeam.ticking_clock(0.5)
            )
            sched.submit_many(
                Job(name=f"j{i}", fn=lambda i=i: i * i) for i in range(7)
            )
            return sched.run_partitioned(steal=steal)

        plain = run_once(False)
        stolen = run_once(True)
        assert [r.result for r in plain.results] == [
            r.result for r in stolen.results
        ]
        assert [r.name for r in plain.results] == [
            r.name for r in stolen.results
        ]
        assert [r.duration for r in plain.results] == [
            r.duration for r in stolen.results
        ]

    def test_steal_counters_emitted_only_when_stealing_happened(self):
        obs = Obs(enabled=True)
        sched = SgeScheduler(n_slots=2, obs=obs)
        report = sched.simulate_partitioned(self.SKEWED, steal=True)
        assert obs.metrics.counter("sge.steal.jobs").value == report.n_stolen
        assert obs.metrics.counter("sge.steal.seconds").value == (
            pytest.approx(report.stolen_seconds)
        )

        quiet = Obs(enabled=True)
        SgeScheduler(n_slots=2, obs=quiet).simulate_partitioned(
            self.SKEWED, steal=False
        )
        assert "sge.steal.jobs" not in quiet.metrics.counters
        assert "sge.steal.seconds" not in quiet.metrics.counters

    def test_simulate_partitioned_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration must be >= 0"):
            SgeScheduler(n_slots=2).simulate_partitioned(
                {"ok": 1.0, "bad": -0.5}
            )
