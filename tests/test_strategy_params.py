"""Tests for strategy parameters and the Table-I grid."""

import pytest

from repro.corr.measures import CorrelationType
from repro.strategy.params import (
    StrategyParams,
    format_table1,
    paper_parameter_grid,
    small_parameter_grid,
    table1_values,
)


class TestStrategyParams:
    def test_paper_canonical_defaults(self):
        # The paper's worked example parameter set.
        p = StrategyParams()
        assert p.delta_s == 30
        assert p.ctype is CorrelationType.PEARSON
        assert p.a == 0.1
        assert p.m == 100
        assert p.w == 60
        assert p.y == 10
        assert p.d == pytest.approx(0.0001)  # 0.01%
        assert p.l == pytest.approx(2 / 3)
        assert p.rt == 60
        assert p.hp == 30
        assert p.st == 20

    def test_extensions_off_by_default(self):
        p = StrategyParams()
        assert p.stop_loss is None
        assert p.correlation_reversion is False

    def test_ctype_parsed_from_string(self):
        assert StrategyParams(ctype="maronna").ctype is CorrelationType.MARONNA

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta_s": 0},
            {"a": 1.5},
            {"m": 2},
            {"w": 0},
            {"y": -1},
            {"d": 0.0},
            {"d": 1.0},
            {"l": 0.0},
            {"l": 1.0},
            {"rt": 0},
            {"hp": 0},
            {"st": 0},
            {"stop_loss": -0.01},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            StrategyParams(**kwargs)

    def test_first_active_interval(self):
        p = StrategyParams(m=100, w=60, rt=60)
        assert p.first_active_interval == 159  # M + W - 1
        p2 = StrategyParams(m=10, w=5, rt=200)
        assert p2.first_active_interval == 199  # RT - 1 dominates

    def test_with_ctype(self):
        p = StrategyParams()
        q = p.with_ctype("combined")
        assert q.ctype is CorrelationType.COMBINED
        assert q.non_treatment_key() == p.non_treatment_key()

    def test_non_treatment_key_excludes_ctype(self):
        a = StrategyParams(ctype="pearson")
        b = StrategyParams(ctype="maronna")
        assert a.non_treatment_key() == b.non_treatment_key()
        c = StrategyParams(m=50)
        assert a.non_treatment_key() != c.non_treatment_key()

    def test_label_mentions_all_factors(self):
        label = StrategyParams().label()
        for token in ("Δs=30", "M=100", "W=60", "Y=10", "HP=30", "ST=20"):
            assert token in label

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StrategyParams().m = 50


class TestPaperGrid:
    def test_forty_two_parameter_sets(self):
        # "42 (number of parameter sets)" = 3 treatments x 14 levels
        grid = paper_parameter_grid()
        assert len(grid) == 42

    def test_three_treatments_fourteen_levels_each(self):
        grid = paper_parameter_grid()
        by_ctype = {}
        for p in grid:
            by_ctype.setdefault(p.ctype, []).append(p)
        assert {len(v) for v in by_ctype.values()} == {14}
        assert len(by_ctype) == 3

    def test_levels_identical_across_treatments(self):
        grid = paper_parameter_grid()
        keys_by_ctype = {}
        for p in grid:
            keys_by_ctype.setdefault(p.ctype, []).append(p.non_treatment_key())
        keys = list(keys_by_ctype.values())
        assert keys[0] == keys[1] == keys[2]

    def test_levels_are_distinct(self):
        grid = paper_parameter_grid()
        pearson_keys = [
            p.non_treatment_key() for p in grid if p.ctype is CorrelationType.PEARSON
        ]
        assert len(set(pearson_keys)) == 14

    def test_n_levels_truncation(self):
        assert len(paper_parameter_grid(n_levels=5)) == 15
        with pytest.raises(ValueError):
            paper_parameter_grid(n_levels=0)
        with pytest.raises(ValueError):
            paper_parameter_grid(n_levels=15)

    def test_base_override_propagates(self):
        base = StrategyParams(m=40, w=20, y=5, rt=20, hp=10, st=5)
        grid = paper_parameter_grid(base=base)
        canonical = grid[0]
        assert canonical.w == 20 and canonical.rt == 20

    def test_small_grid(self):
        assert len(small_parameter_grid()) == 12


class TestTable1:
    def test_values_cover_paper_lists(self):
        values = table1_values()
        assert values["m"] == [50, 100, 200]
        assert values["w"] == [60, 120]
        assert values["y"] == [10, 20]
        assert 0.0001 in values["d"] and 0.0010 in values["d"]
        assert values["hp"] == [30, 40]

    def test_format_table1_mentions_every_parameter(self):
        text = format_table1()
        for name in ("Δs", "Ctype", "A", "M", "W", "Y", "d", "ℓ", "RT", "HP", "ST"):
            assert any(line.startswith(name + " ") for line in text.splitlines()), name

    def test_format_table1_mentions_treatments(self):
        text = format_table1()
        for t in ("Pearson", "Maronna", "Combined"):
            assert t in text
