"""Tests for the multi-spec pipeline (many strategies, one platform)."""

import numpy as np
import pytest

from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.marketminer.session import (
    build_multi_spec_workflow,
    collect_multi_spec_trades,
    run_figure1_session,
)
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

BASE = dict(w=15, y=5, rt=15, hp=10, st=5, d=0.002)
GRID = [
    StrategyParams(m=30, ctype="pearson", **BASE),
    StrategyParams(m=30, ctype="maronna", **BASE),
    StrategyParams(m=50, ctype="pearson", **BASE),
    StrategyParams(m=50, ctype="combined", **BASE),
]
PAIRS = [(0, 1), (2, 3)]


@pytest.fixture(scope="module")
def setup():
    cfg = SyntheticMarketConfig(trading_seconds=23_400 // 4, quote_rate=0.95)
    market = SyntheticMarket(default_universe(4), cfg, seed=17)
    grid_time = TimeGrid(30, trading_seconds=cfg.trading_seconds)
    return market, grid_time


@pytest.fixture(scope="module")
def session_results(setup):
    market, grid_time = setup
    wf = build_multi_spec_workflow(market, grid_time, PAIRS, GRID)
    return wf, run_figure1_session(wf, size=3)


class TestTopology:
    def test_one_engine_and_strategy_per_spec(self, session_results):
        wf, _ = session_results
        engines = [n for n in wf.components if n.startswith("correlation_")]
        strategies = [n for n in wf.components if n.startswith("pair_trading_")]
        assert len(engines) == 4  # 4 distinct (m, ctype) specs
        assert len(strategies) == 4

    def test_shared_plumbing(self, session_results):
        wf, _ = session_results
        # One collector, one cleaner, one bar accumulator, one sink.
        for single in ("live_collector", "cleaning", "bar_accumulator",
                       "technical", "order_sink"):
            assert single in wf.components

    def test_delta_s_mismatch_rejected(self, setup):
        market, grid_time = setup
        bad = StrategyParams(delta_s=15, m=30, **BASE)
        with pytest.raises(ValueError, match="delta_s"):
            build_multi_spec_workflow(market, grid_time, PAIRS, [bad])

    def test_empty_grid_rejected(self, setup):
        market, grid_time = setup
        with pytest.raises(ValueError):
            build_multi_spec_workflow(market, grid_time, PAIRS, [])


class TestResults:
    def test_matches_batch_for_every_global_index(self, setup, session_results):
        market, grid_time = setup
        _, results = session_results
        merged = collect_multi_spec_trades(results)
        assert len(merged) == len(PAIRS) * len(GRID)
        ref = SequentialBacktester(BarProvider(market, grid_time)).run(
            PAIRS, GRID, [0]
        )
        for (pair, k), trades in merged.items():
            np.testing.assert_allclose(
                [t.ret for t in trades], ref.cell(pair, k, 0), atol=1e-12
            )

    def test_sink_sees_disjoint_position_keys(self, session_results):
        _, results = session_results
        sink = results["order_sink"]
        assert sink["open_pairs_at_close"] == 0
        n_trades = sum(
            len(v) for v in collect_multi_spec_trades(results).values()
        )
        assert sink["accepted_orders"] == 4 * n_trades

    def test_collect_detects_duplicates(self, session_results):
        _, results = session_results
        corrupted = dict(results)
        # Duplicate one strategy's results under another name.
        corrupted["pair_trading_dup"] = results["pair_trading_0"]
        with pytest.raises(ValueError, match="duplicate"):
            collect_multi_spec_trades(corrupted)
