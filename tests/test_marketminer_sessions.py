"""Tests for multi-day sessions and runtime statistics."""

import pytest

from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.marketminer.session import (
    build_figure1_workflow,
    run_calendar_sessions,
    run_figure1_session,
)
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

PARAMS = StrategyParams(m=30, w=15, y=5, rt=15, hp=10, st=5, d=0.002)


@pytest.fixture(scope="module")
def setup():
    cfg = SyntheticMarketConfig(trading_seconds=23_400 // 4, quote_rate=0.95)
    market = SyntheticMarket(default_universe(4), cfg, seed=17)
    grid = TimeGrid(30, trading_seconds=cfg.trading_seconds)
    return market, grid


class TestCalendarSessions:
    def test_matches_batch_backtester(self, setup):
        market, grid = setup
        pairs = [(0, 1), (2, 3), (0, 2)]
        store, daily = run_calendar_sessions(
            market, grid, pairs, [PARAMS], n_days=2, size=2
        )
        ref = SequentialBacktester(BarProvider(market, grid)).run(
            pairs, [PARAMS], [0, 1]
        )
        assert store == ref
        assert set(daily) == {0, 1}

    def test_period_metrics_apply(self, setup):
        market, grid = setup
        store, _ = run_calendar_sessions(
            market, grid, [(0, 1)], [PARAMS], n_days=2, size=1
        )
        # Eqs (1)-(3) work directly on live-pipeline output.
        path = store.daily_return_path((0, 1), 0)
        assert path.shape == (2,)
        assert store.total_return((0, 1), 0) == pytest.approx(
            (1 + path[0]) * (1 + path[1]) - 1
        )

    def test_rejects_bad_day_count(self, setup):
        market, grid = setup
        with pytest.raises(ValueError):
            run_calendar_sessions(market, grid, [(0, 1)], [PARAMS], n_days=0)

    def test_multi_engine_calendar(self, setup):
        market, grid = setup
        pairs = [(0, 1), (2, 3), (0, 3)]
        single, _ = run_calendar_sessions(
            market, grid, pairs, [PARAMS], n_days=1, size=2
        )
        multi, _ = run_calendar_sessions(
            market, grid, pairs, [PARAMS], n_days=1, size=3, n_corr_engines=2
        )
        assert single == multi


class TestRuntimeStats:
    def test_stats_collected(self, setup):
        market, grid = setup
        wf = build_figure1_workflow(market, grid, [(0, 1)], [PARAMS])
        results = run_figure1_session(wf, size=3, collect_stats=True)
        stats = results["_runtime"]
        assert set(stats) == {0, 1, 2}
        total_remote = sum(s["messages_remote"] for s in stats.values())
        assert total_remote > 0  # the pipeline genuinely crosses ranks
        all_components = sorted(
            c for s in stats.values() for c in s["components"]
        )
        assert all_components == sorted(wf.components)

    def test_single_rank_all_local(self, setup):
        market, grid = setup
        wf = build_figure1_workflow(market, grid, [(0, 1)], [PARAMS])
        results = run_figure1_session(wf, size=1, collect_stats=True)
        stats = results["_runtime"][0]
        assert stats["messages_remote"] == 0
        assert stats["messages_local"] > 0

    def test_stats_off_by_default(self, setup):
        market, grid = setup
        wf = build_figure1_workflow(market, grid, [(0, 1)], [PARAMS])
        results = run_figure1_session(wf, size=1)
        assert "_runtime" not in results
