"""Sampling profiler: attribution, interchange, merging, rendering.

The acceptance invariant is the issue's criterion: an Approach-2 backtest
run with ``profile=True`` attributes at least 90% of its sampled wall
time to named obs spans (the span tree covers the engine's whole run),
with the result store unchanged by profiling.
"""

import time

import pytest

from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.obs import Obs, build_report, render_text
from repro.obs.live import (
    PROFILE_SCHEMA,
    SamplingProfiler,
    attributed_fraction,
    merge_profiles,
    render_flame_table,
    span_totals,
)
from repro.obs.live.profiler import NO_SPAN
from repro.strategy.params import StrategyParams, paper_parameter_grid
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def _provider(n_symbols=6, seconds=23_400 // 4):
    market = SyntheticMarket(
        default_universe(n_symbols),
        SyntheticMarketConfig(trading_seconds=seconds),
        seed=2008,
    )
    return BarProvider(market, TimeGrid(30, trading_seconds=seconds))


def _profile_dict(spans, n_samples=0, interval=0.005, wall=0.0):
    stacks = {
        f"{span};mod:outer;{leaf}": seconds
        for span, leaves in spans.items()
        for leaf, seconds in leaves.items()
    }
    return {
        "schema": PROFILE_SCHEMA,
        "interval": interval,
        "n_samples": n_samples,
        "wall": wall,
        "spans": spans,
        "stacks": stacks,
    }


class TestApproach2Attribution:
    def test_profiled_backtest_attributes_90_percent(self):
        provider = _provider()
        pairs = list(default_universe(6).pairs())
        base = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)
        grid = [base.with_ctype(ct) for ct in ("pearson", "maronna")]

        obs = Obs(enabled=True)
        store = SequentialBacktester(
            provider, obs=obs, profile=True, profile_interval=0.002
        ).run(pairs, grid, [0])

        profile = obs.profile
        assert profile is not None
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["n_samples"] > 0
        assert attributed_fraction(profile) >= 0.90

        # Profiling must not perturb the results.
        plain = SequentialBacktester(provider).run(pairs, grid, [0])
        assert store == plain

    def test_unprofiled_run_leaves_profile_unset(self):
        provider = _provider(n_symbols=4, seconds=1800)
        pairs = [(0, 1)]
        params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
        obs = Obs(enabled=True)
        SequentialBacktester(provider, obs=obs).run(pairs, [params], [0])
        assert obs.profile is None


class TestSamplingProfilerUnit:
    def test_live_sampling_attributes_open_span(self):
        obs = Obs(enabled=True)
        with SamplingProfiler(obs, interval=0.001) as prof:
            with obs.trace.span("busy"):
                t0 = time.perf_counter()
                x = 0.0
                while time.perf_counter() - t0 < 0.2:
                    x += sum(i * i for i in range(200))
        profile = prof.to_dict()
        assert profile["n_samples"] > 0
        assert "busy" in profile["spans"]
        busy = span_totals(profile).get("busy", 0.0)
        assert busy > 0.0
        # stop() folded the same profile into the obs handle.
        assert obs.profile is not None
        assert obs.profile["n_samples"] == profile["n_samples"]

    def test_to_dict_shapes_spans_and_stacks(self):
        prof = SamplingProfiler(interval=0.01)
        prof.samples[("spanA", ("mod:f", "mod:g"))] = 3
        prof.samples[(NO_SPAN, ("mod:h",))] = 1
        prof.n_samples = 4
        d = prof.to_dict()
        assert d["schema"] == PROFILE_SCHEMA
        assert d["spans"]["spanA"] == {"mod:g": pytest.approx(0.03)}
        assert d["spans"][NO_SPAN] == {"mod:h": pytest.approx(0.01)}
        assert d["stacks"]["spanA;mod:f;mod:g"] == pytest.approx(0.03)

    def test_start_twice_raises(self):
        prof = SamplingProfiler(interval=0.05)
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_folds_into_existing_profile(self):
        obs = Obs(enabled=True)
        obs.profile = _profile_dict({"old": {"mod:f": 1.0}}, n_samples=5)
        prof = SamplingProfiler(obs, interval=0.05)
        prof.start()
        prof.stop()
        assert obs.profile["n_samples"] >= 5
        assert "old" in obs.profile["spans"]


class TestProfileAlgebra:
    def test_merge_sums_and_skips_falsy(self):
        a = _profile_dict(
            {"day": {"mod:f": 1.0}}, n_samples=10, interval=0.005, wall=2.0
        )
        b = _profile_dict(
            {"day": {"mod:f": 0.5, "mod:g": 0.25}, "corr": {"mod:h": 1.0}},
            n_samples=4,
            interval=0.010,
            wall=1.0,
        )
        merged = merge_profiles([a, None, b, {}])
        assert merged["n_samples"] == 14
        assert merged["interval"] == 0.010  # max, not sum
        assert merged["wall"] == pytest.approx(3.0)
        assert merged["spans"]["day"]["mod:f"] == pytest.approx(1.5)
        assert merged["spans"]["day"]["mod:g"] == pytest.approx(0.25)
        assert merged["spans"]["corr"]["mod:h"] == pytest.approx(1.0)
        assert merged["stacks"]["day;mod:outer;mod:f"] == pytest.approx(1.5)

    def test_span_totals_sorted_descending(self):
        profile = _profile_dict(
            {"small": {"mod:f": 0.1}, "big": {"mod:g": 2.0, "mod:h": 1.0}}
        )
        totals = span_totals(profile)
        assert list(totals) == ["big", "small"]
        assert totals["big"] == pytest.approx(3.0)

    def test_attributed_fraction(self):
        profile = _profile_dict(
            {"work": {"mod:f": 3.0}, NO_SPAN: {"mod:g": 1.0}}
        )
        assert attributed_fraction(profile) == pytest.approx(0.75)
        assert attributed_fraction(_profile_dict({})) == 0.0

    def test_render_flame_table_limits_rows(self):
        spans = {f"span{i}": {"mod:f": float(10 - i)} for i in range(6)}
        table = render_flame_table(_profile_dict(spans, n_samples=60), top=3)
        assert "sampling profile: 60 samples" in table
        assert "span0" in table
        assert "span5" not in table  # beyond top=3


class TestProfileInReport:
    def test_build_report_merges_per_rank_profiles(self):
        per_rank = {}
        for rank in (0, 1):
            obs = Obs(enabled=True)
            obs.metrics.counter("events").inc()
            obs.profile = _profile_dict(
                {"day": {"mod:f": 1.0 + rank}}, n_samples=10 * (rank + 1)
            )
            per_rank[rank] = obs.to_dict()
        report = build_report(per_rank)
        assert report["profile"]["n_samples"] == 30
        assert report["profile"]["spans"]["day"]["mod:f"] == pytest.approx(3.0)
        text = render_text(report)
        assert "sampling profile" in text

    def test_unprofiled_report_has_no_profile_key(self):
        obs = Obs(enabled=True)
        obs.metrics.counter("events").inc()
        report = build_report({0: obs.to_dict()})
        assert "profile" not in report
        assert "sampling profile" not in render_text(report)
