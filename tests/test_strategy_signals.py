"""Tests for divergence detection (repro.strategy.signals)."""

import numpy as np
import pytest

from repro.strategy.signals import average_correlation, divergence_signals


class TestAverageCorrelation:
    def test_rolling_mean(self):
        corr = np.array([0.2, 0.4, 0.6, 0.8])
        out = average_correlation(corr, 2)
        assert np.isnan(out[0])
        np.testing.assert_allclose(out[1:], [0.3, 0.5, 0.7])

    def test_window_one_is_identity(self):
        corr = np.array([0.1, 0.2, 0.3])
        np.testing.assert_allclose(average_correlation(corr, 1), corr)

    def test_nan_warmup_propagates_only_locally(self):
        corr = np.array([np.nan, np.nan, 0.6, 0.6, 0.6, 0.6])
        out = average_correlation(corr, 2)
        assert np.isnan(out[:3]).all()  # windows touching the NaN head
        np.testing.assert_allclose(out[3:], 0.6)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            average_correlation(np.ones(3), 4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            average_correlation(np.ones((3, 2)), 2)


def build_series(smax=50, level=0.8):
    """Flat correlation at `level` with a NaN head of 5."""
    corr = np.full(smax, level)
    corr[:5] = np.nan
    return corr


class TestDivergenceSignals:
    def test_no_divergence_no_signal(self):
        corr = build_series()
        signal, c_bar = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert not signal.any()

    def test_fresh_drop_triggers(self):
        corr = build_series()
        corr[30] = 0.5  # sharp fresh drop, > 1% below average
        signal, c_bar = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert signal[30]

    def test_drop_below_threshold_a_blocks_trade(self):
        corr = build_series(level=0.3)
        corr[30] = 0.05
        # Average (~0.3) must exceed A for the pair to be tradeable.
        signal, _ = divergence_signals(corr, a=0.5, d=0.01, w=5, y=3)
        assert not signal.any()

    def test_tiny_drop_below_d_not_a_divergence(self):
        corr = build_series(level=0.8)
        corr[30] = 0.799  # ~0.1% drop
        signal, _ = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert not signal[30]

    def test_stale_divergence_suppressed(self):
        corr = build_series(smax=60)
        corr[30:] = 0.5  # persistent breakdown
        signal, _ = divergence_signals(corr, a=0.1, d=0.01, w=5, y=4)
        # Fires while fresh...
        assert signal[30:34].any()
        # ...but once every one of the previous y intervals is diverged,
        # the signal must stop. (c_bar itself decays toward the new level,
        # eventually un-diverging the pair anyway.)
        fresh_horizon = 30 + 4
        # After the divergence is older than y AND the window is saturated:
        saturated = signal[fresh_horizon + 1 :]
        assert not saturated[:3].any()

    def test_rise_is_not_divergence(self):
        # Canonical strategy trades correlation breakdowns (drops) only.
        corr = build_series()
        corr[30] = 0.99
        signal, _ = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert not signal[30]

    def test_no_signal_during_warmup(self):
        corr = build_series()
        corr[7] = 0.1  # drop inside the c_bar warm-up window
        signal, c_bar = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert not signal[:10].any()

    def test_c_bar_alignment(self):
        corr = build_series()
        signal, c_bar = divergence_signals(corr, a=0.1, d=0.01, w=5, y=3)
        assert c_bar.shape == corr.shape
        assert np.isnan(c_bar[8])  # window still touches NaN head
        assert c_bar[9] == pytest.approx(0.8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"a": -0.1, "d": 0.01, "w": 5, "y": 3},
            {"a": 0.1, "d": 0.0, "w": 5, "y": 3},
            {"a": 0.1, "d": 0.01, "w": 0, "y": 3},
            {"a": 0.1, "d": 0.01, "w": 5, "y": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            divergence_signals(build_series(), **kwargs)
