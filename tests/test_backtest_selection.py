"""Tests for parameter-set and pair selection rankings."""

import numpy as np
import pytest

from repro.backtest.results import ResultStore
from repro.backtest.selection import (
    format_selection_report,
    rank_pairs,
    rank_parameter_sets,
)
from repro.corr.measures import CorrelationType
from repro.strategy.params import StrategyParams


def rigged_study():
    """k=1 is obviously the best parameter set; (0,1) the best pair."""
    grid = [
        StrategyParams(ctype="pearson", m=10, w=5, y=3, rt=8, hp=6, st=4),
        StrategyParams(ctype="pearson", m=20, w=5, y=3, rt=8, hp=6, st=4),
        StrategyParams(ctype="maronna", m=10, w=5, y=3, rt=8, hp=6, st=4),
    ]
    store = ResultStore()
    table = {
        ((0, 1), 0): [0.01, -0.01],
        ((0, 1), 1): [0.05, 0.03],  # star parameter set
        ((0, 1), 2): [0.02],
        ((2, 3), 0): [-0.02],
        ((2, 3), 1): [0.01],
        ((2, 3), 2): [-0.01, -0.02],
    }
    for (pair, k), rs in table.items():
        store.add(pair, k, 0, rs)
    return store, grid


class TestRankParameterSets:
    def test_best_by_returns(self):
        store, grid = rigged_study()
        ranking = rank_parameter_sets(store, grid, "returns")
        assert ranking[0].param_index == 1
        assert ranking[0].score > ranking[-1].score

    def test_drawdown_sorts_ascending(self):
        store, grid = rigged_study()
        ranking = rank_parameter_sets(store, grid, "drawdown")
        scores = [s.score for s in ranking]
        assert scores == sorted(scores)

    def test_filter_by_treatment(self):
        store, grid = rigged_study()
        ranking = rank_parameter_sets(store, grid, "returns", ctype="pearson")
        assert {s.param_index for s in ranking} == {0, 1}
        only_maronna = rank_parameter_sets(
            store, grid, "returns", ctype=CorrelationType.MARONNA
        )
        assert [s.param_index for s in only_maronna] == [2]

    def test_trade_counts(self):
        store, grid = rigged_study()
        ranking = rank_parameter_sets(store, grid, "returns")
        by_k = {s.param_index: s.n_trades for s in ranking}
        assert by_k == {0: 3, 1: 3, 2: 3}

    def test_unknown_measure(self):
        store, grid = rigged_study()
        with pytest.raises(ValueError, match="unknown measure"):
            rank_parameter_sets(store, grid, "sortino")

    def test_missing_treatment(self):
        store, grid = rigged_study()
        with pytest.raises(ValueError, match="no parameter sets"):
            rank_parameter_sets(store, grid, "returns", ctype="combined")


class TestRankPairs:
    def test_best_pair(self):
        store, grid = rigged_study()
        ranking = rank_pairs(store, grid, "returns")
        assert ranking[0].pair == (0, 1)

    def test_winloss_ranking(self):
        store, grid = rigged_study()
        ranking = rank_pairs(store, grid, "winloss")
        assert ranking[0].pair == (0, 1)  # 5 wins 1 loss vs 2 wins 4 losses

    def test_treatment_restriction(self):
        store, grid = rigged_study()
        ranking = rank_pairs(store, grid, "returns", ctype="maronna")
        # Only k=2 counts: (0,1) +0.02 beats (2,3) -0.03.
        assert ranking[0].pair == (0, 1)
        assert ranking[0].n_trades == 1


class TestReport:
    def test_renders_with_symbols(self):
        store, grid = rigged_study()
        text = format_selection_report(
            rank_parameter_sets(store, grid, "returns"),
            rank_pairs(store, grid, "returns"),
            "returns",
            symbols=("AAA", "BBB", "CCC", "DDD"),
        )
        assert "AAA/BBB" in text
        assert "Top parameter sets" in text

    def test_renders_without_symbols(self):
        store, grid = rigged_study()
        text = format_selection_report(
            rank_parameter_sets(store, grid, "returns"),
            rank_pairs(store, grid, "returns"),
            "returns",
        )
        assert "(0, 1)" in text


class TestOnRealSweep:
    def test_rankings_cover_study(self, small_sweep):
        store, grid = small_sweep
        params_ranked = rank_parameter_sets(store, grid, "returns")
        pairs_ranked = rank_pairs(store, grid, "returns")
        assert len(params_ranked) == len(grid)
        assert len(pairs_ranked) == len(store.pairs)
        assert all(np.isfinite(s.score) for s in params_ranked)
        # Ranking is a permutation, not a filter.
        assert {s.param_index for s in params_ranked} == set(range(len(grid)))
