"""Tests for the sweep driver."""

import pytest

from repro.backtest.sweep import SweepConfig, run_sweep
from repro.corr.measures import CorrelationType
from repro.strategy.params import StrategyParams


class TestSweepConfig:
    def test_defaults_valid(self):
        cfg = SweepConfig()
        assert cfg.build_universe().n_pairs() == 45
        assert len(cfg.build_grid()) == 42

    def test_n_levels_scales_grid(self):
        cfg = SweepConfig(n_levels=3)
        assert len(cfg.build_grid()) == 9

    def test_explicit_grid_wins(self):
        grid = (StrategyParams(m=20, w=10, y=3, rt=10, hp=5, st=3),)
        cfg = SweepConfig(grid=grid)
        assert cfg.build_grid() == list(grid)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_symbols": 1},
            {"n_days": 0},
            {"engine": "quantum"},
            {"ranks": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            SweepConfig(**kwargs)

    def test_market_config_session_must_match(self):
        from repro.taq.synthetic import SyntheticMarketConfig

        with pytest.raises(ValueError, match="must match"):
            SweepConfig(
                trading_seconds=1200,
                market_config=SyntheticMarketConfig(trading_seconds=600),
            ).build_market()


class TestRunSweep:
    def test_complete_coverage(self, small_sweep):
        store, grid = small_sweep
        n_pairs = 15  # C(6, 2)
        assert len(store) == n_pairs * len(grid) * 2
        assert len(store.pairs) == n_pairs
        assert store.days == [0, 1]

    def test_grid_is_treatment_balanced(self, small_sweep):
        _, grid = small_sweep
        counts = {}
        for p in grid:
            counts[p.ctype] = counts.get(p.ctype, 0) + 1
        assert counts == {
            CorrelationType.PEARSON: 2,
            CorrelationType.MARONNA: 2,
            CorrelationType.COMBINED: 2,
        }

    def test_sequential_engine_equivalent(self, small_sweep):
        store, grid = small_sweep
        cfg = SweepConfig(
            n_symbols=6,
            n_days=2,
            n_levels=2,
            trading_seconds=23_400 // 4,
            engine="sequential",
        )
        store2, grid2 = run_sweep(cfg)
        assert store == store2
        assert grid == grid2

    def test_deterministic_across_rank_counts(self):
        base = dict(n_symbols=4, n_days=1, n_levels=1, trading_seconds=2400)
        a, _ = run_sweep(SweepConfig(ranks=1, **base))
        b, _ = run_sweep(SweepConfig(ranks=3, **base))
        assert a == b

    def test_seed_changes_market(self):
        import numpy as np

        base = dict(n_symbols=4, n_days=1, n_levels=1, trading_seconds=2400)
        a = SweepConfig(seed=1, **base).build_provider().prices(0)
        b = SweepConfig(seed=2, **base).build_provider().prices(0)
        assert not np.allclose(a, b)

    def test_produces_some_trades(self, small_sweep):
        store, _ = small_sweep
        assert store.n_trades > 0
