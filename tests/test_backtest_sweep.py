"""Tests for the sweep driver."""

import pytest

from repro import mpi
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.sweep import SweepConfig, run_sweep
from repro.corr.measures import CorrelationType
from repro.strategy.costs import execution_salt
from repro.strategy.params import StrategyParams


class TestSweepConfig:
    def test_defaults_valid(self):
        cfg = SweepConfig()
        assert cfg.build_universe().n_pairs() == 45
        assert len(cfg.build_grid()) == 42

    def test_n_levels_scales_grid(self):
        cfg = SweepConfig(n_levels=3)
        assert len(cfg.build_grid()) == 9

    def test_explicit_grid_wins(self):
        grid = (StrategyParams(m=20, w=10, y=3, rt=10, hp=5, st=3),)
        cfg = SweepConfig(grid=grid)
        assert cfg.build_grid() == list(grid)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_symbols": 1},
            {"n_days": 0},
            {"engine": "quantum"},
            {"ranks": 0},
            {"corr_backend": "simd"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            SweepConfig(**kwargs)

    def test_market_config_session_must_match(self):
        from repro.taq.synthetic import SyntheticMarketConfig

        with pytest.raises(ValueError, match="must match"):
            SweepConfig(
                trading_seconds=1200,
                market_config=SyntheticMarketConfig(trading_seconds=600),
            ).build_market()


class TestRunSweep:
    def test_complete_coverage(self, small_sweep):
        store, grid = small_sweep
        n_pairs = 15  # C(6, 2)
        assert len(store) == n_pairs * len(grid) * 2
        assert len(store.pairs) == n_pairs
        assert store.days == [0, 1]

    def test_grid_is_treatment_balanced(self, small_sweep):
        _, grid = small_sweep
        counts = {}
        for p in grid:
            counts[p.ctype] = counts.get(p.ctype, 0) + 1
        assert counts == {
            CorrelationType.PEARSON: 2,
            CorrelationType.MARONNA: 2,
            CorrelationType.COMBINED: 2,
        }

    def test_sequential_engine_equivalent(self, small_sweep):
        store, grid = small_sweep
        cfg = SweepConfig(
            n_symbols=6,
            n_days=2,
            n_levels=2,
            trading_seconds=23_400 // 4,
            engine="sequential",
        )
        store2, grid2 = run_sweep(cfg)
        assert store == store2
        assert grid == grid2

    @pytest.mark.parametrize("engine", ["sequential", "distributed"])
    def test_batch_backend_equivalent(self, small_sweep, engine):
        store, _ = small_sweep
        cfg = SweepConfig(
            n_symbols=6,
            n_days=2,
            n_levels=2,
            trading_seconds=23_400 // 4,
            engine=engine,
            corr_backend="batch",
        )
        store2, _ = run_sweep(cfg)
        assert store == store2

    def test_deterministic_across_rank_counts(self):
        base = dict(n_symbols=4, n_days=1, n_levels=1, trading_seconds=2400)
        a, _ = run_sweep(SweepConfig(ranks=1, **base))
        b, _ = run_sweep(SweepConfig(ranks=3, **base))
        assert a == b

    def test_seed_changes_market(self):
        import numpy as np

        base = dict(n_symbols=4, n_days=1, n_levels=1, trading_seconds=2400)
        a = SweepConfig(seed=1, **base).build_provider().prices(0)
        b = SweepConfig(seed=2, **base).build_provider().prices(0)
        assert not np.allclose(a, b)

    def test_produces_some_trades(self, small_sweep):
        store, _ = small_sweep
        assert store.n_trades > 0


class TestFailureManifest:
    """One bad (pair, day, parameter set) cell must not abort a sweep."""

    BASE = dict(n_symbols=4, n_days=2, n_levels=1, trading_seconds=2400)
    BAD_PAIR, BAD_K = (0, 1), 0

    def _break_cell(self, monkeypatch, module_path, fn_name):
        """Make exactly the (BAD_PAIR, BAD_K) cell raise, every day."""
        import importlib

        module = importlib.import_module(module_path)
        real = getattr(module, fn_name)
        bad_salt = execution_salt(self.BAD_PAIR, self.BAD_K)

        def wrapper(*args, **kwargs):
            if kwargs.get("salt") == bad_salt:
                raise RuntimeError("synthetic cell failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(module, fn_name, wrapper)

    def test_sequential_continue_collects_manifest(self, monkeypatch):
        self._break_cell(monkeypatch, "repro.backtest.runner", "backtest_pair_day")
        failures = []
        cfg = SweepConfig(engine="sequential", on_error="continue", **self.BASE)
        store, grid = run_sweep(cfg, failures=failures)
        assert [f.sort_key for f in failures] == [
            (0, self.BAD_PAIR, self.BAD_K),
            (1, self.BAD_PAIR, self.BAD_K),
        ]
        assert all(f.exc_type == "RuntimeError" for f in failures)
        assert all("synthetic cell failure" in f.traceback for f in failures)
        # The failed cells are absent; everything else was still swept.
        n_pairs, n_days = 6, 2
        assert len(store) == n_pairs * len(grid) * n_days - len(failures)

    def test_sequential_abort_raises_by_default(self, monkeypatch):
        self._break_cell(monkeypatch, "repro.backtest.runner", "backtest_pair_day")
        cfg = SweepConfig(engine="sequential", **self.BASE)
        with pytest.raises(Exception, match="synthetic cell failure"):
            run_sweep(cfg)

    def test_distributed_continue_matches_sequential(self, monkeypatch):
        self._break_cell(monkeypatch, "repro.backtest.runner", "backtest_pair_day")
        seq_failures = []
        seq_store, _ = run_sweep(
            SweepConfig(engine="sequential", on_error="continue", **self.BASE),
            failures=seq_failures,
        )
        self._break_cell(
            monkeypatch, "repro.backtest.distributed", "run_pair_day"
        )
        dist_failures = []
        dist_store, _ = run_sweep(
            SweepConfig(
                engine="distributed", ranks=2, on_error="continue", **self.BASE
            ),
            failures=dist_failures,
        )
        assert dist_store == seq_store
        assert [f.sort_key for f in dist_failures] == [
            f.sort_key for f in seq_failures
        ]

    def test_distributed_manifest_identical_on_all_ranks(self, monkeypatch):
        self._break_cell(
            monkeypatch, "repro.backtest.distributed", "run_pair_day"
        )
        cfg = SweepConfig(engine="distributed", on_error="continue", **self.BASE)
        provider = cfg.build_provider()
        grid = cfg.build_grid()
        pairs = list(cfg.build_universe().pairs())

        def spmd(comm):
            backtester = DistributedBacktester(provider)
            backtester.run(comm, pairs, grid, [0, 1], on_error="continue")
            return backtester.last_failures

        per_rank = mpi.run_spmd(spmd, size=2, default_timeout=30.0)
        assert per_rank[0] == per_rank[1]
        assert [f.sort_key for f in per_rank[0]] == [
            (0, self.BAD_PAIR, self.BAD_K),
            (1, self.BAD_PAIR, self.BAD_K),
        ]

    def test_config_validates_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepConfig(on_error="ignore")
