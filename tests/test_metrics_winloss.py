"""Tests for the win-loss ratio (eq 8-9)."""

import numpy as np
import pytest

from repro.metrics.winloss import win_loss_counts, win_loss_ratio


class TestCounts:
    def test_basic(self):
        assert win_loss_counts([0.1, -0.2, 0.3, -0.1, 0.2]) == (3, 2)

    def test_zero_returns_counted_as_neither(self):
        assert win_loss_counts([0.0, 0.1, 0.0, -0.1]) == (1, 1)

    def test_empty(self):
        assert win_loss_counts([]) == (0, 0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            win_loss_counts([0.1, float("nan")])


class TestRatio:
    def test_paper_scale(self):
        # Table V ratios are ~1.27: more winners than losers.
        rs = [0.01] * 127 + [-0.01] * 100
        assert win_loss_ratio(rs) == pytest.approx(1.27)

    def test_zero_losses_default_policy(self):
        assert win_loss_ratio([0.1, 0.2, 0.3]) == 3.0  # W / max(L, 1)

    def test_no_trades_default_policy(self):
        assert win_loss_ratio([]) == 0.0

    def test_strict_inf(self):
        assert win_loss_ratio([0.1], strict=True) == np.inf

    def test_strict_nan_when_empty(self):
        assert np.isnan(win_loss_ratio([], strict=True))

    def test_strict_matches_default_when_losses_exist(self):
        rs = [0.1, -0.1, 0.2, -0.3, 0.4]
        assert win_loss_ratio(rs) == win_loss_ratio(rs, strict=True)
