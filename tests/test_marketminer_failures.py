"""Failure injection: the runtime must surface component faults loudly."""

import pytest

from repro import mpi
from repro.marketminer.component import Component
from repro.marketminer.graph import Workflow
from repro.marketminer.scheduler import WorkflowRunner
from repro.mpi.inproc import SpmdFailure
from tests.test_marketminer_graph import Sink, Source


class ExplodesOnN(Component):
    def __init__(self, n, name="bomb"):
        super().__init__(name=name, input_ports=("in",), output_ports=("out",))
        self.n = n
        self.processed = 0

    def on_message(self, ctx, port, payload):
        if payload == self.n:
            raise RuntimeError(f"component exploded on payload {payload}")
        self.processed += 1
        ctx.emit("out", payload)


class ExplodesOnStop(Component):
    def __init__(self, name="stop_bomb"):
        super().__init__(name=name, input_ports=("in",), output_ports=("out",))

    def on_message(self, ctx, port, payload):
        ctx.emit("out", payload)

    def on_stop(self, ctx):
        raise RuntimeError("flush failed")


def wire(middle):
    wf = Workflow()
    wf.add(Source(items=(1, 2, 3, 4, 5)))
    wf.add(middle)
    wf.add(Sink())
    wf.connect("src", "out", middle.name, "in")
    wf.connect(middle.name, "out", "sink", "in")
    return wf


@pytest.mark.parametrize("size", [1, 3])
class TestComponentFaults:
    def test_on_message_fault_fails_run(self, size):
        wf = wire(ExplodesOnN(3))

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        with pytest.raises(SpmdFailure, match="exploded on payload 3"):
            mpi.run_spmd(spmd, size=size, default_timeout=5.0)

    def test_on_stop_fault_fails_run(self, size):
        wf = wire(ExplodesOnStop())

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        with pytest.raises(SpmdFailure, match="flush failed"):
            mpi.run_spmd(spmd, size=size, default_timeout=5.0)


class TestFaultIsolation:
    def test_healthy_run_after_failed_run(self):
        """A failed run must not poison subsequent runs (no shared state)."""
        bad = wire(ExplodesOnN(3))

        def spmd_bad(comm):
            return WorkflowRunner(bad).run(comm)

        with pytest.raises(SpmdFailure):
            mpi.run_spmd(spmd_bad, size=2, default_timeout=5.0)

        good = wire(ExplodesOnN(999, name="bomb"))

        def spmd_good(comm):
            return WorkflowRunner(good).run(comm)

        results = mpi.run_spmd(spmd_good, size=2, default_timeout=5.0)[0]
        assert results["sink"] == [1, 2, 3, 4, 5]
