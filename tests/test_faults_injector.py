"""Fault-injector unit tests plus its MailboxComm integration.

Covers the injector's send/recv hooks in isolation (drop, duplicate,
delay, dedup, gap detection, crash/stall op counting, attempt scoping)
and the attached behaviour over real communicators: duplicate envelopes
deduplicated live, sequence gaps raising :class:`FaultDetected`, recv
timeout clamping, backoff-with-retry and heartbeat ticking.
"""

import time

import pytest

from repro import mpi
from repro.faults import (
    BackoffPolicy,
    FaultDetected,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    MessageFault,
    RankCrash,
    RankStall,
)
from repro.faults.injector import _Stamped
from repro.mpi.api import RecvTimeout
from repro.mpi.inproc import SpmdFailure, ThreadBackend
from repro.obs import Obs


def run(fn, size=2, **kw):
    kw.setdefault("default_timeout", 10.0)
    return mpi.run_spmd(fn, size=size, **kw)


def plan_of(*messages, crashes=(), stalls=()):
    return FaultPlan(
        name="test", messages=messages, crashes=crashes, stalls=stalls
    )


class TestInjectorUnit:
    def test_clean_send_is_stamped_sequentially(self):
        inj = FaultInjector(plan_of(), rank=0)
        out0 = inj.on_send(1, 0, "a")
        out1 = inj.on_send(1, 0, "b")
        assert [o.seq for o in out0 + out1] == [0, 1]
        assert out0[0].payload == "a"

    def test_collective_traffic_not_stamped(self):
        inj = FaultInjector(plan_of(), rank=0)
        assert inj.on_send(1, -5, "coll") == ["coll"]
        assert inj.on_recv(1, -5, "coll") == (True, "coll")

    def test_drop(self):
        inj = FaultInjector(plan_of(MessageFault("drop", src=0, nth=1)), 0)
        assert len(inj.on_send(1, 0, "x")) == 1
        assert inj.on_send(1, 0, "y") == []
        assert ("drop", 0, 1, 1) in inj.events

    def test_duplicate(self):
        inj = FaultInjector(
            plan_of(MessageFault("duplicate", src=0, nth=0)), 0
        )
        out = inj.on_send(1, 0, "x")
        assert len(out) == 2 and out[0] is out[1]

    def test_delay_reorders_new_first(self):
        inj = FaultInjector(plan_of(MessageFault("delay", src=0, nth=0)), 0)
        assert inj.on_send(1, 0, "held") == []
        out = inj.on_send(1, 0, "next")
        assert [o.seq for o in out] == [1, 0]  # new first: FIFO broken

    def test_dst_constraint(self):
        inj = FaultInjector(
            plan_of(MessageFault("drop", src=0, dst=2, nth=0)), 0
        )
        assert len(inj.on_send(1, 0, "to1")) == 1  # dst mismatch
        assert inj.on_send(2, 0, "to2") == []

    def test_recv_dedup(self):
        inj = FaultInjector(plan_of(), rank=1)
        assert inj.on_recv(0, 0, _Stamped(0, "a")) == (True, "a")
        deliver, payload = inj.on_recv(0, 0, _Stamped(0, "a"))
        assert deliver is False and payload is None
        assert ("dedup", 1, 0, 0) in inj.events

    def test_recv_gap_raises(self):
        inj = FaultInjector(plan_of(), rank=1)
        inj.on_recv(0, 0, _Stamped(0, "a"))
        with pytest.raises(FaultDetected, match="expected 1, got 3"):
            inj.on_recv(0, 0, _Stamped(3, "d"))
        assert ("gap", 1, 0, 1, 3) in inj.events

    def test_crash_counts_all_ops(self):
        inj = FaultInjector(
            plan_of(crashes=(RankCrash(rank=0, at_op=3),)), 0
        )
        inj.on_send(1, 0, "a")
        inj.on_recv(1, -1, "coll")  # collectives advance the op counter
        with pytest.raises(InjectedCrash, match="injected crash at op 3"):
            inj.on_send(1, 0, "b")

    def test_stall_fires_once(self):
        inj = FaultInjector(
            plan_of(stalls=(RankStall(rank=0, at_op=1, seconds=0.01),)), 0
        )
        t0 = time.monotonic()
        inj.on_send(1, 0, "a")
        assert time.monotonic() - t0 >= 0.01
        inj.on_send(1, 0, "b")
        assert sum(1 for e in inj.events if e[0] == "stall") == 1

    def test_attempt_scoping(self):
        crash = RankCrash(rank=0, at_op=1, attempt=0)
        later = FaultInjector(plan_of(crashes=(crash,)), 0, attempt=1)
        later.on_send(1, 0, "fine")  # attempt 1: the attempt-0 crash is inert
        drop = MessageFault("drop", src=0, nth=0, attempt=2)
        inj = FaultInjector(plan_of(drop), 0, attempt=2)
        assert inj.on_send(1, 0, "x") == []

    def test_metrics_recorded(self):
        obs = Obs(enabled=True)
        inj = FaultInjector(
            plan_of(MessageFault("drop", src=0, nth=0)), 0, obs=obs
        )
        inj.on_send(1, 0, "x")
        assert obs.metrics.counter("faults.injected[drop]").value == 1


class TestMailboxIntegration:
    def _run_with_plan(self, prog, plan, size=2, attempt=0, **kw):
        def spmd(comm):
            comm.attach_faults(FaultInjector(plan, comm.rank, attempt))
            try:
                return prog(comm)
            finally:
                comm.attach_faults(None)

        return run(spmd, size=size, **kw)

    def test_duplicate_delivered_once(self):
        plan = plan_of(MessageFault("duplicate", src=0, nth=1))

        def prog(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(4)]

        assert self._run_with_plan(prog, plan)[1] == [0, 1, 2, 3]

    def test_drop_detected_as_gap(self):
        plan = plan_of(MessageFault("drop", src=0, nth=0))

        def prog(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1, tag=0)
                comm.send("next", dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        with pytest.raises(SpmdFailure, match="sequence gap"):
            self._run_with_plan(prog, plan)

    def test_dropped_final_message_times_out(self):
        plan = plan_of(MessageFault("drop", src=0, nth=0))

        def prog(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0, timeout=0.2)

        with pytest.raises(SpmdFailure, match="RecvTimeout"):
            self._run_with_plan(prog, plan)

    def test_detached_comm_unchanged(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("plain", dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        assert run(prog)[1] == "plain"


class TestRecvTimeoutClamp:
    """Regression: the final poll slice must be clamped to the deadline,
    so a sub-slice timeout returns in ~timeout, not a full poll slice."""

    @pytest.mark.parametrize("timeout", [0.01, 0.05])
    def test_recv_timeout_not_overshot(self, timeout):
        def prog(comm):
            if comm.rank == 1:
                t0 = time.monotonic()
                with pytest.raises(RecvTimeout):
                    comm.recv(source=0, tag=0, timeout=timeout)
                return time.monotonic() - t0
            return None

        elapsed = run(prog)[1]
        assert elapsed < 2 * timeout + 0.05


class TestRecvBackoffRetry:
    def test_late_message_recovered_within_retries(self):
        policy = BackoffPolicy(retries=5, base=0.1, factor=1.0, cap=0.1)

        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.15)  # past the first deadline, within retries
                comm.send("late", dest=1, tag=0)
                return None
            obs = Obs(enabled=True)
            comm.attach_obs(obs)
            comm.attach_recv_retry(policy)
            value = comm.recv(source=0, tag=0, timeout=0.05)
            return value, obs.metrics.counter("mpi.recv.retries").value

        value, retries = run(prog)[1]
        assert value == "late"
        assert retries >= 1

    def test_exhausted_retries_raise(self):
        policy = BackoffPolicy(retries=2, base=0.01, factor=1.0, cap=0.01)

        def prog(comm):
            if comm.rank == 1:
                comm.attach_recv_retry(policy)
                with pytest.raises(RecvTimeout):
                    comm.recv(source=0, tag=0, timeout=0.02)
            return None

        run(prog)

    def test_backoff_delays_grow_and_cap(self):
        policy = BackoffPolicy(retries=4, base=0.1, factor=2.0, cap=0.3)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.3, 0.3])


class TestHeartbeat:
    def test_thread_backend_ticks(self):
        backend = ThreadBackend(default_timeout=5.0, heartbeat=True)

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        backend.run(prog, size=2)
        assert backend.monitor is not None
        assert max(backend.monitor.ages()) < 5.0
        assert backend.monitor.stalled(5.0) == []
