"""Tests for the Maronna robust correlation estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corr.maronna import (
    DEFAULT_HUBER_K,
    MaronnaConfig,
    maronna_corr,
    maronna_corr_batched,
    maronna_weights,
)
from repro.corr.pearson import pearson_corr


def bivariate_normal(rng, rho, n):
    z = rng.normal(size=(n, 2))
    y = rho * z[:, 0] + np.sqrt(1 - rho**2) * z[:, 1]
    return z[:, 0], y


class TestConfig:
    def test_default_huber_k(self):
        # 95% chi-square quantile, 2 dof: sqrt(5.991...) ~ 2.448.
        assert DEFAULT_HUBER_K == pytest.approx(2.4477, abs=1e-3)

    @pytest.mark.parametrize(
        "kwargs", [{"k": 0.0}, {"max_iter": 0}, {"tol": -1.0}]
    )
    def test_rejects_bad(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            MaronnaConfig(**kwargs)


class TestWeights:
    def test_full_weight_inside_radius(self):
        u1, u2 = maronna_weights(np.array([0.5, 1.0, 2.0]), k=2.5)
        np.testing.assert_array_equal(u1, 1.0)
        np.testing.assert_array_equal(u2, 1.0)

    def test_downweight_outside_radius(self):
        u1, u2 = maronna_weights(np.array([5.0]), k=2.5)
        assert u1[0] == pytest.approx(0.5)
        assert u2[0] == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        d = np.linspace(0.1, 50, 200)
        u1, u2 = maronna_weights(d, k=2.5)
        assert np.all(np.diff(u1) <= 0)
        assert np.all(np.diff(u2) <= 0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            maronna_weights(np.array([-1.0]), k=2.5)


class TestCleanData:
    def test_agrees_with_pearson_on_gaussian(self, rng):
        for rho in (0.0, 0.4, 0.8, -0.6):
            x, y = bivariate_normal(rng, rho, 800)
            assert maronna_corr(x, y) == pytest.approx(
                pearson_corr(x, y), abs=0.06
            )

    def test_perfectly_correlated(self):
        x = np.random.default_rng(1).normal(size=100)
        assert maronna_corr(x, 2 * x) > 0.99
        assert maronna_corr(x, -x) < -0.99

    def test_shift_scale_invariant(self, rng):
        x, y = bivariate_normal(rng, 0.5, 300)
        base = maronna_corr(x, y)
        assert maronna_corr(5 * x + 100, 0.1 * y - 3) == pytest.approx(base, abs=1e-6)

    def test_symmetric_in_arguments(self, rng):
        x, y = bivariate_normal(rng, 0.5, 200)
        assert maronna_corr(x, y) == pytest.approx(maronna_corr(y, x), abs=1e-9)

    def test_constant_series_zero(self):
        x = np.ones(50)
        y = np.random.default_rng(2).normal(size=50)
        assert maronna_corr(x, y) == 0.0


class TestRobustness:
    def test_single_outlier_barely_moves_maronna(self, rng):
        x, y = bivariate_normal(rng, 0.7, 200)
        clean = maronna_corr(x, y)
        x_dirty = x.copy()
        x_dirty[13] = 100.0
        dirty = maronna_corr(x_dirty, y)
        pearson_clean = pearson_corr(x, y)
        pearson_dirty = pearson_corr(x_dirty, y)
        assert abs(dirty - clean) < 0.05
        assert abs(pearson_dirty - pearson_clean) > 0.3
        assert abs(dirty - clean) < abs(pearson_dirty - pearson_clean) / 5

    def test_ten_percent_contamination(self, rng):
        x, y = bivariate_normal(rng, 0.8, 300)
        x_dirty = x.copy()
        idx = rng.choice(300, size=30, replace=False)
        x_dirty[idx] = rng.normal(scale=50, size=30)
        assert maronna_corr(x_dirty, y) > 0.55

    def test_paper_claim_less_sensitive_to_outliers(self, rng):
        """The paper: Maronna "is much less sensitive to outliers"."""
        moves_maronna, moves_pearson = [], []
        for trial in range(10):
            gen = np.random.default_rng(trial)
            x, y = bivariate_normal(gen, 0.6, 150)
            xd = x.copy()
            xd[trial] = 30.0
            moves_maronna.append(abs(maronna_corr(xd, y) - maronna_corr(x, y)))
            moves_pearson.append(abs(pearson_corr(xd, y) - pearson_corr(x, y)))
        assert np.mean(moves_maronna) < 0.2 * np.mean(moves_pearson)


class TestBatched:
    def test_matches_scalar(self, rng):
        xw = rng.normal(size=(15, 60))
        yw = 0.5 * xw + rng.normal(size=(15, 60))
        batched = maronna_corr_batched(xw, yw)
        for b in range(15):
            assert batched[b] == pytest.approx(
                maronna_corr(xw[b], yw[b]), abs=1e-6
            )

    def test_bounded(self, rng):
        xw = rng.normal(size=(50, 30))
        yw = rng.normal(size=(50, 30))
        out = maronna_corr_batched(xw, yw)
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_mixed_degenerate_rows(self, rng):
        xw = rng.normal(size=(3, 40))
        yw = rng.normal(size=(3, 40))
        xw[1] = 5.0  # constant row
        out = maronna_corr_batched(xw, yw)
        assert out[1] == 0.0
        assert np.isfinite(out).all()

    def test_rejects_window_below_three(self):
        with pytest.raises(ValueError):
            maronna_corr_batched(np.ones((2, 2)), np.ones((2, 2)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            maronna_corr_batched(np.ones((2, 5)), np.ones((2, 6)))

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 1000))
    def test_always_finite_and_bounded(self, seed):
        gen = np.random.default_rng(seed)
        xw = gen.standard_t(df=2, size=(4, 25))
        yw = gen.standard_t(df=2, size=(4, 25))
        out = maronna_corr_batched(xw, yw)
        assert np.isfinite(out).all()
        assert np.all(np.abs(out) <= 1.0)

    def test_convergence_insensitive_to_max_iter_beyond_enough(self, rng):
        x, y = bivariate_normal(rng, 0.5, 100)
        a = maronna_corr(x, y, MaronnaConfig(max_iter=60))
        b = maronna_corr(x, y, MaronnaConfig(max_iter=200))
        assert a == pytest.approx(b, abs=1e-6)
