"""Tests for treatment significance testing."""

import numpy as np
import pytest

from repro.corr.measures import CorrelationType
from repro.metrics.significance import (
    format_significance_table,
    paired_comparison,
    treatment_significance,
)

P = CorrelationType.PEARSON
M = CorrelationType.MARONNA


class TestPairedComparison:
    def test_obvious_difference_detected(self, rng):
        a = rng.normal(loc=1.0, scale=0.1, size=200)
        b = a - 0.5 + rng.normal(scale=0.01, size=200)  # noisy paired shift
        c = paired_comparison(a, b, P, M, "returns", seed=1)
        assert c.mean_diff == pytest.approx(0.5, abs=0.01)
        assert c.t_pvalue < 1e-6
        assert c.wilcoxon_pvalue < 1e-6
        assert c.significant()
        assert c.ci_low <= 0.5 <= c.ci_high

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(size=100)
        b = a + rng.normal(scale=0.5, size=100)  # noise, zero mean shift
        c = paired_comparison(a, b, P, M, "returns", seed=1)
        assert not c.significant(alpha=0.001)

    def test_identical_samples(self, rng):
        a = rng.normal(size=50)
        c = paired_comparison(a, a.copy(), P, M, "returns", seed=1)
        assert c.mean_diff == 0.0
        assert c.t_pvalue == 1.0
        assert not c.significant()
        assert c.ci_low == c.ci_high == 0.0

    def test_ci_contains_mean_diff(self, rng):
        a = rng.normal(size=80)
        b = rng.normal(size=80) * 0.5 + a
        c = paired_comparison(a, b, P, M, "returns", seed=5)
        assert c.ci_low <= c.mean_diff <= c.ci_high

    def test_bootstrap_deterministic(self, rng):
        a = rng.normal(size=60)
        b = a + rng.normal(size=60)
        c1 = paired_comparison(a, b, P, M, "returns", seed=9)
        c2 = paired_comparison(a, b, P, M, "returns", seed=9)
        assert (c1.ci_low, c1.ci_high) == (c2.ci_low, c2.ci_high)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            paired_comparison([1.0, 2.0], [1.0], P, M, "returns")
        with pytest.raises(ValueError):
            paired_comparison([1.0, 2.0], [1.0, 2.0], P, M, "returns")
        with pytest.raises(ValueError):
            paired_comparison(
                [1.0, 2.0, 3.0], [1.0, 2.0, 4.0], P, M, "returns", ci_level=1.5
            )


class TestTreatmentSignificance:
    def test_three_pairwise_comparisons(self, small_sweep):
        store, grid = small_sweep
        comparisons = treatment_significance(
            store, grid, "returns", n_bootstrap=200
        )
        assert len(comparisons) == 3
        names = {(c.treatment_a, c.treatment_b) for c in comparisons}
        assert (CorrelationType.PEARSON, CorrelationType.MARONNA) in names

    def test_all_measures_work(self, small_sweep):
        store, grid = small_sweep
        for measure in ("returns", "drawdown", "winloss"):
            comparisons = treatment_significance(
                store, grid, measure, n_bootstrap=100
            )
            for c in comparisons:
                assert np.isfinite(c.mean_diff)
                assert 0.0 <= c.t_pvalue <= 1.0
                assert 0.0 <= c.wilcoxon_pvalue <= 1.0


class TestFormatting:
    def test_table_renders(self, small_sweep):
        store, grid = small_sweep
        comparisons = treatment_significance(
            store, grid, "returns", n_bootstrap=100
        )
        text = format_significance_table(comparisons)
        assert "pearson vs maronna" in text
        assert "95% CI" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_significance_table([])
