"""Wildcard matching coverage: iprobe/irecv with every ANY_SOURCE /
ANY_TAG combination, on both the thread and process backends.

SPMD programs are module-level so the process backend can pickle them
under spawn.  Each program returns plain data that the per-backend test
asserts on, keeping the assertions in one place for both backends.
"""

import pytest

from repro import mpi
from repro.mpi.api import ANY_SOURCE, ANY_TAG


def _probe_matrix(comm):
    """Rank 0: probe results for each pattern against one queued message.

    Runs on 3 ranks so probing rank 2 (which never sends) is in bounds.
    """
    if comm.rank == 1:
        comm.send("payload", 0, tag=5)
        return None
    if comm.rank != 0:
        return None
    while not comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG):
        pass
    probes = {
        "any_any": comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG),
        "any_tag5": comm.iprobe(source=ANY_SOURCE, tag=5),
        "src1_any": comm.iprobe(source=1, tag=ANY_TAG),
        "src1_tag5": comm.iprobe(source=1, tag=5),
        "wrong_tag": comm.iprobe(source=ANY_SOURCE, tag=6),
        "wrong_src": comm.iprobe(source=2, tag=ANY_TAG),
    }
    comm.recv(source=1, tag=5)  # drain so finalize is clean
    return probes


def _irecv_any_source(comm):
    """Rank 0 collects one message per peer through wildcard irecv."""
    if comm.rank != 0:
        comm.send((comm.rank, "hello"), 0, tag=3)
        return None
    got = [comm.irecv(source=ANY_SOURCE, tag=3).wait() for _ in range(comm.size - 1)]
    return sorted(got)


def _irecv_any_tag(comm):
    """Rank 0 drains two differently-tagged messages from one peer with
    ANY_TAG: per-source FIFO must preserve the send order."""
    if comm.rank == 1:
        comm.send("first", 0, tag=11)
        comm.send("second", 0, tag=12)
        return None
    if comm.rank != 0:
        return None
    req_a = comm.irecv(source=1, tag=ANY_TAG)
    req_b = comm.irecv(source=1, tag=ANY_TAG)
    return [req_a.wait(), req_b.wait()]


def _irecv_fully_wild(comm):
    """ANY_SOURCE + ANY_TAG irecv sees every message eventually."""
    if comm.rank != 0:
        comm.send(comm.rank * 10, 0, tag=comm.rank)
        return None
    got = [
        comm.irecv(source=ANY_SOURCE, tag=ANY_TAG).wait()
        for _ in range(comm.size - 1)
    ]
    return sorted(got)


def _probe_then_targeted_recv(comm):
    """iprobe(ANY, ANY) then a recv narrowed to what arrived first."""
    if comm.rank == 1:
        comm.send("narrow", 0, tag=9)
        return None
    if comm.rank != 0:
        return None
    while not comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG):
        pass
    # The only sender is rank 1 with tag 9: a targeted recv must match
    # exactly what the wildcard probe saw.
    assert comm.iprobe(source=1, tag=9)
    return comm.recv(source=1, tag=9)


def assert_probe_matrix(results):
    probes = results[0]
    assert probes["any_any"] is True
    assert probes["any_tag5"] is True
    assert probes["src1_any"] is True
    assert probes["src1_tag5"] is True
    assert probes["wrong_tag"] is False
    assert probes["wrong_src"] is False


class TestThreadBackend:
    def test_iprobe_all_wildcard_combinations(self):
        assert_probe_matrix(
            mpi.run_spmd(_probe_matrix, size=3, default_timeout=10.0)
        )

    def test_irecv_any_source_collects_every_peer(self):
        results = mpi.run_spmd(_irecv_any_source, size=4, default_timeout=10.0)
        assert results[0] == [(1, "hello"), (2, "hello"), (3, "hello")]

    def test_irecv_any_tag_preserves_source_fifo(self):
        results = mpi.run_spmd(_irecv_any_tag, size=2, default_timeout=10.0)
        assert results[0] == ["first", "second"]

    def test_irecv_fully_wild_drains_all(self):
        results = mpi.run_spmd(_irecv_fully_wild, size=4, default_timeout=10.0)
        assert results[0] == [10, 20, 30]

    def test_probe_then_targeted_recv(self):
        results = mpi.run_spmd(
            _probe_then_targeted_recv, size=2, default_timeout=10.0
        )
        assert results[0] == "narrow"


@pytest.mark.slow
class TestProcessBackend:
    def test_iprobe_all_wildcard_combinations(self):
        assert_probe_matrix(
            mpi.run_spmd(
                _probe_matrix, size=3, backend="process",
                default_timeout=30.0,
            )
        )

    def test_irecv_any_source_collects_every_peer(self):
        results = mpi.run_spmd(
            _irecv_any_source, size=3, backend="process",
            default_timeout=30.0,
        )
        assert results[0] == [(1, "hello"), (2, "hello")]

    def test_irecv_any_tag_preserves_source_fifo(self):
        results = mpi.run_spmd(
            _irecv_any_tag, size=2, backend="process", default_timeout=30.0
        )
        assert results[0] == ["first", "second"]
