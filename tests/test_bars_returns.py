"""Tests for return computation and sliding windows."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bars.returns import log_returns, sliding_windows, w_period_returns

prices_strategy = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=2, max_value=50),
    elements=st.floats(min_value=0.5, max_value=500.0),
)


class TestLogReturns:
    def test_definition(self):
        p = np.array([[100.0], [110.0], [99.0]])
        r = log_returns(p)
        np.testing.assert_allclose(
            r[:, 0], [np.log(1.1), np.log(99 / 110)], rtol=1e-12
        )

    def test_shape(self):
        p = np.ones((10, 3))
        assert log_returns(p).shape == (9, 3)

    def test_constant_prices_zero_returns(self):
        r = log_returns(np.full((5, 2), 42.0))
        np.testing.assert_array_equal(r, 0.0)

    @given(prices_strategy)
    def test_exp_cumsum_recovers_prices(self, p):
        r = log_returns(p)
        recovered = p[0] * np.exp(np.cumsum(r))
        np.testing.assert_allclose(recovered, p[1:], rtol=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_returns(np.array([[1.0], [0.0]]))

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            log_returns(np.array([[1.0]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            log_returns(np.array([[1.0], [np.nan]]))


class TestSlidingWindows:
    def test_window_contents(self):
        x = np.arange(6, dtype=float)
        w = sliding_windows(x, 3)
        assert w.shape == (4, 3)
        np.testing.assert_array_equal(w[0], [0, 1, 2])
        np.testing.assert_array_equal(w[-1], [3, 4, 5])

    def test_2d_input(self):
        x = np.arange(12, dtype=float).reshape(6, 2)
        w = sliding_windows(x, 4)
        assert w.shape == (3, 2, 4)
        np.testing.assert_array_equal(w[0, 0], [0, 2, 4, 6])

    def test_zero_copy(self):
        x = np.arange(10, dtype=float)
        w = sliding_windows(x, 3)
        assert w.base is not None  # a view, not a copy

    def test_rejects_window_longer_than_data(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3), 5)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3), 0)


class TestWPeriodReturns:
    def test_definition(self):
        p = np.array([100.0, 105.0, 110.0, 121.0])
        r = w_period_returns(p, 2)
        np.testing.assert_allclose(r, [0.10, 121 / 105 - 1])

    def test_alignment(self):
        # Output row k corresponds to price row k + w.
        p = np.linspace(100, 200, 11)
        r = w_period_returns(p, 3)
        assert r.shape == (8,)
        assert r[0] == pytest.approx(p[3] / p[0] - 1)

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            w_period_returns(np.array([1.0, 2.0]), 2)

    def test_rejects_nonpositive_prices(self):
        with pytest.raises(ValueError):
            w_period_returns(np.array([1.0, -1.0, 2.0]), 1)
