"""Tests for the online sliding-window correlation engine."""

import numpy as np
import pytest

from repro.corr.measures import CorrelationType, corr_matrix
from repro.corr.online import OnlineCorrelationEngine


class TestLifecycle:
    def test_not_ready_before_m_rows(self, correlated_returns):
        eng = OnlineCorrelationEngine(6, 20)
        for t in range(19):
            eng.push(correlated_returns[t])
            assert not eng.ready
        eng.push(correlated_returns[19])
        assert eng.ready

    def test_queries_before_ready_raise(self, correlated_returns):
        eng = OnlineCorrelationEngine(6, 20)
        eng.push(correlated_returns[0])
        with pytest.raises(ValueError, match="not full"):
            eng.matrix()
        with pytest.raises(ValueError, match="not full"):
            eng.window()
        with pytest.raises(ValueError, match="not full"):
            eng.pair(0, 1)

    def test_window_is_chronological(self, correlated_returns):
        eng = OnlineCorrelationEngine(6, 10)
        for t in range(25):
            eng.push(correlated_returns[t])
        np.testing.assert_array_equal(eng.window(), correlated_returns[15:25])

    def test_push_validates_row(self):
        eng = OnlineCorrelationEngine(3, 5)
        with pytest.raises(ValueError, match="shape"):
            eng.push(np.ones(4))
        with pytest.raises(ValueError, match="finite"):
            eng.push(np.array([1.0, np.nan, 2.0]))


class TestPearsonIncremental:
    def test_matrix_matches_direct(self, correlated_returns):
        m = 30
        eng = OnlineCorrelationEngine(6, m, "pearson")
        for t in range(200):
            eng.push(correlated_returns[t])
            if eng.ready:
                direct = corr_matrix(correlated_returns[t - m + 1 : t + 1], "pearson")
                np.testing.assert_allclose(eng.matrix(), direct, atol=1e-8)

    def test_drift_refresh(self, correlated_returns):
        # Tiny refresh interval: exercises the drift-cancel path.
        m = 15
        eng = OnlineCorrelationEngine(6, m, "pearson", refresh_every=7)
        for t in range(100):
            eng.push(correlated_returns[t])
        direct = corr_matrix(correlated_returns[100 - m : 100], "pearson")
        np.testing.assert_allclose(eng.matrix(), direct, atol=1e-10)

    def test_pair_matches_matrix(self, correlated_returns):
        eng = OnlineCorrelationEngine(6, 25, "pearson")
        for t in range(60):
            eng.push(correlated_returns[t])
        mat = eng.matrix()
        assert eng.pair(1, 4) == pytest.approx(mat[1, 4])
        assert eng.pair(2, 2) == 1.0

    def test_pair_bounds_checked(self, correlated_returns):
        eng = OnlineCorrelationEngine(6, 5)
        for t in range(5):
            eng.push(correlated_returns[t])
        with pytest.raises(ValueError):
            eng.pair(0, 6)


@pytest.mark.parametrize("ctype", ["maronna", "combined"])
class TestRobustModes:
    def test_matrix_matches_direct(self, ctype, correlated_returns):
        m = 25
        eng = OnlineCorrelationEngine(4, m, ctype)
        data = correlated_returns[:, :4]
        for t in range(m + 10):
            eng.push(data[t])
        direct = corr_matrix(data[10 : m + 10], ctype)
        np.testing.assert_allclose(eng.matrix(), direct, atol=1e-9)

    def test_pair_matches_direct(self, ctype, correlated_returns):
        from repro.corr.measures import pairwise_corr

        m = 25
        eng = OnlineCorrelationEngine(4, m, ctype)
        data = correlated_returns[:, :4]
        for t in range(m):
            eng.push(data[t])
        direct = pairwise_corr(data[:m, 0], data[:m, 3], ctype)
        assert eng.pair(0, 3) == pytest.approx(direct, abs=1e-9)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_symbols": 0, "m": 5},
            {"n_symbols": 3, "m": 1},
            {"n_symbols": 3, "m": 5, "refresh_every": 0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            OnlineCorrelationEngine(**kwargs)
