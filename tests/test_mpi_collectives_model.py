"""Model-based tests: collectives against straight-line reference results."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.mpi.api import SUM, Op

values_per_rank = st.lists(
    st.integers(-1000, 1000), min_size=1, max_size=6
)


class TestCollectivesModel:
    @settings(deadline=None, max_examples=25)
    @given(values_per_rank, st.integers(0, 5))
    def test_allreduce_matches_python_sum(self, values, root_unused):
        size = len(values)

        def prog(comm):
            return comm.allreduce(values[comm.rank], op=SUM)

        assert mpi.run_spmd(prog, size=size, default_timeout=10.0) == [
            sum(values)
        ] * size

    @settings(deadline=None, max_examples=25)
    @given(values_per_rank)
    def test_scan_matches_prefix_sums(self, values):
        size = len(values)

        def prog(comm):
            return comm.scan(values[comm.rank], op=SUM)

        expected = [sum(values[: r + 1]) for r in range(size)]
        assert mpi.run_spmd(prog, size=size, default_timeout=10.0) == expected

    @settings(deadline=None, max_examples=25)
    @given(values_per_rank, st.data())
    def test_bcast_from_any_root(self, values, data):
        size = len(values)
        root = data.draw(st.integers(0, size - 1))

        def prog(comm):
            payload = values[root] if comm.rank == root else None
            return comm.bcast(payload, root=root)

        assert mpi.run_spmd(prog, size=size, default_timeout=10.0) == [
            values[root]
        ] * size

    @settings(deadline=None, max_examples=25)
    @given(values_per_rank)
    def test_reduce_with_noncommutative_op_is_rank_ordered(self, values):
        size = len(values)
        # f(a, b) = a concatenated-with b over tuples: associative,
        # non-commutative — exposes any reordering in the fold.
        op = Op.create(lambda a, b: a + b, name="concat")

        def prog(comm):
            return comm.allreduce((values[comm.rank],), op=op)

        expected = tuple(values)
        assert mpi.run_spmd(prog, size=size, default_timeout=10.0) == [
            expected
        ] * size

    @settings(deadline=None, max_examples=20)
    @given(values_per_rank, st.integers(1, 4))
    def test_split_groups_partition_allreduce(self, values, n_colors):
        size = len(values)

        def prog(comm):
            color = comm.rank % n_colors
            sub = comm.split(color)
            return (color, sub.allreduce(values[comm.rank], op=SUM))

        results = mpi.run_spmd(prog, size=size, default_timeout=10.0)
        for rank, (color, total) in enumerate(results):
            expected = sum(
                values[r] for r in range(size) if r % n_colors == color
            )
            assert total == expected
