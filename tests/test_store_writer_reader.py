"""Writer/reader tests: manifest contents, bitwise day round-trips, scan
predicate pushdown, the block cache, obs counters and verify_store."""

import numpy as np
import pytest

from repro.obs import Obs
from repro.store import (
    BlockCache,
    CodecError,
    CorruptSegmentError,
    MANIFEST_NAME,
    SCHEMA,
    StoreReader,
    StoreWriter,
    ingest_csv,
    ingest_synthetic,
    verify_store,
)
from repro.taq.io import write_taq_csv
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe

N_DAYS = 3
SECONDS = 1800


@pytest.fixture(scope="module")
def market():
    return SyntheticMarket(
        default_universe(9),
        SyntheticMarketConfig(trading_seconds=SECONDS),
        seed=13,
    )


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, market):
    root = tmp_path_factory.mktemp("store")
    ingest_synthetic(root, market, n_days=N_DAYS, n_shards=4, block_rows=512)
    return root


class TestManifest:
    def test_manifest_written_and_schema_tagged(self, store_root):
        assert (store_root / MANIFEST_NAME).exists()
        reader = StoreReader(store_root)
        assert reader.manifest["schema"] == SCHEMA
        assert reader.days == list(range(N_DAYS))

    def test_universe_round_trips_through_manifest(self, store_root, market):
        assert StoreReader(store_root).universe == market.universe

    def test_day_stats_match_the_data(self, store_root, market):
        reader = StoreReader(store_root)
        quotes = market.quotes(1)
        entry = reader.manifest["days"]["1"]
        assert entry["rows"] == quotes.size
        assert entry["t_min"] == quotes["t"][0]
        assert entry["t_max"] == quotes["t"][-1]
        shard_rows = sum(s["rows"] for s in entry["shards"])
        assert shard_rows == quotes.size
        crossed = sum(s["quality"]["n_crossed"] for s in entry["shards"])
        assert crossed == int(np.count_nonzero(quotes["bid"] >= quotes["ask"]))

    def test_shards_partition_symbols_by_modulo(self, store_root):
        reader = StoreReader(store_root)
        for shard, entry in enumerate(
            reader.manifest["days"]["0"]["shards"]
        ):
            assert all(s % reader.n_shards == shard for s in entry["symbols"])


class TestWriterErrors:
    def test_duplicate_day_rejected(self, tmp_path, market):
        writer = StoreWriter(tmp_path, market.universe, SECONDS)
        writer.write_day(0, market.quotes(0))
        with pytest.raises(ValueError, match="already ingested"):
            writer.write_day(0, market.quotes(0))

    def test_negative_day_rejected(self, tmp_path, market):
        writer = StoreWriter(tmp_path, market.universe, SECONDS)
        with pytest.raises(ValueError, match="day"):
            writer.write_day(-1, market.quotes(0))

    def test_bad_shard_and_block_config_rejected(self, tmp_path, market):
        with pytest.raises(ValueError, match="n_shards"):
            StoreWriter(tmp_path, market.universe, SECONDS, n_shards=0)
        with pytest.raises(ValueError, match="block_rows"):
            StoreWriter(tmp_path, market.universe, SECONDS, block_rows=0)


class TestDayRoundTrip:
    def test_every_day_bitwise_identical(self, store_root, market):
        reader = StoreReader(store_root)
        for day in range(N_DAYS):
            assert (
                reader.day_quotes(day).tobytes()
                == market.quotes(day).tobytes()
            )

    def test_missing_day_raises_keyerror(self, store_root):
        with pytest.raises(KeyError, match="day 99"):
            StoreReader(store_root).day_quotes(99)


class TestScanPushdown:
    def test_full_scan_covers_every_row(self, store_root, market):
        reader = StoreReader(store_root)
        total = sum(b.rows for b in reader.scan())
        assert total == sum(market.quotes(d).size for d in range(N_DAYS))

    def test_filtered_scan_matches_naive_mask(self, store_root, market):
        reader = StoreReader(store_root)
        quotes = market.quotes(2)
        symbols = ["XOM", "MSFT"]
        idx = [market.universe.index_of(s) for s in symbols]
        naive = quotes[
            np.isin(quotes["symbol"], idx)
            & (quotes["t"] >= 200.0)
            & (quotes["t"] < 1300.0)
        ]
        got = [
            b.columns
            for b in reader.scan(
                days=[2], symbols=symbols, t_min=200.0, t_max=1300.0
            )
        ]
        got_t = np.concatenate([c["t"] for c in got])
        got_bid = np.concatenate([c["bid"] for c in got])
        order = np.argsort(got_t, kind="stable")
        naive_order = np.argsort(naive["t"], kind="stable")
        np.testing.assert_array_equal(got_t[order], naive["t"][naive_order])
        np.testing.assert_array_equal(
            got_bid[order], naive["bid"][naive_order]
        )

    def test_pruning_skips_disjoint_segments(self, store_root):
        obs = Obs(enabled=True)
        reader = StoreReader(store_root, obs=obs)
        # XOM is symbol 0 -> shard 0; the other shards must be pruned.
        list(reader.scan(days=[0], symbols=["XOM"]))
        report = obs.report()
        counters = report["metrics"]["counters"]
        assert counters["store.scan.segments"] == 1
        assert counters["store.scan.segments_pruned"] == reader.n_shards - 1

    def test_time_range_pruning_uses_manifest_bounds(self, store_root):
        reader = StoreReader(store_root)
        assert list(reader.scan(t_min=1e9)) == []
        assert list(reader.scan(t_max=0.0)) == []

    def test_scan_argument_validation(self, store_root):
        reader = StoreReader(store_root)
        with pytest.raises(KeyError, match="unknown column"):
            list(reader.scan(columns=["nope"]))
        with pytest.raises(KeyError, match="day 42"):
            list(reader.scan(days=[42]))
        with pytest.raises(ValueError, match="t_max"):
            list(reader.scan(t_min=5.0, t_max=1.0))
        with pytest.raises(KeyError, match="not in universe"):
            list(reader.scan(symbols=["ZZZZ"]))
        with pytest.raises(KeyError, match="symbol index"):
            list(reader.scan(symbols=[400]))

    def test_default_scan_is_zero_copy_memmap(self, store_root):
        reader = StoreReader(store_root)
        batch = next(iter(reader.scan(days=[0])))
        assert any(
            isinstance(col.base, np.memmap) or isinstance(col, np.memmap)
            for col in batch.columns.values()
        )


class TestBlockCache:
    def test_hits_after_first_pass(self, store_root):
        reader = StoreReader(store_root)
        reader.day_quotes(0)
        misses_after_first = reader.cache.misses
        reader.day_quotes(0)
        assert reader.cache.misses == misses_after_first
        assert reader.cache.hits >= misses_after_first

    def test_byte_budget_evicts_lru(self, store_root):
        reader = StoreReader(store_root, cache_bytes=200_000)
        for day in range(N_DAYS):
            reader.day_quotes(day)
        assert reader.cache.evictions > 0
        assert reader.cache.current_bytes <= 200_000

    def test_oversized_value_not_cached(self):
        cache = BlockCache(max_bytes=8)
        value = np.arange(100)
        assert cache.get("k", lambda: value) is value
        assert len(cache) == 0

    def test_counters_reach_obs_registry(self, store_root):
        obs = Obs(enabled=True)
        reader = StoreReader(store_root, obs=obs)
        reader.day_quotes(0)
        reader.day_quotes(0)
        counters = obs.report()["metrics"]["counters"]
        assert counters["store.cache.misses"] > 0
        assert counters["store.cache.hits"] > 0

    def test_stats_dict(self):
        cache = BlockCache(max_bytes=1 << 20)
        cache.get("a", lambda: np.arange(10))
        cache.get("a", lambda: np.arange(10))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestVerifyStore:
    def test_clean_store_verifies(self, store_root):
        summary = verify_store(StoreReader(store_root))
        assert summary["days"] == N_DAYS
        assert summary["rows"] == StoreReader(store_root).n_rows

    def test_deep_verify_rederives_synthetic_source(self, store_root):
        summary = verify_store(StoreReader(store_root), deep=True)
        assert summary["deep_days"] == N_DAYS

    def test_tampered_segment_fails(self, tmp_path, market):
        ingest_synthetic(tmp_path, market, n_days=1, block_rows=512)
        seg_path = tmp_path / "day=000" / "shard=00.seg"
        data = bytearray(seg_path.read_bytes())
        data[-1] ^= 0xFF
        seg_path.write_bytes(bytes(data))
        with pytest.raises(CorruptSegmentError):
            verify_store(StoreReader(tmp_path))

    def test_manifest_row_mismatch_fails(self, tmp_path, market):
        import json

        ingest_synthetic(tmp_path, market, n_days=1, block_rows=512)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["days"]["0"]["shards"][0]["rows"] += 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CorruptSegmentError, match="manifest"):
            verify_store(StoreReader(tmp_path))

    def test_missing_manifest_is_a_codec_error(self, tmp_path):
        with pytest.raises(CodecError, match="manifest"):
            StoreReader(tmp_path)


class TestCsvIngest:
    def test_csv_days_round_trip_bitwise(self, tmp_path, market):
        from repro.taq.io import read_taq_csv

        paths = []
        for day in range(2):
            p = tmp_path / f"day{day}.csv"
            write_taq_csv(p, market.quotes(day), market.universe)
            paths.append(p)
        root = tmp_path / "store"
        manifest = ingest_csv(
            root, paths, market.universe, trading_seconds=SECONDS
        )
        assert manifest["source"]["kind"] == "csv"
        reader = StoreReader(root)
        for day, p in enumerate(paths):
            expected = read_taq_csv(p, market.universe)
            assert reader.day_quotes(day).tobytes() == expected.tobytes()

    def test_empty_path_list_rejected(self, tmp_path, market):
        with pytest.raises(ValueError, match="at least one"):
            ingest_csv(tmp_path, [], market.universe, SECONDS)
