"""Tests for MPI_Comm_split-style sub-communicators."""

import pytest

from repro import mpi
from repro.mpi.inproc import SpmdFailure


def run(fn, size, **kw):
    kw.setdefault("default_timeout", 10.0)
    return mpi.run_spmd(fn, size=size, **kw)


class TestSplitGrouping:
    def test_even_odd_partition(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size, sub.allgather(comm.rank))

        res = run(prog, 6)
        for r, (sub_rank, sub_size, members) in enumerate(res):
            assert sub_size == 3
            assert members == [x for x in range(6) if x % 2 == r % 2]
            assert members[sub_rank] == r

    def test_key_reorders(self):
        def prog(comm):
            sub = comm.split(0, key=-comm.rank)
            return sub.allgather(comm.rank)

        res = run(prog, 4)
        assert res[0] == [3, 2, 1, 0]

    def test_ties_break_by_parent_rank(self):
        def prog(comm):
            sub = comm.split(0, key=0)
            return sub.rank

        assert run(prog, 4) == [0, 1, 2, 3]

    def test_undefined_color_opts_out(self):
        def prog(comm):
            sub = comm.split(0 if comm.rank < 2 else None)
            return sub.size if sub is not None else None

        assert run(prog, 4) == [2, 2, None, None]

    def test_singleton_groups(self):
        def prog(comm):
            sub = comm.split(comm.rank)  # everyone their own colour
            return (sub.rank, sub.size, sub.allreduce(comm.rank))

        res = run(prog, 4)
        assert res == [(0, 1, r) for r in range(4)]


class TestIsolation:
    def test_parent_usable_after_split(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            a = sub.allreduce(1)
            b = comm.allreduce(1)
            c = sub.allreduce(10)
            return (a, b, c)

        for a, b, c in run(prog, 5):
            assert b == 5
            assert a in (2, 3) and c in (20, 30)

    def test_sibling_collectives_do_not_cross_talk(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            # Different payloads per group, interleaved with parent traffic.
            group_sum = sub.allreduce(comm.rank)
            world = comm.allgather(group_sum)
            return world

        res = run(prog, 6)
        # evens 0+2+4=6, odds 1+3+5=9.
        assert res[0] == [6, 9, 6, 9, 6, 9]

    def test_p2p_within_child_uses_child_ranks(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            if sub.rank == 0:
                sub.send(f"from-world-{comm.rank}", dest=sub.size - 1, tag=1)
                return None
            if sub.rank == sub.size - 1:
                return sub.recv(source=0, tag=1)
            return None

        res = run(prog, 6)
        assert res[4] == "from-world-0"  # evens: child 0 is world 0, last is 4
        assert res[5] == "from-world-1"

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(comm.rank // 2)  # {0,1}, {2,3}
            solo = half.split(half.rank)  # singletons
            return (half.size, solo.size, half.allreduce(1), solo.allreduce(5))

        res = run(prog, 4)
        assert all(r == (2, 1, 2, 5) for r in res)

    def test_world_rank_translation(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return [sub.world_rank_of(r) for r in range(sub.size)]

        res = run(prog, 6)
        assert res[0] == [0, 2, 4]
        assert res[1] == [1, 3, 5]


class TestSplitErrors:
    def test_mismatched_split_order_times_out(self):
        # One rank split()s, the other doesn't: the allgather inside split
        # hangs until the recv timeout trips.
        def prog(comm):
            if comm.rank == 0:
                comm.split(0)
            return True

        with pytest.raises(SpmdFailure):
            run(prog, 2, default_timeout=0.5)


class TestSplitOnProcessBackend:
    pytestmark = pytest.mark.slow

    def test_split_collectives(self):
        results = mpi.run_spmd(_split_prog, size=4, backend="process")
        assert results == [(2, 2), (2, 4), (2, 2), (2, 4)]


def _split_prog(comm):
    sub = comm.split(comm.rank % 2)
    return (sub.size, sub.allreduce(comm.rank))
