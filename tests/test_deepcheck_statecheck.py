"""statecheck: snapshot()/restore() coverage proven on adversarial fixtures."""

from pathlib import Path

from repro.analysis.deepcheck import ModuleIndex, check_state

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

COMPONENT_BASE = '''
class Component:
    def __init__(self, name, input_ports=(), output_ports=()):
        self.name = name
        self.input_ports = input_ports
        self.output_ports = output_ports
    def snapshot(self):
        return None
    def restore(self, state):
        raise NotImplementedError
'''


def analyze(source: str) -> list:
    index = ModuleIndex.from_sources({
        "repro/marketminer/component.py": COMPONENT_BASE,
        "repro/fixture.py": (
            "from repro.marketminer.component import Component\n" + source
        ),
    })
    return check_state(index)


def rules(diags) -> set:
    return {d.rule for d in diags}


class TestSnapshotCoverage:
    def test_helper_mutation_missed_by_snapshot_is_flagged(self):
        # The ISSUE's canonical adversarial fixture: the handler mutates
        # self._buf only through a helper, and snapshot() forgets it.
        diags = analyze('''
class Leaky(Component):
    def __init__(self):
        super().__init__("leaky", input_ports=("in",))
        self._buf = []
        self._count = 0
    def on_message(self, ctx, port, payload):
        self._count += 1
        self._stash(payload)
    def _stash(self, payload):
        self._buf.append(payload)
    def snapshot(self):
        return {"count": self._count}
    def restore(self, state):
        self._count = state["count"]
''')
        missing = [d for d in diags if d.rule == "state.snapshot-missing"]
        assert len(missing) == 1
        assert "_buf" in missing[0].message

    def test_complete_component_is_clean(self):
        diags = analyze('''
import copy

class Covered(Component):
    def __init__(self):
        super().__init__("covered", input_ports=("in",))
        self._buf = []
        self._count = 0
    def on_message(self, ctx, port, payload):
        self._count += 1
        self._buf.append(payload)
    def snapshot(self):
        return {"buf": copy.deepcopy(self._buf), "count": self._count}
    def restore(self, state):
        self._buf = copy.deepcopy(state["buf"])
        self._count = state["count"]
''')
        assert diags == []

    def test_snapshot_read_through_property_counts(self):
        # CollectorBase idiom: snapshot reads a property whose body reads
        # the underlying attributes; restore assigns through a setter.
        diags = analyze('''
class Ranged(Component):
    def __init__(self):
        super().__init__("ranged")
        self._start = 0
        self._stop = None
    @property
    def interval_range(self):
        return (self._start, self._stop)
    def set_range(self, start, stop):
        self._start = start
        self._stop = stop
    def generate(self, ctx):
        self._start += 1
    def snapshot(self):
        return {"watermark": self.interval_range[1]}
    def restore(self, state):
        self.set_range(int(state["watermark"]), None)
''')
        assert "state.snapshot-missing" not in rules(diags)

    def test_init_only_helper_mutations_are_construction_not_state(self):
        diags = analyze('''
class Wired(Component):
    def __init__(self):
        super().__init__("wired", input_ports=("in",))
        self._table = {}
        self._wire()
        self._n = 0
    def _wire(self):
        self._table["k"] = 1
    def on_message(self, ctx, port, payload):
        self._n += 1
    def snapshot(self):
        return {"n": self._n}
    def restore(self, state):
        self._n = state["n"]
''')
        # _table is only touched at construction; only run state counts.
        assert diags == []

    def test_restore_missing_assignment_flagged(self):
        diags = analyze('''
class HalfRestored(Component):
    def __init__(self):
        super().__init__("half", input_ports=("in",))
        self._a = 0
        self._b = 0
    def on_message(self, ctx, port, payload):
        self._a += 1
        self._b += 1
    def snapshot(self):
        return {"a": self._a, "b": self._b}
    def restore(self, state):
        self._a = state["a"]
        b = state["b"]  # read but never installed
''')
        missing = [d for d in diags if d.rule == "state.restore-missing"]
        assert len(missing) == 1 and "_b" in missing[0].message


class TestKeySymmetry:
    def test_unread_key_flagged_but_watermark_exempt(self):
        diags = analyze('''
class Keys(Component):
    def __init__(self):
        super().__init__("keys", input_ports=("in",))
        self._n = 0
    def on_message(self, ctx, port, payload):
        self._n += 1
    def snapshot(self):
        return {"n": self._n, "debug": 1, "watermark": self._n}
    def restore(self, state):
        self._n = state["n"]
''')
        unread = [d for d in diags if d.rule == "state.key-unread"]
        assert len(unread) == 1
        assert "'debug'" in unread[0].message  # watermark not reported

    def test_unknown_key_read_flagged(self):
        diags = analyze('''
class Phantom(Component):
    def __init__(self):
        super().__init__("phantom", input_ports=("in",))
        self._n = 0
    def on_message(self, ctx, port, payload):
        self._n += 1
    def snapshot(self):
        return {"n": self._n}
    def restore(self, state):
        self._n = state["n"]
        self._m = state["missing"]
''')
        assert "state.key-unknown" in rules(diags)


class TestLiveAlias:
    def test_bare_mutable_reference_in_snapshot_flagged(self):
        diags = analyze('''
class Aliased(Component):
    def __init__(self):
        super().__init__("aliased", input_ports=("in",))
        self._buf = []
    def on_message(self, ctx, port, payload):
        self._buf.append(payload)
    def snapshot(self):
        return {"buf": self._buf}
    def restore(self, state):
        self._buf = list(state["buf"])
''')
        alias = [d for d in diags if d.rule == "state.live-alias"]
        assert len(alias) == 1 and "snapshot" in alias[0].message

    def test_uncopied_restore_of_mutable_flagged(self):
        diags = analyze('''
import copy

class RawRestore(Component):
    def __init__(self):
        super().__init__("raw", input_ports=("in",))
        self._buf = []
    def on_message(self, ctx, port, payload):
        self._buf.append(payload)
    def snapshot(self):
        return {"buf": copy.deepcopy(self._buf)}
    def restore(self, state):
        self._buf = state["buf"]
''')
        alias = [d for d in diags if d.rule == "state.live-alias"]
        assert len(alias) == 1 and "restore" in alias[0].message

    def test_copies_absolve_both_sides(self):
        diags = analyze('''
import copy

class Copied(Component):
    def __init__(self):
        super().__init__("copied", input_ports=("in",))
        self._buf = []
    def on_message(self, ctx, port, payload):
        self._buf.append(payload)
    def snapshot(self):
        return {"buf": copy.deepcopy(self._buf)}
    def restore(self, state):
        self._buf = copy.deepcopy(state["buf"])
''')
        assert diags == []


class TestSuppression:
    def test_pragma_silences_the_rule_on_the_class_line(self):
        diags = analyze('''
class Known(Component):  # repro-lint: disable=state.snapshot-missing
    def __init__(self):
        super().__init__("known", input_ports=("in",))
        self._scratch = 0
    def on_message(self, ctx, port, payload):
        self._scratch += 1
    def snapshot(self):
        return {}
    def restore(self, state):
        pass
''')
        assert "state.snapshot-missing" not in rules(diags)


class TestRealRepo:
    def _sources(self) -> dict:
        out = {}
        for p in sorted(SRC_ROOT.rglob("*.py")):
            if "__pycache__" in p.parts:
                continue
            out[str(p.relative_to(SRC_ROOT.parent))] = p.read_text(
                encoding="utf-8"
            )
        return out

    def test_repo_components_are_clean(self):
        index = ModuleIndex.from_sources(self._sources())
        assert check_state(index) == []

    def test_deleting_a_real_snapshot_key_fails_statically(self):
        # Acceptance criterion: removing any snapshot() key from a real
        # Figure-1 component must fail statecheck without running the
        # pipeline.
        sources = self._sources()
        target = "repro/marketminer/components/cleaning.py"
        broken = sources[target].replace(
            '            "total": self._total,\n', ""
        )
        assert broken != sources[target], "fixture key not found"
        sources[target] = broken
        index = ModuleIndex.from_sources(sources)
        diags = [d for d in check_state(index) if target in str(d.location)]
        assert "state.snapshot-missing" in rules(diags)
        assert "state.key-unknown" in rules(diags)
