"""Tests for the workflow runtime: placement, routing, EOS shutdown."""

import pytest

from repro import mpi
from repro.marketminer.component import Component
from repro.marketminer.graph import Workflow
from repro.marketminer.scheduler import WorkflowRunner
from repro.mpi.inproc import SpmdFailure


class NumberSource(Component):
    def __init__(self, name="numbers", n=10):
        super().__init__(name=name, output_ports=("out",))
        self.n = n

    def generate(self, ctx):
        for i in range(self.n):
            ctx.emit("out", i)


class Square(Component):
    def __init__(self, name="square"):
        super().__init__(name=name, input_ports=("in",), output_ports=("out",))

    def on_message(self, ctx, port, payload):
        ctx.emit("out", payload * payload)


class Collect(Component):
    def __init__(self, name="collect", n_inputs=1):
        ports = tuple(f"in{i}" for i in range(n_inputs))
        super().__init__(name=name, input_ports=ports)
        self.seen = []
        self.stopped = False

    def on_message(self, ctx, port, payload):
        self.seen.append((port, payload))

    def on_stop(self, ctx):
        self.stopped = True

    def result(self):
        return {"seen": list(self.seen), "stopped": self.stopped}


class FlushAtStop(Component):
    """Emits a summary from on_stop - tests post-EOS emission ordering."""

    def __init__(self, name="flusher"):
        super().__init__(name=name, input_ports=("in",), output_ports=("out",))
        self.total = 0

    def on_message(self, ctx, port, payload):
        self.total += payload

    def on_stop(self, ctx):
        ctx.emit("out", self.total)


def pipeline_workflow(n=10):
    wf = Workflow()
    wf.add(NumberSource(n=n))
    wf.add(Square())
    wf.add(Collect())
    wf.connect("numbers", "out", "square", "in")
    wf.connect("square", "out", "collect", "in0")
    return wf


@pytest.mark.parametrize("size", [1, 2, 3, 5])
class TestAcrossRankCounts:
    def test_linear_pipeline(self, size):
        wf = pipeline_workflow()

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        results = mpi.run_spmd(spmd, size=size)
        expected = [("in0", i * i) for i in range(10)]
        for r in results:
            assert r["collect"]["seen"] == expected
            assert r["collect"]["stopped"] is True

    def test_fan_out_fan_in(self, size):
        wf = Workflow()
        wf.add(NumberSource(n=5))
        wf.add(Square(name="sq_a"))
        wf.add(Square(name="sq_b"))
        wf.add(Collect(n_inputs=2))
        wf.connect("numbers", "out", "sq_a", "in")
        wf.connect("numbers", "out", "sq_b", "in")
        wf.connect("sq_a", "out", "collect", "in0")
        wf.connect("sq_b", "out", "collect", "in1")

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        results = mpi.run_spmd(spmd, size=size)
        seen = results[0]["collect"]["seen"]
        assert sorted(p for _, p in seen) == sorted(
            [i * i for i in range(5)] * 2
        )
        # Per-upstream ordering preserved even when interleaved.
        for port in ("in0", "in1"):
            assert [p for pt, p in seen if pt == port] == [i * i for i in range(5)]

    def test_on_stop_emission_delivered(self, size):
        wf = Workflow()
        wf.add(NumberSource(n=4))
        wf.add(FlushAtStop())
        wf.add(Collect())
        wf.connect("numbers", "out", "flusher", "in")
        wf.connect("flusher", "out", "collect", "in0")

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        results = mpi.run_spmd(spmd, size=size)
        assert results[0]["collect"]["seen"] == [("in0", 6)]

    def test_multiple_sources(self, size):
        wf = Workflow()
        wf.add(NumberSource(name="src_a", n=3))
        wf.add(NumberSource(name="src_b", n=3))
        wf.add(Collect(n_inputs=2))
        wf.connect("src_a", "out", "collect", "in0")
        wf.connect("src_b", "out", "collect", "in1")

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        results = mpi.run_spmd(spmd, size=size)
        seen = results[0]["collect"]["seen"]
        assert len(seen) == 6
        assert results[0]["collect"]["stopped"]


class TestRuntimeErrors:
    def test_emit_on_undeclared_port(self):
        class BadSource(Component):
            def __init__(self):
                super().__init__(name="bad", output_ports=("out",))

            def generate(self, ctx):
                ctx.emit("wrong_port", 1)

        wf = Workflow()
        wf.add(BadSource())
        wf.add(Collect())
        wf.connect("bad", "out", "collect", "in0")

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        with pytest.raises(SpmdFailure, match="undeclared port"):
            mpi.run_spmd(spmd, size=1)

    def test_invalid_workflow_rejected_at_construction(self):
        wf = Workflow()
        wf.add(Collect())
        with pytest.raises(ValueError):
            WorkflowRunner(wf)


class TestPlacement:
    def test_rank_map_deterministic_and_complete(self):
        wf = pipeline_workflow()
        runner = WorkflowRunner(wf)
        rm1 = runner.rank_map(3)
        rm2 = runner.rank_map(3)
        assert rm1.assignment == rm2.assignment
        assert set(rm1.assignment) == {"numbers", "square", "collect"}

    def test_weights_influence_placement(self):
        wf = Workflow()
        wf.add(NumberSource(n=1))
        heavy = Square(name="heavy")
        heavy.weight = 100.0
        wf.add(heavy)
        wf.add(Collect())
        wf.connect("numbers", "out", "heavy", "in")
        wf.connect("heavy", "out", "collect", "in0")
        rm = WorkflowRunner(wf).rank_map(2)
        heavy_rank = rm.rank_of("heavy")
        assert rm.components_of(heavy_rank) == ("heavy",)
