"""Fault-plan model tests: validation, determinism, serialisation."""

import pytest

from repro.faults import (
    PLAN_NAMES,
    FaultPlan,
    MessageFault,
    RankCrash,
    RankStall,
    named_plan,
    plan_descriptions,
    seeded_plan,
)


class TestValidation:
    def test_bad_message_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MessageFault("explode", src=0)

    def test_negative_nth(self):
        with pytest.raises(ValueError, match="nth"):
            MessageFault("drop", src=0, nth=-1)

    def test_crash_validates(self):
        with pytest.raises(ValueError):
            RankCrash(rank=-1, at_op=5)
        with pytest.raises(ValueError):
            RankCrash(rank=0, at_op=0)

    def test_stall_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            RankStall(rank=0, at_op=5, seconds=-0.5)

    def test_empty_plan(self):
        assert FaultPlan(name="nothing").empty
        assert not named_plan("dup").empty


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        assert seeded_plan(11, size=3) == seeded_plan(11, size=3)

    def test_different_seed_differs(self):
        plans = {seeded_plan(seed, size=3) for seed in range(20)}
        assert len(plans) > 1

    def test_faults_within_bounds(self):
        plan = seeded_plan(5, size=4, max_nth=6, max_op=30)
        for fault in plan.messages:
            assert 0 <= fault.src < 4
            assert 0 <= fault.nth <= 6
        for crash in plan.crashes:
            assert 0 <= crash.rank < 4
            assert 1 <= crash.at_op <= 30


class TestSerialisation:
    def test_round_trip(self):
        plan = named_plan("drop-dup", size=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_with_crash_and_stall(self):
        plan = FaultPlan(
            name="mix",
            messages=(MessageFault("delay", src=1, dst=2, nth=3),),
            crashes=(RankCrash(rank=0, at_op=7, attempt=1),),
            stalls=(RankStall(rank=2, at_op=9, seconds=0.25),),
            seed=42,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestNamedPlans:
    def test_every_name_builds(self):
        for name in PLAN_NAMES:
            plan = named_plan(name, size=3)
            assert plan.name == name
            assert not plan.empty

    def test_descriptions_cover_names(self):
        assert set(plan_descriptions()) == set(PLAN_NAMES)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            named_plan("nope")

    def test_at_op_override(self):
        plan = named_plan("crash-mid", size=3, at_op=4)
        assert all(c.at_op == 4 for c in plan.crashes)
        stalls = named_plan("stall", size=3, at_op=6).stalls
        assert all(s.at_op == 6 for s in stalls)

    def test_single_rank_plan_stays_in_bounds(self):
        plan = named_plan("dup", size=1)
        for fault in plan.messages:
            assert fault.src == 0
