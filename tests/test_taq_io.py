"""Tests for TAQ file IO (repro.taq.io)."""

import numpy as np
import pytest

from repro.taq.io import format_table2, read_taq_csv, write_taq_csv
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import default_universe


@pytest.fixture(scope="module")
def quotes_and_universe():
    cfg = SyntheticMarketConfig(trading_seconds=600, quote_rate=0.5)
    mkt = SyntheticMarket(default_universe(5), cfg, seed=55)
    return mkt.quotes(0), mkt.universe


class TestRoundTrip:
    def test_lossless_prices_and_symbols(self, tmp_path, quotes_and_universe):
        quotes, universe = quotes_and_universe
        path = tmp_path / "day0.csv"
        write_taq_csv(path, quotes, universe)
        back = read_taq_csv(path, universe)
        assert back.size == quotes.size
        np.testing.assert_array_equal(back["symbol"], quotes["symbol"])
        np.testing.assert_allclose(back["bid"], quotes["bid"], atol=1e-9)
        np.testing.assert_allclose(back["ask"], quotes["ask"], atol=1e-9)
        np.testing.assert_array_equal(back["bid_size"], quotes["bid_size"])
        np.testing.assert_allclose(back["t"], quotes["t"], atol=1e-5)

    def test_empty_file_round_trip(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "empty.csv"
        write_taq_csv(path, np.empty(0, dtype=QUOTE_DTYPE), universe)
        back = read_taq_csv(path, universe)
        assert back.size == 0


class TestReadErrors:
    def test_unknown_symbol(self, tmp_path, quotes_and_universe):
        quotes, universe = quotes_and_universe
        path = tmp_path / "day.csv"
        write_taq_csv(path, quotes, universe)
        smaller = default_universe(2)
        with pytest.raises(KeyError):
            read_taq_csv(path, smaller)

    def test_bad_header(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n")
        with pytest.raises(ValueError, match="header"):
            read_taq_csv(path, universe)

    def test_bad_field_count(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "short.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\n09:30:00,XOM,1.0\n"
        )
        with pytest.raises(ValueError, match="expected 6 fields"):
            read_taq_csv(path, universe)

    def test_bad_timestamp(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "ts.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\nnoon,XOM,1.0,1.1,1,1\n"
        )
        with pytest.raises(ValueError, match="timestamp"):
            read_taq_csv(path, universe)


class TestFormatTable2:
    def test_header_matches_paper_columns(self, quotes_and_universe):
        quotes, universe = quotes_and_universe
        text = format_table2(quotes, universe, limit=3)
        header = text.splitlines()[0]
        for col in ("Timestamp", "Symbol", "Bid Price", "Ask Price", "Bid Size", "Ask Size"):
            assert col in header

    def test_row_count_respects_limit(self, quotes_and_universe):
        quotes, universe = quotes_and_universe
        assert len(format_table2(quotes, universe, limit=5).splitlines()) == 6

    def test_timestamps_are_wall_clock(self, quotes_and_universe):
        quotes, universe = quotes_and_universe
        first_row = format_table2(quotes, universe, limit=1).splitlines()[1]
        assert first_row.startswith("09:30:")


class TestVectorisedReader:
    def test_timestamp_error_names_file_and_line(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "ts.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\n"
            "09:30:01.000000,XOM,1.00,1.10,1,1\n"
            "noon,XOM,1.00,1.10,1,1\n"
        )
        with pytest.raises(ValueError, match=rf"{path}:3: bad timestamp"):
            read_taq_csv(path, universe)

    def test_numeric_error_names_file_and_line(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "num.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\n"
            "09:30:01.000000,XOM,oops,1.10,1,1\n"
        )
        with pytest.raises(ValueError, match=rf"{path}:2: bad bid value"):
            read_taq_csv(path, universe)

    def test_field_count_error_names_line(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "short.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\n"
            "09:30:01.000000,XOM,1.00,1.10,1,1\n"
            "09:30:02.000000,XOM,1.00\n"
        )
        with pytest.raises(ValueError, match=rf"{path}:3: expected 6 fields"):
            read_taq_csv(path, universe)

    def test_legacy_crlf_and_plain_lf_files_both_read(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        body = (
            "timestamp,symbol,bid,ask,bid_size,ask_size{eol}"
            "09:30:01.500000,XOM,1.00,1.10,2,3{eol}"
        )
        for eol in ("\r\n", "\n"):
            path = tmp_path / f"eol{len(eol)}.csv"
            path.write_bytes(body.format(eol=eol).encode())
            back = read_taq_csv(path, universe)
            assert back.size == 1
            assert back["t"][0] == 1.5
            assert back["bid_size"][0] == 2

    def test_second_stamped_rows_without_fraction_read(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        path = tmp_path / "taq.csv"
        path.write_text(
            "timestamp,symbol,bid,ask,bid_size,ask_size\n"
            "09:30:05,XOM,1.00,1.10,1,1\n"
        )
        assert read_taq_csv(path, universe)["t"][0] == 5.0


class TestFractionCarry:
    def test_fraction_rounding_carries_into_the_next_second(self, tmp_path, quotes_and_universe):
        _, universe = quotes_and_universe
        rec = np.zeros(2, dtype=QUOTE_DTYPE)
        rec["t"] = [0.9999997, 5.0]
        rec["bid"] = 1.0
        rec["ask"] = 1.1
        rec["bid_size"] = 1
        rec["ask_size"] = 1
        path = tmp_path / "carry.csv"
        write_taq_csv(path, rec, universe)
        first = path.read_text().splitlines()[1]
        assert first.startswith("09:30:01.000000,")
        back = read_taq_csv(path, universe)
        assert back["t"][0] == pytest.approx(rec["t"][0], abs=5e-7)
