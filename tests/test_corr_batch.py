"""Tests for the all-pairs batch correlation kernels and the backend seam.

The load-bearing invariant: ``backend="batch"`` is bitwise-identical to the
per-pair scalar oracle (and, for the robust measures, to the genuine
per-window scalar loop) — every equality below is ``np.array_equal``, never
``allclose``.
"""

import json

import numpy as np
import pytest

from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.corr.batch import (
    BACKENDS,
    BatchWorkspace,
    all_pairs,
    batch_pair_series,
    check_backend,
    pair_series_matrix,
    reference_pair_series,
    scalar_pair_series,
)
from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import corr_matrix_series, corr_series
from repro.corr.parallel import ParallelCorrelationEngine
from repro.obs import Obs
from repro.strategy.engine import align_corr_series
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

CTYPES = ("pearson", "maronna", "combined")


def random_returns(rng, T, n, outlier_prob=0.02, constant_col=False):
    """Return rows with occasional fat-tailed outliers, optionally a
    zero-variance column (the degenerate-window edge case)."""
    r = rng.normal(0.0, 1e-3, (T, n))
    r[rng.random((T, n)) < outlier_prob] *= 40.0
    if constant_col:
        r[:, 0] = 0.0
    return r


class TestHelpers:
    def test_all_pairs(self):
        assert all_pairs(3) == [(0, 1), (0, 2), (1, 2)]
        assert len(all_pairs(61)) == 1830

    def test_check_backend(self):
        for b in BACKENDS:
            assert check_backend(b) == b
        with pytest.raises(ValueError, match="backend"):
            check_backend("gpu")

    def test_workspace_reuse_and_nbytes(self):
        ws = BatchWorkspace()
        a = ws.get("x", (4, 5))
        assert ws.get("x", (4, 5)) is a
        b = ws.get("x", (6, 5))
        assert b is not a and b.shape == (6, 5)
        assert ws.nbytes == b.nbytes


class TestPropertyBatchEqualsScalar:
    """Random shapes, windows and data: batch == scalar to the last ulp."""

    @pytest.mark.parametrize("trial", range(8))
    def test_random_universe(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(2, 8))
        m = int(rng.integers(3, 30))
        T = m + int(rng.integers(1, 90))
        returns = random_returns(
            rng, T, n, constant_col=bool(trial % 3 == 0)
        )
        ctype = CTYPES[trial % 3]
        ws = BatchWorkspace()
        batch = batch_pair_series(returns, m, ctype, workspace=ws)
        scalar = scalar_pair_series(returns, m, ctype)
        assert batch.shape == (T - m + 1, n * (n - 1) // 2)
        np.testing.assert_array_equal(batch, scalar)

    @pytest.mark.parametrize("ctype", ["maronna", "combined"])
    def test_matches_per_window_reference(self, ctype):
        rng = np.random.default_rng(7)
        returns = random_returns(rng, 40, 4)
        batch = batch_pair_series(returns, 12, ctype)
        ref = reference_pair_series(returns, 12, ctype)
        np.testing.assert_array_equal(batch, ref)

    def test_pearson_reference_is_the_rolling_series(self):
        rng = np.random.default_rng(8)
        returns = random_returns(rng, 60, 5)
        np.testing.assert_array_equal(
            reference_pair_series(returns, 20, "pearson"),
            scalar_pair_series(returns, 20, "pearson"),
        )

    def test_subset_pairs_and_out_buffer(self):
        rng = np.random.default_rng(9)
        returns = random_returns(rng, 80, 6)
        pairs = [(0, 5), (3, 1), (2, 4)]
        out = np.empty((80 - 15 + 1, 3))
        got = pair_series_matrix(
            returns, 15, "combined", pairs=pairs, out=out, backend="batch"
        )
        assert got is out
        for p, (i, j) in enumerate(pairs):
            np.testing.assert_array_equal(
                got[:, p], corr_series(returns[:, i], returns[:, j], 15, "combined")
            )

    def test_chunk_boundaries_cannot_change_results(self, monkeypatch):
        """Shrink both chunk budgets to force many tiny, pair-straddling
        chunks; results must not move by a single bit."""
        import repro.corr.batch as batch_mod

        rng = np.random.default_rng(10)
        returns = random_returns(rng, 70, 5)
        expected = {c: batch_pair_series(returns, 16, c) for c in CTYPES}
        monkeypatch.setattr(batch_mod, "_CHUNK_ELEMENTS", 97)
        monkeypatch.setattr(batch_mod, "_ROBUST_CHUNK_ELEMENTS", 97)
        for c in CTYPES:
            np.testing.assert_array_equal(
                batch_pair_series(returns, 16, c), expected[c]
            )

    def test_nan_padding_alignment_matches_scalar(self):
        """The aligned (NaN warm-up embedded) series the engines feed the
        strategy are identical, NaNs included."""
        rng = np.random.default_rng(11)
        smax = 90
        returns = random_returns(rng, smax - 1, 4)
        m = 20
        batch = batch_pair_series(returns, m, "maronna")
        for p, (i, j) in enumerate(all_pairs(4)):
            a = align_corr_series(batch[:, p], smax, m)
            b = align_corr_series(
                corr_series(returns[:, i], returns[:, j], m, "maronna"), smax, m
            )
            np.testing.assert_array_equal(a, b)
            assert np.isnan(a[:m]).all()


class TestMaronnaConvergenceMask:
    def test_one_pair_never_converges(self):
        """A pair whose fixed point can't settle within max_iter must hit
        the cap without perturbing any other pair's trajectory."""
        rng = np.random.default_rng(12)
        returns = random_returns(rng, 30, 4, outlier_prob=0.0)
        # Pair (0, 1) gets violent alternating outliers; a tight tolerance
        # plus a tiny iteration cap leaves it unconverged.
        returns[::2, 0] += 50.0
        returns[1::2, 1] -= 50.0
        capped = MaronnaConfig(max_iter=3, tol=1e-14)
        loose = MaronnaConfig(max_iter=200, tol=1e-14)
        m = 12
        batch_capped = batch_pair_series(returns, m, "maronna", capped)
        batch_loose = batch_pair_series(returns, m, "maronna", loose)
        # The cap genuinely bit somewhere on the outlier pair (column 0)...
        assert not np.array_equal(batch_capped[:, 0], batch_loose[:, 0])
        # ...yet capped results still match scalar and per-window paths
        # bitwise and stay valid correlations.
        np.testing.assert_array_equal(
            batch_capped, scalar_pair_series(returns, m, "maronna", capped)
        )
        np.testing.assert_array_equal(
            batch_capped, reference_pair_series(returns, m, "maronna", capped)
        )
        assert np.isfinite(batch_capped).all()
        assert (np.abs(batch_capped) <= 1.0).all()


class TestObsAttribution:
    def test_batch_metrics_and_span(self):
        rng = np.random.default_rng(13)
        returns = random_returns(rng, 60, 4)
        obs = Obs(enabled=True)
        with obs.trace.span("test-root"):
            batch_pair_series(returns, 20, "pearson", obs=obs)
        d = obs.to_dict()
        counters = d["metrics"]["counters"]
        assert counters["corr.batch.pairs"] == 6
        assert counters["corr.batch.windows"] == 6 * (60 - 20 + 1)
        assert counters["corr.batch.chunks"] >= 1
        assert "corr.batch.pair_series.seconds" in d["metrics"]["histograms"]
        assert "corr.batch" in json.dumps(d["spans"])

    def test_disabled_obs_records_nothing(self):
        rng = np.random.default_rng(14)
        returns = random_returns(rng, 40, 3)
        obs = Obs(enabled=False)
        batch_pair_series(returns, 10, "pearson", obs=obs)
        assert obs.to_dict()["metrics"]["counters"] == {}


class TestValidation:
    def test_rejects_bad_pairs(self):
        returns = np.zeros((30, 3))
        with pytest.raises(ValueError, match="invalid pair"):
            batch_pair_series(returns, 10, "pearson", pairs=[(0, 3)])
        with pytest.raises(ValueError, match="invalid pair"):
            batch_pair_series(returns, 10, "pearson", pairs=[(1, 1)])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match=r"\(T, n\)"):
            batch_pair_series(np.zeros(10), 5, "pearson")
        with pytest.raises(ValueError, match="at least"):
            batch_pair_series(np.zeros((4, 3)), 5, "pearson")
        with pytest.raises(ValueError, match="out must be"):
            batch_pair_series(
                np.zeros((30, 3)), 10, "pearson", out=np.zeros((2, 2))
            )

    def test_sequential_batch_requires_sharing(self, small_market, small_grid):
        provider = BarProvider(small_market, small_grid)
        with pytest.raises(ValueError, match="share_correlation"):
            SequentialBacktester(
                provider, share_correlation=False, corr_backend="batch"
            )


class TestMatrixSeriesBackend:
    @pytest.mark.parametrize("ctype", ["maronna", "combined"])
    def test_batch_equals_scalar(self, correlated_returns, ctype):
        r = correlated_returns[:50, :4]
        np.testing.assert_array_equal(
            corr_matrix_series(r, 20, ctype, backend="batch"),
            corr_matrix_series(r, 20, ctype, backend="scalar"),
        )

    def test_rejects_unknown_backend(self, correlated_returns):
        with pytest.raises(ValueError, match="backend"):
            corr_matrix_series(correlated_returns[:50], 20, backend="simd")


class TestParallelEngineBackend:
    @pytest.mark.parametrize("mpi_backend", ["thread", "process"])
    def test_pair_series_bitwise_across_backends(
        self, correlated_returns, mpi_backend
    ):
        r = correlated_returns[:90]
        pairs = [(0, 1), (2, 3), (1, 5), (0, 4), (3, 5)]

        def prog(comm):
            return ParallelCorrelationEngine("combined", backend="batch").pair_series(
                comm, r, 25, pairs
            )

        results = mpi.run_spmd(prog, size=3, backend=mpi_backend)
        for got in results:
            assert set(got) == set(pairs)
            for i, j in pairs:
                np.testing.assert_array_equal(
                    got[(i, j)], corr_series(r[:, i], r[:, j], 25, "combined")
                )

    def test_matrix_series_batch_matches_serial(self, correlated_returns):
        r = correlated_returns[:50, :4]

        def prog(comm):
            return ParallelCorrelationEngine("maronna", backend="batch").matrix_series(
                comm, r, 20
            )

        results = mpi.run_spmd(prog, size=2)
        expected = corr_matrix_series(r, 20, "maronna")
        np.testing.assert_array_equal(results[0], expected)
        np.testing.assert_array_equal(results[1], expected)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelCorrelationEngine("pearson", backend="simd")


class TestStoreFedBatchSession:
    def test_store_fed_batch_equals_in_memory_scalar(self, tmp_path):
        """The full seam: a store-backed provider (zero-copy memmap reader)
        feeding the batch backend must reproduce the in-memory scalar
        engine's results exactly."""
        from repro.store import StoreQuoteSource, StoreReader, ingest_synthetic

        cfg = SyntheticMarketConfig(trading_seconds=3600, quote_rate=0.8)
        market = SyntheticMarket(default_universe(5), cfg, seed=77)
        ingest_synthetic(tmp_path, market, n_days=2, n_shards=2)

        grid_t = TimeGrid(30, trading_seconds=3600)
        base = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.002)
        grid = [base, base.with_ctype("maronna"), base.with_ctype("combined")]
        pairs = [(0, 1), (1, 2), (2, 4), (0, 3)]
        days = [0, 1]

        source = StoreQuoteSource(StoreReader(tmp_path))
        store_fed = SequentialBacktester(
            BarProvider(source, grid_t),
            share_correlation=True,
            corr_backend="batch",
        ).run(pairs, grid, days)
        in_memory = SequentialBacktester(
            BarProvider(market, grid_t),
            share_correlation=True,
            corr_backend="scalar",
        ).run(pairs, grid, days)
        assert store_fed == in_memory
