"""Tests for the one-stop study report."""

import pytest

from repro.backtest.report import StudyReportOptions, study_report


class TestStudyReport:
    def test_full_report_sections(self, small_sweep):
        store, grid = small_sweep
        text = study_report(
            store, grid, StudyReportOptions(n_bootstrap=100)
        )
        for marker in (
            "Table III",
            "Table IV",
            "Table V",
            "Figure 2",
            "Significance of treatment differences",
            "Top parameter sets",
            "Walk-forward validation",
        ):
            assert marker in text, marker

    def test_sections_can_be_disabled(self, small_sweep):
        store, grid = small_sweep
        text = study_report(
            store,
            grid,
            StudyReportOptions(
                include_significance=False,
                include_selection=False,
                include_walkforward=False,
                include_boxplots=False,
            ),
        )
        assert "Table III" in text
        assert "Significance" not in text
        assert "Top parameter sets" not in text
        assert "Walk-forward" not in text
        assert "Figure 2" not in text

    def test_symbols_render_pair_names(self, small_sweep):
        store, grid = small_sweep
        text = study_report(
            store,
            grid,
            StudyReportOptions(
                n_bootstrap=50, symbols=("A1", "B2", "C3", "D4", "E5", "F6")
            ),
        )
        assert "A1/" in text

    def test_deterministic(self, small_sweep):
        store, grid = small_sweep
        opts = StudyReportOptions(n_bootstrap=100, seed=5)
        assert study_report(store, grid, opts) == study_report(store, grid, opts)

    def test_single_day_skips_walkforward(self):
        from repro.backtest.sweep import SweepConfig, run_sweep

        store, grid = run_sweep(
            SweepConfig(
                n_symbols=4, n_days=1, n_levels=1, trading_seconds=2400
            )
        )
        text = study_report(store, grid, StudyReportOptions(n_bootstrap=50))
        assert "Walk-forward" not in text
        assert "Table III" in text

    def test_header_counts(self, small_sweep):
        store, grid = small_sweep
        text = study_report(
            store, grid, StudyReportOptions(n_bootstrap=50)
        )
        first = text.splitlines()[0]
        assert "15 pairs" in first
        assert "6 parameter sets" in first
        assert "2 day(s)" in first
