"""Tests for the workflow component model and graph validation."""

import pytest

from repro.marketminer.component import Component, Context
from repro.marketminer.graph import Workflow


class Source(Component):
    def __init__(self, name="src", items=(1, 2, 3)):
        super().__init__(name=name, output_ports=("out",))
        self.items = items

    def generate(self, ctx):
        for item in self.items:
            ctx.emit("out", item)


class Doubler(Component):
    def __init__(self, name="doubler"):
        super().__init__(name=name, input_ports=("in",), output_ports=("out",))

    def on_message(self, ctx, port, payload):
        ctx.emit("out", payload * 2)


class Sink(Component):
    def __init__(self, name="sink"):
        super().__init__(name=name, input_ports=("in",))
        self.seen = []

    def on_message(self, ctx, port, payload):
        self.seen.append(payload)

    def result(self):
        return list(self.seen)


def linear_workflow():
    wf = Workflow()
    wf.add(Source())
    wf.add(Doubler())
    wf.add(Sink())
    wf.connect("src", "out", "doubler", "in")
    wf.connect("doubler", "out", "sink", "in")
    return wf


class TestComponent:
    def test_port_declaration(self):
        c = Doubler()
        assert c.input_ports == ("in",)
        assert not c.is_source
        assert Source().is_source

    def test_rejects_duplicate_ports(self):
        with pytest.raises(ValueError, match="duplicate"):
            Component("x", input_ports=("a", "a"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Component("")

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Component("x", weight=0.0)

    def test_default_handlers_raise(self):
        ctx = Context("x", lambda *a: None)
        with pytest.raises(NotImplementedError):
            Component("x").generate(ctx)
        with pytest.raises(NotImplementedError):
            Component("x", input_ports=("in",)).on_message(ctx, "in", 1)


class TestWorkflowConstruction:
    def test_duplicate_component_name(self):
        wf = Workflow()
        wf.add(Source())
        with pytest.raises(ValueError, match="duplicate"):
            wf.add(Source())

    def test_connect_unknown_component(self):
        wf = Workflow()
        wf.add(Source())
        with pytest.raises(KeyError):
            wf.connect("src", "out", "ghost", "in")

    def test_connect_unknown_port(self):
        wf = linear_workflow()
        with pytest.raises(ValueError, match="no output port"):
            wf.connect("src", "nope", "sink", "in")
        with pytest.raises(ValueError, match="no input port"):
            wf.connect("src", "out", "sink", "nope")

    def test_duplicate_edge(self):
        wf = linear_workflow()
        with pytest.raises(ValueError, match="duplicate edge"):
            wf.connect("src", "out", "doubler", "in")

    def test_edge_queries(self):
        wf = linear_workflow()
        assert len(wf.out_edges("src")) == 1
        assert len(wf.in_edges("sink")) == 1
        assert wf.out_edges("sink") == []


class TestValidation:
    def test_valid_linear(self):
        linear_workflow().validate()

    def test_empty_workflow(self):
        with pytest.raises(ValueError, match="no components"):
            Workflow().validate()

    def test_no_source(self):
        wf = Workflow()
        wf.add(Doubler())
        wf.add(Sink())
        wf.connect("doubler", "out", "sink", "in")
        with pytest.raises(ValueError, match="at least one source"):
            wf.validate()

    def test_unconnected_input_port(self):
        wf = Workflow()
        wf.add(Source())
        wf.add(Sink())
        with pytest.raises(ValueError, match="no inbound edge"):
            wf.validate()

    def test_unreachable_component(self):
        wf = linear_workflow()
        other_sink = Sink(name="orphan_sink")
        other = Doubler(name="orphan")
        wf.add(other)
        wf.add(other_sink)
        wf.connect("orphan", "out", "orphan_sink", "in")
        # orphan has an input port with no inbound edge -> flagged.
        with pytest.raises(ValueError, match="no inbound edge"):
            wf.validate()

    def test_cycle_detected(self):
        wf = Workflow()
        wf.add(Source())
        a = Doubler(name="a")
        b = Doubler(name="b")
        wf.add(a)
        wf.add(b)
        wf.connect("src", "out", "a", "in")
        wf.connect("a", "out", "b", "in")
        wf.connect("b", "out", "a", "in")
        with pytest.raises(ValueError, match="cycle"):
            wf.validate()

    def test_describe_lists_components(self):
        text = linear_workflow().describe()
        for name in ("src", "doubler", "sink"):
            assert name in text
