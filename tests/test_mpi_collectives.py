"""Collective-operation tests across rank counts."""

import numpy as np
import pytest

from repro import mpi
from repro.mpi.api import LAND, LOR, MAX, MIN, PROD, SUM, Op
from repro.mpi.inproc import SpmdFailure

SIZES = [1, 2, 3, 4, 7]


def run(fn, size, **kw):
    return mpi.run_spmd(fn, size=size, default_timeout=10.0, **kw)


@pytest.mark.parametrize("size", SIZES)
class TestPerSize:
    def test_barrier_completes(self, size):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert run(prog, size) == [True] * size

    def test_bcast_from_root_zero(self, size):
        def prog(comm):
            value = {"data": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        results = run(prog, size)
        assert all(r == {"data": [1, 2, 3]} for r in results)

    def test_bcast_from_last_rank(self, size):
        def prog(comm):
            root = comm.size - 1
            value = "payload" if comm.rank == root else None
            return comm.bcast(value, root=root)

        assert run(prog, size) == ["payload"] * size

    def test_scatter_gather_roundtrip(self, size):
        def prog(comm):
            values = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(values, root=0)
            assert mine == comm.rank**2
            return comm.gather(mine, root=0)

        results = run(prog, size)
        assert results[0] == [i * i for i in range(size)]
        assert all(r is None for r in results[1:])

    def test_allgather_ordered_by_rank(self, size):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + i) for i in range(size)]
        assert run(prog, size) == [expected] * size

    def test_allreduce_sum(self, size):
        def prog(comm):
            return comm.allreduce(comm.rank + 1, op=SUM)

        assert run(prog, size) == [size * (size + 1) // 2] * size

    def test_reduce_at_nonzero_root(self, size):
        root = size - 1

        def prog(comm):
            return comm.reduce(comm.rank, op=MAX, root=root)

        results = run(prog, size)
        assert results[root] == size - 1
        assert all(r is None for i, r in enumerate(results) if i != root)

    def test_alltoall_transpose(self, size):
        def prog(comm):
            sent = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.alltoall(sent)

        results = run(prog, size)
        for r, got in enumerate(results):
            assert got == [(src, r) for src in range(size)]

    def test_scan_prefix_sums(self, size):
        def prog(comm):
            return comm.scan(comm.rank + 1, op=SUM)

        assert run(prog, size) == [
            (r + 1) * (r + 2) // 2 for r in range(size)
        ]


class TestOperators:
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            (SUM, [1, 2, 3], 6),
            (PROD, [2, 3, 4], 24),
            (MAX, [5, 1, 3], 5),
            (MIN, [5, 1, 3], 1),
            (LAND, [True, True, False], False),
            (LOR, [False, False, True], True),
        ],
    )
    def test_builtin_ops(self, op, values, expected):
        def prog(comm):
            return comm.allreduce(values[comm.rank], op=op)

        assert run(prog, 3) == [expected] * 3

    def test_custom_op(self):
        concat = Op.create(lambda a, b: a + b, name="concat")

        def prog(comm):
            return comm.reduce([comm.rank], op=concat, root=0)

        assert run(prog, 4)[0] == [0, 1, 2, 3]

    def test_noncommutative_op_folds_in_rank_order(self):
        # String concatenation is associative but not commutative.
        concat = Op.create(lambda a, b: a + b)

        def prog(comm):
            return comm.allreduce(str(comm.rank), op=concat)

        assert run(prog, 5) == ["01234"] * 5

    def test_numpy_array_reduction(self):
        def prog(comm):
            return comm.allreduce(np.full(4, comm.rank, dtype=float), op=SUM)

        results = run(prog, 3)
        for r in results:
            np.testing.assert_array_equal(r, np.full(4, 3.0))

    def test_op_create_rejects_noncallable(self):
        with pytest.raises(TypeError):
            Op.create("not callable")

    def test_reduce_rejects_raw_callable(self):
        def prog(comm):
            comm.reduce(1, op=lambda a, b: a + b)

        with pytest.raises(SpmdFailure, match="mpi.Op"):
            run(prog, 2)


class TestErrors:
    def test_scatter_wrong_length(self):
        def prog(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(SpmdFailure, match="exactly 2"):
            run(prog, 2)

    def test_scatter_root_without_values(self):
        def prog(comm):
            return comm.scatter(None, root=0)

        with pytest.raises(SpmdFailure, match="must supply"):
            run(prog, 2)

    def test_bad_root(self):
        def prog(comm):
            return comm.bcast("x", root=5)

        with pytest.raises(SpmdFailure, match="root rank 5"):
            run(prog, 2)

    def test_alltoall_wrong_length(self):
        def prog(comm):
            return comm.alltoall([1, 2, 3])

        with pytest.raises(SpmdFailure, match="exactly 2"):
            run(prog, 2)


class TestPhaseSafety:
    def test_back_to_back_collectives_do_not_cross_talk(self):
        def prog(comm):
            first = comm.allreduce(comm.rank, op=SUM)
            second = comm.allreduce(comm.rank * 10, op=SUM)
            third = comm.allgather(comm.rank)
            return (first, second, third)

        for first, second, third in run(prog, 4):
            assert first == 6
            assert second == 60
            assert third == [0, 1, 2, 3]

    def test_collectives_interleaved_with_p2p(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("side-channel", dest=1, tag=50)
            total = comm.allreduce(1, op=SUM)
            extra = comm.recv(source=0, tag=50) if comm.rank == 1 else None
            return (total, extra)

        results = run(prog, 3)
        assert [r[0] for r in results] == [3, 3, 3]
        assert results[1][1] == "side-channel"
