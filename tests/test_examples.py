"""The examples are part of the public surface: they must keep running.

Each example's ``main()`` is executed in-process (fast ones every run,
the two sweep-sized ones marked slow) and its output sanity-checked.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    try:
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "trades" in out
        assert "Day summary" in out

    def test_taq_workflow(self, capsys):
        out = run_example("taq_workflow", capsys)
        assert "TCP-like filter" in out
        assert "maronna" in out.lower()

    def test_live_pipeline(self, capsys):
        out = run_example("live_pipeline", capsys)
        assert "Streaming the session" in out
        assert "implementation shortfall" in out
        assert "open at the close" in out

    def test_pair_screening(self, capsys):
        out = run_example("pair_screening", capsys)
        assert "Screened candidates" in out
        assert "Out-of-sample" in out


@pytest.mark.slow
class TestSweepExamples:
    def test_correlation_study(self, capsys):
        out = run_example("correlation_study", capsys)
        assert "Table III" in out
        assert "Figure 2" in out

    def test_research_workflow(self, capsys):
        out = run_example("research_workflow", capsys)
        assert "Significance" in out
        assert "Implementation shortfall" in out

    def test_full_reproduction(self, capsys):
        out = run_example("full_reproduction", capsys)
        assert "Table V" in out
        assert "Walk-forward validation" in out
