"""Tests for the list-based basket execution algorithm."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.strategy.execution_algo import (
    ChildOrder,
    ListExecutionScheduler,
    simulate_fills,
)

baskets = st.dictionaries(
    keys=st.integers(0, 5),
    values=st.integers(-500, 500).filter(lambda x: x != 0),
    min_size=1,
    max_size=6,
)


class TestChildOrder:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChildOrder(s=-1, symbol=0, shares=1)
        with pytest.raises(ValueError):
            ChildOrder(s=0, symbol=0, shares=0)


class TestScheduler:
    def test_small_order_one_slice(self):
        plan = ListExecutionScheduler(horizon=5, interval_volume=1000).plan(
            {0: 10}, decision_s=3
        )
        assert plan.shares_of(0) == 10
        assert plan.children[0].s == 3
        assert not plan.unscheduled

    def test_twap_spreads_evenly(self):
        plan = ListExecutionScheduler(
            horizon=4, max_participation=1.0, interval_volume=10_000
        ).plan({0: 100}, decision_s=0)
        slices = [c.shares for c in plan.children]
        assert sum(slices) == 100
        assert len(slices) == 4
        assert max(slices) - min(slices) <= 1

    def test_participation_cap_respected(self):
        sched = ListExecutionScheduler(
            horizon=10, max_participation=0.1, interval_volume=100
        )
        plan = sched.plan({0: 95}, decision_s=0)
        # Cap is 10 shares per slice.
        assert all(abs(c.shares) <= 10 for c in plan.children)
        assert plan.shares_of(0) + plan.unscheduled.get(0, 0) == 95

    def test_oversize_order_reports_unscheduled(self):
        sched = ListExecutionScheduler(
            horizon=3, max_participation=0.1, interval_volume=100
        )
        plan = sched.plan({0: 95}, decision_s=0)
        assert plan.shares_of(0) == 30  # 3 slices x cap 10
        assert plan.unscheduled == {0: 65}

    def test_sells_mirror_buys(self):
        sched = ListExecutionScheduler(horizon=4, interval_volume=1000)
        buy = sched.plan({0: 77}, decision_s=0)
        sell = sched.plan({0: -77}, decision_s=0)
        assert [c.shares for c in sell.children] == [
            -c.shares for c in buy.children
        ]

    def test_zero_share_symbols_dropped(self):
        plan = ListExecutionScheduler().plan({0: 0, 1: 5}, decision_s=0)
        assert {c.symbol for c in plan.children} == {1}

    def test_per_symbol_volume(self):
        sched = ListExecutionScheduler(
            horizon=2, max_participation=0.5, interval_volume={0: 10, 1: 1000}
        )
        plan = sched.plan({0: 20, 1: 20}, decision_s=0)
        per_symbol = {}
        for c in plan.children:
            per_symbol.setdefault(c.symbol, []).append(abs(c.shares))
        assert max(per_symbol[0]) <= 5
        assert plan.unscheduled.get(0) == 10
        assert 1 not in plan.unscheduled

    def test_unknown_symbol_without_default(self):
        sched = ListExecutionScheduler(interval_volume={0: 100})
        with pytest.raises(KeyError):
            sched.plan({3: 10}, decision_s=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0},
            {"max_participation": 0.0},
            {"max_participation": 1.5},
            {"interval_volume": 0.0},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            ListExecutionScheduler(**kwargs)

    @given(baskets, st.integers(0, 20))
    def test_share_conservation(self, basket, decision_s):
        sched = ListExecutionScheduler(
            horizon=5, max_participation=0.2, interval_volume=200
        )
        plan = sched.plan(basket, decision_s)
        for symbol, shares in basket.items():
            if shares == 0:
                continue
            scheduled = plan.shares_of(symbol)
            carried = plan.unscheduled.get(symbol, 0)
            assert scheduled + carried == shares
            # Scheduled and carried shares never flip sign.
            assert scheduled * shares >= 0
            assert carried * shares >= 0

    @given(baskets)
    def test_children_within_horizon(self, basket):
        sched = ListExecutionScheduler(horizon=7, interval_volume=50)
        plan = sched.plan(basket, decision_s=10)
        assert all(10 <= c.s < 17 for c in plan.children)


class TestSimulateFills:
    def _prices(self, smax=30, n=3, start=100.0, drift=0.0):
        t = np.arange(smax)[:, None]
        return np.full((smax, n), start) * (1 + drift) ** t

    def test_flat_market_fill_at_spread(self):
        prices = self._prices()
        plan = ListExecutionScheduler(horizon=4, interval_volume=1000).plan(
            {0: 100}, decision_s=5
        )
        report = simulate_fills(plan, prices, half_spread_frac=1e-3)
        e = report.of(0)
        assert e.avg_fill_price == pytest.approx(100.0 * 1.001)
        assert e.shortfall_per_share == pytest.approx(0.1)
        assert report.total_cost == pytest.approx(10.0)

    def test_buy_in_rising_market_costs_more(self):
        rising = self._prices(drift=0.001)
        plan = ListExecutionScheduler(
            horizon=10, max_participation=0.05, interval_volume=200
        ).plan({0: 100}, decision_s=0)
        report = simulate_fills(plan, rising, half_spread_frac=0.0)
        assert report.of(0).shortfall_per_share > 0

    def test_sell_in_rising_market_gains(self):
        rising = self._prices(drift=0.001)
        plan = ListExecutionScheduler(
            horizon=10, max_participation=0.05, interval_volume=200
        ).plan({0: -100}, decision_s=0)
        report = simulate_fills(plan, rising, half_spread_frac=0.0)
        assert report.of(0).shortfall_per_share < 0  # negative cost = gain

    def test_faster_schedule_less_drift_cost(self):
        rising = self._prices(drift=0.002)
        slow = ListExecutionScheduler(
            horizon=10, max_participation=0.05, interval_volume=200
        ).plan({0: 100}, decision_s=0)
        fast = ListExecutionScheduler(
            horizon=2, max_participation=1.0, interval_volume=10_000
        ).plan({0: 100}, decision_s=0)
        cost_slow = simulate_fills(slow, rising, 0.0).total_cost
        cost_fast = simulate_fills(fast, rising, 0.0).total_cost
        assert cost_fast < cost_slow

    def test_plan_beyond_session_rejected(self):
        prices = self._prices(smax=5)
        plan = ListExecutionScheduler(
            horizon=10, max_participation=0.01, interval_volume=100
        ).plan({0: 10}, decision_s=3)
        with pytest.raises(ValueError, match="beyond the"):
            simulate_fills(plan, prices)

    def test_missing_symbol_lookup(self):
        prices = self._prices()
        plan = ListExecutionScheduler(interval_volume=1000).plan(
            {0: 10}, decision_s=0
        )
        report = simulate_fills(plan, prices)
        with pytest.raises(KeyError):
            report.of(99)
