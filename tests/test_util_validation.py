"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    @pytest.mark.parametrize("value", [1, 0.5, 1e-9, 1e12])
    def test_accepts(self, value):
        assert check_positive(value, "x") == float(value)

    @pytest.mark.parametrize("value", [0, -1, -0.5, float("nan"), float("inf")])
    def test_rejects_values(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    @pytest.mark.parametrize("value", ["1", None, True, [1]])
    def test_rejects_types(self, value):
        with pytest.raises(TypeError):
            check_positive(value, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_positive(-1, "myarg")


class TestCheckPositiveInt:
    @pytest.mark.parametrize("value", [1, 2, 10**9])
    def test_accepts(self, value):
        assert check_positive_int(value, "n") == value

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_values(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "n")

    @pytest.mark.parametrize("value", [1.5, "2", True, None])
    def test_rejects_types(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "n")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.001, 1 / 3, 2 / 3, 0.999])
    def test_accepts(self, value):
        assert check_fraction(value, "l") == float(value)

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_fraction(value, "l")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_fraction(True, "l")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_inclusive_bounds(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")
