"""Tests for walk-forward validation."""

import numpy as np
import pytest

from repro.backtest.results import ResultStore
from repro.backtest.walkforward import (
    WalkForwardReport,
    format_walk_forward,
    walk_forward,
)
from repro.strategy.params import StrategyParams

GRID = [
    StrategyParams(ctype="pearson", m=10, w=5, y=3, rt=8, hp=6, st=4),
    StrategyParams(ctype="pearson", m=20, w=5, y=3, rt=8, hp=6, st=4),
    StrategyParams(ctype="maronna", m=10, w=5, y=3, rt=8, hp=6, st=4),
]


def persistent_winner_store(n_days=4):
    """k=1 wins every day: selection should find and hold it."""
    store = ResultStore()
    for day in range(n_days):
        for pair in ((0, 1), (2, 3)):
            store.add(pair, 0, day, [0.001])
            store.add(pair, 1, day, [0.01])
            store.add(pair, 2, day, [-0.002])
    return store


def alternating_store(n_days=4):
    """The best set flips every day: selection always lags."""
    store = ResultStore()
    for day in range(n_days):
        hot, cold = (0, 1) if day % 2 == 0 else (1, 0)
        for pair in ((0, 1), (2, 3)):
            store.add(pair, hot, day, [0.01])
            store.add(pair, cold, day, [-0.01])
            store.add(pair, 2, day, [0.0])
    return store


class TestWalkForward:
    def test_persistent_winner_fully_captured(self):
        report = walk_forward(persistent_winner_store(), GRID, window=1)
        assert len(report.steps) == 3
        assert all(s.chosen_k == 1 for s in report.steps)
        assert all(s.chosen_k == s.best_k for s in report.steps)
        assert report.capture_ratio == pytest.approx(1.0)

    def test_alternating_regime_overfits(self):
        report = walk_forward(alternating_store(), GRID, window=1)
        # Yesterday's winner is today's loser.
        assert all(s.chosen_return < s.median_return for s in report.steps)
        assert report.capture_ratio < 0

    def test_window_consumes_days(self):
        report = walk_forward(persistent_winner_store(5), GRID, window=2)
        assert len(report.steps) == 3
        assert report.steps[0].select_days == (0, 1)
        assert report.steps[0].evaluate_day == 2

    def test_treatment_restriction(self):
        report = walk_forward(
            persistent_winner_store(), GRID, window=1, ctype="maronna"
        )
        assert all(s.chosen_k == 2 for s in report.steps)

    def test_needs_enough_days(self):
        with pytest.raises(ValueError, match="more than window"):
            walk_forward(persistent_winner_store(2), GRID, window=2)

    def test_missing_treatment(self):
        with pytest.raises(ValueError, match="no parameter sets"):
            walk_forward(
                persistent_winner_store(), GRID, window=1, ctype="combined"
            )

    def test_on_real_sweep(self, small_sweep):
        store, grid = small_sweep  # 2 days -> 1 fold
        report = walk_forward(store, grid, window=1)
        assert len(report.steps) == 1
        step = report.steps[0]
        assert step.chosen_return <= step.best_return + 1e-12
        assert np.isfinite(report.capture_ratio)


class TestFormatting:
    def test_renders(self):
        report = walk_forward(persistent_winner_store(), GRID, window=1)
        text = format_walk_forward(report)
        assert "capture ratio" in text
        assert "hindsight-best" in text
        assert text.count("\n") >= 4
