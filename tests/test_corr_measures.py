"""Tests for measure dispatch, series and matrices (repro.corr.measures)."""

import numpy as np
import pytest

from repro.corr.combined import combined_corr, combined_corr_batched
from repro.corr.maronna import maronna_corr
from repro.corr.measures import (
    CorrelationType,
    corr_matrix,
    corr_matrix_series,
    corr_series,
    pairwise_corr,
)
from repro.corr.pearson import pearson_corr, pearson_matrix


class TestCorrelationType:
    def test_parse_strings(self):
        assert CorrelationType.parse("pearson") is CorrelationType.PEARSON
        assert CorrelationType.parse("MARONNA") is CorrelationType.MARONNA
        assert CorrelationType.parse("Combined") is CorrelationType.COMBINED

    def test_parse_passthrough(self):
        assert CorrelationType.parse(CorrelationType.PEARSON) is CorrelationType.PEARSON

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown correlation type"):
            CorrelationType.parse("spearman")

    def test_three_treatments(self):
        assert len(CorrelationType) == 3


class TestCombined:
    def test_is_average_of_pearson_and_maronna(self, rng):
        x, y = rng.normal(size=(2, 120))
        expected = 0.5 * (pearson_corr(x, y) + maronna_corr(x, y))
        assert combined_corr(x, y) == pytest.approx(expected, abs=1e-9)

    def test_batched_matches_scalar(self, rng):
        xw = rng.normal(size=(8, 40))
        yw = rng.normal(size=(8, 40))
        out = combined_corr_batched(xw, yw)
        for b in range(8):
            assert out[b] == pytest.approx(combined_corr(xw[b], yw[b]), abs=1e-8)

    def test_intermediate_under_contamination(self, rng):
        x = rng.normal(size=150)
        y = 0.8 * x + 0.3 * rng.normal(size=150)
        x[5] = 50.0
        p = pearson_corr(x, y)
        m = maronna_corr(x, y)
        c = combined_corr(x, y)
        lo, hi = sorted((p, m))
        assert lo <= c <= hi


class TestPairwiseDispatch:
    @pytest.mark.parametrize("ctype", ["pearson", "maronna", "combined"])
    def test_dispatch(self, ctype, rng):
        x, y = rng.normal(size=(2, 80))
        value = pairwise_corr(x, y, ctype)
        assert -1.0 <= value <= 1.0

    def test_pearson_dispatch_exact(self, rng):
        x, y = rng.normal(size=(2, 80))
        assert pairwise_corr(x, y, "pearson") == pearson_corr(x, y)


class TestCorrSeries:
    @pytest.mark.parametrize("ctype", ["pearson", "maronna", "combined"])
    def test_alignment_across_measures(self, ctype, rng):
        x, y = rng.normal(size=(2, 120))
        m = 30
        series = corr_series(x, y, m, ctype)
        assert series.shape == (91,)
        for k in (0, 45, 90):
            direct = pairwise_corr(x[k : k + m], y[k : k + m], ctype)
            assert series[k] == pytest.approx(direct, abs=1e-7)

    def test_chunking_boundary_consistency(self, rng, monkeypatch):
        import repro.corr.measures as measures

        x, y = rng.normal(size=(2, 100))
        full = corr_series(x, y, 20, "maronna")
        monkeypatch.setattr(measures, "_CHUNK_ELEMENTS", 200)  # force chunks
        chunked = corr_series(x, y, 20, "maronna")
        np.testing.assert_allclose(full, chunked, atol=1e-12)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            corr_series(np.ones((5, 2)), np.ones((5, 2)), 3)


class TestCorrMatrix:
    @pytest.mark.parametrize("ctype", ["pearson", "maronna", "combined"])
    def test_symmetric_unit_diag(self, ctype, correlated_returns):
        c = corr_matrix(correlated_returns[:60], ctype)
        np.testing.assert_allclose(c, c.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(c), 1.0)
        assert np.all(np.abs(c) <= 1.0 + 1e-12)

    def test_pearson_fast_path_matches(self, correlated_returns):
        w = correlated_returns[:60]
        np.testing.assert_allclose(
            corr_matrix(w, "pearson"), pearson_matrix(w), atol=1e-12
        )

    def test_partial_pairs(self, correlated_returns):
        w = correlated_returns[:60]
        partial = corr_matrix(w, "pearson", pairs=[(0, 1), (2, 4)])
        full = pearson_matrix(w)
        assert partial[0, 1] == pytest.approx(full[0, 1])
        assert partial[2, 4] == pytest.approx(full[2, 4])
        assert partial[4, 2] == partial[2, 4]
        assert partial[0, 2] == 0.0
        assert partial[0, 0] == 0.0  # partial matrices carry no diagonal

    def test_partial_pairs_validated(self, correlated_returns):
        with pytest.raises(ValueError, match="invalid pair"):
            corr_matrix(correlated_returns[:60], "pearson", pairs=[(0, 0)])
        with pytest.raises(ValueError, match="invalid pair"):
            corr_matrix(correlated_returns[:60], "pearson", pairs=[(0, 99)])

    def test_measures_agree_on_clean_gaussian(self, correlated_returns):
        w = correlated_returns[:300]
        p = corr_matrix(w, "pearson")
        m = corr_matrix(w, "maronna")
        np.testing.assert_allclose(p, m, atol=0.12)


class TestCorrMatrixSeries:
    @pytest.mark.parametrize("ctype", ["pearson", "maronna"])
    def test_matches_per_window_matrix(self, ctype, correlated_returns):
        r = correlated_returns[:80, :4]
        m = 30
        series = corr_matrix_series(r, m, ctype)
        assert series.shape == (51, 4, 4)
        for k in (0, 25, 50):
            np.testing.assert_allclose(
                series[k], corr_matrix(r[k : k + m], ctype), atol=1e-7
            )

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            corr_matrix_series(np.ones((10, 3)), 20)
