"""Tests for the quote data-quality report."""

import numpy as np
import pytest

from repro.taq.quality import quality_report
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import default_universe


@pytest.fixture(scope="module")
def market_and_report():
    cfg = SyntheticMarketConfig(
        trading_seconds=1800, quote_rate=0.8, outlier_prob=3e-3
    )
    market = SyntheticMarket(default_universe(4), cfg, seed=1)
    quotes = market.quotes(0)
    report = quality_report(quotes, market.universe, session_seconds=1800)
    return market, quotes, report


class TestQualityReport:
    def test_counts_add_up(self, market_and_report):
        _, quotes, report = market_and_report
        assert report.total_quotes == quotes.size
        assert sum(s.n_quotes for s in report.symbols) == quotes.size

    def test_quote_rate(self, market_and_report):
        _, _, report = market_and_report
        for s in report.symbols:
            assert s.quotes_per_second == pytest.approx(s.n_quotes / 1800)
            # quote_rate=0.8 => ~0.8 quotes/sec/symbol.
            assert 0.6 < s.quotes_per_second < 1.0

    def test_spreads_sane(self, market_and_report):
        _, _, report = market_and_report
        for s in report.symbols:
            assert s.median_spread > 0
            # Config spread ~6bps; median within a small factor.
            assert 3 < s.median_spread_bps < 30
            assert s.max_spread_bps >= s.median_spread_bps

    def test_outliers_detected(self, market_and_report):
        _, _, report = market_and_report
        assert sum(s.rejected_outlier for s in report.symbols) > 0

    def test_lookup_and_worst(self, market_and_report):
        market, _, report = market_and_report
        first = market.universe.symbols[0]
        assert report.of(first).symbol == first
        with pytest.raises(KeyError):
            report.of("ZZZZ")
        assert report.worst_symbol.rejection_rate == max(
            s.rejection_rate for s in report.symbols
        )

    def test_format_renders_all_symbols(self, market_and_report):
        market, _, report = market_and_report
        text = report.format()
        for sym in market.universe.symbols:
            assert sym in text
        assert "market-wide" in text

    def test_clean_stream_near_zero_rejections(self):
        cfg = SyntheticMarketConfig(
            trading_seconds=1800, quote_rate=0.8, outlier_prob=0.0
        )
        market = SyntheticMarket(default_universe(3), cfg, seed=2)
        report = quality_report(market.quotes(0), market.universe)
        assert all(s.crossed == 0 for s in report.symbols)
        total = sum(s.rejected_outlier for s in report.symbols)
        assert total <= 0.005 * report.total_quotes

    def test_empty_stream(self):
        universe = default_universe(2)
        report = quality_report(
            np.empty(0, dtype=QUOTE_DTYPE), universe, session_seconds=100
        )
        assert report.total_quotes == 0
        assert all(s.n_quotes == 0 for s in report.symbols)
        assert report.format()  # renders without error
