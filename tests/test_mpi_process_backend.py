"""Process-backend tests: real OS processes, marshalled failures.

Kept small — each test pays process spawn cost — but covering the paths
that differ from the thread backend: cross-process pickling, remote
exception marshalling, and result ordering.
"""

import numpy as np
import pytest

from repro import mpi
from repro.mpi.procs import RemoteRankError

pytestmark = pytest.mark.slow


def _pipeline(comm):
    """Exercises p2p + collectives + numpy payloads in one program."""
    comm.barrier()
    data = np.arange(8, dtype=float) * (comm.rank + 1)
    total = comm.allreduce(data, op=mpi.SUM)
    if comm.rank == 0:
        comm.send("ping", dest=comm.size - 1, tag=1)
    if comm.rank == comm.size - 1:
        assert comm.recv(source=0, tag=1) == "ping"
    return float(total.sum())


def _boom(comm):
    if comm.rank == 1:
        raise ValueError("remote boom")
    return comm.rank


class TestProcessBackend:
    def test_pipeline_three_ranks(self):
        results = mpi.run_spmd(_pipeline, size=3, backend="process")
        expected = float(np.arange(8).sum() * (1 + 2 + 3))
        assert results == [expected] * 3

    def test_remote_exception_carries_traceback(self):
        with pytest.raises(RemoteRankError) as exc_info:
            mpi.run_spmd(_boom, size=2, backend="process")
        err = exc_info.value
        assert err.rank == 1
        assert err.exc_type == "ValueError"
        assert "remote boom" in str(err)
        assert "Traceback" in err.remote_traceback

    def test_single_rank(self):
        results = mpi.run_spmd(_pipeline, size=1, backend="process")
        assert results == [float(np.arange(8).sum())]
