"""Tests for basket aggregation and risk limits."""

import pytest

from repro.strategy.portfolio import BasketAggregator, OrderRequest, RiskLimits


def legs(pair=(0, 1), s=10, k=0, long_price=30.0, short_price=130.0, n_long=5):
    return (
        OrderRequest(s=s, symbol=pair[0], shares=n_long, price=long_price,
                     pair=pair, param_index=k),
        OrderRequest(s=s, symbol=pair[1], shares=-1, price=short_price,
                     pair=pair, param_index=k),
    )


def exit_legs(pair=(0, 1), s=20, k=0):
    return (
        OrderRequest(s=s, symbol=pair[0], shares=-5, price=31.0, pair=pair,
                     param_index=k),
        OrderRequest(s=s, symbol=pair[1], shares=1, price=128.0, pair=pair,
                     param_index=k),
    )


class TestOrderRequest:
    def test_notional(self):
        o = OrderRequest(s=0, symbol=1, shares=-4, price=25.0, pair=(0, 1))
        assert o.notional == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"s": -1, "symbol": 0, "shares": 1, "price": 1.0, "pair": (0, 1)},
            {"s": 0, "symbol": 0, "shares": 0, "price": 1.0, "pair": (0, 1)},
            {"s": 0, "symbol": 0, "shares": 1, "price": 0.0, "pair": (0, 1)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OrderRequest(**kwargs)


class TestRiskLimits:
    def test_defaults_unbounded(self):
        limits = RiskLimits()
        assert limits.max_gross_notional == float("inf")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_gross_notional": 0.0},
            {"max_open_pairs": 0},
            {"max_order_notional": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            RiskLimits(**kwargs)


class TestBasketAggregator:
    def test_entry_exit_lifecycle(self):
        agg = BasketAggregator()
        assert agg.submit_entry(legs())
        assert agg.open_pair_count == 1
        assert agg.gross_notional == pytest.approx(5 * 30 + 130)
        agg.submit_exit(exit_legs())
        assert agg.open_pair_count == 0
        assert agg.gross_notional == pytest.approx(0.0)

    def test_gross_limit_vetoes(self):
        agg = BasketAggregator(RiskLimits(max_gross_notional=300.0))
        assert agg.submit_entry(legs(pair=(0, 1)))  # 280 notional
        assert not agg.submit_entry(legs(pair=(2, 3)))  # would exceed
        assert agg.open_pair_count == 1
        assert len(agg.vetoed) == 1

    def test_max_open_pairs(self):
        agg = BasketAggregator(RiskLimits(max_open_pairs=1))
        assert agg.submit_entry(legs(pair=(0, 1)))
        assert not agg.submit_entry(legs(pair=(2, 3)))
        agg.submit_exit(exit_legs(pair=(0, 1)))
        assert agg.submit_entry(legs(pair=(2, 3)))

    def test_order_notional_limit(self):
        agg = BasketAggregator(RiskLimits(max_order_notional=100.0))
        assert not agg.submit_entry(legs())  # short leg 130 > 100

    def test_duplicate_entry_rejected(self):
        agg = BasketAggregator()
        agg.submit_entry(legs())
        with pytest.raises(ValueError, match="already has an open position"):
            agg.submit_entry(legs())

    def test_same_pair_different_params_independent(self):
        agg = BasketAggregator()
        assert agg.submit_entry(legs(k=0))
        assert agg.submit_entry(legs(k=1))
        assert agg.open_pair_count == 2

    def test_exit_without_entry_rejected(self):
        agg = BasketAggregator()
        with pytest.raises(ValueError, match="no open position"):
            agg.submit_exit(exit_legs())

    def test_legs_must_be_buy_and_sell(self):
        agg = BasketAggregator()
        bad = (
            OrderRequest(s=0, symbol=0, shares=1, price=1.0, pair=(0, 1)),
            OrderRequest(s=0, symbol=1, shares=1, price=1.0, pair=(0, 1)),
        )
        with pytest.raises(ValueError, match="one buy and one sell"):
            agg.submit_entry(bad)

    def test_legs_must_match(self):
        agg = BasketAggregator()
        bad = (
            OrderRequest(s=0, symbol=0, shares=1, price=1.0, pair=(0, 1)),
            OrderRequest(s=1, symbol=1, shares=-1, price=1.0, pair=(0, 1)),
        )
        with pytest.raises(ValueError, match="share pair"):
            agg.submit_entry(bad)


class TestBasketNetting:
    def test_nets_across_pairs(self):
        orders = [
            OrderRequest(s=5, symbol=0, shares=10, price=1.0, pair=(0, 1)),
            OrderRequest(s=5, symbol=1, shares=-3, price=1.0, pair=(0, 1)),
            OrderRequest(s=5, symbol=0, shares=-4, price=1.0, pair=(0, 2)),
            OrderRequest(s=5, symbol=2, shares=2, price=1.0, pair=(0, 2)),
        ]
        basket = BasketAggregator.basket(orders)
        assert basket == {0: 6, 1: -3, 2: 2}

    def test_zero_net_dropped(self):
        orders = [
            OrderRequest(s=5, symbol=0, shares=4, price=1.0, pair=(0, 1)),
            OrderRequest(s=5, symbol=0, shares=-4, price=1.0, pair=(0, 2)),
        ]
        assert BasketAggregator.basket(orders) == {}

    def test_empty(self):
        assert BasketAggregator.basket([]) == {}


class TestConcentrationLimit:
    def test_symbol_cap_vetoes(self):
        limits = RiskLimits(max_symbol_shares=8)
        agg = BasketAggregator(limits)
        assert agg.submit_entry(legs(pair=(0, 1), n_long=5))
        assert agg.symbol_net_shares(0) == 5
        # Second pair also longs symbol 0 with 5 shares: 10 > 8 -> veto.
        assert not agg.submit_entry(legs(pair=(0, 2), n_long=5))
        assert agg.symbol_net_shares(0) == 5

    def test_exit_releases_concentration(self):
        limits = RiskLimits(max_symbol_shares=8)
        agg = BasketAggregator(limits)
        assert agg.submit_entry(legs(pair=(0, 1), n_long=5))
        agg.submit_exit(exit_legs(pair=(0, 1)))
        assert agg.symbol_net_shares(0) == 0
        assert agg.submit_entry(legs(pair=(0, 2), n_long=5))

    def test_short_side_counts_absolute(self):
        limits = RiskLimits(max_symbol_shares=2)
        agg = BasketAggregator(limits)
        # Short leg of 3 shares on symbol 1 would breach |net| > 2.
        bad = (
            OrderRequest(s=0, symbol=0, shares=1, price=100.0, pair=(0, 1)),
            OrderRequest(s=0, symbol=1, shares=-3, price=30.0, pair=(0, 1)),
        )
        assert not agg.submit_entry(bad)

    def test_offsetting_positions_net_out(self):
        limits = RiskLimits(max_symbol_shares=5)
        agg = BasketAggregator(limits)
        # Long 5 of symbol 0 via pair (0,1); short 5 of symbol 0 via
        # pair (0,2) nets to zero -> allowed.
        assert agg.submit_entry(legs(pair=(0, 1), n_long=5))
        offset = (
            OrderRequest(s=0, symbol=2, shares=2, price=60.0, pair=(0, 2)),
            OrderRequest(s=0, symbol=0, shares=-5, price=30.0, pair=(0, 2)),
        )
        assert agg.submit_entry(offset)
        assert agg.symbol_net_shares(0) == 0

    def test_validation(self):
        import pytest as _pytest

        with _pytest.raises((ValueError, TypeError)):
            RiskLimits(max_symbol_shares=0)
