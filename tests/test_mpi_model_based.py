"""Model-based property tests of the mailbox matching semantics.

A reference model (plain per-context FIFO lists with linear matching)
replays randomly generated send/recv scripts; the real communicator must
produce identical payload sequences.  Catches matching-order bugs that
example-based tests miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.mpi.api import ANY_SOURCE, ANY_TAG

# A script step: ("send", src, dst, tag) or ("recv", dst, source_sel, tag_sel).
# Payloads are sequence numbers so ordering is observable.


@st.composite
def scripts(draw):
    size = draw(st.integers(min_value=2, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=30))
    sends = []
    for seq in range(n_ops):
        src = draw(st.integers(0, size - 1))
        dst = draw(st.integers(0, size - 1))
        tag = draw(st.integers(0, 2))
        sends.append((src, dst, tag, seq))
    # Receives: a random subset of what arrived at each destination, with
    # random selectors. We construct them per destination afterwards.
    selector_choices = draw(
        st.lists(
            st.tuples(st.booleans(), st.booleans()),
            min_size=n_ops,
            max_size=n_ops,
        )
    )
    return size, sends, selector_choices


def reference_receive(pending, source_sel, tag_sel):
    """Linear scan in arrival order, first match wins (the MPI rule)."""
    for idx, (src, tag, payload) in enumerate(pending):
        if (source_sel == ANY_SOURCE or src == source_sel) and (
            tag_sel == ANY_TAG or tag == tag_sel
        ):
            return pending.pop(idx)
    return None


class TestMatchingModel:
    @settings(deadline=None, max_examples=40)
    @given(scripts())
    def test_real_comm_matches_reference(self, script):
        size, sends, selector_choices = script

        # Build the reference outcome: per-destination arrival lists in
        # send order (the thread backend delivers immediately, and
        # per-(src,dst) FIFO holds; with a single driving rank the global
        # send order is the arrival order).
        arrivals = {r: [] for r in range(size)}
        for src, dst, tag, seq in sends:
            arrivals[dst].append((src, tag, seq))

        # Plan receives: for each destination, as many receives as
        # messages, selectors derived from the arrival at that point so a
        # match always exists (avoiding blocking paths).
        plans = {r: [] for r in range(size)}
        expected = {r: [] for r in range(size)}
        sel_iter = iter(selector_choices)
        for dst in range(size):
            pending = list(arrivals[dst])
            while pending:
                use_src, use_tag = next(
                    sel_iter, (True, True)
                )
                # Pick the selector based on the first pending message so
                # the receive is always satisfiable.
                first_src, first_tag, _ = pending[0]
                source_sel = first_src if use_src else ANY_SOURCE
                tag_sel = first_tag if use_tag else ANY_TAG
                got = reference_receive(pending, source_sel, tag_sel)
                plans[dst].append((source_sel, tag_sel))
                expected[dst].append(got[2])

        def prog(comm):
            # Rank 0 performs all sends on behalf of every source via
            # per-source sub-communicators? Simpler: each rank sends its
            # own messages in global sequence, coordinated by a token
            # passed around so the global send order is deterministic.
            token_tag = 999
            for src, dst, tag, seq in sends:
                if comm.rank == 0:
                    if src == 0:
                        comm.send(seq, dest=dst, tag=tag)
                    else:
                        comm.send(("do", dst, tag, seq), dest=src, tag=token_tag)
                        comm.recv(source=src, tag=token_tag)  # ack
                elif comm.rank == src:
                    cmd = comm.recv(source=0, tag=token_tag)
                    _, d, t, q = cmd
                    comm.send(q, dest=d, tag=t)
                    comm.send("ack", dest=0, tag=token_tag)
            comm.barrier()
            got = [
                comm.recv(source=source_sel, tag=tag_sel)
                for source_sel, tag_sel in plans[comm.rank]
            ]
            return got

        results = mpi.run_spmd(prog, size=size, default_timeout=15.0)
        for dst in range(size):
            assert results[dst] == expected[dst]
