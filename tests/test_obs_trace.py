"""Tests for repro.obs.trace: span nesting, merging and rendering."""

from repro.obs.trace import SpanTracer, render_flame


def build_nested_trace():
    tracer = SpanTracer(enabled=True)
    with tracer.span("session", rank=0):
        with tracer.span("collect"):
            pass
        with tracer.span("compute", pairs=3):
            with tracer.span("corr"):
                pass
    return tracer


class TestNesting:
    def test_parent_links_mirror_call_structure(self):
        spans = build_nested_trace().to_list()
        by_name = {s["name"]: s for s in spans}
        assert by_name["session"]["parent"] is None
        assert by_name["collect"]["parent"] == by_name["session"]["id"]
        assert by_name["compute"]["parent"] == by_name["session"]["id"]
        assert by_name["corr"]["parent"] == by_name["compute"]["id"]

    def test_creation_order_is_deterministic(self):
        names = [s["name"] for s in build_nested_trace().to_list()]
        assert names == ["session", "collect", "compute", "corr"]

    def test_wall_and_cpu_nonnegative(self):
        for s in build_nested_trace().to_list():
            assert s["wall"] >= 0.0
            assert s["cpu"] >= 0.0

    def test_tags_preserved(self):
        spans = build_nested_trace().to_list()
        compute = next(s for s in spans if s["name"] == "compute")
        assert compute["tags"] == {"pairs": 3}

    def test_current_id_tracks_stack(self):
        tracer = SpanTracer(enabled=True)
        assert tracer.current_id is None
        with tracer.span("a") as a:
            assert tracer.current_id == a.id
        assert tracer.current_id is None


class TestDisabled:
    def test_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.add_span("c", 1.0) is None
        assert tracer.to_list() == []


class TestAddSpan:
    def test_synthetic_span_under_open_parent(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("root") as root:
            s = tracer.add_span("handler_time", wall=1.5, cpu=1.2, calls=7)
        assert s.parent == root.id
        assert s.wall == 1.5
        assert s.cpu == 1.2
        assert s.tags == {"calls": 7}

    def test_explicit_parent(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("root") as root:
            pass
        s = tracer.add_span("late", wall=0.1, parent=root.id)
        assert s.parent == root.id


class TestMergeList:
    def test_rebases_ids_and_tags_ranks(self):
        per_rank = {}
        for rank in (0, 1):
            tracer = SpanTracer(enabled=True)
            with tracer.span("session"):
                with tracer.span("work"):
                    pass
            per_rank[rank] = tracer.to_list()
        merged = SpanTracer.merge_list(per_rank)
        assert len(merged) == 4
        assert len({s["id"] for s in merged}) == 4  # ids unique after rebase
        assert {s["rank"] for s in merged} == {0, 1}
        # Parent links still resolve within each rank's subtree.
        by_id = {s["id"]: s for s in merged}
        for s in merged:
            if s["parent"] is not None:
                assert by_id[s["parent"]]["rank"] == s["rank"]

    def test_merge_order_is_rank_sorted(self):
        per_rank = {
            1: SpanTracer(enabled=True).to_list(),
            0: [{"id": 0, "name": "s", "parent": None, "start": 0.0,
                 "wall": 0.0, "cpu": 0.0, "tags": {}}],
        }
        merged = SpanTracer.merge_list(per_rank)
        assert merged[0]["rank"] == 0


class TestRenderFlame:
    def test_indents_children(self):
        text = render_flame(build_nested_trace().to_list())
        lines = text.splitlines()
        assert lines[0].startswith("session")
        assert lines[1].startswith("  collect")
        assert lines[3].startswith("    corr")

    def test_shows_rank_and_tags(self):
        per_rank = {2: build_nested_trace().to_list()}
        text = render_flame(SpanTracer.merge_list(per_rank))
        assert "[rank 2]" in text
        assert "pairs=3" in text
