"""Tests for the pair trading state machine (batch + streaming)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corr.measures import corr_series
from repro.strategy.engine import (
    PairStrategy,
    Trade,
    TradeReason,
    align_corr_series,
    run_pair_day,
)
from repro.strategy.params import StrategyParams

# Small windows so scenarios stay readable: active from s = 14.
PARAMS = StrategyParams(m=10, w=5, y=3, rt=8, hp=6, st=4, d=0.01, a=0.1)
SMAX = 60


def flat_scenario():
    """Flat prices, high flat correlation: no trades ever."""
    prices = np.column_stack([np.full(SMAX, 50.0), np.full(SMAX, 30.0)])
    corr = np.full(SMAX, np.nan)
    corr[PARAMS.m :] = 0.9
    return prices, corr


def diverging_scenario(drop_at=25, recover=True):
    """Correlation breakdown at `drop_at`; leg 1 underperforms then recovers."""
    prices, corr = flat_scenario()
    corr[drop_at:] = 0.5
    if recover:
        corr[drop_at + 2 :] = 0.9
    # Leg 1 dips (underperforms) from drop_at, recovers a few intervals later.
    prices[drop_at : drop_at + 2, 1] = 29.0
    return prices, corr


class TestNoTradeConditions:
    def test_flat_market_no_trades(self):
        prices, corr = flat_scenario()
        assert run_pair_day(prices, corr, PARAMS) == []

    def test_divergence_below_a_threshold(self):
        prices, corr = flat_scenario()
        corr[PARAMS.m :] = 0.05  # tradeable requires c_bar > A = 0.1
        corr[25] = 0.01
        assert run_pair_day(prices, corr, PARAMS) == []

    def test_divergence_too_close_to_eod(self):
        prices, corr = flat_scenario()
        drop = SMAX - PARAMS.st  # fewer than ST intervals remain
        corr[drop] = 0.5
        assert run_pair_day(prices, corr, PARAMS) == []

    def test_empty_when_strategy_never_activates(self):
        # Window requirements exceed the session length.
        long_params = StrategyParams(m=100, w=60, y=3, rt=8, hp=6, st=4)
        prices, corr = flat_scenario()
        assert run_pair_day(prices, corr, long_params) == []


class TestEntry:
    def test_divergence_opens_position(self):
        prices, corr = diverging_scenario()
        trades = run_pair_day(prices, corr, PARAMS)
        assert len(trades) >= 1
        assert trades[0].entry_s == 25

    def test_long_leg_is_underperformer(self):
        prices, corr = diverging_scenario()
        trades = run_pair_day(prices, corr, PARAMS)
        assert trades[0].long_leg == 1  # leg 1 dipped

    def test_long_leg_flips_with_dip(self):
        prices, corr = flat_scenario()
        corr[25] = 0.5
        prices[25:27, 0] = 49.0  # leg 0 underperforms instead
        trades = run_pair_day(prices, corr, PARAMS)
        assert trades and trades[0].long_leg == 0

    def test_share_ratio_cash_neutral(self):
        prices, corr = diverging_scenario()
        trade = run_pair_day(prices, corr, PARAMS)[0]
        # Long leg 1 at ~29-30, short leg 0 at 50.
        assert trade.n_short == 1
        assert trade.n_long == 2  # ceil(50/29) or ceil(50/30)

    def test_no_overlapping_positions(self):
        prices, corr = diverging_scenario()
        trades = run_pair_day(prices, corr, PARAMS)
        for prev, nxt in zip(trades, trades[1:]):
            assert nxt.entry_s > prev.exit_s


class TestExit:
    def test_max_holding_period(self):
        prices, corr = diverging_scenario()
        # Prevent retracement: freeze the spread after entry by moving both
        # legs identically (spread constant at entry level).
        prices[27:, 1] = 29.0
        prices[25:27, 1] = 29.0
        trades = run_pair_day(prices, corr, PARAMS)
        hp_trades = [t for t in trades if t.reason is TradeReason.MAX_HOLDING]
        assert hp_trades
        assert hp_trades[0].holding_periods == PARAMS.hp

    def test_end_of_day_close(self):
        prices, corr = flat_scenario()
        drop = SMAX - PARAMS.st - 1  # last permissible entry
        corr[drop] = 0.5
        prices[drop:, 1] = 29.0  # spread pinned: no retracement
        params = StrategyParams(m=10, w=5, y=3, rt=8, hp=50, st=4, d=0.01, a=0.1)
        trades = run_pair_day(prices, corr, params)
        assert trades
        assert trades[-1].reason is TradeReason.END_OF_DAY
        assert trades[-1].exit_s == SMAX - 1

    def test_retracement_exit_profits(self):
        prices, corr = diverging_scenario()
        trades = run_pair_day(prices, corr, PARAMS)
        retr = [t for t in trades if t.reason is TradeReason.RETRACEMENT]
        assert retr
        # Long the dipped leg which recovers: profitable round trip.
        assert retr[0].ret > 0

    def test_all_positions_closed_by_eod(self):
        prices, corr = diverging_scenario()
        trades = run_pair_day(prices, corr, PARAMS)
        assert all(t.exit_s <= SMAX - 1 for t in trades)
        assert all(t.exit_s > t.entry_s or t.reason is TradeReason.END_OF_DAY
                   for t in trades)


class TestExtensions:
    def test_stop_loss_triggers(self):
        params = StrategyParams(
            m=10, w=5, y=3, rt=8, hp=40, st=4, d=0.01, a=0.1, stop_loss=0.005
        )
        prices, corr = flat_scenario()
        corr[25] = 0.5
        prices[25, 1] = 29.5
        # After entry the long leg collapses: deep loss, no retracement up.
        prices[26:, 1] = 26.0
        trades = run_pair_day(prices, corr, params)
        assert trades
        assert trades[0].reason in (TradeReason.STOP_LOSS, TradeReason.RETRACEMENT)
        stop = [t for t in trades if t.reason is TradeReason.STOP_LOSS]
        assert stop, [t.reason for t in trades]
        assert stop[0].ret < 0

    def test_correlation_reversion_exit(self):
        params = StrategyParams(
            m=10, w=5, y=3, rt=8, hp=40, st=4, d=0.01, a=0.1,
            correlation_reversion=True,
        )
        prices, corr = flat_scenario()
        corr[25] = 0.5  # diverge
        prices[25:, 1] = 29.0  # pin spread away from retracement
        corr[26:] = 0.88  # back inside [c_bar(1-d), c_bar)
        trades = run_pair_day(prices, corr, params)
        assert trades
        assert trades[0].reason is TradeReason.CORR_REVERSION

    def test_extensions_off_reproduce_canonical(self):
        prices, corr = diverging_scenario()
        base = run_pair_day(prices, corr, PARAMS)
        with_off = run_pair_day(
            prices,
            corr,
            StrategyParams(
                m=10, w=5, y=3, rt=8, hp=6, st=4, d=0.01, a=0.1,
                stop_loss=None, correlation_reversion=False,
            ),
        )
        assert base == with_off


class TestValidation:
    def test_rejects_bad_price_shape(self):
        with pytest.raises(ValueError):
            run_pair_day(np.ones((10, 3)), np.ones(10), PARAMS)

    def test_rejects_corr_length_mismatch(self):
        with pytest.raises(ValueError):
            run_pair_day(np.ones((10, 2)), np.ones(9), PARAMS)

    def test_rejects_nonpositive_prices(self):
        prices = np.ones((20, 2))
        prices[3, 0] = 0.0
        with pytest.raises(ValueError):
            run_pair_day(prices, np.ones(20), PARAMS)


class TestAlignCorrSeries:
    def test_alignment(self):
        series = np.arange(5, dtype=float)
        out = align_corr_series(series, smax=15, m=10)
        assert out.shape == (15,)
        assert np.isnan(out[:10]).all()
        np.testing.assert_array_equal(out[10:], series)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            align_corr_series(np.ones(4), smax=15, m=10)


class TestStreamingEquivalence:
    def _stream(self, prices, corr, params):
        strat = PairStrategy(params, prices.shape[0])
        out = []
        for s in range(prices.shape[0]):
            trade = strat.step(s, prices[s, 0], prices[s, 1], corr[s])
            if trade is not None:
                out.append(trade)
        return out

    def test_scenarios(self):
        for scenario in (flat_scenario, diverging_scenario):
            prices, corr = scenario()
            assert self._stream(prices, corr, PARAMS) == run_pair_day(
                prices, corr, PARAMS
            )

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 10_000))
    def test_random_walks(self, seed):
        gen = np.random.default_rng(seed)
        smax = 80
        common = gen.normal(0, 0.004, size=smax - 1)
        p0 = 40 * np.exp(np.cumsum(common + gen.normal(0, 0.002, smax - 1)))
        p1 = 60 * np.exp(np.cumsum(common + gen.normal(0, 0.002, smax - 1)))
        prices = np.column_stack([np.concatenate([[40], p0]),
                                  np.concatenate([[60], p1])])
        r = np.diff(np.log(prices), axis=0)
        series = corr_series(r[:, 0], r[:, 1], PARAMS.m, "pearson")
        corr = align_corr_series(series, smax, PARAMS.m)
        batch = run_pair_day(prices, corr, PARAMS)
        assert self._stream(prices, corr, PARAMS) == batch

    def test_step_enforces_sequence(self):
        strat = PairStrategy(PARAMS, 20)
        strat.step(0, 1.0, 1.0, float("nan"))
        with pytest.raises(ValueError, match="expected interval"):
            strat.step(2, 1.0, 1.0, float("nan"))

    def test_step_rejects_nonpositive_price(self):
        strat = PairStrategy(PARAMS, 20)
        with pytest.raises(ValueError):
            strat.step(0, 0.0, 1.0, float("nan"))


class TestTradeRecord:
    def test_holding_periods(self):
        t = Trade(
            entry_s=5, exit_s=9, ret=0.01, reason=TradeReason.RETRACEMENT,
            long_leg=0, n_long=1, n_short=1,
        )
        assert t.holding_periods == 4
