"""Point-to-point messaging tests over the thread backend."""

import pytest

from repro import mpi
from repro.mpi.api import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.inproc import SpmdFailure


def run(fn, size=2, **kw):
    return mpi.run_spmd(fn, size=size, default_timeout=10.0, **kw)


class TestSendRecv:
    def test_basic_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert run(prog)[1] == {"a": 7, "b": 3.14}

    def test_any_source_any_tag(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=5)
                return None
            return comm.recv(source=ANY_SOURCE, tag=ANY_TAG)

        assert run(prog)[1] == "x"

    def test_tag_matching_skips_nonmatching(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            got2 = comm.recv(source=0, tag=2)
            got1 = comm.recv(source=0, tag=1)
            return (got1, got2)

        assert run(prog)[1] == ("first", "second")

    def test_source_matching(self):
        def prog(comm):
            if comm.rank in (0, 1):
                comm.send(f"from{comm.rank}", dest=2, tag=0)
                return None
            a = comm.recv(source=1, tag=0)
            b = comm.recv(source=0, tag=0)
            return (a, b)

        assert run(prog, size=3)[2] == ("from1", "from0")

    def test_fifo_order_per_source(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(20)]

        assert run(prog)[1] == list(range(20))

    def test_status_returned(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=42)
                return None
            return comm.recv(source=ANY_SOURCE, tag=ANY_TAG, return_status=True)

        payload, status = run(prog)[1]
        assert payload == "payload"
        assert status == Status(source=0, tag=42)

    def test_send_to_self(self):
        def prog(comm):
            comm.send("me", dest=comm.rank, tag=0)
            return comm.recv(source=comm.rank, tag=0)

        assert run(prog, size=1)[0] == "me"

    def test_invalid_destination_rejected(self):
        def prog(comm):
            comm.send("x", dest=99, tag=0)

        with pytest.raises(SpmdFailure, match="99"):
            run(prog)

    def test_negative_user_tag_rejected(self):
        def prog(comm):
            comm.send("x", dest=0, tag=-1)

        with pytest.raises(SpmdFailure, match="tags must be >= 0"):
            run(prog, size=1)

    def test_recv_timeout(self):
        def prog(comm):
            comm.recv(source=0, tag=0, timeout=0.2)

        with pytest.raises(SpmdFailure, match="RecvTimeout"):
            run(prog, size=1)


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend("hello", dest=1, tag=3)
                done, _ = req.test()
                assert done
                req.wait()
                return None
            return comm.recv(source=0, tag=3)

        assert run(prog)[1] == "hello"

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("deferred", dest=1, tag=9)
                return None
            req = comm.irecv(source=0, tag=9)
            return req.wait()

        assert run(prog)[1] == "deferred"

    def test_irecv_test_before_arrival(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=9)
                done, value = req.test()
                assert not done and value is None
                comm.send("ready", dest=0, tag=1)
                return req.wait()
            comm.recv(source=1, tag=1)
            comm.send("late", dest=1, tag=9)
            return None

        assert run(prog)[1] == "late"


class TestIprobe:
    def test_iprobe_true_after_send(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=7)
                comm.recv(source=1, tag=8)  # handshake: wait for probe result
                return None
            # Wait until the message has arrived.
            while not comm.iprobe(source=0, tag=7):
                pass
            comm.send("probed", dest=0, tag=8)
            return comm.recv(source=0, tag=7)

        assert run(prog)[1] == "x"

    def test_iprobe_false_when_empty(self):
        def prog(comm):
            return comm.iprobe()

        assert run(prog, size=1)[0] is False


class TestFailurePropagation:
    def test_exception_collected_per_rank(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("rank one exploded")
            return "ok"

        with pytest.raises(SpmdFailure) as exc_info:
            run(prog, size=3)
        assert 1 in exc_info.value.errors
        assert "rank one exploded" in str(exc_info.value)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            mpi.run_spmd(lambda comm: None, size=0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            mpi.run_spmd(lambda comm: None, size=1, backend="smoke-signals")

    def test_available_backends(self):
        assert mpi.available_backends() == ("process", "thread")
