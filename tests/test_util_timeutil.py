"""Tests for repro.util.timeutil."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.timeutil import (
    MARKET_OPEN_SECONDS,
    TRADING_SECONDS_PER_DAY,
    TimeGrid,
    seconds_to_clock,
)


class TestTimeGrid:
    def test_paper_example_780_intervals(self):
        # "there are exactly 23400 seconds in a typical trading day, and if
        # Δs = 30 seconds, then there will be smax = 780 intervals"
        assert TimeGrid(30).smax == 780

    def test_fifteen_second_bars(self):
        assert TimeGrid(15).smax == 1560

    def test_partial_trailing_interval_dropped(self):
        assert TimeGrid(7, trading_seconds=100).smax == 14

    def test_interval_of_boundaries(self):
        grid = TimeGrid(30, trading_seconds=3600)
        assert grid.interval_of(0.0) == 0
        assert grid.interval_of(29.999) == 0
        assert grid.interval_of(30.0) == 1
        assert grid.interval_of(3599.0) == 119

    def test_interval_of_rejects_out_of_session(self):
        grid = TimeGrid(30, trading_seconds=3600)
        with pytest.raises(ValueError):
            grid.interval_of(3600.0)
        with pytest.raises(ValueError):
            grid.interval_of(-1.0)

    def test_start_end_of(self):
        grid = TimeGrid(30)
        assert grid.start_of(0) == 0
        assert grid.end_of(0) == 30
        assert grid.start_of(779) == 23370
        assert grid.end_of(779) == 23400

    def test_start_end_reject_bad_index(self):
        grid = TimeGrid(30)
        with pytest.raises(IndexError):
            grid.start_of(780)
        with pytest.raises(IndexError):
            grid.end_of(-1)

    def test_intervals_remaining(self):
        grid = TimeGrid(30)
        assert grid.intervals_remaining(0) == 779
        assert grid.intervals_remaining(779) == 0

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            TimeGrid(0)
        with pytest.raises(ValueError):
            TimeGrid(-30)

    def test_rejects_session_shorter_than_interval(self):
        with pytest.raises(ValueError):
            TimeGrid(100, trading_seconds=50)

    @given(
        delta=st.integers(min_value=1, max_value=600),
        session=st.integers(min_value=600, max_value=23400),
    )
    def test_intervals_tile_the_session(self, delta, session):
        grid = TimeGrid(delta, trading_seconds=session)
        assert grid.smax * delta <= session < (grid.smax + 1) * delta
        for s in (0, grid.smax - 1):
            assert grid.end_of(s) - grid.start_of(s) == delta

    @given(
        delta=st.integers(min_value=1, max_value=600),
        second=st.floats(min_value=0, max_value=23399, allow_nan=False),
    )
    def test_interval_of_is_consistent_with_bounds(self, delta, second):
        grid = TimeGrid(delta)
        try:
            s = grid.interval_of(second)
        except ValueError:
            assert second >= grid.smax * delta
            return
        assert grid.start_of(s) <= second < grid.end_of(s)


class TestSecondsToClock:
    def test_market_open(self):
        assert seconds_to_clock(0) == "09:30:00"

    def test_table2_timestamp(self):
        assert seconds_to_clock(4) == "09:30:04"

    def test_market_close(self):
        assert seconds_to_clock(TRADING_SECONDS_PER_DAY) == "16:00:00"

    def test_fractional_seconds_truncate(self):
        assert seconds_to_clock(59.9) == "09:30:59"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            seconds_to_clock(-0.1)

    def test_open_constant(self):
        assert MARKET_OPEN_SECONDS == 9 * 3600 + 30 * 60
