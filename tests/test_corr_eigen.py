"""Tests for market-mode / spectral analysis of correlation matrices."""

import numpy as np
import pytest

from repro.bars.returns import log_returns
from repro.corr.eigen import absorption_ratio, market_mode, residual_correlation
from repro.corr.measures import corr_matrix


def one_factor_matrix(n=8, beta=0.8):
    """Equicorrelation: a pure one-factor market."""
    return beta * np.ones((n, n)) + (1 - beta) * np.eye(n)


class TestMarketMode:
    def test_equicorrelation_mode(self):
        mode = market_mode(one_factor_matrix(8, 0.8))
        # Top eigenvalue of equicorrelation: 1 + (n-1)*beta.
        assert mode.eigenvalue == pytest.approx(1 + 7 * 0.8)
        assert mode.variance_share == pytest.approx((1 + 7 * 0.8) / 8)
        # Uniform loadings: participation ratio 1.
        assert mode.participation_ratio == pytest.approx(1.0)

    def test_sign_fixed_positive(self):
        mode = market_mode(one_factor_matrix())
        assert mode.vector.mean() > 0

    def test_identity_matrix_no_market(self):
        mode = market_mode(np.eye(6))
        assert mode.eigenvalue == pytest.approx(1.0)
        assert mode.variance_share == pytest.approx(1 / 6)

    def test_unit_norm_vector(self):
        mode = market_mode(one_factor_matrix(5, 0.5))
        assert np.linalg.norm(mode.vector) == pytest.approx(1.0)

    def test_concentrated_mode_low_participation(self):
        m = np.eye(6)
        m[0, 1] = m[1, 0] = 0.95  # only one tight pair
        mode = market_mode(m)
        assert mode.participation_ratio < 0.5


class TestAbsorptionRatio:
    def test_bounds(self):
        m = one_factor_matrix()
        ar1 = absorption_ratio(m, 1)
        ar_all = absorption_ratio(m, 8)
        assert 0 < ar1 < 1
        assert ar_all == pytest.approx(1.0)

    def test_monotone_in_k(self):
        gen = np.random.default_rng(3)
        m = corr_matrix(gen.normal(size=(100, 6)), "pearson")
        ratios = [absorption_ratio(m, k) for k in range(1, 7)]
        assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            absorption_ratio(np.eye(3), 4)
        with pytest.raises((ValueError, TypeError)):
            absorption_ratio(np.eye(3), 0)


class TestResidualCorrelation:
    def test_removes_common_factor(self):
        m = one_factor_matrix(8, 0.7)
        residual = residual_correlation(m, 1)
        off_diag = residual[~np.eye(8, dtype=bool)]
        # A pure one-factor market has (almost) nothing left.
        assert np.abs(off_diag).max() < 0.5
        assert np.abs(off_diag).mean() < np.abs(
            m[~np.eye(8, dtype=bool)]
        ).mean()

    def test_is_correlation_matrix(self):
        gen = np.random.default_rng(5)
        m = corr_matrix(gen.normal(size=(200, 6)), "pearson")
        residual = residual_correlation(m, 2)
        np.testing.assert_allclose(np.diag(residual), 1.0)
        np.testing.assert_allclose(residual, residual.T)
        assert np.abs(residual).max() <= 1.0 + 1e-12

    def test_sector_pairs_survive_market_removal(self, small_market, small_grid):
        prices = small_market.true_bam_grid(0, small_grid)
        m = corr_matrix(log_returns(prices), "pearson")
        residual = residual_correlation(m, 1)
        sectors = small_market.universe.sectors
        same, cross = [], []
        n = len(sectors)
        for i in range(n):
            for j in range(i + 1, n):
                (same if sectors[i] == sectors[j] else cross).append(
                    residual[i, j]
                )
        # Sector co-movement is exactly what market-mode removal exposes.
        assert np.mean(same) > np.mean(cross)

    def test_mode_count_validation(self):
        with pytest.raises(ValueError):
            residual_correlation(np.eye(3), 3)
