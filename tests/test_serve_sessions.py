"""SessionManager lifecycle: submit/pause/resume/kill, audit, isolation.

The edge cases here are the serving layer's contract with its tenants:
a kill lands even while the session is parked in pause, a re-used id is
a 409 not a clobber, a command against a dead session returns
immediately (409) instead of hanging, the audit log survives a session
crash (and the flight-recorder dump is still on disk), and — the
multi-tenancy headline — one killed or paused session never blocks
another tenant's work.
"""

import os
import time

import pytest

from repro.serve import (
    CommandBacklog,
    DuplicateSession,
    ManagerFull,
    Session,
    SessionDead,
    SessionManager,
    BadRequest,
    UnknownSession,
    validate_spec,
)

#: Smallest legal live session: 1200 s -> 40 intervals, 2 epochs.
FIG1_SPEC = {"seconds": 1200, "ranks": 2, "checkpoint_every": 20}

#: A long session (16 epochs) that stays alive while tests poke at it.
SLOW_SPEC = {"seconds": 4800, "ranks": 2, "checkpoint_every": 10}


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_terminal(manager, sid, timeout=60.0):
    assert wait_for(
        lambda: manager.get(sid).status()["state"]
        in ("done", "failed", "killed"),
        timeout,
    ), f"session {sid} never terminated: {manager.get(sid).status()}"
    return manager.get(sid).status()


@pytest.fixture()
def manager():
    m = SessionManager(max_live=4, retain=16)
    yield m
    m.kill_all()


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(BadRequest, match="unknown session kind"):
            validate_spec("alpha", {})

    def test_unknown_key_names_allowed(self):
        with pytest.raises(BadRequest, match="allowed keys"):
            validate_spec("figure1", {"symbolz": 4})

    def test_type_error_is_pointed(self):
        with pytest.raises(BadRequest, match="'symbols' must be int"):
            validate_spec("figure1", {"symbols": "four"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(BadRequest, match="'symbols' must be int"):
            validate_spec("figure1", {"symbols": True})

    def test_bounds_checked_both_ways(self):
        with pytest.raises(BadRequest, match="must be >= 1200"):
            validate_spec("figure1", {"seconds": 60})
        with pytest.raises(BadRequest, match="must be <= 8"):
            validate_spec("figure1", {"ranks": 64})

    def test_defaults_fill_in(self):
        spec = validate_spec("backtest", None)
        assert spec["symbols"] == 6 and spec["days"] == 2
        assert spec["store_root"] is None

    def test_unknown_fault_plan_rejected(self):
        with pytest.raises(BadRequest, match="no such plan"):
            validate_spec("figure1", {"fault_plan": "meteor-strike"})

    def test_missing_store_root_rejected(self):
        with pytest.raises(BadRequest, match="not a directory"):
            validate_spec("backtest", {"store_root": "/no/such/store"})

    def test_bad_session_id_rejected(self, manager):
        with pytest.raises(BadRequest, match="bad session id"):
            manager.submit("no spaces!", "figure1", None, "u")


class TestLifecycle:
    def test_figure1_runs_to_done(self, manager):
        status = manager.submit("f1", "figure1", FIG1_SPEC, "alice")
        assert status["state"] in ("pending", "running")
        final = wait_terminal(manager, "f1")
        assert final["state"] == "done", final["error"]
        assert final["summary"]["bars"] == 40
        assert final["summary"]["checkpoints"] == 1
        assert final["progress"]["gates"] >= 2

    def test_backtest_runs_to_done(self, manager):
        manager.submit(
            "b1", "backtest", {"days": 1, "symbols": 4, "levels": 1}, "bob"
        )
        final = wait_terminal(manager, "b1")
        assert final["state"] == "done", final["error"]
        assert final["summary"] == {
            "days": 1, "pairs": 6, "param_sets": 1,
            "trades": final["summary"]["trades"],
        }

    def test_double_submit_is_409_even_after_done(self, manager):
        manager.submit("dup", "figure1", FIG1_SPEC, "alice")
        with pytest.raises(DuplicateSession):
            manager.submit("dup", "figure1", FIG1_SPEC, "mallory")
        wait_terminal(manager, "dup")
        with pytest.raises(DuplicateSession):
            manager.submit("dup", "backtest", None, "alice")

    def test_pause_then_kill_lands_while_paused(self, manager):
        manager.submit("pk", "figure1", SLOW_SPEC, "alice")
        manager.command("pk", "pause", "alice")
        assert wait_for(lambda: manager.get("pk").status()["state"] == "paused")
        # The worker is parked at a gate; the kill must still land.
        manager.command("pk", "kill", "ops")
        final = wait_terminal(manager, "pk", timeout=10.0)
        assert final["state"] == "killed"

    def test_pause_resume_roundtrip(self, manager):
        manager.submit("pr", "figure1", SLOW_SPEC, "alice")
        manager.command("pr", "pause", "alice")
        assert wait_for(lambda: manager.get("pr").status()["state"] == "paused")
        manager.command("pr", "resume", "alice")
        assert wait_for(
            lambda: manager.get("pr").status()["state"] == "running"
        )
        manager.command("pr", "kill", "alice")
        wait_terminal(manager, "pr", timeout=10.0)

    def test_command_on_dead_session_is_409_not_a_hang(self, manager):
        manager.submit("dead", "figure1", FIG1_SPEC, "alice")
        manager.command("dead", "kill", "alice")
        wait_terminal(manager, "dead", timeout=10.0)
        t0 = time.monotonic()
        with pytest.raises(SessionDead):
            manager.command("dead", "pause", "alice")
        assert time.monotonic() - t0 < 1.0

    def test_unknown_session_404(self, manager):
        with pytest.raises(UnknownSession):
            manager.get("ghost")
        with pytest.raises(UnknownSession):
            manager.command("ghost", "kill", "alice")

    def test_unknown_command_400(self, manager):
        manager.submit("cmd", "figure1", FIG1_SPEC, "alice")
        with pytest.raises(BadRequest, match="unknown command"):
            manager.command("cmd", "explode", "alice")


class TestIsolation:
    def test_killed_session_never_blocks_another_tenant(self, manager):
        """The acceptance headline: tenant B completes while A is wedged."""
        manager.submit("a", "figure1", SLOW_SPEC, "alice")
        manager.command("a", "pause", "alice")
        assert wait_for(lambda: manager.get("a").status()["state"] == "paused")
        # With A parked, B must submit, run and finish unimpeded.
        manager.submit("b", "figure1", FIG1_SPEC, "bob")
        final_b = wait_terminal(manager, "b")
        assert final_b["state"] == "done", final_b["error"]
        assert manager.get("a").status()["state"] == "paused"
        # And every control-plane read against A stays fast.
        t0 = time.monotonic()
        manager.get("a").status()
        manager.get("a").audit_entries()
        manager.list_sessions()
        assert time.monotonic() - t0 < 1.0
        manager.command("a", "kill", "ops")
        assert wait_terminal(manager, "a", timeout=10.0)["state"] == "killed"

    def test_manager_full_is_429(self):
        m = SessionManager(max_live=1, retain=8)
        try:
            m.submit("one", "figure1", SLOW_SPEC, "alice")
            with pytest.raises(ManagerFull):
                m.submit("two", "figure1", FIG1_SPEC, "bob")
        finally:
            m.kill_all()

    def test_command_backlog_is_429(self):
        # A pending (never-started) session drains nothing, so the
        # bounded queue fills and the next command rejects immediately.
        s = Session("s", "figure1", validate_spec("figure1", None), "u",
                    command_slots=2)
        s.submit_command("pause", "u")
        s.submit_command("resume", "u")
        with pytest.raises(CommandBacklog):
            s.submit_command("kill", "u")
        audit = s.audit_entries()
        assert [e["detail"] for e in audit["entries"]] == [
            "queued", "queued", "rejected: command queue full",
        ]


class TestAudit:
    def test_audit_orders_actor_and_op(self, manager):
        manager.submit("aud", "figure1", FIG1_SPEC, "alice")
        manager.command("aud", "pause", "alice")
        manager.command("aud", "resume", "ops")
        manager.command("aud", "kill", "security")
        wait_terminal(manager, "aud", timeout=15.0)
        entries = manager.get("aud").audit_entries()["entries"]
        pairs = [(e["actor"], e["op"]) for e in entries]
        assert pairs[0] == ("alice", "submit")
        assert ("ops", "resume") in pairs
        assert ("security", "kill") in pairs
        assert pairs[-1] == ("worker", "exit")
        seqs = [e["seq"] for e in entries]
        assert seqs == sorted(seqs)

    def test_audit_survives_crash_and_flight_dump_written(self, tmp_path):
        m = SessionManager(max_live=2, retain=8, flight_root=str(tmp_path))
        try:
            # crash-mid with a zero restart budget: the session dies.
            m.submit(
                "boom", "figure1",
                dict(FIG1_SPEC, fault_plan="crash-mid", max_restarts=0),
                "alice",
            )
            final = wait_terminal(m, "boom")
            assert final["state"] == "failed"
            assert "ChaosUnrecoverable" in final["error"]
            entries = m.get("boom").audit_entries()["entries"]
            assert entries[0]["op"] == "submit"
            assert entries[-1]["op"] == "exit"
            assert entries[-1]["detail"].startswith("failed:")
            dumps = os.listdir(tmp_path / "boom")
            assert any(f.endswith(".jsonl") for f in dumps), dumps
        finally:
            m.kill_all()

    def test_audit_ring_is_bounded_but_sequence_is_not(self):
        s = Session("s", "backtest", validate_spec("backtest", None), "u",
                    audit_capacity=4)
        for i in range(10):
            s.record_audit("u", f"op{i}")
        audit = s.audit_entries()
        assert len(audit["entries"]) == 4
        assert audit["total"] == 10 and audit["dropped"] == 6
        assert [e["seq"] for e in audit["entries"]] == [6, 7, 8, 9]


class TestQueries:
    def test_positions_and_signals_read_checkpoints(self, manager):
        manager.submit("q", "figure1", FIG1_SPEC, "alice")
        final = wait_terminal(manager, "q")
        assert final["state"] == "done", final["error"]
        session = manager.get("q")
        positions = session.positions()
        assert positions["epoch"] == 0
        assert positions["trades"] >= 0
        for row in positions["positions"]:
            assert len(row["pair"]) == 2 and row["n_long"] > 0
        signals = session.signals(limit=3)
        assert len(signals["signals"]) <= 3
        for row in signals["signals"]:
            assert -1.0 <= row["corr"] <= 1.0

    def test_positions_reject_backtest_sessions(self, manager):
        manager.submit("bt", "backtest", {"days": 1, "symbols": 4}, "bob")
        wait_terminal(manager, "bt")
        with pytest.raises(BadRequest, match="only for kind 'figure1'"):
            manager.get("bt").positions()
        with pytest.raises(BadRequest, match="only for kind 'figure1'"):
            manager.get("bt").signals()

    def test_terminal_sessions_pruned_oldest_first(self):
        m = SessionManager(max_live=2, retain=3)
        try:
            for i in range(4):
                m.submit(f"s{i}", "backtest",
                         {"days": 1, "symbols": 3, "levels": 1}, "u")
                wait_terminal(m, f"s{i}")
            ids = {s["id"] for s in m.list_sessions()}
            assert len(ids) <= 3 and "s3" in ids and "s0" not in ids
        finally:
            m.kill_all()


class TestWatchlists:
    def test_roundtrip_and_caps(self, manager):
        manager.set_watchlist("alice", ["XOM", "CVX"])
        assert manager.watchlist("alice")["symbols"] == ["XOM", "CVX"]
        assert manager.watchlist("nobody")["symbols"] == []
        with pytest.raises(BadRequest, match="ticker strings"):
            manager.set_watchlist("alice", ["", "CVX"])
        with pytest.raises(BadRequest, match="ticker strings"):
            manager.set_watchlist("alice", "XOM")

    def test_user_cap_is_429_but_updates_pass(self):
        m = SessionManager(max_live=2, retain=8, watchlist_users=2)
        m.set_watchlist("a", ["XOM"])
        m.set_watchlist("b", ["CVX"])
        with pytest.raises(ManagerFull):
            m.set_watchlist("c", ["BP"])
        m.set_watchlist("a", ["BP"])  # replacing an entry is always fine
        assert m.watchlist("a")["symbols"] == ["BP"]

    def test_item_cap(self, manager):
        with pytest.raises(BadRequest, match="at most"):
            manager.set_watchlist("alice", ["S"] * 1000)


class TestResize:
    """The elastic pool over HTTP: the resize ladder, surfacing, audit.

    A resize queues at the manager, lands at the next ``on_gate`` epoch
    boundary as a :class:`SessionControl` request, and is applied by the
    elastic supervisor — the ``resize-applied`` audit entry plus the
    ``pool`` status block are the tenant-visible proof.
    """

    def test_resize_requires_integer_target(self, manager):
        manager.submit("rz0", "figure1", SLOW_SPEC, "alice")
        with pytest.raises(BadRequest, match="integer 'target'"):
            manager.command("rz0", "resize", "alice")
        with pytest.raises(BadRequest, match="integer 'target'"):
            manager.command("rz0", "resize", "alice", target=True)
        manager.command("rz0", "kill", "alice")
        wait_terminal(manager, "rz0", timeout=10.0)

    def test_resize_target_bounds(self, manager):
        manager.submit("rz1", "figure1", SLOW_SPEC, "alice")
        with pytest.raises(BadRequest, match=r"must be in 1\.\.8, got 0"):
            manager.command("rz1", "resize", "alice", target=0)
        with pytest.raises(BadRequest, match=r"must be in 1\.\.8, got 99"):
            manager.command("rz1", "resize", "alice", target=99)
        manager.command("rz1", "kill", "alice")
        wait_terminal(manager, "rz1", timeout=10.0)

    def test_target_on_non_resize_command_rejected(self, manager):
        manager.submit("rz2", "figure1", SLOW_SPEC, "alice")
        with pytest.raises(BadRequest, match="takes no 'target'"):
            manager.command("rz2", "pause", "alice", target=3)
        manager.command("rz2", "kill", "alice")
        wait_terminal(manager, "rz2", timeout=10.0)

    def test_resize_unsupported_for_backtest(self, manager):
        from repro.serve import CommandUnsupported

        manager.submit(
            "rzb", "backtest", {"days": 1, "symbols": 4, "levels": 1}, "bob"
        )
        with pytest.raises(CommandUnsupported, match="backtest"):
            manager.command("rzb", "resize", "bob", target=3)
        wait_terminal(manager, "rzb")

    def test_second_resize_before_boundary_is_409(self, manager):
        from repro.serve import ResizePending

        manager.submit("rzp", "figure1", SLOW_SPEC, "alice")
        # Plant the pending request directly (deterministic: no race
        # against the gate consuming a queued command first).
        manager.get("rzp").control.request_resize(4)
        with pytest.raises(ResizePending, match="resize to 4 pending"):
            manager.command("rzp", "resize", "alice", target=3)
        manager.command("rzp", "kill", "alice")
        wait_terminal(manager, "rzp", timeout=10.0)

    def test_resize_on_dead_session_is_409(self, manager):
        manager.submit("rzd", "figure1", FIG1_SPEC, "alice")
        manager.command("rzd", "kill", "alice")
        wait_terminal(manager, "rzd", timeout=10.0)
        with pytest.raises(SessionDead):
            manager.command("rzd", "resize", "alice", target=3)

    def test_applied_resize_surfaces_in_status_audit_and_summary(
        self, manager
    ):
        manager.submit("rza", "figure1", SLOW_SPEC, "alice")
        manager.command("rza", "resize", "alice", target=3)
        # The supervisor applies the request at the next epoch boundary.
        assert wait_for(
            lambda: manager.get("rza").status()["pool"]["resizes"]
        ), manager.get("rza").status()
        status = manager.get("rza").status()
        assert status["pool"]["size"] == 3
        assert status["pool"]["pending_resize"] is None
        assert status["pool"]["resizes"][-1][1:] == (2, 3)

        ops = [(e["actor"], e["op"], e["detail"])
               for e in manager.get("rza").audit_entries()["entries"]]
        assert ("alice", "resize", "queued target=3") in ops
        assert ("alice", "resize", "applied target=3") in ops
        assert any(
            actor == "supervisor" and op == "resize-applied"
            and detail.endswith("2->3")
            for actor, op, detail in ops
        )

        telem = manager.telemetry()["rza"]
        assert telem["pool_size"] == 3
        assert telem["resizes"] == 1

        final = wait_terminal(manager, "rza")
        assert final["state"] == "done", final["error"]
        assert final["summary"]["pool_sizes"][-1] == 3
        assert final["summary"]["resizes"][-1][1:] == [2, 3]

    def test_kill_during_pending_resize_keeps_audit_consistent(
        self, manager
    ):
        """A kill racing a queued resize must not forge a resize-applied."""
        manager.submit("rzk", "figure1", SLOW_SPEC, "alice")
        manager.command("rzk", "pause", "alice")
        assert wait_for(
            lambda: manager.get("rzk").status()["state"] == "paused"
        )
        # Queue the resize while paused (it can't land at a gate), then
        # kill: the session dies with the resize still queued/pending.
        manager.command("rzk", "resize", "alice", target=4)
        manager.command("rzk", "kill", "ops")
        final = wait_terminal(manager, "rzk", timeout=10.0)
        assert final["state"] == "killed"
        ops = [(e["op"], e["detail"]) for e in manager.get("rzk").audit_entries()["entries"]]
        assert ("resize", "queued target=4") in ops
        assert not any(op == "resize-applied" for op, _ in ops)
        assert final["pool"]["resizes"] == []
