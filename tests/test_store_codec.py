"""Codec tests: property-style lossless round-trips plus corruption
rejection (flipped payload bytes, truncation, bad magic/version/CRC)."""

import numpy as np
import pytest

from repro.store.codec import (
    MAGIC,
    STORE_DTYPE,
    CodecError,
    CorruptSegmentError,
    Segment,
    encode_segment,
    read_segment,
    write_segment,
)
from repro.taq.types import QUOTE_DTYPE


def random_records(rng, n, dtype=STORE_DTYPE):
    out = np.empty(n, dtype=dtype)
    out["t"] = np.sort(rng.uniform(0, 23_400, n))
    out["symbol"] = rng.integers(0, 61, n)
    out["bid"] = rng.uniform(0.01, 500, n)
    out["ask"] = out["bid"] + rng.uniform(-0.5, 0.5, n)
    out["bid_size"] = rng.integers(0, 10_000, n)
    out["ask_size"] = rng.integers(0, 10_000, n)
    if "seq" in (dtype.names or ()):
        out["seq"] = np.arange(n, dtype=np.uint32)
    return out


def round_trip(tmp_path, records, block_rows=257):
    path = tmp_path / "seg.seg"
    write_segment(path, records, block_rows=block_rows)
    return read_segment(path)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("n", [0, 1, 256, 257, 1000])
    def test_random_arrays_bitwise(self, tmp_path, seed, n):
        records = random_records(np.random.default_rng(seed), n)
        back = round_trip(tmp_path, records)
        assert back.dtype == records.dtype
        assert back.tobytes() == records.tobytes()

    def test_quote_dtype_without_seq_round_trips(self, tmp_path):
        records = random_records(
            np.random.default_rng(11), 500, dtype=QUOTE_DTYPE
        )
        back = round_trip(tmp_path, records)
        assert back.dtype == QUOTE_DTYPE
        assert back.tobytes() == records.tobytes()

    def test_extreme_values_survive(self, tmp_path):
        records = np.zeros(6, dtype=STORE_DTYPE)
        records["t"] = [0.0, 1e-12, 1.0, 23_399.999999, 1e17, np.inf]
        records["bid"] = [np.nan, -np.inf, 5e-324, 1e308, -0.0, 123.456]
        records["ask"] = records["bid"][::-1]
        records["bid_size"] = [0, 0, 1, 2**31 - 1, -(2**31), 7]
        records["ask_size"] = records["bid_size"][::-1]
        records["seq"] = [0, 1, 2, 3, 2**32 - 1, 5]
        back = round_trip(tmp_path, records, block_rows=2)
        assert back.tobytes() == records.tobytes()

    def test_zero_sizes_and_zero_rows(self, tmp_path):
        empty = np.empty(0, dtype=STORE_DTYPE)
        back = round_trip(tmp_path, empty)
        assert back.size == 0 and back.dtype == STORE_DTYPE

    def test_memmap_matches_read_blocks(self, tmp_path):
        records = random_records(np.random.default_rng(3), 700)
        path = tmp_path / "seg.seg"
        write_segment(path, records, block_rows=100)
        seg = Segment(path)
        assert seg.n_blocks == 7
        assert seg.memmap().tobytes() == records.tobytes()
        assert not seg.read_block(0).flags.writeable

    def test_big_endian_input_normalised(self, tmp_path):
        records = random_records(np.random.default_rng(4), 50)
        big = records.astype(records.dtype.newbyteorder(">"))
        back = round_trip(tmp_path, big)
        assert back.tobytes() == records.tobytes()


class TestEncodeErrors:
    def test_non_structured_rejected(self):
        with pytest.raises(CodecError, match="structured"):
            encode_segment(np.arange(10.0))

    def test_multidimensional_rejected(self):
        with pytest.raises(CodecError, match="1-D"):
            encode_segment(np.zeros((2, 3), dtype=STORE_DTYPE))

    def test_nonpositive_block_rows_rejected(self):
        with pytest.raises(CodecError, match="block_rows"):
            encode_segment(np.empty(0, dtype=STORE_DTYPE), block_rows=0)


class TestCorruptionRejection:
    @pytest.fixture
    def segment_path(self, tmp_path):
        path = tmp_path / "seg.seg"
        write_segment(
            path, random_records(np.random.default_rng(9), 600),
            block_rows=128,
        )
        return path

    def flip_byte(self, path, offset):
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_payload_flip_caught_by_block_crc(self, segment_path):
        seg = Segment(segment_path)
        self.flip_byte(segment_path, seg.payload_offset + 5)
        with pytest.raises(CorruptSegmentError, match="block 0 checksum"):
            Segment(segment_path).verify()

    def test_flip_in_later_block_names_that_block(self, segment_path):
        seg = Segment(segment_path)
        offset = seg.payload_offset + 3 * 128 * seg.dtype.itemsize + 1
        self.flip_byte(segment_path, offset)
        fresh = Segment(segment_path)
        fresh.read_block(0)  # earlier blocks still verify
        with pytest.raises(CorruptSegmentError, match="block 3 checksum"):
            fresh.read_block(3)

    def test_truncated_payload_rejected_at_open(self, segment_path):
        data = segment_path.read_bytes()
        segment_path.write_bytes(data[:-10])
        with pytest.raises(CorruptSegmentError, match="truncated"):
            Segment(segment_path)

    def test_truncated_header_rejected(self, segment_path):
        segment_path.write_bytes(segment_path.read_bytes()[:20])
        with pytest.raises(CorruptSegmentError, match="truncated"):
            Segment(segment_path)

    def test_trailing_garbage_rejected(self, segment_path):
        segment_path.write_bytes(segment_path.read_bytes() + b"junk")
        with pytest.raises(CorruptSegmentError):
            Segment(segment_path)

    def test_bad_magic_rejected(self, segment_path):
        data = bytearray(segment_path.read_bytes())
        data[:4] = b"NOPE"
        segment_path.write_bytes(bytes(data))
        with pytest.raises(CodecError, match="magic"):
            Segment(segment_path)

    def test_future_version_rejected(self, segment_path):
        data = bytearray(segment_path.read_bytes())
        assert data[:4] == MAGIC
        data[4] = 99  # version field, little-endian u2 at offset 4
        segment_path.write_bytes(bytes(data))
        # Flipping the version also breaks the header CRC; either error is
        # a correct rejection, but the version check must come first.
        with pytest.raises(CodecError, match="version 99"):
            Segment(segment_path)

    def test_header_crc_flip_rejected(self, segment_path):
        # Corrupt a byte inside the dtype-descr region of the header.
        self.flip_byte(segment_path, 45)
        with pytest.raises(CorruptSegmentError, match="header checksum"):
            Segment(segment_path)

    def test_block_index_bounds_checked(self, segment_path):
        seg = Segment(segment_path)
        with pytest.raises(IndexError):
            seg.read_block(seg.n_blocks)
        with pytest.raises(IndexError):
            seg.read_block(-1)
