"""CLI tests for ``repro store ingest|ls|verify|scan``."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-store") / "store"
    assert main([
        "store", "ingest", "--root", str(root),
        "--symbols", "8", "--days", "2", "--seconds", "1800",
        "--seed", "7", "--shards", "3", "--block-rows", "1024",
    ]) == 0
    return root


class TestIngest:
    def test_prints_summary(self, store_root, capsys):
        assert main([
            "store", "ingest", "--root", str(store_root.parent / "b"),
            "--symbols", "4", "--days", "1", "--seconds", "900",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 days x 4 symbols" in out

    def test_obs_json_written(self, tmp_path):
        obs_path = tmp_path / "obs.json"
        assert main([
            "store", "ingest", "--root", str(tmp_path / "store"),
            "--symbols", "4", "--days", "1", "--seconds", "900",
            "--obs-json", str(obs_path),
        ]) == 0
        report = json.loads(obs_path.read_text())
        counters = report["metrics"]["counters"]
        assert counters["store.ingest.days"] == 1
        assert counters["store.ingest.rows"] > 0

    def test_csv_ingest(self, tmp_path, capsys):
        from repro.taq.io import write_taq_csv
        from repro.taq.synthetic import (
            SyntheticMarket,
            SyntheticMarketConfig,
        )
        from repro.taq.universe import default_universe

        market = SyntheticMarket(
            default_universe(4),
            SyntheticMarketConfig(trading_seconds=900),
            seed=3,
        )
        csv_path = tmp_path / "day0.csv"
        write_taq_csv(csv_path, market.quotes(0), market.universe)
        assert main([
            "store", "ingest", "--root", str(tmp_path / "store"),
            "--symbols", "4", "--seconds", "900",
            "--from-csv", str(csv_path),
        ]) == 0
        assert "1 days x 4 symbols" in capsys.readouterr().out


class TestLs:
    def test_lists_days(self, store_root, capsys):
        assert main(["store", "ls", "--root", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "2 days, 8 symbols, 3 shards/day" in out
        assert "day   0:" in out and "day   1:" in out


class TestVerify:
    def test_clean_store_passes(self, store_root, capsys):
        assert main(["store", "verify", "--root", str(store_root)]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_deep_verify_passes(self, store_root, capsys):
        assert main([
            "store", "verify", "--root", str(store_root), "--deep",
        ]) == 0
        assert "re-derived bitwise" in capsys.readouterr().out

    def test_corruption_fails_nonzero(self, store_root, capsys):
        seg = store_root / "day=001" / "shard=01.seg"
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF
        backup = seg.read_bytes()
        seg.write_bytes(bytes(data))
        try:
            assert main([
                "store", "verify", "--root", str(store_root),
            ]) == 1
            assert "FAILED" in capsys.readouterr().err
        finally:
            seg.write_bytes(backup)


class TestScan:
    def test_filtered_scan_prints_counts(self, store_root, capsys):
        assert main([
            "store", "scan", "--root", str(store_root),
            "--days", "0", "--select", "XOM,CVX",
            "--t-min", "100", "--t-max", "1500",
        ]) == 0
        assert "scanned" in capsys.readouterr().out

    def test_cached_scan_reports_cache_stats(self, store_root, capsys):
        assert main([
            "store", "scan", "--root", str(store_root), "--cached",
        ]) == 0
        assert "cache:" in capsys.readouterr().out

    def test_scan_counters_visible_in_stats(self, store_root, tmp_path, capsys):
        obs_path = tmp_path / "scan.json"
        assert main([
            "store", "scan", "--root", str(store_root),
            "--select", "XOM", "--cached", "--obs-json", str(obs_path),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(obs_path)]) == 0
        out = capsys.readouterr().out
        assert "store.scan.rows" in out
        assert "store.cache.misses" in out
