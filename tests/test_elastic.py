"""Elastic runtime suite: resize plans, stable sharding, the supervisor.

The headline invariant under test: a supervised Figure-1 session whose
rank pool is resized at epoch boundaries is *bitwise-identical* to the
same session run at a fixed pool size — component results and folded
domain counters alike, on both MPI backends.  Around it: plan
validation is pointed, mid-epoch resize requests defer to the next
boundary, capacity violations fail before any epoch runs, pair shards
are a pure function of the pair (never the rank count), and a pool
that keeps crashing can shed a rank (crash-as-shrink) while keeping
the invariant.
"""

import json
import os

import pytest

from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.elastic import (
    ResizePlan,
    ResizeRequest,
    shard_pairs,
    stable_shard,
    world_capacity,
)
from repro.elastic.world import check_pool_size
from repro.faults import (
    ChaosUnrecoverable,
    DegradePolicy,
    FaultPlan,
    RankCrash,
    fold_obs_counters,
    run_supervised_session,
    session_results_equal,
)
from repro.marketminer.session import (
    SessionControl,
    build_figure1_workflow,
    run_figure1_session,
)
from repro.mpi.launcher import run_spmd
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import (
    SyntheticMarket,
    SyntheticMarketConfig,
    default_universe,
)
from repro.util.timeutil import TimeGrid

SECONDS = 23_400 // 16
PARAMS = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
PAIRS = [(0, 1), (2, 3)]
OPTIONS = {"default_timeout": 10.0}

#: Transport counters legitimately scale with the pool size; everything
#: else (domain counters) must fold identically across pool shapes.
EXCLUDE = ("mpi.",)


def build():
    """Zero-argument Figure-1 workflow factory (fresh market per call)."""
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=33,
    )
    grid_time = TimeGrid(30, trading_seconds=SECONDS)
    return build_figure1_workflow(market, grid_time, PAIRS, [PARAMS])


@pytest.fixture(scope="module")
def fixed_run():
    """Fixed-size baseline at pool size 3 with obs for counter folding."""
    return run_supervised_session(
        build, size=3, checkpoint_every=20, obs_enabled=True,
        backend_options=OPTIONS,
    )


class TestResizePlan:
    def test_request_validates_epoch_and_size(self):
        with pytest.raises(ValueError, match="epoch"):
            ResizeRequest(-1, 2)
        with pytest.raises(ValueError, match="below 1"):
            ResizeRequest(0, 0)

    def test_plan_rejects_duplicate_epochs(self):
        with pytest.raises(ValueError, match="more than once"):
            ResizePlan((ResizeRequest(1, 2), ResizeRequest(1, 4)))

    def test_plan_sorts_by_epoch(self):
        plan = ResizePlan((ResizeRequest(3, 2), ResizeRequest(1, 4)))
        assert [r.epoch for r in plan.requests] == [1, 3]
        assert plan.by_epoch() == {1: 4, 3: 2}
        assert plan.max_epoch == 3

    def test_of_coerces_none_request_iterable_and_plan(self):
        assert ResizePlan.of(None).requests == ()
        assert ResizePlan.of(ResizeRequest(1, 2)).by_epoch() == {1: 2}
        assert ResizePlan.of(
            [ResizeRequest(1, 2), ResizeRequest(2, 3)]
        ).by_epoch() == {1: 2, 2: 3}
        plan = ResizePlan((ResizeRequest(1, 2),))
        assert ResizePlan.of(plan) is plan
        with pytest.raises(TypeError, match="ResizeRequest"):
            ResizePlan.of([(1, 2)])

    def test_empty_plan_max_epoch(self):
        assert ResizePlan(()).max_epoch == -1


class TestStableSharding:
    """Pair→shard placement is a pure function of the pair, never of
    arrival order, process salt, or (within a shard's membership test)
    the previous pool size."""

    def pairs(self, n=40):
        return [(i, j) for i in range(n) for j in range(i + 1, min(i + 4, n))]

    @pytest.mark.parametrize("size", range(1, 9))
    def test_union_is_identity_at_every_size(self, size):
        pairs = self.pairs()
        shards = shard_pairs(pairs, size)
        assert len(shards) == size
        flat = [p for shard in shards for p in shard]
        assert sorted(flat) == sorted(pairs)
        assert len(flat) == len(pairs)  # no pair placed twice

    def test_order_within_shard_preserves_input_order(self):
        pairs = self.pairs()
        for shard in shard_pairs(pairs, 4):
            assert shard == sorted(shard, key=pairs.index)

    def test_placement_is_input_order_independent(self):
        pairs = self.pairs()
        a = {p: stable_shard(p, 5) for p in pairs}
        b = {p: stable_shard(p, 5) for p in reversed(pairs)}
        assert a == b

    def test_stable_shard_matches_shard_pairs(self):
        pairs = self.pairs()
        shards = shard_pairs(pairs, 3)
        for rank, shard in enumerate(shards):
            for p in shard:
                assert stable_shard(p, 3) == rank

    def test_known_hash_values_are_process_stable(self):
        # FNV-1a is deterministic across processes (unlike salted
        # ``hash()``); pin a value so an accidental algorithm change
        # shows up as a pointed failure rather than silent re-sharding.
        assert stable_shard((0, 1), 4) == stable_shard((0, 1), 4)
        before = json.dumps(
            [stable_shard((i, i + 1), 8) for i in range(16)]
        )
        after = json.dumps(
            [stable_shard((i, i + 1), 8) for i in range(16)]
        )
        assert before == after

    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_distributed_backtest_identical_across_pool_sizes(self, size):
        """The stage-3 strategy shards moved to stable hashing; the
        merged store must not depend on the rank count."""
        market = SyntheticMarket(
            default_universe(6),
            SyntheticMarketConfig(trading_seconds=2400, quote_rate=0.9),
            seed=7,
        )
        provider = BarProvider(
            market, TimeGrid(30, trading_seconds=2400)
        )
        pairs = list(market.universe.pairs())
        grid = [PARAMS]

        def spmd(comm):
            engine = DistributedBacktester(provider)
            return engine.run(comm, pairs, grid, [0])

        store = run_spmd(spmd, size=size, default_timeout=10.0)[0]
        baseline = run_spmd(spmd, size=1, default_timeout=10.0)[0]
        assert store == baseline


class TestElasticResize:
    """The tentpole: grow and shrink at epoch boundaries, bitwise."""

    @pytest.fixture(scope="class")
    def elastic_run(self):
        return run_supervised_session(
            build, size=2, checkpoint_every=20,
            resize=ResizePlan((ResizeRequest(1, 4), ResizeRequest(2, 3))),
            obs_enabled=True, backend_options=OPTIONS,
        )

    def test_pool_trajectory_and_history(self, elastic_run):
        assert elastic_run.pool_sizes == (2, 4, 3)
        assert elastic_run.resizes == ((1, 2, 4), (2, 4, 3))

    def test_resize_is_bitwise_invisible(self, fixed_run, elastic_run):
        assert session_results_equal(
            fixed_run.results, elastic_run.results
        )

    def test_folded_domain_counters_identical(self, fixed_run, elastic_run):
        fixed = fold_obs_counters(
            fixed_run.obs_reports, exclude_prefixes=EXCLUDE
        )
        elastic = fold_obs_counters(
            elastic_run.obs_reports, exclude_prefixes=EXCLUDE
        )
        assert fixed and fixed == elastic

    def test_resize_entries_logged_with_moves(self, elastic_run):
        entries = [e for e in elastic_run.log if e[0] == "resize"]
        assert [(e[1], e[2], e[3]) for e in entries] == [
            (1, 2, 4), (2, 4, 3),
        ]
        for entry in entries:
            moved = entry[4]
            # Deterministic (component, old_rank, new_rank) placement
            # moves, sorted by component name.
            assert all(
                isinstance(name, str) and old != new
                for name, old, new in moved
            )
            assert list(moved) == sorted(moved, key=lambda m: m[0])

    def test_log_is_deterministic(self, elastic_run):
        again = run_supervised_session(
            build, size=2, checkpoint_every=20,
            resize=(ResizeRequest(1, 4), ResizeRequest(2, 3)),  # coercion
            backend_options=OPTIONS,
        )
        assert again.log == elastic_run.log

    def test_fixed_size_log_has_no_resize_entries(self, fixed_run):
        assert all(e[0] != "resize" for e in fixed_run.log)

    @pytest.mark.skipif(
        os.environ.get("REPRO_SKIP_PROCESS_TESTS") == "1",
        reason="process backend disabled in this environment",
    )
    def test_resize_bitwise_on_process_backend(self):
        fixed = run_supervised_session(
            build, size=3, checkpoint_every=20, backend="process",
            backend_options={"default_timeout": 30.0},
        )
        elastic = run_supervised_session(
            build, size=2, checkpoint_every=20, backend="process",
            resize=ResizePlan((ResizeRequest(1, 4), ResizeRequest(2, 3))),
            backend_options={"default_timeout": 30.0},
        )
        assert elastic.pool_sizes == (2, 4, 3)
        assert session_results_equal(fixed.results, elastic.results)


class TestControlRequestedResize:
    """A resize requested mid-epoch (through ``SessionControl``) is
    deferred to the next epoch boundary, then applied exactly once."""

    def test_mid_epoch_request_defers_to_boundary(self, fixed_run):
        control = SessionControl(poll_interval=0.001)
        fired = []

        def hook(rank, obs_handle):
            # obs_hook fires inside the running epoch-0 world — after
            # the supervisor consumed pending requests for this epoch —
            # so this is a genuine mid-epoch request.
            if not fired:
                fired.append(rank)
                control.request_resize(3)

        run = run_supervised_session(
            build, size=2, checkpoint_every=20, control=control,
            obs_enabled=True, obs_hook=hook, backend_options=OPTIONS,
        )
        assert fired, "obs hook never fired: test is vacuous"
        # Epoch 0 ran (and finished) at the original size; the request
        # landed at the next rebuild boundary and stuck from there on.
        assert run.pool_sizes[0] == 2
        assert run.pool_sizes[1:] == (3,) * (len(run.pool_sizes) - 1)
        assert run.resizes == ((1, 2, 3),)
        assert session_results_equal(fixed_run.results, run.results)
        assert control.pending_resize is None  # consumed, not dangling
        assert control.pool_size == 3
        assert control.resize_history() == [(1, 2, 3)]

    def test_boundary_request_applies_at_that_boundary(self, fixed_run):
        # A request queued before an epoch's gate is consumed at that
        # gate's rebuild (epoch 0 included: it overrides the start size).
        control = SessionControl()
        control.request_resize(3)
        run = run_supervised_session(
            build, size=2, checkpoint_every=20, control=control,
            backend_options=OPTIONS,
        )
        assert run.pool_sizes == (3,) * len(run.pool_sizes)
        assert run.resizes == ((0, 2, 3),)
        assert session_results_equal(fixed_run.results, run.results)

    def test_request_resize_rejects_below_one(self):
        control = SessionControl()
        with pytest.raises(ValueError, match="below 1"):
            control.request_resize(0)

    def test_latest_request_wins_single_slot(self):
        control = SessionControl()
        control.request_resize(2)
        control.request_resize(5)
        assert control.pending_resize == 5
        assert control.take_resize() == 5
        assert control.take_resize() is None


class TestCapacityErrors:
    """Shrink-below-1 and grow-above-capacity fail with pointed errors
    before any epoch runs."""

    def test_shrink_below_one_is_pointed(self):
        with pytest.raises(ValueError, match="below 1"):
            check_pool_size(0, "thread")

    def test_grow_above_thread_capacity_names_backend_and_cap(self):
        cap = world_capacity("thread")
        with pytest.raises(ValueError) as err:
            check_pool_size(cap + 1, "thread")
        assert "thread" in str(err.value)
        assert str(cap) in str(err.value)

    def test_plan_beyond_capacity_rejected_before_first_epoch(self):
        cap = world_capacity("thread")
        with pytest.raises(ValueError, match=str(cap)):
            run_supervised_session(
                build, size=2, checkpoint_every=20,
                resize=ResizePlan((ResizeRequest(1, cap + 1),)),
                backend_options=OPTIONS,
            )

    def test_plan_beyond_session_epochs_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            run_supervised_session(
                build, size=2, checkpoint_every=20,
                resize=ResizePlan((ResizeRequest(99, 3),)),
                backend_options=OPTIONS,
            )

    def test_world_capacity_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown"):
            world_capacity("slurm")


class TestCrashAsShrink:
    """A pool that keeps crashing past ``max_restarts`` sheds one rank
    under ``DegradePolicy(shrink_on_crash=True)`` — and stays bitwise."""

    def stubborn_plan(self):
        # Rank 2 crashes on every attempt of epoch 1's op range: the
        # restart budget can never clear it at pool size 3.
        return FaultPlan(
            "stubborn-rank2",
            crashes=(
                RankCrash(rank=2, at_op=30, attempt=0),
                RankCrash(rank=2, at_op=35, attempt=1),
            ),
        )

    def test_shrink_recovers_bitwise(self, fixed_run):
        run = run_supervised_session(
            build, size=3, checkpoint_every=20,
            plan=self.stubborn_plan(), max_restarts=0,
            degrade=DegradePolicy(shrink_on_crash=True),
            backend_options=OPTIONS,
        )
        shrinks = [e for e in run.log if e[0] == "shrink"]
        assert shrinks, "shrink never fired: test is vacuous"
        assert 2 in run.pool_sizes
        assert any(old == 3 and new == 2 for _, old, new in run.resizes)
        assert session_results_equal(fixed_run.results, run.results)

    def test_without_degrade_raises_enriched_error(self):
        with pytest.raises(ChaosUnrecoverable) as err:
            run_supervised_session(
                build, size=3, checkpoint_every=20,
                plan=self.stubborn_plan(), max_restarts=0,
                backend_options=OPTIONS,
            )
        exc = err.value
        assert exc.attempts >= 1
        assert exc.restarts >= 1
        assert any("InjectedCrash" in item[1] for item in exc.failure)
        assert "pool size 3" in str(exc)
        assert "InjectedCrash" in str(exc)

    def test_min_ranks_floor_stops_shrinking(self):
        # Every rank-0 attempt crashes; min_ranks=3 forbids shedding,
        # so the session must give up rather than shrink.
        plan = FaultPlan(
            "stubborn-rank0",
            crashes=(
                RankCrash(rank=0, at_op=30, attempt=0),
                RankCrash(rank=0, at_op=35, attempt=1),
            ),
        )
        with pytest.raises(ChaosUnrecoverable):
            run_supervised_session(
                build, size=3, checkpoint_every=20, plan=plan,
                max_restarts=0,
                degrade=DegradePolicy(shrink_on_crash=True, min_ranks=3),
                backend_options=OPTIONS,
            )

    def test_degrade_policy_validates_min_ranks(self):
        with pytest.raises(ValueError, match="min_ranks"):
            DegradePolicy(min_ranks=0)


class TestElasticObsCounters:
    """The supervisor's own bookkeeping lands in ``recovery.*``."""

    def test_resize_and_checkpoint_counters(self):
        from repro.obs import Obs

        obs = Obs(enabled=True)
        run = run_supervised_session(
            build, size=2, checkpoint_every=20,
            resize=ResizePlan((ResizeRequest(1, 3),)),
            obs=obs, backend_options=OPTIONS,
        )
        counters = {
            name: c.value for name, c in obs.metrics.counters.items()
        }
        assert counters.get("recovery.resizes") == 1
        assert counters.get("recovery.checkpoints") == run.checkpoints

    def test_shrink_counter(self):
        from repro.obs import Obs

        obs = Obs(enabled=True)
        plan = FaultPlan(
            "stubborn-rank2",
            crashes=(
                RankCrash(rank=2, at_op=30, attempt=0),
                RankCrash(rank=2, at_op=35, attempt=1),
            ),
        )
        run_supervised_session(
            build, size=3, checkpoint_every=20, plan=plan, max_restarts=0,
            degrade=DegradePolicy(shrink_on_crash=True),
            obs=obs, backend_options=OPTIONS,
        )
        counters = {
            name: c.value for name, c in obs.metrics.counters.items()
        }
        assert counters.get("recovery.shrinks", 0) >= 1
        assert counters.get("recovery.restarts", 0) >= 1


class TestDriverFlight:
    """Resize/shrink events land in the driver-side flight stream."""

    def test_resize_events_dumped(self, tmp_path):
        run_supervised_session(
            build, size=2, checkpoint_every=20,
            resize=ResizePlan((ResizeRequest(1, 3),)),
            flight_dump=str(tmp_path), backend_options=OPTIONS,
        )
        path = tmp_path / "driver-elastic.jsonl"
        assert path.exists()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        resizes = [e for e in events if e["event"] == "resize"]
        assert resizes and resizes[0]["old"] == 2 and resizes[0]["new"] == 3
