"""End-to-end runs on the process backend (real OS processes).

The thread backend covers correctness cheaply; these tests prove the
whole stack — pickled quote batches, numpy payloads, ResultStore
gathering, workflow EOS — survives genuine process boundaries.
"""

import pytest

from repro import mpi
from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.runner import SequentialBacktester
from repro.marketminer.scheduler import WorkflowRunner
from repro.marketminer.session import build_figure1_workflow
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

pytestmark = pytest.mark.slow

PARAMS = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
SECONDS = 23_400 // 16


def _market():
    cfg = SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9)
    return SyntheticMarket(default_universe(4), cfg, seed=33)


def _backtest_spmd(comm):
    market = _market()
    provider = BarProvider(market, TimeGrid(30, trading_seconds=SECONDS))
    return DistributedBacktester(provider).run(
        comm, [(0, 1), (2, 3)], [PARAMS], [0]
    )


def _pipeline_spmd(comm):
    market = _market()
    grid_time = TimeGrid(30, trading_seconds=SECONDS)
    wf = build_figure1_workflow(
        market, grid_time, [(0, 1), (2, 3)], [PARAMS], n_corr_engines=2
    )
    return WorkflowRunner(wf).run(comm)


class TestProcessBackendEndToEnd:
    def test_distributed_backtest_matches_sequential(self):
        results = mpi.run_spmd(_backtest_spmd, size=2, backend="process")
        market = _market()
        provider = BarProvider(market, TimeGrid(30, trading_seconds=SECONDS))
        ref = SequentialBacktester(provider).run(
            [(0, 1), (2, 3)], [PARAMS], [0]
        )
        assert results[0] == ref
        assert results[1] == ref

    def test_pipeline_runs_across_processes(self):
        results = mpi.run_spmd(_pipeline_spmd, size=3, backend="process")
        res = results[0]
        smax = TimeGrid(30, trading_seconds=SECONDS).smax
        assert res["bar_accumulator"]["bars_emitted"] == smax
        assert res["order_sink"]["open_pairs_at_close"] == 0
        # Every rank sees identical merged results.
        assert results[1]["pair_trading"]["trades"] == res["pair_trading"]["trades"]
