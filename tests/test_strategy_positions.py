"""Tests for position sizing and trade returns (paper steps 4 and 6)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.strategy.positions import (
    PairPosition,
    cash_neutral_shares,
    position_return,
)

price = st.floats(min_value=0.5, max_value=2000.0, allow_nan=False)


class TestCashNeutralShares:
    def test_paper_msft_ibm_example(self):
        # "buying MSFT at $30 and selling IBM at $130, a ratio of 5:1 would
        # give us an allocation of $150 long and $130 short"
        n_long, n_short = cash_neutral_shares(30.0, 130.0)
        assert (n_long, n_short) == (5, 1)
        assert n_long * 30.0 == pytest.approx(150.0)

    def test_long_expensive_uses_floor(self):
        # Pi > Pj, long i short j: ratio 1 : floor(Pi/Pj)
        n_long, n_short = cash_neutral_shares(130.0, 30.0)
        assert (n_long, n_short) == (1, math.floor(130 / 30))

    def test_short_expensive_uses_ceil(self):
        n_long, n_short = cash_neutral_shares(30.0, 130.0)
        assert n_long == math.ceil(130 / 30)

    def test_equal_prices(self):
        assert cash_neutral_shares(50.0, 50.0) == (1, 1)

    @given(price, price)
    def test_always_slightly_long(self, p_long, p_short):
        n_long, n_short = cash_neutral_shares(p_long, p_short)
        assert n_long >= 1 and n_short >= 1
        long_value = n_long * p_long
        short_value = n_short * p_short
        assert long_value >= short_value - 1e-9

    @given(price, price)
    def test_imbalance_bounded_by_one_cheap_share(self, p_long, p_short):
        n_long, n_short = cash_neutral_shares(p_long, p_short)
        imbalance = n_long * p_long - n_short * p_short
        assert imbalance <= min(p_long, p_short) + 1e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cash_neutral_shares(0.0, 10.0)
        with pytest.raises(ValueError):
            cash_neutral_shares(10.0, -1.0)


def mk_position(**overrides):
    defaults = dict(
        entry_s=10,
        long_leg=0,
        n_long=5,
        n_short=1,
        entry_price_long=30.0,
        entry_price_short=130.0,
        entry_spread=-100.0,
        retracement_level=-95.0,
        retracement_direction=+1,
    )
    defaults.update(overrides)
    return PairPosition(**defaults)


class TestPairPosition:
    def test_basis(self):
        # Paper example: total cost 5*$30 + 1*$130 = $280.
        assert mk_position().basis == pytest.approx(280.0)

    def test_retracement_hit_up(self):
        p = mk_position(retracement_level=-95.0, retracement_direction=+1)
        assert not p.retracement_hit(-96.0)
        assert p.retracement_hit(-95.0)
        assert p.retracement_hit(-90.0)

    def test_retracement_hit_down(self):
        p = mk_position(retracement_level=-95.0, retracement_direction=-1)
        assert not p.retracement_hit(-94.0)
        assert p.retracement_hit(-95.0)
        assert p.retracement_hit(-99.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"long_leg": 2},
            {"n_long": 0},
            {"n_short": -1},
            {"entry_price_long": 0.0},
            {"retracement_direction": 0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises((ValueError, TypeError)):
            mk_position(**overrides)


class TestPositionReturn:
    def test_paper_example_profit(self):
        # Long 5 MSFT @30, short 1 IBM @130; exit MSFT 29, IBM 120:
        # pi = (29-30)*5 + (130-120)*1 = $5; formula return = 5/280.
        p = mk_position()
        r = position_return(p, exit_price_long=29.0, exit_price_short=120.0)
        assert r == pytest.approx(5.0 / 280.0)

    def test_flat_exit_zero_return(self):
        p = mk_position()
        assert position_return(p, 30.0, 130.0) == 0.0

    def test_long_up_short_down_both_profit(self):
        p = mk_position()
        r = position_return(p, 31.0, 125.0)
        assert r == pytest.approx((1.0 * 5 + 5.0 * 1) / 280.0)

    def test_symmetric_loss(self):
        p = mk_position()
        gain = position_return(p, 31.0, 130.0)
        loss = position_return(p, 29.0, 130.0)
        assert gain == pytest.approx(-loss)

    def test_rejects_nonpositive_exit(self):
        with pytest.raises(ValueError):
            position_return(mk_position(), 0.0, 100.0)

    @given(
        p_long=price, p_short=price,
        move_long=st.floats(-0.05, 0.05), move_short=st.floats(-0.05, 0.05),
    )
    def test_return_bounded_by_gross_move(self, p_long, p_short, move_long, move_short):
        n_long, n_short = cash_neutral_shares(p_long, p_short)
        pos = PairPosition(
            entry_s=0, long_leg=0, n_long=n_long, n_short=n_short,
            entry_price_long=p_long, entry_price_short=p_short,
            entry_spread=p_long - p_short, retracement_level=0.0,
            retracement_direction=1,
        )
        r = position_return(
            pos, p_long * (1 + move_long), p_short * (1 + move_short)
        )
        assert abs(r) <= abs(move_long) + abs(move_short) + 1e-9
