"""Tests for repro.taq.universe."""

import pytest

from repro.taq.universe import Universe, default_universe


class TestDefaultUniverse:
    def test_sixty_one_stocks(self):
        # "TAQ bid-ask data for 61 highly liquid US stocks"
        assert len(default_universe()) == 61

    def test_1830_pairs(self):
        # "the results presented here are based on C(61,2) = 1830 pairs"
        assert default_universe().n_pairs() == 1830
        assert len(list(default_universe().pairs())) == 1830

    def test_contains_table2_tickers(self):
        u = default_universe()
        for sym in ("NVDA", "ORCL", "SLB", "TWX", "BK"):
            assert sym in u.symbols

    def test_contains_fundamental_pairs(self):
        # The paper's named fundamental pairs, same sector each.
        u = default_universe()
        for a, b in (("XOM", "CVX"), ("UPS", "FDX"), ("WMT", "TGT")):
            assert u.sector_of(a) == u.sector_of(b)

    def test_small_subsets_contain_sector_pairs(self):
        for n in (4, 6, 8, 10):
            u = default_universe(n)
            sectors = list(u.sectors)
            assert any(sectors.count(s) >= 2 for s in set(sectors)), (
                f"subset({n}) has no same-sector pair"
            )

    def test_subset_preserves_order(self):
        full = default_universe()
        sub = default_universe(10)
        assert sub.symbols == full.symbols[:10]

    def test_unique_symbols(self):
        u = default_universe()
        assert len(set(u.symbols)) == len(u.symbols)

    def test_positive_base_prices(self):
        assert all(p > 0 for p in default_universe().base_prices)


class TestUniverse:
    def test_index_of(self):
        u = default_universe()
        assert u.symbols[u.index_of("MSFT")] == "MSFT"

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError, match="ZZZZ"):
            default_universe().index_of("ZZZZ")

    def test_pairs_are_ordered_unique(self):
        u = default_universe(5)
        pairs = list(u.pairs())
        assert len(pairs) == 10
        assert all(i < j for i, j in pairs)
        assert len(set(pairs)) == 10

    def test_subset_bounds(self):
        with pytest.raises(ValueError):
            default_universe(0)
        with pytest.raises(ValueError):
            default_universe(62)

    def test_rejects_duplicate_symbols(self):
        with pytest.raises(ValueError, match="unique"):
            Universe(("A", "A"), ("x", "x"), (1.0, 1.0))

    def test_rejects_misaligned_fields(self):
        with pytest.raises(ValueError, match="align"):
            Universe(("A", "B"), ("x",), (1.0, 2.0))

    def test_rejects_nonpositive_price(self):
        with pytest.raises(ValueError, match="positive"):
            Universe(("A",), ("x",), (0.0,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Universe((), (), ())
