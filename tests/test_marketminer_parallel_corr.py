"""Tests for the multi-engine 'Parallel Correlation Engine' pipeline."""

import numpy as np
import pytest

from repro.marketminer.components.correlation import CorrelationEngineComponent
from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

PARAMS = StrategyParams(m=30, w=15, y=5, rt=15, hp=10, st=5, d=0.002)


@pytest.fixture(scope="module")
def setup():
    cfg = SyntheticMarketConfig(trading_seconds=23_400 // 4, quote_rate=0.95)
    market = SyntheticMarket(default_universe(6), cfg, seed=21)
    grid = TimeGrid(30, trading_seconds=cfg.trading_seconds)
    pairs = list(market.universe.pairs())
    return market, grid, pairs


class TestBlockEngineComponent:
    def test_pairs_validated(self):
        with pytest.raises(ValueError, match="invalid pair"):
            CorrelationEngineComponent(4, 10, pairs=[(0, 4)])
        with pytest.raises(ValueError, match="invalid pair"):
            CorrelationEngineComponent(4, 10, pairs=[(1, 1)])
        with pytest.raises(ValueError, match="duplicate"):
            CorrelationEngineComponent(4, 10, pairs=[(0, 1), (1, 0)])

    def test_pairs_normalised(self):
        comp = CorrelationEngineComponent(4, 10, pairs=[(3, 1)])
        assert comp.pairs == [(1, 3)]


@pytest.mark.parametrize("n_engines", [2, 3, 5])
class TestEquivalence:
    def test_matches_single_engine(self, setup, n_engines):
        market, grid, pairs = setup
        single = run_figure1_session(
            build_figure1_workflow(market, grid, pairs, [PARAMS]), size=2
        )
        multi = run_figure1_session(
            build_figure1_workflow(
                market, grid, pairs, [PARAMS], n_corr_engines=n_engines
            ),
            size=4,
        )
        assert single["pair_trading"]["trades"] == multi["pair_trading"]["trades"]
        # The block engines collectively emitted the same interval count.
        single_count = single["correlation"]["matrices_emitted"]
        for name, res in multi.items():
            if name.startswith("correlation_"):
                assert res["matrices_emitted"] == single_count


class TestTopology:
    def test_engine_count_capped_by_pairs(self, setup):
        market, grid, _ = setup
        wf = build_figure1_workflow(
            market, grid, [(0, 1), (2, 3)], [PARAMS], n_corr_engines=5
        )
        engines = [n for n in wf.components if n.startswith("correlation")]
        assert len(engines) == 2  # idle engines dropped

    def test_rejects_zero_engines(self, setup):
        market, grid, pairs = setup
        with pytest.raises(ValueError, match="n_corr_engines"):
            build_figure1_workflow(
                market, grid, pairs, [PARAMS], n_corr_engines=0
            )

    def test_block_engines_spread_over_ranks(self, setup):
        from repro.marketminer.scheduler import WorkflowRunner

        market, grid, pairs = setup
        wf = build_figure1_workflow(
            market, grid, pairs, [PARAMS], n_corr_engines=3
        )
        rank_map = WorkflowRunner(wf).rank_map(3)
        engine_ranks = {
            rank_map.rank_of(n)
            for n in wf.components
            if n.startswith("correlation_")
        }
        assert len(engine_ranks) == 3  # heavy components spread out


class TestJoinErrors:
    def test_overlapping_blocks_rejected(self, setup):
        """Two engines claiming the same pair is a wiring bug; the join
        detects it rather than silently double-counting."""
        from repro import mpi
        from repro.marketminer.components.strategy import PairTradingComponent
        from repro.marketminer.graph import Workflow
        from repro.marketminer.scheduler import WorkflowRunner
        from repro.mpi.inproc import SpmdFailure
        from tests.test_marketminer_graph import Source

        class TwoBlocks(Source):
            def __init__(self, name):
                super().__init__(name=name)

            def generate(self, ctx):
                ctx.emit("out", (0, {(0, 1): 0.5}))

        wf = Workflow()
        wf.add(TwoBlocks("block_a"))
        wf.add(TwoBlocks("block_b"))
        strat = PairTradingComponent(
            pairs=[(0, 1)], grid=[PARAMS], smax=40, m=30
        )
        wf.add(strat)

        class Closes(Source):
            def generate(self, ctx):
                ctx.emit("out", (0, np.array([1.0, 2.0])))

        wf.add(Closes(name="closes_src"))
        wf.connect("closes_src", "out", "pair_trading", "closes")
        wf.connect("block_a", "out", "pair_trading", "corr")
        wf.connect("block_b", "out", "pair_trading", "corr")

        def spmd(comm):
            return WorkflowRunner(wf).run(comm)

        with pytest.raises(SpmdFailure, match="overlap"):
            mpi.run_spmd(spmd, size=1)
