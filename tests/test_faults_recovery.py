"""Recovery and determinism suite for the self-healing runtime.

Asserts the headline invariant — a supervised Figure-1 session recovers
from any recoverable seeded fault plan with results bitwise-identical to
a fault-free run — plus the surrounding guarantees: checkpoint/restart
is invisible when nothing fails, duplicated envelopes deduplicate live,
each rank's crash is survivable individually, the chaos log is
deterministic (same plan ⇒ same log, on either backend), the process
backend detects dead and stalled ranks, and the degraded-mode policies
(stale correlation service, strategy flatten) behave as specified.
"""

import os
import time

import numpy as np
import pytest

from repro.faults import (
    ChaosUnrecoverable,
    DegradePolicy,
    FaultPlan,
    RankCrash,
    StaleCorr,
    named_plan,
    run_supervised_session,
    session_results_equal,
)
from repro.marketminer.component import Context
from repro.marketminer.components.correlation import CorrelationEngineComponent
from repro.marketminer.components.strategy import PairTradingComponent
from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.mpi.procs import ProcessBackend, RemoteRankError
from repro.obs import Obs
from repro.strategy.engine import TradeReason
from repro.strategy.params import StrategyParams
from repro.strategy.positions import PairPosition
from repro.taq.synthetic import (
    SyntheticMarket,
    SyntheticMarketConfig,
    default_universe,
)
from repro.util.timeutil import TimeGrid

SECONDS = 23_400 // 16
PARAMS = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
PAIRS = [(0, 1), (2, 3)]


def build():
    """Zero-argument Figure-1 workflow factory (fresh market per call)."""
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=33,
    )
    grid_time = TimeGrid(30, trading_seconds=SECONDS)
    return build_figure1_workflow(market, grid_time, PAIRS, [PARAMS])


@pytest.fixture(scope="module")
def clean_results():
    return run_figure1_session(build(), size=3, default_timeout=10.0)


class TestSupervisedBaseline:
    def test_supervision_is_invisible_without_faults(self, clean_results):
        sup = run_supervised_session(
            build, size=3, backend_options={"default_timeout": 10.0}
        )
        assert sup.restarts == 0
        assert sup.checkpoints == 0
        assert session_results_equal(sup.results, clean_results)

    def test_checkpointing_is_invisible_without_faults(self, clean_results):
        sup = run_supervised_session(
            build,
            size=3,
            checkpoint_every=20,
            backend_options={"default_timeout": 10.0},
        )
        assert sup.restarts == 0
        assert sup.checkpoints >= 1
        assert session_results_equal(sup.results, clean_results)
        # One "run" log entry per epoch, all clean.
        runs = [entry for entry in sup.log if entry[0] == "run"]
        assert len(runs) == sup.checkpoints + 1


class TestLiveDedup:
    def test_duplicate_plan_deduplicates_in_flight(self, clean_results):
        results = run_figure1_session(
            build(),
            size=3,
            fault_plan=named_plan("dup"),
            default_timeout=10.0,
        )
        faults = results["_faults"]
        events = [event for rank in faults.values() for event in rank]
        assert any(event[0] == "duplicate" for event in events)
        assert any(event[0] == "dedup" for event in events)
        assert session_results_equal(results, clean_results)


class TestPlanRecovery:
    @pytest.mark.parametrize(
        "name,min_restarts",
        [
            ("drop-dup", 1),
            ("crash-mid", 1),
            ("delay", 1),
            ("stall", 0),  # 0.5s stall < 2s deadline: absorbed, no restart
        ],
    )
    def test_named_plan_recovers_bitwise(
        self, name, min_restarts, clean_results
    ):
        plan = named_plan(name, size=3, stall_seconds=0.5)
        sup = run_supervised_session(
            build,
            size=3,
            plan=plan,
            checkpoint_every=20,
            backend_options={"default_timeout": 2.0},
        )
        assert sup.restarts >= min_restarts
        assert session_results_equal(sup.results, clean_results)

    def test_stall_past_deadline_restarts_and_recovers(self, clean_results):
        # A 3s stall against a 1s recv deadline cannot be absorbed: peers
        # time out, the epoch restarts, and the attempt-scoped stall does
        # not re-fire on the retry.
        plan = named_plan("stall", size=3, stall_seconds=3.0)
        sup = run_supervised_session(
            build,
            size=3,
            plan=plan,
            checkpoint_every=20,
            backend_options={"default_timeout": 1.0},
        )
        assert sup.restarts >= 1
        assert session_results_equal(sup.results, clean_results)

    @pytest.mark.parametrize("rank", [0, 1, 2])
    def test_each_rank_crash_recovers(self, rank, clean_results):
        plan = FaultPlan(
            name=f"crash-rank{rank}",
            crashes=(RankCrash(rank=rank, at_op=30),),
        )
        sup = run_supervised_session(
            build,
            size=3,
            plan=plan,
            checkpoint_every=20,
            backend_options={"default_timeout": 2.0},
        )
        assert sup.restarts >= 1
        assert session_results_equal(sup.results, clean_results)

    def test_exhausted_restart_budget_raises(self):
        # The same rank crashes on every attempt: never recoverable.
        plan = FaultPlan(
            name="always-crash",
            crashes=tuple(
                RankCrash(rank=0, at_op=5, attempt=a) for a in range(4)
            ),
        )
        with pytest.raises(ChaosUnrecoverable):
            run_supervised_session(
                build,
                size=3,
                plan=plan,
                checkpoint_every=20,
                max_restarts=1,
                backend_options={"default_timeout": 2.0},
            )


class TestChaosLogDeterminism:
    def test_same_plan_same_log(self, clean_results):
        runs = [
            run_supervised_session(
                build,
                size=3,
                plan=named_plan("crash-mid"),
                checkpoint_every=20,
                backend_options={"default_timeout": 2.0},
            )
            for _ in range(2)
        ]
        assert runs[0].log == runs[1].log
        assert any(entry[0] == "restart" for entry in runs[0].log)
        assert session_results_equal(runs[0].results, clean_results)
        assert session_results_equal(runs[1].results, clean_results)

    @pytest.mark.slow
    def test_log_identical_across_backends(self, clean_results):
        plan = named_plan("crash-mid")
        thread = run_supervised_session(
            build,
            size=3,
            plan=plan,
            checkpoint_every=20,
            backend_options={"default_timeout": 2.0},
        )
        proc = run_supervised_session(
            build,
            size=3,
            backend="process",
            plan=plan,
            checkpoint_every=20,
            backend_options={"default_timeout": 2.0},
        )
        assert thread.log == proc.log
        assert thread.restarts == proc.restarts == 1
        assert session_results_equal(proc.results, clean_results)


class TestProcessLiveness:
    def test_dead_rank_detected(self):
        backend = ProcessBackend(default_timeout=2.0)

        def prog(comm):
            if comm.rank == 1:
                os._exit(13)
            return comm.recv(source=1, tag=0, timeout=2.0)

        with pytest.raises(RemoteRankError) as excinfo:
            backend.run(prog, size=2)
        exc_type, message, _ = excinfo.value.errors[1]
        assert exc_type == "RankDied"
        assert "exited with code 13" in message

    def test_stalled_rank_terminated(self):
        backend = ProcessBackend(default_timeout=5.0, heartbeat_timeout=0.5)

        def prog(comm):
            if comm.rank == 1:
                time.sleep(30)  # wedged outside the communicator: no beats
                return None
            return comm.recv(source=1, tag=0, timeout=2.0)

        with pytest.raises(RemoteRankError) as excinfo:
            backend.run(prog, size=2)
        exc_type, message, _ = excinfo.value.errors[1]
        assert exc_type == "RankStalled"
        assert "terminated" in message


# -- degraded modes ---------------------------------------------------------


def collecting_context(name, sink, obs=None):
    return Context(name, lambda _name, port, payload: sink.append((port, payload)), obs)


class TestCorrelationDegraded:
    def drive(self, comp, rows):
        sink = []
        obs = Obs(enabled=True)
        ctx = collecting_context(comp.name, sink, obs)
        for s, row in rows:
            comp.on_message(ctx, "returns", (s, np.asarray(row)))
        return sink, obs

    ROWS = {
        0: [0.01, 0.02],
        1: [0.02, -0.01],
        4: [0.03, 0.05],
    }

    def test_gap_serves_stale_with_ages(self):
        comp = CorrelationEngineComponent(2, 2, degrade=DegradePolicy())
        sink, obs = self.drive(comp, sorted(self.ROWS.items()))
        intervals = [s for _, (s, _) in sink]
        assert intervals == [1, 2, 3, 4]
        stale = {s: value for _, (s, value) in sink if isinstance(value, StaleCorr)}
        assert sorted(stale) == [2, 3]
        assert stale[2].age == 1 and stale[3].age == 2
        # The stale payload is the last-good matrix, not a recomputation.
        assert np.array_equal(stale[2].value, sink[0][1][1])
        assert comp.result()["stale_served"] == 2
        assert obs.metrics.counter("pipeline.correlation.stale_served").value == 2

    def test_max_stale_age_caps_service(self):
        comp = CorrelationEngineComponent(
            2, 2, degrade=DegradePolicy(max_stale_age=1)
        )
        sink, _ = self.drive(comp, sorted(self.ROWS.items()))
        intervals = [s for _, (s, _) in sink]
        assert intervals == [1, 2, 4]  # age-2 interval 3 propagates as a gap
        assert comp.result()["stale_served"] == 1

    def test_warmup_gap_serves_nothing(self):
        comp = CorrelationEngineComponent(2, 2, degrade=DegradePolicy())
        sink, _ = self.drive(comp, [(0, self.ROWS[0]), (3, self.ROWS[4])])
        # No good matrix existed before the gap: nothing stale to serve.
        assert [s for _, (s, _) in sink] == [3]
        assert comp.result()["stale_served"] == 0

    def test_no_policy_keeps_prefault_behaviour(self):
        comp = CorrelationEngineComponent(2, 2)
        sink, _ = self.drive(comp, sorted(self.ROWS.items()))
        assert [s for _, (s, _) in sink] == [1, 4]
        assert "stale_served" not in comp.result()


class TestStrategyDegraded:
    def make(self, degrade):
        comp = PairTradingComponent(
            pairs=[(0, 1)], grid=[PARAMS], smax=30, m=PARAMS.m,
            degrade=degrade,
        )
        sink = []
        obs = Obs(enabled=True)
        ctx = collecting_context(comp.name, sink, obs)
        # Establish the head interval; strategies exist afterwards.
        comp.on_message(ctx, "closes", (0, np.array([100.0, 99.0])))
        # Force an open position (entry signals need a long warm-up).
        strat = comp._strategies[((0, 1), 0)]
        strat._position = PairPosition(
            entry_s=0, long_leg=0, n_long=1, n_short=1,
            entry_price_long=100.0, entry_price_short=99.0,
            entry_spread=1.0, retracement_level=1e9,
            retracement_direction=1,
        )
        return comp, strat, sink, ctx

    def test_flatten_closes_open_position_as_degraded(self):
        comp, strat, sink, ctx = self.make(DegradePolicy(flatten=True))
        comp.on_message(ctx, "corr", (1, StaleCorr(np.eye(2), age=1)))
        comp.on_message(ctx, "closes", (1, np.array([101.0, 98.0])))
        trades = [payload for port, payload in sink if port == "trades"]
        assert len(trades) == 1
        pair, k, trade = trades[0]
        assert pair == (0, 1) and trade.reason is TradeReason.DEGRADED
        orders = [payload for port, payload in sink if port == "orders"]
        assert [kind for kind, _ in orders] == ["exit"]
        assert strat.open_position is None
        assert comp.result()["degraded_intervals"] == 1

    def test_degraded_intervals_refuse_new_entries(self):
        comp, strat, sink, ctx = self.make(DegradePolicy(flatten=True))
        for s in range(1, 5):
            comp.on_message(ctx, "corr", (s, StaleCorr(np.eye(2), age=s)))
            comp.on_message(ctx, "closes", (s, np.array([101.0, 98.0])))
        orders = [payload for port, payload in sink if port == "orders"]
        assert [kind for kind, _ in orders] == ["exit"]  # flatten only, ever
        assert strat.open_position is None
        assert comp.result()["degraded_intervals"] == 4

    def test_no_flatten_policy_keeps_position(self):
        comp, strat, sink, ctx = self.make(DegradePolicy(flatten=False))
        comp.on_message(ctx, "corr", (1, StaleCorr(np.eye(2), age=1)))
        comp.on_message(ctx, "closes", (1, np.array([101.0, 98.0])))
        assert [payload for port, payload in sink if port == "trades"] == []
        assert strat.open_position is not None
        assert comp.result()["degraded_intervals"] == 1
