"""End-to-end HTTP tests: real sockets, real threads, ephemeral port.

Every test drives the actual :class:`~repro.serve.http.ServeHTTPServer`
through ``http.client`` — no handler-level shortcuts — so the wire
format, auth, content types and status codes are what a tenant would
see.  The module-scoped server is shared; tests use distinct session
ids and users to stay independent.
"""

import json
import threading
import time

import pytest

from repro.obs import Obs
from repro.serve import ServeApp, SessionManager, make_server
from repro.store import StoreReader, ingest_synthetic
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe

TOKEN = "test-token"

FIG1_SPEC = {"seconds": 1200, "ranks": 2, "checkpoint_every": 20}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=1800),
        seed=13,
    )
    ingest_synthetic(root, market, n_days=2, n_shards=2, block_rows=512)
    manager = SessionManager(max_live=6, retain=32)
    app = ServeApp(
        manager, token=TOKEN, obs=Obs(enabled=True),
        store=StoreReader(root),
    )
    srv = make_server(app)
    threading.Thread(target=srv.serve_forever, daemon=True).start()
    yield srv
    manager.kill_all()
    srv.shutdown()
    srv.server_close()


@pytest.fixture(scope="module")
def client(server):
    import http.client

    host, port = server.server_address[:2]

    def request(method, path, body=None, token=TOKEN):
        conn = http.client.HTTPConnection(host, port, timeout=30)
        headers = {}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        content_type = resp.getheader("Content-Type", "")
        conn.close()
        if content_type.startswith("application/json"):
            return resp.status, json.loads(raw)
        return resp.status, raw.decode()

    return request


def wait_done(client, sid, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = client("GET", f"/sessions/{sid}")
        assert status == 200
        if body["state"] in ("done", "failed", "killed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"session {sid} never terminated")


class TestAuth:
    def test_missing_token_is_401(self, client):
        status, body = client("GET", "/sessions", token=None)
        assert status == 401 and "bearer token" in body["error"]

    def test_wrong_token_is_401(self, client):
        assert client("GET", "/sessions", token="wr0ng")[0] == 401

    def test_health_is_open(self, client):
        status, body = client("GET", "/health", token=None)
        assert status == 200
        assert body["status"] == "ok" and body["store"] is True


class TestRouting:
    def test_unknown_path_404_lists_routes(self, client):
        status, body = client("GET", "/nope")
        assert status == 404 and "GET /health" in body["error"]

    def test_wrong_method_is_405(self, client):
        status, body = client("PUT", "/sessions")
        assert status == 405 and "POST" in body["error"]

    def test_unknown_query_param_is_400_with_allow_list(self, client):
        status, body = client("GET", "/telemetry?depth=3")
        assert status == 400
        assert "'depth'" in body["error"] and "window" in body["error"]

    def test_non_integer_param_is_400(self, client):
        status, body = client("GET", "/sessions/x/audit?limit=soon")
        assert status == 400 and "must be an integer" in body["error"]

    def test_missing_body_is_400(self, client):
        status, body = client("POST", "/sessions", body=None)
        assert status == 400 and "JSON body" in body["error"]

    def test_malformed_json_body_is_400(self, server):
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request(
            "POST", "/sessions", body=b"{not json",
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        resp = conn.getresponse()
        body = json.loads(resp.read())
        conn.close()
        assert resp.status == 400
        assert "not valid JSON" in body["error"]


class TestSessionRoutes:
    def test_submit_status_audit_command_roundtrip(self, client):
        status, body = client(
            "POST", "/sessions",
            {"id": "h1", "kind": "figure1", "spec": FIG1_SPEC,
             "user": "alice"},
        )
        assert status == 201 and body["id"] == "h1"
        status, listing = client("GET", "/sessions")
        assert status == 200
        assert "h1" in {s["id"] for s in listing["sessions"]}
        final = wait_done(client, "h1")
        assert final["state"] == "done", final["error"]
        status, audit = client("GET", "/sessions/h1/audit?limit=10")
        assert status == 200
        assert audit["entries"][0]["actor"] == "alice"
        status, body = client("POST", "/sessions/h1/pause")
        assert status == 409  # terminal session: dead, not a hang
        status, positions = client("GET", "/sessions/h1/positions")
        assert status == 200 and positions["epoch"] == 0
        status, signals = client("GET", "/sessions/h1/signals?limit=5")
        assert status == 200 and len(signals["signals"]) <= 5

    def test_submit_validation_is_pointed(self, client):
        status, body = client("POST", "/sessions", {"id": "x"})
        assert status == 400 and "'kind'" in body["error"]
        status, body = client(
            "POST", "/sessions", {"id": "x", "kind": "figure1", "nope": 1}
        )
        assert status == 400 and "unknown body key" in body["error"]
        status, body = client(
            "POST", "/sessions",
            {"id": "x", "kind": "figure1", "spec": {"seconds": 10}},
        )
        assert status == 400 and ">= 1200" in body["error"]

    def test_duplicate_submit_is_409(self, client):
        client("POST", "/sessions",
               {"id": "h2", "kind": "backtest",
                "spec": {"days": 1, "symbols": 3, "levels": 1}})
        status, body = client(
            "POST", "/sessions", {"id": "h2", "kind": "backtest"}
        )
        assert status == 409 and "already exists" in body["error"]
        wait_done(client, "h2")

    def test_pause_kill_via_http(self, client):
        client("POST", "/sessions",
               {"id": "h3", "kind": "figure1",
                "spec": {"seconds": 4800, "ranks": 2,
                         "checkpoint_every": 10}})
        status, body = client("POST", "/sessions/h3/pause?actor=ops")
        assert status == 202
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client("GET", "/sessions/h3")[1]["state"] == "paused":
                break
            time.sleep(0.05)
        status, body = client("DELETE", "/sessions/h3?actor=ops")
        assert status == 202
        final = wait_done(client, "h3", timeout=15.0)
        assert final["state"] == "killed"
        ops_entries = [
            e for e in client("GET", "/sessions/h3/audit")[1]["entries"]
            if e["actor"] == "ops"
        ]
        assert {e["op"] for e in ops_entries} == {"pause", "kill"}

    def test_resize_via_http(self, client):
        client("POST", "/sessions",
               {"id": "h4", "kind": "figure1",
                "spec": {"seconds": 4800, "ranks": 2,
                         "checkpoint_every": 10}})
        # Missing and malformed targets are pointed 400s.
        status, body = client("POST", "/sessions/h4/resize?actor=alice")
        assert status == 400 and "target" in body["error"]
        status, body = client(
            "POST", "/sessions/h4/resize?actor=alice&target=zero"
        )
        assert status == 400
        status, body = client(
            "POST", "/sessions/h4/resize?actor=alice&target=99"
        )
        assert status == 400 and "1..8" in body["error"]
        # A well-formed resize queues (202) and lands at the next epoch
        # boundary, surfacing in the status pool block.
        status, body = client(
            "POST", "/sessions/h4/resize?actor=alice&target=3"
        )
        assert status == 202
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            pool = client("GET", "/sessions/h4")[1]["pool"]
            if pool["resizes"]:
                break
            time.sleep(0.05)
        assert pool["size"] == 3 and pool["resizes"][-1][1:] == [2, 3]
        client("DELETE", "/sessions/h4?actor=ops")
        wait_done(client, "h4", timeout=15.0)

    def test_resize_backtest_is_409(self, client):
        client("POST", "/sessions",
               {"id": "h5", "kind": "backtest",
                "spec": {"days": 1, "symbols": 4, "levels": 1}})
        status, body = client(
            "POST", "/sessions/h5/resize?actor=bob&target=3"
        )
        assert status == 409 and "figure1" in body["error"]
        wait_done(client, "h5")

    def test_unknown_session_is_404(self, client):
        assert client("GET", "/sessions/ghost")[0] == 404
        assert client("POST", "/sessions/ghost/kill")[0] == 404

    def test_unknown_command_is_400(self, client):
        assert client("POST", "/sessions/ghost/explode")[0] == 400


class TestWatchlistRoutes:
    def test_put_get_roundtrip(self, client):
        status, body = client(
            "PUT", "/users/carol/watchlist", {"symbols": ["XOM", "CVX"]}
        )
        assert status == 200
        status, body = client("GET", "/users/carol/watchlist")
        assert status == 200 and body["symbols"] == ["XOM", "CVX"]

    def test_bad_body_is_400(self, client):
        status, body = client("PUT", "/users/carol/watchlist", {"nope": 1})
        assert status == 400 and "symbols" in body["error"]


class TestTelemetryRoutes:
    def test_telemetry_reports_server_and_sessions(self, client):
        status, body = client("GET", "/telemetry")
        assert status == 200
        hists = body["server"]["histograms"]
        assert any(k.startswith("serve.http.") for k in hists)
        sample = next(iter(hists.values()))
        assert {"count", "sum", "p50", "p95", "p99"} <= set(sample)

    def test_metrics_is_prometheus_text(self, client):
        status, text = client("GET", "/metrics")
        assert status == 200 and isinstance(text, str)
        assert "serve_http_requests" in text


class TestStoreRoutes:
    def test_days_lists_manifest(self, client):
        status, body = client("GET", "/store/days")
        assert status == 200
        assert body["days"] == [0, 1] and len(body["symbols"]) == 4

    def test_scan_with_pushdown_and_limit(self, client):
        status, body = client(
            "GET",
            "/store/scan?days=0&columns=t,bid,ask&t_min=0&t_max=600"
            "&limit=50",
        )
        assert status == 200
        assert set(body["columns"]) == {"t", "bid", "ask"}
        assert body["rows"] <= 50
        assert all(0 <= t < 600 for t in body["columns"]["t"])

    def test_scan_bad_predicate_is_400(self, client):
        status, body = client("GET", "/store/scan?days=7")
        assert status == 400 and "bad scan predicate" in body["error"]
        status, body = client("GET", "/store/scan?days=zero")
        assert status == 400 and "comma-separated integers" in body["error"]
        status, body = client("GET", "/store/scan?limit=999999")
        assert status == 400 and "<=" in body["error"]

    def test_no_store_is_a_pointed_400(self):
        manager = SessionManager(max_live=2, retain=8)
        app = ServeApp(manager, token="t")
        srv = make_server(app)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        try:
            import http.client

            host, port = srv.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/store/days",
                         headers={"Authorization": "Bearer t"})
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 400
            assert "--store-root" in body["error"]
            conn.close()
        finally:
            srv.shutdown()
            srv.server_close()
