"""Tests for the ResultStore (eq 1-3 views and merging)."""

import numpy as np
import pytest

from repro.backtest.results import ResultStore
from repro.metrics.returns import cumulative_return


def populated_store():
    store = ResultStore()
    store.add((0, 1), 0, 0, [0.01, -0.02])
    store.add((0, 1), 0, 1, [0.03])
    store.add((0, 1), 1, 0, [])
    store.add((2, 3), 0, 0, [0.05, 0.05])
    return store


class TestAdd:
    def test_normalises_pair_order(self):
        store = ResultStore()
        store.add((3, 1), 0, 0, [0.1])
        assert store.has((1, 3), 0, 0)
        np.testing.assert_array_equal(store.cell((3, 1), 0, 0), [0.1])

    def test_rejects_double_add(self):
        store = populated_store()
        with pytest.raises(ValueError, match="already recorded"):
            store.add((1, 0), 0, 0, [0.5])

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError, match="distinct"):
            ResultStore().add((2, 2), 0, 0, [])

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            ResultStore().add((0, 1), -1, 0, [])
        with pytest.raises(ValueError):
            ResultStore().add((0, 1), 0, -1, [])

    def test_rejects_nonfinite_returns(self):
        with pytest.raises(ValueError, match="finite"):
            ResultStore().add((0, 1), 0, 0, [np.nan])


class TestViews:
    def test_cell_returns_copy(self):
        store = populated_store()
        cell = store.cell((0, 1), 0, 0)
        cell[0] = 99.0
        assert store.cell((0, 1), 0, 0)[0] == pytest.approx(0.01)

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            populated_store().cell((0, 1), 5, 0)

    def test_period_returns_union_in_day_order(self):
        store = populated_store()
        np.testing.assert_allclose(
            store.period_returns((0, 1), 0), [0.01, -0.02, 0.03]
        )

    def test_daily_return_eq2(self):
        store = populated_store()
        assert store.daily_return((0, 1), 0, 0) == pytest.approx(
            (1.01 * 0.98) - 1
        )

    def test_daily_return_empty_cell_is_zero(self):
        assert populated_store().daily_return((0, 1), 1, 0) == 0.0

    def test_total_return_eq3(self):
        store = populated_store()
        d0 = store.daily_return((0, 1), 0, 0)
        d1 = store.daily_return((0, 1), 0, 1)
        assert store.total_return((0, 1), 0) == pytest.approx(
            (1 + d0) * (1 + d1) - 1
        )

    def test_daily_return_path(self):
        store = populated_store()
        path = store.daily_return_path((0, 1), 0)
        assert path.shape == (2,)
        assert path[1] == pytest.approx(0.03)

    def test_enumeration(self):
        store = populated_store()
        assert store.pairs == [(0, 1), (2, 3)]
        assert store.param_indices == [0, 1]
        assert store.days == [0, 1]
        assert store.n_trades == 5
        assert len(store) == 4


class TestMerge:
    def test_merge_disjoint(self):
        a = ResultStore()
        a.add((0, 1), 0, 0, [0.1])
        b = ResultStore()
        b.add((0, 1), 0, 1, [0.2])
        a.merge(b)
        assert a.days == [0, 1]

    def test_merge_overlap_rejected(self):
        a = ResultStore()
        a.add((0, 1), 0, 0, [0.1])
        b = ResultStore()
        b.add((1, 0), 0, 0, [0.2])
        with pytest.raises(ValueError, match="overlap"):
            a.merge(b)

    def test_merged_classmethod(self):
        parts = []
        for day in range(3):
            s = ResultStore()
            s.add((0, 1), 0, day, [0.01 * (day + 1)])
            parts.append(s)
        merged = ResultStore.merged(parts)
        assert merged.days == [0, 1, 2]

    def test_equality(self):
        assert populated_store() == populated_store()
        other = populated_store()
        other.add((4, 5), 0, 0, [0.1])
        assert populated_store() != other
