"""Tests for correlation clustering and candidate-pair screening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corr.clustering import (
    correlation_clusters,
    fisher_lower_bound,
    hierarchical_clusters,
    screen_candidate_pairs,
    threshold_graph,
)
from repro.corr.measures import corr_matrix


def block_matrix():
    """Two tight blocks {0,1,2} and {3,4}, one loner {5}."""
    m = np.eye(6)
    for i, j in [(0, 1), (0, 2), (1, 2)]:
        m[i, j] = m[j, i] = 0.85
    m[3, 4] = m[4, 3] = 0.9
    for i in (0, 1, 2):
        for j in (3, 4, 5):
            m[i, j] = m[j, i] = 0.1
    m[3, 5] = m[5, 3] = 0.15
    m[4, 5] = m[5, 4] = 0.05
    return m


class TestThresholdGraph:
    def test_edges_above_threshold(self):
        g = threshold_graph(block_matrix(), 0.5)
        assert set(g.edges) == {(0, 1), (0, 2), (1, 2), (3, 4)}
        assert g.number_of_nodes() == 6

    def test_edge_weights_are_correlations(self):
        g = threshold_graph(block_matrix(), 0.5)
        assert g[3][4]["weight"] == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            threshold_graph(np.ones((2, 3)), 0.5)
        with pytest.raises(ValueError, match="symmetric"):
            threshold_graph(np.array([[1.0, 0.5], [0.1, 1.0]]), 0.5)
        with pytest.raises(ValueError, match="unit diagonal"):
            threshold_graph(np.array([[2.0, 0.5], [0.5, 1.0]]), 0.5)
        with pytest.raises(ValueError, match="threshold"):
            threshold_graph(np.eye(2), 1.5)


class TestCorrelationClusters:
    def test_blocks_recovered(self):
        clusters = correlation_clusters(block_matrix(), 0.5)
        assert clusters == [{0, 1, 2}, {3, 4}, {5}]

    def test_partition_of_universe(self):
        clusters = correlation_clusters(block_matrix(), 0.5)
        union = set().union(*clusters)
        assert union == set(range(6))
        assert sum(len(c) for c in clusters) == 6

    def test_threshold_one_gives_singletons(self):
        clusters = correlation_clusters(block_matrix(), 1.0)
        assert all(len(c) == 1 for c in clusters)

    def test_threshold_minus_one_gives_one_cluster(self):
        clusters = correlation_clusters(block_matrix(), -1.0)
        assert clusters == [set(range(6))]


class TestHierarchicalClusters:
    def test_blocks_recovered(self):
        clusters = hierarchical_clusters(block_matrix(), 3)
        assert {0, 1, 2} in clusters
        assert {3, 4} in clusters
        assert {5} in clusters

    def test_cluster_count_bounded(self):
        # maxclust yields at most k clusters (dendrogram ties can force a
        # coarser cut, e.g. k=4 on this matrix collapses to 3).
        for k in (1, 2, 4, 6):
            clusters = hierarchical_clusters(block_matrix(), k)
            assert 1 <= len(clusters) <= k
        assert len(hierarchical_clusters(block_matrix(), 1)) == 1
        assert len(hierarchical_clusters(block_matrix(), 6)) == 6

    def test_single_stock(self):
        assert hierarchical_clusters(np.eye(1), 1) == [{0}]

    def test_too_many_clusters(self):
        with pytest.raises(ValueError):
            hierarchical_clusters(block_matrix(), 7)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_always_partitions(self, seed, k):
        gen = np.random.default_rng(seed)
        r = gen.normal(size=(50, 5))
        m = corr_matrix(r, "pearson")
        clusters = hierarchical_clusters(m, k)
        assert sorted(x for c in clusters for x in c) == list(range(5))


class TestFisherLowerBound:
    def test_below_point_estimate(self):
        assert fisher_lower_bound(0.8, 100) < 0.8

    def test_tightens_with_samples(self):
        lb_small = fisher_lower_bound(0.8, 30)
        lb_large = fisher_lower_bound(0.8, 3000)
        assert lb_small < lb_large < 0.8

    def test_higher_confidence_lower_bound(self):
        assert fisher_lower_bound(0.8, 100, 0.99) < fisher_lower_bound(
            0.8, 100, 0.90
        )

    def test_handles_extreme_rho(self):
        assert fisher_lower_bound(1.0, 100) < 1.0
        assert fisher_lower_bound(-1.0, 100) == pytest.approx(-1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            fisher_lower_bound(1.5, 100)
        with pytest.raises(ValueError):
            fisher_lower_bound(0.5, 3)
        with pytest.raises(ValueError):
            fisher_lower_bound(0.5, 100, confidence=0.0)


class TestScreenCandidatePairs:
    def test_finds_block_pairs(self):
        candidates = screen_candidate_pairs(block_matrix(), n_obs=500, threshold=0.5)
        found = {c.pair for c in candidates}
        assert found == {(0, 1), (0, 2), (1, 2), (3, 4)}

    def test_ranked_by_correlation(self):
        candidates = screen_candidate_pairs(block_matrix(), n_obs=500, threshold=0.5)
        assert candidates[0].pair == (3, 4)  # rho 0.9 ranks first
        corrs = [c.correlation for c in candidates]
        assert corrs == sorted(corrs, reverse=True)

    def test_certainty_requirement_bites(self):
        # Few observations: a 0.85 point estimate fails an 0.8 threshold.
        few = screen_candidate_pairs(block_matrix(), n_obs=10, threshold=0.8)
        many = screen_candidate_pairs(block_matrix(), n_obs=5000, threshold=0.8)
        assert len(few) < len(many)

    def test_max_pairs_truncates(self):
        candidates = screen_candidate_pairs(
            block_matrix(), n_obs=500, threshold=0.5, max_pairs=2
        )
        assert len(candidates) == 2

    def test_lower_bound_below_correlation(self):
        for c in screen_candidate_pairs(block_matrix(), n_obs=500, threshold=0.1):
            assert c.lower_bound < c.correlation

    def test_on_synthetic_market(self, small_market, small_grid):
        """Screening a synthetic day finds the same-sector pairs."""
        from repro.bars.returns import log_returns

        prices = small_market.true_bam_grid(0, small_grid)
        m = corr_matrix(log_returns(prices), "pearson")
        candidates = screen_candidate_pairs(
            m, n_obs=small_grid.smax - 1, threshold=0.3
        )
        assert candidates, "correlated universe must yield candidates"
        sectors = small_market.universe.sectors
        same_sector = [
            c for c in candidates if sectors[c.pair[0]] == sectors[c.pair[1]]
        ]
        assert same_sector, "same-sector pairs should clear the screen"
