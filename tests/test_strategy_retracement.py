"""Tests for retracement levels (paper step 5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.strategy.retracement import RetracementLevel, retracement_level


class TestPaperExample:
    def test_entry_near_low(self):
        # High $100, low $80, entered around $80, l = 1/3:
        # L = 80 + (1/3)(100-80) = 86.67, reverse when spread rises to L.
        window = np.array([80.0, 100.0, 90.0, 85.0])
        level = retracement_level(window, entry_spread=80.0, l=1 / 3)
        assert level.level == pytest.approx(80 + 20 / 3)
        assert level.direction == +1
        assert not level.hit(85.0)
        assert level.hit(87.0)

    def test_entry_near_high(self):
        # Entered around $100: L = 100 - (1/3)(20) = 93.33, reverse down.
        window = np.array([80.0, 100.0, 90.0, 95.0])
        level = retracement_level(window, entry_spread=100.0, l=1 / 3)
        assert level.level == pytest.approx(100 - 20 / 3)
        assert level.direction == -1
        assert not level.hit(95.0)
        assert level.hit(93.0)


class TestProperties:
    windows = hnp.arrays(
        dtype=float,
        shape=st.integers(min_value=1, max_value=40),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )

    @given(windows, st.floats(-100, 100), st.floats(0.01, 0.99))
    def test_level_inside_range(self, window, entry, l):
        level = retracement_level(window, entry, l)
        assert window.min() - 1e-9 <= level.level <= window.max() + 1e-9

    @given(windows, st.floats(-100, 100))
    def test_direction_consistent_with_entry_side(self, window, entry):
        level = retracement_level(window, entry, 0.5)
        if entry < window.mean():
            assert level.direction == +1
        elif entry > window.mean():
            assert level.direction == -1

    @given(windows, st.floats(0.01, 0.99))
    def test_larger_l_means_deeper_target(self, window, l):
        entry = float(window.min()) - 1.0
        shallow = retracement_level(window, entry, min(l, 0.98))
        deeper = retracement_level(window, entry, min(l + 0.01, 0.99))
        assert deeper.level >= shallow.level - 1e-12

    def test_constant_window_level_is_that_value(self):
        level = retracement_level(np.full(5, 7.0), 7.0, 0.5)
        assert level.level == pytest.approx(7.0)
        assert level.hit(7.0)

    def test_boundary_entry_equal_to_mean_goes_up(self):
        window = np.array([1.0, 3.0])
        level = retracement_level(window, entry_spread=2.0, l=0.5)
        assert level.direction == +1


class TestValidation:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            retracement_level(np.array([]), 0.0, 0.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            retracement_level(np.array([1.0, np.nan]), 0.0, 0.5)
        with pytest.raises(ValueError):
            retracement_level(np.array([1.0, 2.0]), float("nan"), 0.5)

    @pytest.mark.parametrize("l", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_bad_l(self, l):
        with pytest.raises(ValueError):
            retracement_level(np.array([1.0, 2.0]), 1.5, l)


class TestRetracementLevel:
    def test_hit_semantics(self):
        up = RetracementLevel(level=5.0, direction=+1)
        assert up.hit(5.0) and up.hit(6.0) and not up.hit(4.9)
        down = RetracementLevel(level=5.0, direction=-1)
        assert down.hit(5.0) and down.hit(4.0) and not down.hit(5.1)
