"""Tests for repro.taq.types."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taq.types import (
    QUOTE_DTYPE,
    Quote,
    quotes_from_records,
    quotes_to_records,
    validate_quote_array,
)

quote_strategy = st.builds(
    Quote,
    t=st.floats(min_value=0, max_value=23399, allow_nan=False),
    symbol=st.integers(min_value=0, max_value=60),
    bid=st.floats(min_value=0.01, max_value=1000).map(lambda x: round(x, 2)),
    ask=st.floats(min_value=0.01, max_value=1000).map(lambda x: round(x, 2)),
    bid_size=st.integers(min_value=1, max_value=999),
    ask_size=st.integers(min_value=1, max_value=999),
)


class TestQuote:
    def test_bam_is_midpoint(self):
        q = Quote(t=0.0, symbol=0, bid=10.0, ask=10.50)
        assert q.bam == pytest.approx(10.25)

    def test_spread(self):
        q = Quote(t=0.0, symbol=0, bid=10.0, ask=10.50)
        assert q.spread == pytest.approx(0.50)

    def test_frozen(self):
        q = Quote(t=0.0, symbol=0, bid=1.0, ask=2.0)
        with pytest.raises(AttributeError):
            q.bid = 5.0


class TestRoundTrip:
    @given(st.lists(quote_strategy, min_size=0, max_size=30))
    def test_records_round_trip(self, quotes):
        records = quotes_to_records(quotes)
        assert records.dtype == QUOTE_DTYPE
        back = quotes_from_records(records)
        assert len(back) == len(quotes)
        for a, b in zip(quotes, back):
            assert a.symbol == b.symbol
            assert a.bid == pytest.approx(b.bid)
            assert a.ask == pytest.approx(b.ask)
            assert a.t == pytest.approx(b.t)

    def test_from_records_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="QUOTE_DTYPE"):
            quotes_from_records(np.zeros(3))


class TestValidateQuoteArray:
    def _mk(self, **overrides):
        arr = np.zeros(3, dtype=QUOTE_DTYPE)
        arr["t"] = [0.0, 1.0, 2.0]
        arr["symbol"] = [0, 1, 0]
        arr["bid"] = 10.0
        arr["ask"] = 10.1
        arr["bid_size"] = 1
        arr["ask_size"] = 1
        for key, value in overrides.items():
            arr[key] = value
        return arr

    def test_accepts_valid(self):
        validate_quote_array(self._mk(), n_symbols=2)

    def test_accepts_empty(self):
        validate_quote_array(np.empty(0, dtype=QUOTE_DTYPE))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="chronological"):
            validate_quote_array(self._mk(t=[2.0, 1.0, 0.0]))

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match=">= 0"):
            validate_quote_array(self._mk(t=[-1.0, 0.0, 1.0]))

    def test_rejects_nonpositive_price(self):
        with pytest.raises(ValueError, match="positive"):
            validate_quote_array(self._mk(bid=0.0))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="sizes"):
            validate_quote_array(self._mk(bid_size=0))

    def test_rejects_symbol_out_of_universe(self):
        with pytest.raises(ValueError, match="symbol indices"):
            validate_quote_array(self._mk(symbol=[0, 5, 0]), n_symbols=2)

    def test_allows_crossed_quotes(self):
        # Raw TAQ contains crossed quotes; cleaning, not validation,
        # removes them.
        arr = self._mk()
        arr["bid"] = 11.0  # bid > ask
        validate_quote_array(arr, n_symbols=2)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="QUOTE_DTYPE"):
            validate_quote_array(np.zeros(2))
