"""Tests for repro.taq.calendar."""

import datetime as dt

import pytest

from repro.taq.calendar import TradingCalendar, march_2008


class TestMarch2008:
    def test_exactly_twenty_trading_days(self):
        # "one month (March 2008) which consists of 20 trading days"
        assert len(march_2008()) == 20

    def test_good_friday_excluded(self):
        cal = march_2008()
        assert not cal.is_trading_day(dt.date(2008, 3, 21))
        assert dt.date(2008, 3, 21) not in cal.days

    def test_first_and_last(self):
        days = march_2008().days
        assert days[0] == dt.date(2008, 3, 3)  # Mar 1-2 were a weekend
        assert days[-1] == dt.date(2008, 3, 31)

    def test_no_weekends(self):
        assert all(d.weekday() < 5 for d in march_2008())


class TestTradingCalendar:
    def test_weekdays_only(self):
        cal = TradingCalendar(dt.date(2008, 3, 3), dt.date(2008, 3, 9))
        assert len(cal) == 5

    def test_holiday_removed(self):
        cal = TradingCalendar(
            dt.date(2008, 3, 3),
            dt.date(2008, 3, 7),
            holidays=frozenset({dt.date(2008, 3, 5)}),
        )
        assert len(cal) == 4
        assert not cal.is_trading_day(dt.date(2008, 3, 5))

    def test_is_trading_day_outside_range(self):
        cal = march_2008()
        assert not cal.is_trading_day(dt.date(2008, 4, 1))

    def test_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            TradingCalendar(dt.date(2008, 3, 31), dt.date(2008, 3, 1))

    def test_iteration_is_chronological(self):
        days = list(march_2008())
        assert days == sorted(days)

    def test_single_day_calendar(self):
        d = dt.date(2008, 3, 3)
        cal = TradingCalendar(d, d)
        assert cal.days == (d,)


class TestFromDays:
    def test_round_trip(self):
        original = march_2008()
        rebuilt = TradingCalendar.from_days(original.days)
        assert rebuilt.days == original.days

    def test_gap_becomes_holiday(self):
        days = [dt.date(2008, 3, 3), dt.date(2008, 3, 5)]
        cal = TradingCalendar.from_days(days)
        assert cal.days == tuple(days)
        assert dt.date(2008, 3, 4) in cal.holidays

    def test_rejects_weekend_day(self):
        with pytest.raises(ValueError, match="weekend"):
            TradingCalendar.from_days([dt.date(2008, 3, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TradingCalendar.from_days([])
