"""Tests for the block-parallel correlation engine (SPMD)."""

import numpy as np
import pytest

from repro import mpi
from repro.corr.measures import corr_matrix, corr_matrix_series, corr_series
from repro.corr.parallel import ParallelCorrelationEngine, partition_pairs


class TestPartitionPairs:
    def test_exact_split(self):
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)]  # 6 pairs
        blocks = partition_pairs(pairs, 3)
        assert [len(b) for b in blocks] == [2, 2, 2]
        assert sum(blocks, []) == pairs

    def test_uneven_split_front_loaded(self):
        pairs = list(range(7))
        blocks = partition_pairs(pairs, 3)
        assert [len(b) for b in blocks] == [3, 2, 2]
        assert sum(blocks, []) == pairs

    def test_more_ranks_than_pairs(self):
        blocks = partition_pairs([(0, 1)], 4)
        assert [len(b) for b in blocks] == [1, 0, 0, 0]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            partition_pairs([], 0)


@pytest.mark.parametrize("size", [1, 2, 4])
class TestParallelMatrix:
    def test_matches_serial_pearson(self, size, correlated_returns):
        window = correlated_returns[:60]

        def prog(comm):
            return ParallelCorrelationEngine("pearson").matrix(comm, window)

        results = mpi.run_spmd(prog, size=size)
        expected = corr_matrix(window, "pearson")
        for r in results:
            np.testing.assert_allclose(r, expected, atol=1e-12)

    def test_matches_serial_maronna(self, size, correlated_returns):
        window = correlated_returns[:40, :4]

        def prog(comm):
            return ParallelCorrelationEngine("maronna").matrix(comm, window)

        results = mpi.run_spmd(prog, size=size)
        expected = corr_matrix(window, "maronna")
        for r in results:
            np.testing.assert_allclose(r, expected, atol=1e-10)


class TestParallelSeries:
    def test_pair_series_matches_serial(self, correlated_returns):
        r = correlated_returns[:90]
        pairs = [(0, 1), (2, 3), (1, 5), (0, 4), (3, 5)]

        def prog(comm):
            return ParallelCorrelationEngine("combined").pair_series(
                comm, r, 25, pairs
            )

        results = mpi.run_spmd(prog, size=3)
        for got in results:
            assert set(got) == set(pairs)
            for i, j in pairs:
                expected = corr_series(r[:, i], r[:, j], 25, "combined")
                np.testing.assert_allclose(got[(i, j)], expected, atol=1e-10)

    def test_matrix_series_matches_serial(self, correlated_returns):
        r = correlated_returns[:50, :4]

        def prog(comm):
            return ParallelCorrelationEngine("pearson").matrix_series(comm, r, 20)

        results = mpi.run_spmd(prog, size=2)
        expected = corr_matrix_series(r, 20, "pearson")
        np.testing.assert_allclose(results[0], expected, atol=1e-9)
        np.testing.assert_allclose(results[1], expected, atol=1e-9)

    def test_pair_series_validates_pairs(self, correlated_returns):
        def prog(comm):
            return ParallelCorrelationEngine().pair_series(
                comm, correlated_returns[:50], 10, [(0, 99)]
            )

        from repro.mpi.inproc import SpmdFailure

        with pytest.raises(SpmdFailure, match="invalid pair"):
            mpi.run_spmd(prog, size=1)
