"""Dependency-free HTTP/1.1 JSON transport for the serving layer.

Built entirely on the stdlib: a :class:`ThreadingHTTPServer` subclass
(one daemon thread per connection, so a slow client never blocks the
accept loop) plus a :class:`BaseHTTPRequestHandler` that parses the
request envelope — method, path, query string, JSON body, bearer token —
and hands a normalised :class:`Request` to the application's
``dispatch``.  No routing, auth or domain logic lives here; the handler
only speaks wire format and telemetry.

Every request, matched or not, lands in two obs metrics::

    serve.http.<route>.seconds                  # latency histogram
    serve.http.requests[route=<route>,status=<code>]  # outcome counter

which is what the bench harness and the check.sh smoke stage gate on.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.sessions import BadRequest

#: Request bodies past this size are rejected outright (413): every
#: legitimate payload (a session spec, a watchlist) is tiny.
MAX_BODY_BYTES = 1 << 20


@dataclass
class Request:
    """One parsed request: what a route handler actually consumes."""

    method: str
    path: str
    parts: tuple[str, ...]
    query: dict[str, str]
    body: dict | None
    token: str | None
    #: Filled in by the router so telemetry can label the request.
    route: str = "unmatched"
    #: Named path captures (session id, user) set during matching.
    vars: dict[str, str] = field(default_factory=dict)

    # -- pointed query-parameter accessors (each 400s with specifics) --------

    def require_known_params(self, allowed: tuple[str, ...]) -> None:
        unknown = sorted(set(self.query) - set(allowed))
        if unknown:
            raise BadRequest(
                f"unknown query parameter {unknown[0]!r} for {self.route}; "
                f"allowed: {sorted(allowed)}"
            )

    def int_param(
        self,
        name: str,
        default: int | None,
        lo: int | None = None,
        hi: int | None = None,
    ) -> int | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise BadRequest(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None
        if lo is not None and value < lo:
            raise BadRequest(f"query parameter {name!r} must be >= {lo}")
        if hi is not None and value > hi:
            raise BadRequest(f"query parameter {name!r} must be <= {hi}")
        return value

    def float_param(self, name: str, default: float | None) -> float | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise BadRequest(
                f"query parameter {name!r} must be a number, got {raw!r}"
            ) from None

    def bool_param(self, name: str, default: bool) -> bool:
        raw = self.query.get(name)
        if raw is None:
            return default
        if raw in ("1", "true", "yes"):
            return True
        if raw in ("0", "false", "no"):
            return False
        raise BadRequest(
            f"query parameter {name!r} must be one of "
            f"1/0/true/false/yes/no, got {raw!r}"
        )

    def list_param(self, name: str) -> list[str] | None:
        raw = self.query.get(name)
        if raw is None or raw == "":
            return None
        return [part.strip() for part in raw.split(",") if part.strip()]

    def int_list_param(self, name: str) -> list[int] | None:
        parts = self.list_param(name)
        if parts is None:
            return None
        try:
            return [int(part) for part in parts]
        except ValueError:
            raise BadRequest(
                f"query parameter {name!r} must be comma-separated "
                f"integers, got {self.query[name]!r}"
            ) from None


@dataclass(frozen=True)
class Response:
    """Status plus payload; dict payloads go out as JSON, str as text."""

    status: int
    payload: dict | list | str


def _json_default(obj):
    """Coerce numpy scalars (and other oddballs) for json.dumps."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


class _Handler(BaseHTTPRequestHandler):
    """Wire-format adapter: envelope in, JSON out, metrics always."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # The stdlib handler logs every request to stderr; the obs registry
    # is the serving layer's log, so silence the side channel.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_PUT(self) -> None:
        self._handle("PUT")

    def do_DELETE(self) -> None:
        self._handle("DELETE")

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise BadRequest(
                f"request body must be a JSON object, "
                f"got {type(body).__name__}"
            )
        return body

    def _token(self) -> str | None:
        header = self.headers.get("Authorization")
        if header is None:
            return None
        scheme, _, credential = header.partition(" ")
        if scheme.lower() != "bearer" or not credential:
            return None
        return credential.strip()

    def _handle(self, method: str) -> None:
        app = self.server.app
        t0 = time.perf_counter()
        request: Request | None = None
        try:
            split = urlsplit(self.path)
            path = unquote(split.path)
            parts = tuple(part for part in path.split("/") if part)
            query = dict(parse_qsl(split.query, keep_blank_values=True))
            request = Request(
                method=method,
                path=path,
                parts=parts,
                query=query,
                body=self._read_body(),
                token=self._token(),
            )
            response = app.dispatch(request)
        except BadRequest as exc:
            response = Response(exc.status, {"error": str(exc)})
        except Exception as exc:  # wire/handler bug: never drop the socket
            response = Response(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
        route = request.route if request is not None else "unmatched"
        self._send(response)
        elapsed = time.perf_counter() - t0
        metrics = app.obs.metrics
        metrics.histogram(f"serve.http.{route}.seconds").observe(elapsed)
        metrics.counter(
            f"serve.http.requests[route={route},status={response.status}]"
        ).inc()
        if response.status >= 500:
            metrics.counter("serve.http.errors").inc()

    def _send(self, response: Response) -> None:
        payload = response.payload
        if isinstance(payload, str):
            data = payload.encode()
            content_type = "text/plain; charset=utf-8"
        else:
            data = json.dumps(payload, default=_json_default).encode()
            content_type = "application/json"
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply; nothing to salvage


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading server bound to one :class:`~repro.serve.app.ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app):
        self.app = app
        super().__init__(address, _Handler)


def make_server(app, host: str = "127.0.0.1", port: int = 0) -> ServeHTTPServer:
    """Bind the app to ``host:port`` (port 0 picks an ephemeral port)."""
    return ServeHTTPServer((host, port), app)
