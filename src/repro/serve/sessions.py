"""Multi-tenant session registry: worker threads, bounded queues, audit.

The :class:`SessionManager` is the serving layer's stateful core: it owns
up to ``max_live`` concurrent :class:`Session` objects — live Figure-1
pipelines run under :func:`repro.faults.run_supervised_session` and
store- or synthetic-backed sequential backtest jobs — each on its own
daemon worker thread.

Lock discipline (the low-latency half of the design): HTTP handler
threads never block on a session's work.  The manager lock guards only
the registry dict; each session's lock guards only its status fields;
commands travel through a *bounded* per-session ``queue.Queue`` and are
consumed by the worker at its control gates (epoch boundaries for
pipelines, day boundaries for backtests) — so a paused, killed or even
wedged session can never stall another tenant's request.

Everything a session accumulates per request is bounded or ring-backed
(the ``repo.serve-bounded`` lint rule enforces this): the audit log is a
last-``audit_capacity`` :class:`~repro.obs.live.rings.EventRing` whose
``n_seen`` keeps the append-only sequence numbering even after old
entries rotate out, the command queue rejects (HTTP 429) instead of
growing, and terminated sessions are pruned oldest-first past ``retain``.
"""

from __future__ import annotations

import os
import queue
import re
import threading
import time
from typing import Any

from repro.marketminer.session import SessionControl, SessionKilled
from repro.obs.live.rings import EventRing

# -- session lifecycle states ------------------------------------------------

PENDING = "pending"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
FAILED = "failed"
KILLED = "killed"

#: States a session never leaves; commands on these return 409.
TERMINAL = frozenset({DONE, FAILED, KILLED})

#: The command verbs a live session accepts.
COMMANDS = ("pause", "resume", "kill", "resize")

#: Largest pool a served session may resize to (mirrors the spec
#: schema's ``ranks`` ceiling; the MPI backend capacity is far higher).
RESIZE_MAX = 8

KINDS = ("figure1", "backtest")

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


# -- error taxonomy (the HTTP layer maps .status straight to the code) -------


class ServeError(Exception):
    """Base class for serving-layer errors; carries the HTTP status."""

    status = 400


class BadRequest(ServeError):
    """Malformed id, spec, command or parameter (400)."""

    status = 400


class UnknownSession(ServeError):
    """No session with that id (404)."""

    status = 404


class DuplicateSession(ServeError):
    """Submit re-used an existing session id (409)."""

    status = 409


class SessionDead(ServeError):
    """Command sent to a session in a terminal state (409)."""

    status = 409


class CommandUnsupported(ServeError):
    """The session's kind cannot perform this command (409).

    Distinct from :class:`BadRequest`: the verb is well-formed and the
    session exists, but the transition is illegal for it — e.g. resizing
    a backtest session, whose worker has no rank pool to resize.
    """

    status = 409


class ResizePending(ServeError):
    """A resize is already queued and not yet applied (409).

    The control handle holds a single pending-resize slot consumed at
    the next epoch boundary; a second resize before that boundary would
    silently overwrite the first, so the API rejects it instead —
    retry after the boundary applies the pending one.
    """

    status = 409


class ManagerFull(ServeError):
    """Live-session or watchlist-user capacity reached (429)."""

    status = 429


class CommandBacklog(ServeError):
    """The session's bounded command queue is full (429)."""

    status = 429


# -- spec validation ---------------------------------------------------------

#: Per-kind spec schema: key -> (type, default, lo, hi).  ``None`` bounds
#: mean unchecked; a ``None`` default means optional-without-value.
_SPEC_SCHEMA: dict[str, dict[str, tuple]] = {
    "figure1": {
        "symbols": (int, 4, 2, 61),
        "seconds": (int, 1800, 1200, 23_400),
        "seed": (int, 2008, 0, None),
        "ranks": (int, 2, 1, 8),
        "checkpoint_every": (int, 20, 1, 10_000),
        "timeout": (float, 10.0, 0.1, 600.0),
        "max_restarts": (int, 3, 0, 100),
        "fault_plan": (str, None, None, None),
    },
    "backtest": {
        "symbols": (int, 6, 2, 61),
        "seconds": (int, 1800, 1200, 23_400),
        "seed": (int, 2008, 0, None),
        "days": (int, 2, 1, 60),
        "levels": (int, 2, 1, 14),
        "store_root": (str, None, None, None),
    },
}


def validate_spec(kind: str, spec: dict | None) -> dict:
    """Normalise and bounds-check a session spec; 400s are pointed.

    Unknown keys, wrong types and out-of-range values each raise
    :class:`BadRequest` naming the offending key, the offered value and
    what would have been accepted.
    """
    if kind not in KINDS:
        raise BadRequest(
            f"unknown session kind {kind!r}; expected one of {list(KINDS)}"
        )
    schema = _SPEC_SCHEMA[kind]
    spec = dict(spec or {})
    unknown = sorted(set(spec) - set(schema))
    if unknown:
        raise BadRequest(
            f"unknown spec key {unknown[0]!r} for kind {kind!r}; "
            f"allowed keys: {sorted(schema)}"
        )
    out: dict[str, Any] = {}
    for key, (typ, default, lo, hi) in schema.items():
        if key not in spec or spec[key] is None:
            out[key] = default
            continue
        value = spec[key]
        if typ is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, typ) or isinstance(value, bool):
            raise BadRequest(
                f"spec key {key!r} must be {typ.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if lo is not None and value < lo:
            raise BadRequest(f"spec key {key!r} must be >= {lo}, got {value}")
        if hi is not None and value > hi:
            raise BadRequest(f"spec key {key!r} must be <= {hi}, got {value}")
        out[key] = value
    _check_spec_extras(kind, out)
    return out


def _check_spec_extras(kind: str, spec: dict) -> None:
    """Cross-field and referential checks beyond the per-key schema."""
    if kind == "figure1" and spec["fault_plan"] is not None:
        from repro.faults import named_plan

        try:
            named_plan(spec["fault_plan"], size=spec["ranks"])
        except (KeyError, ValueError) as exc:
            raise BadRequest(
                f"spec key 'fault_plan': no such plan "
                f"{spec['fault_plan']!r} ({exc})"
            ) from None
    if kind == "backtest" and spec["store_root"] is not None:
        if not os.path.isdir(spec["store_root"]):
            raise BadRequest(
                f"spec key 'store_root': {spec['store_root']!r} is not a "
                f"directory (ingest one with `repro store ingest`)"
            )


# -- one tenant session ------------------------------------------------------


class Session:
    """One tenant's job: a worker thread plus its control surface.

    State only ever moves forward through the lifecycle::

        pending -> running <-> paused -> done | failed | killed

    ``pause``/``resume``/``kill`` arrive through the bounded command
    queue and are applied by :meth:`_on_gate`, which the session's
    :class:`~repro.marketminer.session.SessionControl` invokes at every
    epoch/day boundary and on every poll while parked in pause.
    """

    def __init__(
        self,
        session_id: str,
        kind: str,
        spec: dict,
        user: str,
        audit_capacity: int = 1024,
        command_slots: int = 32,
        flight_dir: str | None = None,
        poll_interval: float = 0.02,
    ):
        self.id = session_id
        self.kind = kind
        self.spec = spec
        self.user = user
        self.created_at = time.time()
        self.state = PENDING
        self.error: str | None = None
        self.summary: dict = {}
        self.flight_dir = flight_dir
        self.audit = EventRing(audit_capacity)
        self.commands: queue.Queue = queue.Queue(maxsize=command_slots)
        self.control = SessionControl(
            poll_interval=poll_interval,
            on_gate=self._on_gate,
            on_resize=self._on_resize,
        )
        self.hub = None
        if kind == "figure1":
            from repro.obs.live import TelemetryHub

            self.hub = TelemetryHub(capacity=240)
        self._days_done = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # -- audit ---------------------------------------------------------------

    def record_audit(self, actor: str, op: str, detail: str = "") -> None:
        """Append one audit entry (actor, op, wall timestamp, seq)."""
        with self._lock:
            self.audit.append(
                {
                    "seq": self.audit.n_seen,
                    "t": time.time(),
                    "actor": actor,
                    "op": op,
                    "detail": detail,
                }
            )

    def audit_entries(self, limit: int | None = None) -> dict:
        """The retained audit tail (oldest rotated out past capacity)."""
        with self._lock:
            entries = self.audit.events()
            total, dropped = self.audit.n_seen, self.audit.n_dropped
        if limit is not None:
            entries = entries[-limit:]
        return {"entries": entries, "total": total, "dropped": dropped}

    # -- command intake (HTTP threads) ---------------------------------------

    def submit_command(self, op: str, actor: str, arg=None) -> None:
        """Queue a command; 429 (not a hang) when the queue is full.

        ``arg`` carries the command's operand — today only ``resize``
        has one (the target pool size, already validated by the
        manager).
        """
        try:
            self.commands.put_nowait((op, actor, arg))
        except queue.Full:
            self.record_audit(actor, op, detail="rejected: command queue full")
            raise CommandBacklog(
                f"session {self.id!r} has {self.commands.maxsize} commands "
                f"pending; retry once the session reaches its next gate"
            ) from None
        detail = "queued" if arg is None else f"queued target={arg}"
        self.record_audit(actor, op, detail=detail)

    def _on_gate(self, control: SessionControl) -> None:
        """Drain queued commands at a control gate; sync visible state."""
        while True:
            try:
                op, actor, arg = self.commands.get_nowait()
            except queue.Empty:
                break
            if op == "pause":
                control.pause()
            elif op == "resume":
                control.resume()
            elif op == "kill":
                control.kill()
            elif op == "resize":
                # Records intent only; the supervisor consumes it at the
                # next epoch boundary and reports back via _on_resize.
                control.request_resize(arg)
            detail = "applied" if arg is None else f"applied target={arg}"
            self.record_audit(actor, op, detail=detail)
        with self._lock:
            if self.state == RUNNING and control.paused:
                self.state = PAUSED
            elif self.state == PAUSED and not control.paused:
                self.state = RUNNING

    def _on_resize(self, epoch: int, old: int, new: int) -> None:
        """Audit an applied pool change (voluntary or crash-as-shrink)."""
        self.record_audit(
            "supervisor", "resize-applied",
            detail=f"epoch={epoch} {old}->{new}",
        )

    # -- worker --------------------------------------------------------------

    def start(self) -> None:
        """Launch the worker thread (daemon: it never blocks shutdown)."""
        self._thread = threading.Thread(
            target=self._run, name=f"serve-session-{self.id}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        with self._lock:
            self.state = RUNNING
        try:
            if self.kind == "figure1":
                summary = self._run_figure1()
            else:
                summary = self._run_backtest()
        except SessionKilled:
            with self._lock:
                self.state = KILLED
            self.record_audit("worker", "exit", detail="killed at gate")
        except BaseException as exc:
            with self._lock:
                self.state = FAILED
                self.error = f"{type(exc).__name__}: {exc}"
            self.record_audit("worker", "exit", detail=f"failed: {self.error}")
        else:
            with self._lock:
                self.state = DONE
                self.summary = summary
            self.record_audit("worker", "exit", detail="done")

    def _run_figure1(self) -> dict:
        """A supervised live pipeline with checkpoints at every gate."""
        from repro.faults import named_plan, run_supervised_session

        spec = self.spec
        plan = (
            named_plan(spec["fault_plan"], size=spec["ranks"])
            if spec["fault_plan"]
            else None
        )
        hub = self.hub
        hub.start(0.25)
        try:
            run = run_supervised_session(
                self._build_workflow,
                size=spec["ranks"],
                plan=plan,
                checkpoint_every=spec["checkpoint_every"],
                max_restarts=spec["max_restarts"],
                obs_enabled=True,
                obs_hook=hub.register,
                control=self.control,
                flight_dump=self.flight_dir,
                backend_options={"default_timeout": spec["timeout"]},
            )
        finally:
            hub.stop()
        results = run.results
        n_trades = sum(
            len(v) for v in results["pair_trading"]["trades"].values()
        )
        return {
            "bars": results["bar_accumulator"]["bars_emitted"],
            "trades": n_trades,
            "attempts": run.attempts,
            "restarts": run.restarts,
            "checkpoints": run.checkpoints,
            "pool_sizes": list(run.pool_sizes),
            "resizes": [list(r) for r in run.resizes],
        }

    def _build_workflow(self):
        """Fresh Figure-1 workflow per supervisor attempt (build seam)."""
        from repro.marketminer.session import build_figure1_workflow
        from repro.strategy.params import StrategyParams
        from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
        from repro.taq.universe import default_universe
        from repro.util.timeutil import TimeGrid

        spec = self.spec
        market = SyntheticMarket(
            default_universe(spec["symbols"]),
            SyntheticMarketConfig(
                trading_seconds=spec["seconds"], quote_rate=0.9
            ),
            seed=spec["seed"],
        )
        params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
        return build_figure1_workflow(
            market,
            TimeGrid(30, trading_seconds=spec["seconds"]),
            list(market.universe.pairs()),
            [params],
        )

    def _run_backtest(self) -> dict:
        """A store- or synthetic-backed Approach-2 job, gated per day."""
        from repro.backtest.data import BarProvider
        from repro.backtest.runner import SequentialBacktester
        from repro.strategy.params import StrategyParams
        from repro.util.timeutil import TimeGrid

        spec = self.spec
        if spec["store_root"]:
            from repro.store import StoreQuoteSource, StoreReader

            market = StoreQuoteSource(StoreReader(spec["store_root"]))
            seconds = market.trading_seconds
            days = market.days[: spec["days"]]
        else:
            from repro.taq.synthetic import (
                SyntheticMarket,
                SyntheticMarketConfig,
            )
            from repro.taq.universe import default_universe

            market = SyntheticMarket(
                default_universe(spec["symbols"]),
                SyntheticMarketConfig(trading_seconds=spec["seconds"]),
                seed=spec["seed"],
            )
            seconds = spec["seconds"]
            days = list(range(spec["days"]))
        provider = BarProvider(market, TimeGrid(30, trading_seconds=seconds))
        engine = SequentialBacktester(provider, share_correlation=True)
        pairs = list(market.universe.pairs())
        grid = [
            StrategyParams(
                m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001 * level
            )
            for level in range(1, spec["levels"] + 1)
        ]
        n_trades = 0
        for day in days:
            self.control.gate(day)
            store = engine.run(pairs, grid, [day])
            n_trades += store.n_trades
            with self._lock:
                self._days_done += 1
        return {
            "days": len(days),
            "pairs": len(pairs),
            "param_sets": len(grid),
            "trades": n_trades,
        }

    # -- query surface -------------------------------------------------------

    def status(self) -> dict:
        """The session's full status document (every field JSON-safe)."""
        checkpoint = self.control.latest_checkpoint()
        with self._lock:
            return {
                "id": self.id,
                "kind": self.kind,
                "user": self.user,
                "state": self.state,
                "created_at": self.created_at,
                "spec": dict(self.spec),
                "error": self.error,
                "summary": dict(self.summary),
                "progress": {
                    "gates": self.control.n_gates,
                    "checkpoints": self.control.n_checkpoints,
                    "last_checkpoint_epoch": (
                        checkpoint[0] if checkpoint is not None else None
                    ),
                    "days_done": self._days_done,
                },
                "pause_requested": self.control.paused,
                "kill_requested": self.control.killed,
                "commands_pending": self.commands.qsize(),
                "audit_entries": self.audit.n_seen,
                "pool": {
                    "size": (
                        self.control.pool_size
                        if self.control.pool_size is not None
                        else self.spec.get("ranks")
                    ),
                    "pending_resize": self.control.pending_resize,
                    "restarts": self.control.n_restarts,
                    "resizes": self.control.resize_history(),
                },
            }

    def positions(self) -> dict:
        """Open positions and trade counts from the latest checkpoint.

        Live queries read the last *consistent cut* of the stream (the
        supervisor's checkpoint), never the in-flight component state —
        a mid-epoch read would see a torn picture.
        """
        if self.kind != "figure1":
            raise BadRequest(
                f"session {self.id!r} is a {self.kind} job; live positions "
                f"exist only for kind 'figure1'"
            )
        checkpoint = self.control.latest_checkpoint()
        if checkpoint is None:
            return {"epoch": None, "positions": [], "trades": 0}
        epoch, snapshots = checkpoint
        state = snapshots.get("pair_trading", {})
        rows = []
        n_trades = 0
        for (pair, k), strat in sorted(state.get("strategies", {}).items()):
            n_trades += len(strat.trades)
            pos = strat.open_position
            if pos is None:
                continue
            rows.append(
                {
                    "pair": list(pair),
                    "param_set": k,
                    "entry_s": pos.entry_s,
                    "long_leg": pos.long_leg,
                    "n_long": pos.n_long,
                    "n_short": pos.n_short,
                    "entry_spread": pos.entry_spread,
                    "retracement_level": pos.retracement_level,
                }
            )
        return {"epoch": epoch, "positions": rows, "trades": n_trades}

    def signals(self, limit: int = 100) -> dict:
        """Latest correlation signal per pair from the checkpointed engine."""
        if self.kind != "figure1":
            raise BadRequest(
                f"session {self.id!r} is a {self.kind} job; live signals "
                f"exist only for kind 'figure1'"
            )
        checkpoint = self.control.latest_checkpoint()
        if checkpoint is None:
            return {"interval": None, "signals": []}
        _epoch, snapshots = checkpoint
        state = snapshots.get("correlation", {})
        matrix = state.get("last_good")
        rows: list[dict] = []
        if matrix is not None:
            if isinstance(matrix, dict):  # pair-block engine form
                items = sorted(matrix.items())
            else:  # full n x n matrix
                n = matrix.shape[0]
                items = [
                    ((i, j), float(matrix[i, j]))
                    for i in range(n)
                    for j in range(i + 1, n)
                ]
            for (i, j), corr in items[:limit]:
                rows.append({"pair": [i, j], "corr": float(corr)})
        return {
            "interval": state.get("last_good_s"),
            "stale_served": state.get("stale_served", 0),
            "signals": rows,
        }

    def telemetry(self, window: float = 5.0) -> dict:
        """Live rates off this session's per-rank samplers (figure1 only)."""
        entry: dict[str, Any] = {"state": self.state, "kind": self.kind}
        hub = self.hub
        if hub is None:
            return entry
        entry["pool_size"] = (
            self.control.pool_size
            if self.control.pool_size is not None
            else self.spec.get("ranks")
        )
        entry["restarts"] = self.control.n_restarts
        entry["resizes"] = len(self.control.resize_history())
        with hub._lock:
            samplers = dict(hub.samplers)
        entry["ranks"] = len(samplers)
        entry["sent_per_s"] = sum(
            s.rate("mpi.sent.messages", window) for s in samplers.values()
        )
        entry["recv_per_s"] = sum(
            s.rate("mpi.recv.messages", window) for s in samplers.values()
        )
        return entry


# -- the registry ------------------------------------------------------------


class SessionManager:
    """Owns every tenant session behind one submit/command/query surface.

    ``max_live`` bounds concurrently non-terminal sessions (submit past
    it is a 429); ``retain`` bounds the registry dict itself — once
    total sessions reach it, the oldest *terminal* sessions are pruned,
    so a long-running server's memory stays flat.  Per-user watchlists
    are capped in both user count and entries per list.
    """

    def __init__(
        self,
        max_live: int = 8,
        retain: int = 64,
        flight_root: str | None = None,
        watchlist_users: int = 64,
        watchlist_items: int = 128,
        audit_capacity: int = 1024,
        command_slots: int = 32,
        poll_interval: float = 0.02,
    ):
        if retain <= max_live:
            raise ValueError(
                f"retain ({retain}) must exceed max_live ({max_live}) or "
                f"live sessions could block pruning"
            )
        self.max_live = max_live
        self.retain = retain
        self.flight_root = flight_root
        self.watchlist_users = watchlist_users
        self.watchlist_items = watchlist_items
        self.audit_capacity = audit_capacity
        self.command_slots = command_slots
        self.poll_interval = poll_interval
        self.started_at = time.time()
        self._sessions: dict[str, Session] = {}
        self._watchlists: dict[str, tuple[str, ...]] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def submit(
        self, session_id: str, kind: str, spec: dict | None, user: str
    ) -> dict:
        """Validate, register and start one session; returns its status."""
        if not isinstance(session_id, str) or not _ID_RE.match(session_id):
            raise BadRequest(
                f"bad session id {session_id!r}: ids are 1-64 chars of "
                f"[A-Za-z0-9_.-] starting alphanumeric"
            )
        spec = validate_spec(kind, spec)
        flight_dir = None
        if self.flight_root is not None and kind == "figure1":
            flight_dir = os.path.join(self.flight_root, session_id)
            os.makedirs(flight_dir, exist_ok=True)
        session = Session(
            session_id,
            kind,
            spec,
            user,
            audit_capacity=self.audit_capacity,
            command_slots=self.command_slots,
            flight_dir=flight_dir,
            poll_interval=self.poll_interval,
        )
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:
                raise DuplicateSession(
                    f"session {session_id!r} already exists "
                    f"(state {existing.state!r}); pick a fresh id"
                )
            live = sum(
                1 for s in self._sessions.values() if s.state not in TERMINAL
            )
            if live >= self.max_live:
                raise ManagerFull(
                    f"{live} live sessions (max {self.max_live}); kill or "
                    f"wait for one to finish"
                )
            self._prune_locked()
            self._sessions[session_id] = session
        session.record_audit(user, "submit", detail=kind)
        session.start()
        return session.status()

    def _prune_locked(self) -> None:
        """Drop oldest terminal sessions once the registry hits ``retain``."""
        while len(self._sessions) >= self.retain:
            oldest = None
            for sid, s in self._sessions.items():
                if s.state in TERMINAL and (
                    oldest is None
                    or s.created_at < self._sessions[oldest].created_at
                ):
                    oldest = sid
            if oldest is None:  # all live: submit() already bounded this
                return
            del self._sessions[oldest]

    def get(self, session_id: str) -> Session:
        """The session, or a 404 naming the known ids."""
        with self._lock:
            session = self._sessions.get(session_id)
            known = sorted(self._sessions)
        if session is None:
            raise UnknownSession(
                f"no session {session_id!r}; known ids: {known}"
            )
        return session

    def command(
        self, session_id: str, op: str, actor: str, target: int | None = None
    ) -> dict:
        """Route one command verb to a live session's bounded queue.

        ``resize`` carries its ``target`` pool size and has its own
        rejection ladder: kind must be ``figure1`` (409
        :class:`CommandUnsupported` — backtest jobs have no rank pool),
        target must be an int in ``1..RESIZE_MAX`` (400), and at most
        one resize may be pending at a time (409 :class:`ResizePending`
        — a second request before the epoch boundary would silently
        clobber the first).
        """
        if op not in COMMANDS:
            raise BadRequest(
                f"unknown command {op!r}; expected one of {list(COMMANDS)}"
            )
        session = self.get(session_id)
        if session.state in TERMINAL:
            raise SessionDead(
                f"session {session_id!r} is {session.state}; "
                f"commands apply only to live sessions"
            )
        arg = None
        if op == "resize":
            if session.kind != "figure1":
                raise CommandUnsupported(
                    f"session {session_id!r} is a {session.kind} job; only "
                    f"kind 'figure1' runs on a resizable rank pool"
                )
            if not isinstance(target, int) or isinstance(target, bool):
                raise BadRequest(
                    "resize requires an integer 'target' pool size "
                    "(e.g. ?target=4)"
                )
            if not 1 <= target <= RESIZE_MAX:
                raise BadRequest(
                    f"resize target must be in 1..{RESIZE_MAX}, got {target}"
                )
            if session.control.pending_resize is not None:
                raise ResizePending(
                    f"session {session_id!r} already has a resize to "
                    f"{session.control.pending_resize} pending; wait for "
                    f"the next epoch boundary to apply it"
                )
            arg = target
        elif target is not None:
            raise BadRequest(
                f"command {op!r} takes no 'target' parameter"
            )
        session.submit_command(op, actor, arg)
        return session.status()

    def kill_all(self, join_timeout: float = 5.0) -> None:
        """Best-effort shutdown: kill every live session and join briefly."""
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.state not in TERMINAL:
                session.control.kill()
        for session in sessions:
            session.join(join_timeout)

    # -- queries -------------------------------------------------------------

    def counts(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for s in self._sessions.values():
                states[s.state] = states.get(s.state, 0) + 1
            live = sum(
                1 for s in self._sessions.values() if s.state not in TERMINAL
            )
            return {"total": len(self._sessions), "live": live, **states}

    def list_sessions(self) -> list[dict]:
        with self._lock:
            sessions = sorted(
                self._sessions.values(), key=lambda s: (s.created_at, s.id)
            )
        return [s.status() for s in sessions]

    def telemetry(self, window: float = 5.0) -> dict:
        with self._lock:
            sessions = list(self._sessions.items())
        return {sid: s.telemetry(window) for sid, s in sorted(sessions)}

    # -- per-user watchlists -------------------------------------------------

    def set_watchlist(self, user: str, symbols) -> dict:
        """Replace a user's watchlist; capped in users and entries."""
        if not isinstance(symbols, list) or not all(
            isinstance(s, str) and 0 < len(s) <= 16 for s in symbols
        ):
            raise BadRequest(
                "watchlist body must be {\"symbols\": [\"XOM\", ...]} with "
                "1-16 character ticker strings"
            )
        if len(symbols) > self.watchlist_items:
            raise BadRequest(
                f"watchlist holds at most {self.watchlist_items} symbols, "
                f"got {len(symbols)}"
            )
        with self._lock:
            if (
                user not in self._watchlists
                and len(self._watchlists) >= self.watchlist_users
            ):
                raise ManagerFull(
                    f"{len(self._watchlists)} watchlist users "
                    f"(max {self.watchlist_users})"
                )
            # Growth is capped by the watchlist_users check above; existing
            # users only ever replace their entry.
            self._watchlists[user] = tuple(symbols)  # repro-lint: disable=repo.serve-bounded
        return {"user": user, "symbols": list(symbols)}

    def watchlist(self, user: str) -> dict:
        with self._lock:
            symbols = list(self._watchlists.get(user, ()))
        return {"user": user, "symbols": symbols}
