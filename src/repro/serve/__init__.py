"""repro.serve — multi-tenant serving layer over the Figure-1 runtime.

The paper's application is framed as a *service*: many concurrent users
submitting pair-trading sessions against live and historical data.  This
package is that front door, built entirely on the stdlib:

* :mod:`repro.serve.sessions` — the :class:`SessionManager` owning N
  concurrent sessions (supervised Figure-1 pipelines and store-backed
  backtest jobs), each on its own worker thread with a bounded command
  queue and a ring-backed append-only audit log;
* :mod:`repro.serve.app` — the route table, bearer-token auth and
  pointed 4xx validation mapping HTTP onto the manager, the obs
  registry, the per-session telemetry hubs and the columnar store;
* :mod:`repro.serve.http` — a dependency-free threading HTTP/1.1 JSON
  transport with per-route latency histograms and outcome counters.

Entry points: ``repro serve`` boots a server from the CLI;
``benchmarks/bench_serve.py`` drives it with thousands of simulated
clients and gates on p99 latency and read-path error rate.
"""

from __future__ import annotations

from repro.serve.app import ServeApp
from repro.serve.http import ServeHTTPServer, make_server
from repro.serve.sessions import (
    COMMANDS,
    KINDS,
    RESIZE_MAX,
    TERMINAL,
    BadRequest,
    CommandBacklog,
    CommandUnsupported,
    DuplicateSession,
    ManagerFull,
    ResizePending,
    ServeError,
    Session,
    SessionDead,
    SessionManager,
    UnknownSession,
    validate_spec,
)

__all__ = [
    "BadRequest",
    "COMMANDS",
    "CommandBacklog",
    "CommandUnsupported",
    "DuplicateSession",
    "KINDS",
    "ManagerFull",
    "RESIZE_MAX",
    "ResizePending",
    "ServeApp",
    "ServeError",
    "ServeHTTPServer",
    "Session",
    "SessionDead",
    "SessionManager",
    "TERMINAL",
    "UnknownSession",
    "make_server",
    "validate_spec",
]
