"""Route table, auth and handlers: the serving layer's application core.

:class:`ServeApp` binds a :class:`~repro.serve.sessions.SessionManager`
(and optionally a :class:`~repro.store.StoreReader`) to a declarative
route table.  The transport (:mod:`repro.serve.http`) hands it one
normalised :class:`~repro.serve.http.Request`; dispatch here matches the
path, checks the bearer token (constant-time compare; only ``/health``
is open), validates every query parameter against the route's allow
list, and maps :class:`~repro.serve.sessions.ServeError` subclasses to
their HTTP statuses.  Handlers therefore only ever see well-formed
requests and return plain JSON-safe payloads.

Routes
------

====== ================================ ===========================
GET    /health                          liveness + session counts
GET    /telemetry                       registry snapshot + sessions
GET    /metrics                         Prometheus exposition text
GET    /sessions                        list all sessions
POST   /sessions                        submit a session (201)
GET    /sessions/{id}                   one session's status
POST   /sessions/{id}/{pause|resume|kill} queue a command (202)
POST   /sessions/{id}/resize?target=N    queue a pool resize (202)
DELETE /sessions/{id}                   kill alias (202)
GET    /sessions/{id}/audit             append-only audit tail
GET    /sessions/{id}/positions         open positions (checkpointed)
GET    /sessions/{id}/signals           latest pair correlations
GET    /users/{user}/watchlist          a user's watchlist
PUT    /users/{user}/watchlist          replace it
GET    /store/days                      store manifest summary
GET    /store/scan                      predicate-pushdown scan
====== ================================ ===========================
"""

from __future__ import annotations

import hmac
import time
from dataclasses import dataclass
from typing import Callable

from repro.obs import Obs, registry_snapshot
from repro.obs.live.export import render_prometheus
from repro.serve.http import Request, Response
from repro.serve.sessions import BadRequest, ServeError, SessionManager

#: Hard ceiling on rows a single /store/scan response may carry.
SCAN_LIMIT_MAX = 10_000


class NotFound(ServeError):
    """No route matches the request path (404)."""

    status = 404


class MethodNotAllowed(ServeError):
    """The path exists but not under this method (405)."""

    status = 405


@dataclass(frozen=True)
class Route:
    """One endpoint: method, path template, handler and its allow list."""

    method: str
    #: Path split into segments; ``{name}`` segments capture into
    #: ``request.vars[name]``.
    template: tuple[str, ...]
    name: str
    handler: Callable[["ServeApp", Request], Response]
    #: Query parameters this route accepts (anything else is a 400).
    params: tuple[str, ...] = ()
    auth: bool = True

    def match(self, parts: tuple[str, ...]) -> dict[str, str] | None:
        if len(parts) != len(self.template):
            return None
        captured: dict[str, str] = {}
        for pattern, part in zip(self.template, parts):
            if pattern.startswith("{") and pattern.endswith("}"):
                captured[pattern[1:-1]] = part
            elif pattern != part:
                return None
        return captured


class ServeApp:
    """The serving application: one manager, one token, one route table."""

    def __init__(
        self,
        manager: SessionManager,
        token: str,
        obs: Obs | None = None,
        store=None,
    ):
        self.manager = manager
        self.token = token
        self.obs = obs if obs is not None else Obs(enabled=True)
        self.store = store
        self.routes: tuple[Route, ...] = tuple(_build_routes())

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Match, authenticate, validate, run — or map the failure."""
        try:
            route, captured = self._match(request)
            request.route = route.name
            request.vars = captured
            if route.auth and not self._authorized(request.token):
                return Response(
                    401,
                    {
                        "error": "missing or invalid bearer token; send "
                        "'Authorization: Bearer <token>'"
                    },
                )
            request.require_known_params(route.params)
            return route.handler(self, request)
        except ServeError as exc:
            return Response(exc.status, {"error": str(exc)})

    def _match(self, request: Request) -> tuple[Route, dict[str, str]]:
        other_methods = []
        for route in self.routes:
            captured = route.match(request.parts)
            if captured is None:
                continue
            if route.method == request.method:
                return route, captured
            other_methods.append(route.method)
        if other_methods:
            raise MethodNotAllowed(
                f"{request.method} not allowed on {request.path}; "
                f"allowed: {sorted(set(other_methods))}"
            )
        known = sorted(
            {f"{r.method} /{'/'.join(r.template)}" for r in self.routes}
        )
        raise NotFound(
            f"no route {request.method} {request.path}; routes: {known}"
        )

    def _authorized(self, token: str | None) -> bool:
        if token is None:
            return False
        return hmac.compare_digest(token.encode(), self.token.encode())

    # -- handlers ------------------------------------------------------------

    def _health(self, request: Request) -> Response:
        return Response(
            200,
            {
                "status": "ok",
                "uptime": time.time() - self.manager.started_at,
                "sessions": self.manager.counts(),
                "store": self.store is not None,
            },
        )

    def _telemetry(self, request: Request) -> Response:
        window = request.float_param("window", 5.0)
        snap = registry_snapshot(self.obs.metrics, quantiles=True, retries=4)
        return Response(
            200,
            {
                "server": snap or {},
                "sessions": self.manager.telemetry(window),
            },
        )

    def _metrics(self, request: Request) -> Response:
        return Response(200, render_prometheus(self.obs.metrics))

    def _sessions_list(self, request: Request) -> Response:
        return Response(200, {"sessions": self.manager.list_sessions()})

    def _sessions_submit(self, request: Request) -> Response:
        body = request.body
        if body is None:
            raise BadRequest(
                "POST /sessions needs a JSON body: "
                "{\"id\": ..., \"kind\": ..., \"spec\": {...}, \"user\": ...}"
            )
        unknown = sorted(set(body) - {"id", "kind", "spec", "user"})
        if unknown:
            raise BadRequest(
                f"unknown body key {unknown[0]!r}; "
                f"allowed: ['id', 'kind', 'spec', 'user']"
            )
        for key in ("id", "kind"):
            if not isinstance(body.get(key), str):
                raise BadRequest(f"body key {key!r} must be a string")
        spec = body.get("spec")
        if spec is not None and not isinstance(spec, dict):
            raise BadRequest("body key 'spec' must be a JSON object")
        user = body.get("user", "anonymous")
        if not isinstance(user, str):
            raise BadRequest("body key 'user' must be a string")
        status = self.manager.submit(body["id"], body["kind"], spec, user)
        return Response(201, status)

    def _session_get(self, request: Request) -> Response:
        return Response(200, self.manager.get(request.vars["sid"]).status())

    def _session_command(self, request: Request) -> Response:
        actor = request.query.get("actor", "api")
        target = request.int_param("target", None)
        status = self.manager.command(
            request.vars["sid"], request.vars["cmd"], actor, target=target
        )
        return Response(202, status)

    def _session_delete(self, request: Request) -> Response:
        actor = request.query.get("actor", "api")
        status = self.manager.command(request.vars["sid"], "kill", actor)
        return Response(202, status)

    def _session_audit(self, request: Request) -> Response:
        limit = request.int_param("limit", None, lo=1)
        session = self.manager.get(request.vars["sid"])
        return Response(200, session.audit_entries(limit))

    def _session_positions(self, request: Request) -> Response:
        return Response(200, self.manager.get(request.vars["sid"]).positions())

    def _session_signals(self, request: Request) -> Response:
        limit = request.int_param("limit", 100, lo=1, hi=10_000)
        session = self.manager.get(request.vars["sid"])
        return Response(200, session.signals(limit))

    def _watchlist_get(self, request: Request) -> Response:
        return Response(200, self.manager.watchlist(request.vars["user"]))

    def _watchlist_put(self, request: Request) -> Response:
        body = request.body
        if body is None or "symbols" not in body:
            raise BadRequest(
                "PUT watchlist needs a JSON body: {\"symbols\": [...]}"
            )
        return Response(
            200,
            self.manager.set_watchlist(request.vars["user"], body["symbols"]),
        )

    # -- store routes --------------------------------------------------------

    def _require_store(self):
        if self.store is None:
            raise BadRequest(
                "no store attached to this server; restart with "
                "--store-root pointing at an ingested store"
            )
        return self.store

    def _store_days(self, request: Request) -> Response:
        store = self._require_store()
        return Response(
            200,
            {
                "days": list(store.days),
                "symbols": list(store.universe.symbols),
                "trading_seconds": store.trading_seconds,
            },
        )

    def _store_scan(self, request: Request) -> Response:
        store = self._require_store()
        days = request.int_list_param("days")
        symbols = request.list_param("symbols")
        columns = request.list_param("columns")
        t_min = request.float_param("t_min", None)
        t_max = request.float_param("t_max", None)
        limit = request.int_param("limit", 1000, lo=1, hi=SCAN_LIMIT_MAX)
        cached = request.bool_param("cached", False)
        out: dict[str, list] = {}
        rows = 0
        truncated = False
        try:
            for batch in store.scan(
                columns=columns,
                days=days,
                symbols=symbols,
                t_min=t_min,
                t_max=t_max,
                cached=cached,
            ):
                take = min(batch.rows, limit - rows)
                for name, values in batch.columns.items():
                    out.setdefault(name, []).extend(
                        values[:take].tolist()
                    )
                rows += take
                if rows >= limit:
                    truncated = take < batch.rows
                    break
        except (KeyError, ValueError) as exc:
            raise BadRequest(f"bad scan predicate: {exc}") from None
        return Response(
            200,
            {"rows": rows, "truncated": truncated, "columns": out},
        )


def _build_routes() -> list[Route]:
    return [
        Route("GET", ("health",), "health", ServeApp._health, auth=False),
        Route(
            "GET", ("telemetry",), "telemetry", ServeApp._telemetry,
            params=("window",),
        ),
        Route("GET", ("metrics",), "metrics", ServeApp._metrics),
        Route("GET", ("sessions",), "sessions_list", ServeApp._sessions_list),
        Route(
            "POST", ("sessions",), "sessions_submit", ServeApp._sessions_submit
        ),
        Route(
            "GET", ("sessions", "{sid}"), "session_get", ServeApp._session_get
        ),
        Route(
            "POST",
            ("sessions", "{sid}", "{cmd}"),
            "session_command",
            ServeApp._session_command,
            params=("actor", "target"),
        ),
        Route(
            "DELETE",
            ("sessions", "{sid}"),
            "session_delete",
            ServeApp._session_delete,
            params=("actor",),
        ),
        Route(
            "GET",
            ("sessions", "{sid}", "audit"),
            "session_audit",
            ServeApp._session_audit,
            params=("limit",),
        ),
        Route(
            "GET",
            ("sessions", "{sid}", "positions"),
            "session_positions",
            ServeApp._session_positions,
        ),
        Route(
            "GET",
            ("sessions", "{sid}", "signals"),
            "session_signals",
            ServeApp._session_signals,
            params=("limit",),
        ),
        Route(
            "GET",
            ("users", "{user}", "watchlist"),
            "watchlist_get",
            ServeApp._watchlist_get,
        ),
        Route(
            "PUT",
            ("users", "{user}", "watchlist"),
            "watchlist_put",
            ServeApp._watchlist_put,
        ),
        Route("GET", ("store", "days"), "store_days", ServeApp._store_days),
        Route(
            "GET",
            ("store", "scan"),
            "store_scan",
            ServeApp._store_scan,
            params=(
                "days", "symbols", "columns", "t_min", "t_max", "limit",
                "cached",
            ),
        ),
    ]


