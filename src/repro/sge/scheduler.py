"""A Sun Grid Engine-style batch scheduler, simulated.

Jobs are independent callables (the Approach-2 unit is one
(pair, day, parameter set) backtest).  The scheduler executes them
serially on the current machine — measuring each job's real duration —
while *simulating* their placement onto ``n_slots`` parallel slots with
FIFO dispatch: each finished job's duration is added to the earliest-free
slot, exactly how a list scheduler fills an SGE queue of independent
equal-priority jobs.  The simulated makespan is what the paper's
"sent out independent Matlab jobs to a Sun Grid Engine" setup would
achieve, minus queueing overheads.

The simulation also supports *declared* durations (no execution), used by
the scaling benchmark to extrapolate the paper's 854-hour arithmetic.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import Obs
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Job:
    """An independent unit of work with an identifying name."""

    name: str
    fn: Callable[[], Any]

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(f"job {self.name!r}: fn must be callable")


@dataclass(frozen=True)
class JobResult:
    """Execution record of one job."""

    name: str
    result: Any
    duration: float
    slot: int
    sim_start: float
    sim_end: float


@dataclass
class ScheduleReport:
    """Outcome of a scheduler run."""

    results: list[JobResult] = field(default_factory=list)
    n_slots: int = 1

    @property
    def makespan(self) -> float:
        """Simulated completion time across all slots."""
        return max((r.sim_end for r in self.results), default=0.0)

    @property
    def serial_time(self) -> float:
        """Sum of all job durations (1-slot makespan)."""
        return sum(r.duration for r in self.results)

    @property
    def speedup(self) -> float:
        """Serial time over simulated makespan."""
        makespan = self.makespan
        return self.serial_time / makespan if makespan > 0 else 1.0

    def slot_loads(self) -> dict[int, float]:
        loads: dict[int, float] = {s: 0.0 for s in range(self.n_slots)}
        for r in self.results:
            loads[r.slot] += r.duration
        return loads


class SgeScheduler:
    """FIFO list scheduler over ``n_slots`` simulated execution slots."""

    def __init__(self, n_slots: int = 8, obs: Obs | None = None):
        check_positive_int(n_slots, "n_slots")
        self.n_slots = n_slots
        self.obs = obs
        self._queue: list[Job] = []

    def _record(self, report: ScheduleReport, simulated: bool) -> None:
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        kind = "simulated" if simulated else "executed"
        obs.metrics.counter(f"sge.jobs.{kind}").inc(len(report.results))
        hist = obs.metrics.histogram("sge.job.seconds")
        for r in report.results:
            hist.observe(r.duration)
        obs.metrics.gauge("sge.makespan.seconds").set(report.makespan)
        obs.metrics.gauge("sge.speedup").set(report.speedup)

    def submit(self, job: Job) -> None:
        """Queue a job (``qsub``)."""
        self._queue.append(job)

    def submit_many(self, jobs) -> None:
        for job in jobs:
            self.submit(job)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def run(self) -> ScheduleReport:
        """Execute all queued jobs, simulating slot placement.

        Jobs run serially in submission order on the calling thread (their
        results and any exceptions are real); placement and makespan are
        simulated from the measured durations.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        # Min-heap of (free_time, slot).
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for job in self._queue:
            t0 = time.perf_counter()
            result = job.fn()
            duration = time.perf_counter() - t0
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + duration, slot))
            report.results.append(
                JobResult(
                    name=job.name,
                    result=result,
                    duration=duration,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + duration,
                )
            )
        self._queue.clear()
        self._record(report, simulated=False)
        return report

    def simulate(self, durations: dict[str, float]) -> ScheduleReport:
        """Pure placement simulation from declared durations (no execution).

        Used for paper-scale extrapolations: feed it the measured per-job
        cost times the paper's job counts and read off the makespan.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for name, duration in durations.items():
            if duration < 0:
                raise ValueError(f"job {name!r}: duration must be >= 0")
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + duration, slot))
            report.results.append(
                JobResult(
                    name=name,
                    result=None,
                    duration=duration,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + duration,
                )
            )
        self._record(report, simulated=True)
        return report
