"""A Sun Grid Engine-style batch scheduler, simulated.

Jobs are independent callables (the Approach-2 unit is one
(pair, day, parameter set) backtest).  The scheduler executes them
serially on the current machine — measuring each job's real duration —
while *simulating* their placement onto ``n_slots`` parallel slots with
FIFO dispatch: each finished job's duration is added to the earliest-free
slot, exactly how a list scheduler fills an SGE queue of independent
equal-priority jobs.  The simulated makespan is what the paper's
"sent out independent Matlab jobs to a Sun Grid Engine" setup would
achieve, minus queueing overheads.

The simulation also supports *declared* durations (no execution), used by
the scaling benchmark to extrapolate the paper's 854-hour arithmetic.

Real grids requeue transiently-failed jobs; :class:`RetryPolicy` models
that with capped exponential backoff plus seeded jitter.  The backoff is
*simulated* — added to the slot occupancy like ``qsub`` hold time, never
slept — so retrying runs stay fast and deterministic.
"""

from __future__ import annotations

import heapq
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import Obs
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Job:
    """An independent unit of work with an identifying name."""

    name: str
    fn: Callable[[], Any]

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(f"job {self.name!r}: fn must be callable")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter for failed jobs.

    Attempt ``a`` (0-based) that fails waits
    ``min(base * factor**a, cap) * (1 + jitter * u)`` with ``u`` drawn
    uniformly from ``[0, 1)`` by a ``random.Random(seed)`` stream, so a
    given (policy, submission order) pair always produces the same
    simulated schedule.  The wait is charged to the job's slot, not
    slept.
    """

    max_retries: int = 2
    base: float = 1.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        for name in ("base", "factor", "cap"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Simulated backoff before re-running failed attempt ``attempt``."""
        raw = min(self.base * self.factor**attempt, self.cap)
        return raw * (1.0 + self.jitter * rng.random())


class JobFailure(RuntimeError):
    """A job exhausted its retry budget; carries the original traceback."""

    def __init__(self, name: str, attempts: int, exc: BaseException):
        self.name = name
        self.attempts = attempts
        self.exc_type = type(exc).__name__
        self.original_traceback = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        super().__init__(
            f"job {name!r} failed after {attempts} attempt(s): "
            f"{self.exc_type}: {exc}\n--- original traceback ---\n"
            f"{self.original_traceback}"
        )


@dataclass(frozen=True)
class JobResult:
    """Execution record of one job."""

    name: str
    result: Any
    duration: float
    slot: int
    sim_start: float
    sim_end: float
    attempts: int = 1


@dataclass
class ScheduleReport:
    """Outcome of a scheduler run."""

    results: list[JobResult] = field(default_factory=list)
    n_slots: int = 1

    @property
    def makespan(self) -> float:
        """Simulated completion time across all slots."""
        return max((r.sim_end for r in self.results), default=0.0)

    @property
    def serial_time(self) -> float:
        """Sum of all job durations (1-slot makespan)."""
        return sum(r.duration for r in self.results)

    @property
    def speedup(self) -> float:
        """Serial time over simulated makespan."""
        makespan = self.makespan
        return self.serial_time / makespan if makespan > 0 else 1.0

    def slot_loads(self) -> dict[int, float]:
        loads: dict[int, float] = {s: 0.0 for s in range(self.n_slots)}
        for r in self.results:
            loads[r.slot] += r.duration
        return loads


class SgeScheduler:
    """FIFO list scheduler over ``n_slots`` simulated execution slots."""

    def __init__(
        self,
        n_slots: int = 8,
        obs: Obs | None = None,
        retry: RetryPolicy | None = None,
        clock=time.perf_counter,
    ):
        check_positive_int(n_slots, "n_slots")
        self.n_slots = n_slots
        self.obs = obs
        self.retry = retry
        # Injectable time source for job-duration measurement.  Durations
        # feed the *simulated* placement/makespan, so a virtual clock makes
        # the whole schedule deterministic (tests inject one); the default
        # measures real attempt cost and is the only ambient-clock read in
        # this module.
        self._clock = clock
        self._queue: list[Job] = []

    def _record(self, report: ScheduleReport, simulated: bool) -> None:
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        kind = "simulated" if simulated else "executed"
        obs.metrics.counter(f"sge.jobs.{kind}").inc(len(report.results))
        hist = obs.metrics.histogram("sge.job.seconds")
        for r in report.results:
            hist.observe(r.duration)
        obs.metrics.gauge("sge.makespan.seconds").set(report.makespan)
        obs.metrics.gauge("sge.speedup").set(report.speedup)

    def submit(self, job: Job) -> None:
        """Queue a job (``qsub``)."""
        self._queue.append(job)

    def submit_many(self, jobs) -> None:
        for job in jobs:
            self.submit(job)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _run_with_retry(self, job: Job, rng: random.Random):
        """Run one job under the retry policy.

        Returns ``(result, wall_seconds, occupancy_seconds, attempts)``:
        wall time is the real cost of every attempt; occupancy adds the
        simulated backoff waits, since on a real grid the requeued job
        still blocks its slot's schedule.  Raises :class:`JobFailure`
        (chaining the last error) once retries are exhausted.
        """
        max_retries = self.retry.max_retries if self.retry is not None else 0
        wall = 0.0
        occupancy = 0.0
        for attempt in range(max_retries + 1):
            t0 = self._clock()
            try:
                result = job.fn()
            except Exception as exc:
                elapsed = self._clock() - t0
                wall += elapsed
                occupancy += elapsed
                if attempt >= max_retries:
                    raise JobFailure(job.name, attempt + 1, exc) from exc
                occupancy += self.retry.delay(attempt, rng)
                if self.obs is not None and self.obs.enabled:
                    self.obs.metrics.counter("sge.job.retries").inc()
            else:
                elapsed = self._clock() - t0
                wall += elapsed
                occupancy += elapsed
                return result, wall, occupancy, attempt + 1
        raise AssertionError("unreachable: loop returns or raises")

    def run(self) -> ScheduleReport:
        """Execute all queued jobs, simulating slot placement.

        Jobs run serially in submission order on the calling thread (their
        results and any exceptions are real); placement and makespan are
        simulated from the measured durations.  With a
        :class:`RetryPolicy`, failed jobs re-run up to ``max_retries``
        times (backoff charged to the slot, not slept); a job that
        exhausts its budget raises :class:`JobFailure` carrying the
        original remote traceback.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        rng = random.Random(self.retry.seed if self.retry is not None else 0)
        # Min-heap of (free_time, slot).
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for job in self._queue:
            result, wall, occupancy, attempts = self._run_with_retry(job, rng)
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + occupancy, slot))
            report.results.append(
                JobResult(
                    name=job.name,
                    result=result,
                    duration=wall,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + occupancy,
                    attempts=attempts,
                )
            )
        self._queue.clear()
        self._record(report, simulated=False)
        return report

    def simulate(self, durations: dict[str, float]) -> ScheduleReport:
        """Pure placement simulation from declared durations (no execution).

        Used for paper-scale extrapolations: feed it the measured per-job
        cost times the paper's job counts and read off the makespan.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for name, duration in durations.items():
            if duration < 0:
                raise ValueError(f"job {name!r}: duration must be >= 0")
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + duration, slot))
            report.results.append(
                JobResult(
                    name=name,
                    result=None,
                    duration=duration,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + duration,
                )
            )
        self._record(report, simulated=True)
        return report
