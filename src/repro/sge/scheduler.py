"""A Sun Grid Engine-style batch scheduler, simulated.

Jobs are independent callables (the Approach-2 unit is one
(pair, day, parameter set) backtest).  The scheduler executes them
serially on the current machine — measuring each job's real duration —
while *simulating* their placement onto ``n_slots`` parallel slots with
FIFO dispatch: each finished job's duration is added to the earliest-free
slot, exactly how a list scheduler fills an SGE queue of independent
equal-priority jobs.  The simulated makespan is what the paper's
"sent out independent Matlab jobs to a Sun Grid Engine" setup would
achieve, minus queueing overheads.

The simulation also supports *declared* durations (no execution), used by
the scaling benchmark to extrapolate the paper's 854-hour arithmetic.

Real grids requeue transiently-failed jobs; :class:`RetryPolicy` models
that with capped exponential backoff plus seeded jitter.  The backoff is
*simulated* — added to the slot occupancy like ``qsub`` hold time, never
slept — so retrying runs stay fast and deterministic.

Two placement disciplines are simulated.  FIFO (:meth:`SgeScheduler.run`
/ :meth:`~SgeScheduler.simulate`) dispatches each finished job to the
earliest-free slot.  Partitioned (:meth:`~SgeScheduler.run_partitioned`
/ :meth:`~SgeScheduler.simulate_partitioned`) pre-assigns job ``i`` to
slot ``i % n_slots`` — a grid array job's static split — and optionally
lets idle slots *steal* from the tail of the most-loaded queue, so one
straggler-heavy queue no longer sets the makespan.  Results are bitwise
identical across all four (execution is always serial); only the
simulated schedule differs, which is exactly the elastic runtime's
losing-or-adding-a-worker-never-changes-results contract.
"""

from __future__ import annotations

import heapq
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import Obs
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Job:
    """An independent unit of work with an identifying name."""

    name: str
    fn: Callable[[], Any]

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(f"job {self.name!r}: fn must be callable")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter for failed jobs.

    Attempt ``a`` (0-based) that fails waits
    ``min(base * factor**a, cap) * (1 + jitter * u)`` with ``u`` drawn
    uniformly from ``[0, 1)`` by a ``random.Random(seed)`` stream, so a
    given (policy, submission order) pair always produces the same
    simulated schedule.  The wait is charged to the job's slot, not
    slept.
    """

    max_retries: int = 2
    base: float = 1.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        for name in ("base", "factor", "cap"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Simulated backoff before re-running failed attempt ``attempt``."""
        raw = min(self.base * self.factor**attempt, self.cap)
        return raw * (1.0 + self.jitter * rng.random())


class JobFailure(RuntimeError):
    """A job exhausted its retry budget; carries the original traceback."""

    def __init__(self, name: str, attempts: int, exc: BaseException):
        self.name = name
        self.attempts = attempts
        self.exc_type = type(exc).__name__
        self.original_traceback = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        super().__init__(
            f"job {name!r} failed after {attempts} attempt(s): "
            f"{self.exc_type}: {exc}\n--- original traceback ---\n"
            f"{self.original_traceback}"
        )


@dataclass(frozen=True)
class JobResult:
    """Execution record of one job.

    ``home_slot`` is set by the partitioned schedules: the slot the job
    was pre-assigned to.  When it differs from ``slot``, an idle slot
    stole the job from its home queue's tail.
    """

    name: str
    result: Any
    duration: float
    slot: int
    sim_start: float
    sim_end: float
    attempts: int = 1
    home_slot: int | None = None

    @property
    def stolen(self) -> bool:
        """True when a work-steal moved this job off its home slot."""
        return self.home_slot is not None and self.home_slot != self.slot


@dataclass
class ScheduleReport:
    """Outcome of a scheduler run."""

    results: list[JobResult] = field(default_factory=list)
    n_slots: int = 1

    @property
    def makespan(self) -> float:
        """Simulated completion time across all slots."""
        return max((r.sim_end for r in self.results), default=0.0)

    @property
    def serial_time(self) -> float:
        """Sum of all job durations (1-slot makespan)."""
        return sum(r.duration for r in self.results)

    @property
    def speedup(self) -> float:
        """Serial time over simulated makespan."""
        makespan = self.makespan
        return self.serial_time / makespan if makespan > 0 else 1.0

    def slot_loads(self) -> dict[int, float]:
        loads: dict[int, float] = {s: 0.0 for s in range(self.n_slots)}
        for r in self.results:
            loads[r.slot] += r.duration
        return loads

    @property
    def n_stolen(self) -> int:
        """Jobs a work-steal moved off their home slot (0 for FIFO runs)."""
        return sum(1 for r in self.results if r.stolen)

    @property
    def stolen_seconds(self) -> float:
        """Total duration of stolen jobs — the load the steal rebalanced."""
        return sum(r.duration for r in self.results if r.stolen)


class SgeScheduler:
    """FIFO list scheduler over ``n_slots`` simulated execution slots."""

    def __init__(
        self,
        n_slots: int = 8,
        obs: Obs | None = None,
        retry: RetryPolicy | None = None,
        clock=time.perf_counter,
    ):
        check_positive_int(n_slots, "n_slots")
        self.n_slots = n_slots
        self.obs = obs
        self.retry = retry
        # Injectable time source for job-duration measurement.  Durations
        # feed the *simulated* placement/makespan, so a virtual clock makes
        # the whole schedule deterministic (tests inject one); the default
        # measures real attempt cost and is the only ambient-clock read in
        # this module.
        self._clock = clock
        self._queue: list[Job] = []

    def _record(self, report: ScheduleReport, simulated: bool) -> None:
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        kind = "simulated" if simulated else "executed"
        obs.metrics.counter(f"sge.jobs.{kind}").inc(len(report.results))
        hist = obs.metrics.histogram("sge.job.seconds")
        for r in report.results:
            hist.observe(r.duration)
        obs.metrics.gauge("sge.makespan.seconds").set(report.makespan)
        obs.metrics.gauge("sge.speedup").set(report.speedup)
        if report.n_stolen:
            obs.metrics.counter("sge.steal.jobs").inc(report.n_stolen)
            obs.metrics.counter("sge.steal.seconds").inc(
                report.stolen_seconds
            )

    def submit(self, job: Job) -> None:
        """Queue a job (``qsub``)."""
        self._queue.append(job)

    def submit_many(self, jobs) -> None:
        for job in jobs:
            self.submit(job)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _run_with_retry(self, job: Job, rng: random.Random):
        """Run one job under the retry policy.

        Returns ``(result, wall_seconds, occupancy_seconds, attempts)``:
        wall time is the real cost of every attempt; occupancy adds the
        simulated backoff waits, since on a real grid the requeued job
        still blocks its slot's schedule.  Raises :class:`JobFailure`
        (chaining the last error) once retries are exhausted.
        """
        max_retries = self.retry.max_retries if self.retry is not None else 0
        wall = 0.0
        occupancy = 0.0
        for attempt in range(max_retries + 1):
            t0 = self._clock()
            try:
                result = job.fn()
            except Exception as exc:
                elapsed = self._clock() - t0
                wall += elapsed
                occupancy += elapsed
                if attempt >= max_retries:
                    raise JobFailure(job.name, attempt + 1, exc) from exc
                occupancy += self.retry.delay(attempt, rng)
                if self.obs is not None and self.obs.enabled:
                    self.obs.metrics.counter("sge.job.retries").inc()
            else:
                elapsed = self._clock() - t0
                wall += elapsed
                occupancy += elapsed
                return result, wall, occupancy, attempt + 1
        raise AssertionError("unreachable: loop returns or raises")

    def run(self) -> ScheduleReport:
        """Execute all queued jobs, simulating slot placement.

        Jobs run serially in submission order on the calling thread (their
        results and any exceptions are real); placement and makespan are
        simulated from the measured durations.  With a
        :class:`RetryPolicy`, failed jobs re-run up to ``max_retries``
        times (backoff charged to the slot, not slept); a job that
        exhausts its budget raises :class:`JobFailure` carrying the
        original remote traceback.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        rng = random.Random(self.retry.seed if self.retry is not None else 0)
        # Min-heap of (free_time, slot).
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for job in self._queue:
            result, wall, occupancy, attempts = self._run_with_retry(job, rng)
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + occupancy, slot))
            report.results.append(
                JobResult(
                    name=job.name,
                    result=result,
                    duration=wall,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + occupancy,
                    attempts=attempts,
                )
            )
        self._queue.clear()
        self._record(report, simulated=False)
        return report

    def simulate(self, durations: dict[str, float]) -> ScheduleReport:
        """Pure placement simulation from declared durations (no execution).

        Used for paper-scale extrapolations: feed it the measured per-job
        cost times the paper's job counts and read off the makespan.
        """
        report = ScheduleReport(n_slots=self.n_slots)
        slots = [(0.0, s) for s in range(self.n_slots)]
        heapq.heapify(slots)
        for name, duration in durations.items():
            if duration < 0:
                raise ValueError(f"job {name!r}: duration must be >= 0")
            free_at, slot = heapq.heappop(slots)
            heapq.heappush(slots, (free_at + duration, slot))
            report.results.append(
                JobResult(
                    name=name,
                    result=None,
                    duration=duration,
                    slot=slot,
                    sim_start=free_at,
                    sim_end=free_at + duration,
                )
            )
        self._record(report, simulated=True)
        return report

    # -- partitioned queues and work-stealing ---------------------------------

    def _partitioned_placement(
        self, durations: list[float], steal: bool
    ) -> list[tuple[int, int, float, float]]:
        """Place jobs pre-assigned round-robin to per-slot queues.

        Job ``i`` is queued on home slot ``i % n_slots`` (the static
        partition a real grid's array job produces).  Slots drain their
        own queue front-first; with ``steal`` an idle slot instead takes
        a job from the *tail* of the victim with the most remaining
        queued work (ties toward the lowest slot id), which is the
        classic steal-from-the-back discipline: the tail is the work its
        owner would reach last, so a steal never races the owner's next
        dequeue.  The whole placement is a pure function of
        ``(durations, n_slots, steal)`` — no clock, no randomness — so
        stolen and unstolen schedules are exactly reproducible.

        Returns ``(slot, home_slot, sim_start, sim_end)`` per job index.
        """
        n_slots = self.n_slots
        queues: list[list[int]] = [[] for _ in range(n_slots)]
        for idx in range(len(durations)):
            queues[idx % n_slots].append(idx)
        heads = [0] * n_slots  # queue fronts (owner side)
        remaining = [
            sum(durations[idx] for idx in queue) for queue in queues
        ]
        free = [0.0] * n_slots
        placed: list[tuple[int, int, float, float]] = [
            (0, 0, 0.0, 0.0)
        ] * len(durations)
        pending = len(durations)
        while pending:
            slot = min(range(n_slots), key=lambda s: (free[s], s))
            if heads[slot] < len(queues[slot]):
                victim = slot
                idx = queues[slot][heads[slot]]
                heads[slot] += 1
            elif steal:
                victims = [
                    v for v in range(n_slots) if heads[v] < len(queues[v])
                ]
                victim = max(victims, key=lambda v: (remaining[v], -v))
                idx = queues[victim].pop()  # tail, away from the owner
            else:
                free[slot] = float("inf")  # drained; owner-only mode
                continue
            start = free[slot]
            end = start + durations[idx]
            free[slot] = end
            remaining[victim] -= durations[idx]
            placed[idx] = (slot, idx % n_slots, start, end)
            pending -= 1
        return placed

    def run_partitioned(self, steal: bool = False) -> ScheduleReport:
        """Execute queued jobs under static per-slot queues (± stealing).

        Execution is identical to :meth:`run` — jobs run serially in
        submission order, so results and exceptions are the same objects
        regardless of placement; only the *simulated* schedule changes.
        That is the work-stealing contract: stolen and unstolen runs are
        bitwise-equal in results and differ only in makespan.
        """
        executed = []
        rng = random.Random(self.retry.seed if self.retry is not None else 0)
        for job in self._queue:
            result, wall, occupancy, attempts = self._run_with_retry(job, rng)
            executed.append((job.name, result, wall, occupancy, attempts))
        self._queue.clear()
        placed = self._partitioned_placement(
            [occ for _, _, _, occ, _ in executed], steal
        )
        report = ScheduleReport(n_slots=self.n_slots)
        for (name, result, wall, _occ, attempts), (
            slot, home, start, end,
        ) in zip(executed, placed):
            report.results.append(
                JobResult(
                    name=name,
                    result=result,
                    duration=wall,
                    slot=slot,
                    sim_start=start,
                    sim_end=end,
                    attempts=attempts,
                    home_slot=home,
                )
            )
        self._record(report, simulated=False)
        return report

    def simulate_partitioned(
        self, durations: dict[str, float], steal: bool = False
    ) -> ScheduleReport:
        """Partitioned-queue placement from declared durations.

        The straggler benchmark runs this twice — ``steal=False`` then
        ``steal=True`` on the same durations — and gates on the makespan
        ratio; determinism of :meth:`_partitioned_placement` makes the
        comparison exact.
        """
        names = list(durations)
        values = [durations[name] for name in names]
        for name, duration in zip(names, values):
            if duration < 0:
                raise ValueError(f"job {name!r}: duration must be >= 0")
        placed = self._partitioned_placement(values, steal)
        report = ScheduleReport(n_slots=self.n_slots)
        for name, duration, (slot, home, start, end) in zip(
            names, values, placed
        ):
            report.results.append(
                JobResult(
                    name=name,
                    result=None,
                    duration=duration,
                    slot=slot,
                    sim_start=start,
                    sim_end=end,
                    home_slot=home,
                )
            )
        self._record(report, simulated=True)
        return report
