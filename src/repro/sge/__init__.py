"""Sun Grid Engine scheduler simulator.

The paper's Approach 2 "reduced the computation time by creating scripts
which sent out independent Matlab jobs to a Sun Grid Engine scheduler".
This subpackage simulates that batch-queue architecture: independent jobs,
a fixed number of slots, FIFO dispatch with greedy slot assignment — so
the Section-IV scaling benchmark can report the makespan SGE distribution
would achieve without needing a cluster.
"""

from repro.sge.scheduler import (
    Job,
    JobFailure,
    JobResult,
    RetryPolicy,
    SgeScheduler,
)

__all__ = ["Job", "JobFailure", "JobResult", "RetryPolicy", "SgeScheduler"]
