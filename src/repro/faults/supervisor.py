"""Self-healing session supervision: epochs, checkpoints, restart.

The supervisor slices a Figure-1 session's interval axis into *epochs*
(``checkpoint_every`` intervals each) and runs one SPMD session per
epoch.  Each non-final epoch ends in a pause: end-of-stream drains all
in-flight traffic (so the cut is consistent), every stateful component
snapshots, and the snapshots are allgathered into a checkpoint.  The
next epoch rebuilds the workflow from scratch (fresh processes/threads,
fresh queues), restores the checkpoint, points the collectors' replay
range at the watermark, and continues the stream.

When an epoch fails — an injected crash, a detected sequence gap, a
stalled rank timing out — the supervisor rebuilds, restores the *same*
checkpoint and re-runs the epoch at the next global attempt number
(attempt-scoped fault plans therefore do not re-fire).  Because
component snapshots are deep copies and the collectors re-derive their
data deterministically, a recovered session is bitwise-identical to a
fault-free run: that is the headline invariant the chaos suite asserts.

The chaos log collects only deterministic data (fault events, failure
classifications by rank and exception type) so identical (plan, seed)
runs produce identical logs on the thread and process backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.faults.plan import FaultPlan

#: Exception types whose messages are deterministic by construction and
#: therefore safe to include verbatim in the chaos log.
_DETERMINISTIC_DETAILS = frozenset({"InjectedCrash", "FaultDetected"})


class ChaosUnrecoverable(RuntimeError):
    """An epoch kept failing past the restart budget.

    Carries the last failure's deterministic classification plus the
    attempt/restart counts at the point of giving up, so a caller (or an
    operator reading the serving layer's error string) sees *what* kept
    dying and *how hard* the supervisor tried without parsing the log.
    """

    def __init__(
        self,
        message: str,
        failure: tuple = (),
        attempts: int = 0,
        restarts: int = 0,
    ):
        super().__init__(message)
        #: Last failure's ``(rank, exc type, detail)`` classification.
        self.failure = failure
        #: Total attempts (successful + failed) before giving up.
        self.attempts = attempts
        #: Total restarts across all epochs before giving up.
        self.restarts = restarts


@dataclass(frozen=True)
class SupervisedRun:
    """Outcome of a supervised session.

    ``obs_reports`` holds the merged ``_obs`` report of every
    *successful* epoch, in epoch order (empty unless the session ran
    with observability).  Failed attempts never contribute — their
    telemetry dies with the attempt — so folding these reports with
    :func:`fold_obs_counters` yields cumulative counters that a
    recovered session and a fault-free one must agree on.
    """

    results: dict
    log: tuple
    attempts: int
    restarts: int
    checkpoints: int
    obs_reports: tuple = ()
    #: Pool size each successful epoch ran at, in epoch order.  Constant
    #: for a fixed-size session; steps at resize/shrink boundaries.
    pool_sizes: tuple = ()
    #: Applied pool changes as ``(epoch, old, new)``, voluntary and
    #: crash-as-shrink alike, in application order.
    resizes: tuple = ()


def _classify_failure(exc: BaseException) -> tuple:
    """Deterministic (rank, exc type, detail) triples for a failed run."""
    from repro.mpi.inproc import SpmdFailure
    from repro.mpi.procs import RemoteRankError

    if isinstance(exc, SpmdFailure):
        items = [
            (rank, type(err).__name__, str(err))
            for rank, err in exc.errors.items()
        ]
    elif isinstance(exc, RemoteRankError):
        items = [
            (rank, exc_type, message)
            for rank, (exc_type, message, _tb) in exc.errors.items()
        ]
    else:
        items = [(-1, type(exc).__name__, str(exc))]
    return tuple(
        (rank, exc_type, message if exc_type in _DETERMINISTIC_DETAILS else "")
        for rank, exc_type, message in sorted(
            items, key=lambda item: (item[0], item[1])
        )
    )


def _freeze_fault_events(faults: dict | None) -> tuple:
    if not faults:
        return ()
    return tuple(
        (rank, tuple(tuple(event) for event in events))
        for rank, events in sorted(faults.items())
    )


def _session_sources(workflow) -> dict[str, Any]:
    return {
        name: comp
        for name, comp in workflow.components.items()
        if comp.is_source
    }


def _session_smax(workflow) -> int:
    """The session's interval count, read off the source components."""
    smaxes = set()
    for name, comp in _session_sources(workflow).items():
        grid = getattr(comp, "grid", None)
        if grid is None:
            raise TypeError(
                f"source component {name!r} has no grid; supervised "
                f"sessions need grid-ranged sources"
            )
        smaxes.add(grid.smax)
    if len(smaxes) != 1:
        raise ValueError(
            f"sources disagree on the session grid (smax values {smaxes})"
        )
    return smaxes.pop()


def _epochs(smax: int, checkpoint_every: int | None) -> list[tuple[int, int]]:
    if checkpoint_every is None:
        return [(0, smax)]
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    return [
        (start, min(start + checkpoint_every, smax))
        for start in range(0, smax, checkpoint_every)
    ]


def run_supervised_session(
    build: Callable[[], Any],
    size: int = 3,
    backend: str = "thread",
    plan: FaultPlan | None = None,
    checkpoint_every: int | None = None,
    max_restarts: int = 3,
    collect_stats: bool = False,
    obs_enabled: bool = False,
    obs=None,
    backend_options: dict | None = None,
    flight_dump: str | None = None,
    obs_hook=None,
    control=None,
    resize=None,
    degrade=None,
) -> SupervisedRun:
    """Run a Figure-1 session under supervision (and optionally chaos).

    ``build`` is a zero-argument workflow factory: the supervisor calls
    it once per attempt, because recovery means *rebuilding* the session
    (fresh ranks, fresh queues) and restoring component state from the
    last checkpoint — a crashed rank is respawned by the next
    ``run_spmd``, not resurrected in place.

    ``max_restarts`` bounds retries per epoch; past it the last failure
    re-raises wrapped in :class:`ChaosUnrecoverable`.

    ``flight_dump`` names a directory for per-rank flight-recorder
    dumps: every attempt's ranks dump their recent-event rings there
    (``rank<r>-attempt<a>.jsonl``) — with the failure class as the
    recorded reason when the attempt dies, which is the "last N events
    before the crash" artefact the chaos workflow exists to produce.

    ``obs_hook`` is forwarded to every attempt's
    :meth:`~repro.marketminer.scheduler.WorkflowRunner.run` so a live
    telemetry hub can re-register each rebuilt rank's registry (thread
    backend only).

    ``control`` is an optional
    :class:`~repro.marketminer.session.SessionControl`: its ``gate`` is
    called before every epoch attempt (the consistent-cut boundary where
    pause/kill take effect — a kill raises
    :class:`~repro.marketminer.session.SessionKilled` out of this
    function) and ``on_checkpoint`` receives every checkpoint, which is
    what the serving layer's live position/signal queries read.

    ``resize`` (a :class:`~repro.elastic.ResizePlan`, a single
    :class:`~repro.elastic.ResizeRequest`, or an iterable of requests)
    schedules voluntary pool resizes at epoch boundaries, and
    ``degrade`` (a :class:`~repro.faults.DegradePolicy` with
    ``shrink_on_crash=True``) lets an epoch that exhausts its restart
    budget shed a rank and retry instead of giving up.  The epoch loop
    itself lives in :func:`repro.elastic.run_elastic_session`; a
    fixed-size call is simply the elastic loop with an empty plan, and
    produces byte-identical logs to the pre-elastic supervisor.
    """
    from repro.elastic.supervisor import run_elastic_session

    return run_elastic_session(
        build,
        size=size,
        backend=backend,
        plan=plan,
        checkpoint_every=checkpoint_every,
        max_restarts=max_restarts,
        collect_stats=collect_stats,
        obs_enabled=obs_enabled,
        obs=obs,
        backend_options=backend_options,
        flight_dump=flight_dump,
        obs_hook=obs_hook,
        control=control,
        resize=resize,
        degrade=degrade,
    )


# -- result comparison ------------------------------------------------------


def fold_obs_counters(
    reports, exclude_prefixes: tuple[str, ...] = ()
) -> dict[str, float]:
    """Sum merged cross-rank counters across per-epoch obs reports.

    Cumulative counters are additive across epochs, so the fold over a
    recovered session's successful-epoch reports must equal the fold
    over a fault-free session's — replayed (failed) attempts never
    contribute a report.  ``exclude_prefixes`` drops counter families
    that legitimately differ (e.g. ``recovery.`` bookkeeping kept by a
    driver-side registry).
    """
    totals: dict[str, float] = {}
    for report in reports:
        counters = report.get("metrics", {}).get("counters", {})
        for name, value in counters.items():
            if any(name.startswith(p) for p in exclude_prefixes):
                continue
            totals[name] = totals.get(name, 0) + value
    return totals


def strip_meta(results: dict) -> dict:
    """Component results only: drop ``_``-prefixed runtime entries."""
    return {
        key: value
        for key, value in results.items()
        if not key.startswith("_")
    }


def _deep_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))
        )
    if isinstance(a, dict):
        if not isinstance(b, dict) or a.keys() != b.keys():
            return False
        return all(_deep_equal(a[key], b[key]) for key in a)
    if isinstance(a, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            return False
        return all(_deep_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if a != a and b != b:  # NaN == NaN for bitwise comparison
            return True
        return a == b
    return bool(a == b)


def session_results_equal(a: dict, b: dict) -> bool:
    """Bitwise equality of two sessions' per-component results.

    Runtime metadata (``_obs``, ``_runtime``, ``_snapshots``,
    ``_faults``) is excluded: those legitimately differ between a clean
    and a recovered run; the *component* results must not.
    """
    return _deep_equal(strip_meta(a), strip_meta(b))
