"""Deterministic fault injection and self-healing session supervision.

Layered the same way as :mod:`repro.obs`: a plan/injector pair attaches
to the mailbox communicator through a no-op-when-detached seam, a
supervisor wraps the Figure-1 session in epochs with checkpoint/restart,
and degradation/retry policies configure the soft-failure behaviour.
"""

from repro.faults.heartbeat import HeartbeatHandle, HeartbeatMonitor
from repro.faults.injector import FaultDetected, FaultInjector, InjectedCrash
from repro.faults.plan import (
    PLAN_NAMES,
    FaultPlan,
    MessageFault,
    RankCrash,
    RankStall,
    named_plan,
    plan_descriptions,
    seeded_plan,
)
from repro.faults.policy import BackoffPolicy, DegradePolicy, StaleCorr
from repro.faults.supervisor import (
    ChaosUnrecoverable,
    SupervisedRun,
    fold_obs_counters,
    run_supervised_session,
    session_results_equal,
)

__all__ = [
    "BackoffPolicy",
    "ChaosUnrecoverable",
    "DegradePolicy",
    "FaultDetected",
    "FaultInjector",
    "FaultPlan",
    "HeartbeatHandle",
    "HeartbeatMonitor",
    "InjectedCrash",
    "MessageFault",
    "PLAN_NAMES",
    "RankCrash",
    "RankStall",
    "StaleCorr",
    "SupervisedRun",
    "fold_obs_counters",
    "named_plan",
    "plan_descriptions",
    "run_supervised_session",
    "seeded_plan",
    "session_results_equal",
]
