"""Per-rank fault injector and sequence-checked delivery.

One :class:`FaultInjector` is attached per rank per run attempt, through
the same no-op-when-detached endpoint seam the obs and commtrace layers
use — a detached communicator pays exactly one ``is not None`` test per
operation.

Besides injecting the plan's faults, the attached injector stamps every
data-plane envelope (tag >= 0) with a per-(src, dst) sequence number and
checks it on receipt.  That one mechanism yields both halves of the
delivery contract:

* **dedup** — an envelope whose sequence number was already seen is a
  re-delivery (a ``duplicate`` fault, or replay overlap); it is dropped
  silently and counted, and the session result is unchanged;
* **gap detection** — a sequence number *ahead* of the expected one
  means an earlier envelope was lost or reordered; the receiving rank
  raises :class:`FaultDetected` immediately with a deterministic
  message, so a dropped message can never silently corrupt results.
  (A dropped *final* envelope has no successor to expose the gap; that
  case surfaces as the ordinary ``RecvTimeout``.)

Collective traffic (tag < 0) is never stamped or faulted — collectives
are the recovery substrate (checkpoints travel over allgather) — but it
does advance the op counter that triggers crash/stall faults.

All event-log entries are deterministic by construction: they contain
ranks, sequence numbers and op counts, never wall times or queue
depths, so identical (seed, plan) runs produce identical logs on the
thread and process backends.
"""

from __future__ import annotations

import time

from repro.mpi.api import MpiError
from repro.faults.plan import FaultPlan, MessageFault


class InjectedCrash(RuntimeError):
    """Raised inside a rank to simulate its death at a planned op."""


class FaultDetected(MpiError):
    """A receiver observed a sequence gap: a message was lost or reordered."""


class _Stamped:
    """Data-plane payload wrapper carrying the per-edge sequence number."""

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload):
        self.seq = seq
        self.payload = payload

    def __getstate__(self):
        return (self.seq, self.payload)

    def __setstate__(self, state):
        self.seq, self.payload = state

    def __repr__(self) -> str:
        return f"_Stamped(seq={self.seq})"


class FaultInjector:
    """Applies one rank's share of a :class:`FaultPlan` for one attempt."""

    def __init__(self, plan: FaultPlan, rank: int, attempt: int = 0, obs=None):
        self.plan = plan
        self.rank = rank
        self.attempt = attempt
        #: Deterministic event log; allgathered into ``results["_faults"]``.
        self.events: list[tuple] = []
        self._op = 0
        self._send_seq: dict[int, int] = {}
        self._recv_seen: dict[int, int] = {}
        self._held: dict[int, list] = {}
        self._message_counts: dict[int, int] = {}
        self._metrics = (
            obs.metrics if obs is not None and obs.enabled else None
        )
        self._obs = obs
        self._crash = None
        for fault in plan.crashes:
            if fault.rank == rank and fault.attempt == attempt:
                if self._crash is None or fault.at_op < self._crash.at_op:
                    self._crash = fault
        self._stall = None
        for fault in plan.stalls:
            if fault.rank == rank and fault.attempt == attempt:
                if self._stall is None or fault.at_op < self._stall.at_op:
                    self._stall = fault
        self._stall_fired = False
        self._messages = tuple(
            (index, fault)
            for index, fault in enumerate(plan.messages)
            if fault.attempt == attempt
            and (fault.src is None or fault.src == rank)
        )

    # -- plan application ---------------------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _event(self, event: tuple) -> None:
        """Log one deterministic fault event (mirrored to flight recorder)."""
        self.events.append(event)
        flight = getattr(self._obs, "flight", None)
        if flight is not None:
            flight.record_fault(event)

    def _tick_op(self) -> None:
        self._op += 1
        stall = self._stall
        if (
            stall is not None
            and not self._stall_fired
            and self._op >= stall.at_op
        ):
            self._stall_fired = True
            self._event(
                ("stall", self.rank, stall.at_op, stall.seconds)
            )
            self._count("faults.injected[stall]")
            time.sleep(stall.seconds)
        crash = self._crash
        if crash is not None and self._op >= crash.at_op:
            self._event(("crash", self.rank, crash.at_op))
            self._count("faults.injected[crash]")
            raise InjectedCrash(
                f"rank {self.rank}: injected crash at op {crash.at_op} "
                f"(attempt {self.attempt})"
            )

    def _match_message(self, dst: int) -> MessageFault | None:
        for index, fault in self._messages:
            if fault.dst is not None and fault.dst != dst:
                continue
            count = self._message_counts.get(index, 0)
            self._message_counts[index] = count + 1
            if count == fault.nth:
                return fault
        return None

    # -- communicator hooks -------------------------------------------------

    def on_send(self, dst: int, tag: int, payload) -> list:
        """Return the payloads to actually deliver (0, 1 or 2 of them).

        ``dst`` is the destination's *world* rank; sequence numbers are
        kept per world edge so split communicators share one stream.
        """
        self._tick_op()
        if tag < 0:
            return [payload]
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        stamped = _Stamped(seq, payload)
        fault = self._match_message(dst)
        out: list = []
        if fault is None:
            out.append(stamped)
        elif fault.kind == "drop":
            self._event(("drop", self.rank, dst, seq))
            self._count("faults.injected[drop]")
        elif fault.kind == "duplicate":
            self._event(("duplicate", self.rank, dst, seq))
            self._count("faults.injected[duplicate]")
            out.extend((stamped, stamped))
        else:  # delay: hold back, release after the next send to dst
            self._event(("delay", self.rank, dst, seq))
            self._count("faults.injected[delay]")
            self._held.setdefault(dst, []).append(stamped)
            return out
        held = self._held.pop(dst, None)
        if held:
            out.extend(held)
        return out

    def on_recv(self, src: int, tag: int, payload) -> tuple[bool, object]:
        """Unstamp and sequence-check one received envelope.

        Returns ``(deliver, payload)``; ``deliver=False`` means the
        envelope was a duplicate and the caller should keep waiting.
        ``src`` is the sender's world rank.
        """
        self._tick_op()
        if tag < 0 or not isinstance(payload, _Stamped):
            return True, payload
        seq = payload.seq
        expected = self._recv_seen.get(src, -1) + 1
        if seq < expected:
            self._event(("dedup", self.rank, src, seq))
            self._count("faults.duplicates_dropped")
            return False, None
        if seq > expected:
            self._event(("gap", self.rank, src, expected, seq))
            self._count("faults.gaps_detected")
            raise FaultDetected(
                f"rank {self.rank}: sequence gap from world rank {src}: "
                f"expected {expected}, got {seq} (message lost or reordered)"
            )
        self._recv_seen[src] = seq
        return True, payload.payload
