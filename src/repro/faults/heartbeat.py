"""Shared-memory heartbeats for rank liveness detection.

The monitor owns one lock-free double per rank (a ``multiprocessing``
raw array, so it works identically for threads, forked and spawned
processes); each rank's communicator ticks its own slot with
``time.monotonic()`` on every send and on every inbox poll iteration.
Ticking inside the poll loop is deliberate: a rank blocked in ``recv``
is *alive* (waiting on a peer), not stalled, and must not be culled.

On Linux ``CLOCK_MONOTONIC`` is system-wide, so monotonic stamps written
by worker processes are directly comparable with the supervisor's clock.
Detection is the supervisor's job: :meth:`HeartbeatMonitor.stalled`
reports ranks whose last beat is older than a timeout.  The process
backend uses it (opt-in) to terminate stalled ranks; the thread backend
exposes it for observation only, since Python threads cannot be killed.
"""

from __future__ import annotations

import multiprocessing
import time


class HeartbeatHandle:
    """One rank's write-only view of the heartbeat array."""

    __slots__ = ("_array", "_rank")

    def __init__(self, array, rank: int):
        self._array = array
        self._rank = rank

    def tick(self) -> None:
        self._array[self._rank] = time.monotonic()


class HeartbeatMonitor:
    """Supervisor-side view over every rank's last-beat timestamp."""

    def __init__(self, size: int, ctx=None):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        factory = ctx if ctx is not None else multiprocessing
        self.size = size
        self._array = factory.Array("d", size, lock=False)
        self.start()

    def start(self) -> None:
        """(Re)arm every slot to *now* so startup latency never trips."""
        now = time.monotonic()
        for rank in range(self.size):
            self._array[rank] = now

    def handle(self, rank: int) -> HeartbeatHandle:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return HeartbeatHandle(self._array, rank)

    def last_beat(self, rank: int) -> float:
        return self._array[rank]

    def age(self, rank: int) -> float:
        """Seconds since ``rank`` last ticked."""
        return time.monotonic() - self._array[rank]

    def ages(self) -> list[float]:
        now = time.monotonic()
        return [now - self._array[rank] for rank in range(self.size)]

    def stalled(self, timeout: float, exclude=()) -> list[int]:
        """Ranks whose last beat is older than ``timeout`` seconds."""
        skip = set(exclude)
        now = time.monotonic()
        return [
            rank
            for rank in range(self.size)
            if rank not in skip and now - self._array[rank] > timeout
        ]
