"""Degradation and retry policies for the self-healing runtime.

These are deliberately plain frozen dataclasses: a policy is
configuration that crosses process boundaries (pickled to worker ranks),
so it must carry no live state.  The live state (retry counters, stale
ages) lives wherever the policy is applied.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DegradePolicy:
    """How the pipeline behaves when correlation input misses a deadline.

    ``serve_stale``: the correlation engine re-emits its last-good matrix
    (wrapped in :class:`StaleCorr`) for intervals whose input never
    arrived, instead of silently leaving a gap downstream.
    ``max_stale_age``: stop serving once the last-good matrix is older
    than this many intervals (``None`` = no cap) — at that point the gap
    propagates and the session fails over to restart semantics.
    ``flatten``: on a stale matrix the strategy closes any open
    positions (reason ``DEGRADED``) in addition to refusing new entries;
    with ``flatten=False`` it only refuses entries.

    ``shrink_on_crash``: when a supervised epoch exhausts its restart
    budget, drop one rank from the pool and retry (crash-as-shrink)
    instead of raising :class:`ChaosUnrecoverable` — the elastic
    runtime's answer to a rank that keeps dying with no spare to take
    its place.  ``min_ranks`` is the floor the pool never shrinks below;
    at the floor, the restart budget re-raises as usual.
    """

    serve_stale: bool = True
    max_stale_age: int | None = None
    flatten: bool = True
    shrink_on_crash: bool = False
    min_ranks: int = 1

    def __post_init__(self) -> None:
        if self.max_stale_age is not None and self.max_stale_age < 1:
            raise ValueError(
                f"max_stale_age must be >= 1 or None, got {self.max_stale_age}"
            )
        if self.min_ranks < 1:
            raise ValueError(
                f"min_ranks must be >= 1, got {self.min_ranks}"
            )


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff for recv retries.

    ``delay(i)`` is the extra wait granted after the ``i``-th timeout
    (0-based): ``min(base * factor**i, cap)`` seconds.  A recv with this
    policy attached only raises ``RecvTimeout`` after its original
    deadline *plus* ``retries`` extended windows have all expired.
    """

    retries: int = 3
    base: float = 0.05
    factor: float = 2.0
    cap: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base <= 0 or self.factor < 1 or self.cap <= 0:
            raise ValueError(
                f"need base > 0, factor >= 1, cap > 0; got "
                f"base={self.base}, factor={self.factor}, cap={self.cap}"
            )

    def delay(self, attempt: int) -> float:
        return min(self.base * self.factor**attempt, self.cap)

    def delays(self) -> tuple[float, ...]:
        return tuple(self.delay(i) for i in range(self.retries))


class StaleCorr:
    """A re-served correlation payload, flagged stale.

    ``value`` is the last-good matrix (or pair-block dict) exactly as it
    was originally emitted; ``age`` is how many intervals ago it was
    computed.  Downstream components that do not understand staleness
    can treat it as missing data; the pair-trading component applies its
    :class:`DegradePolicy` to it.
    """

    __slots__ = ("value", "age")

    def __init__(self, value, age: int):
        if age < 1:
            raise ValueError(f"stale age must be >= 1, got {age}")
        self.value = value
        self.age = age

    def __repr__(self) -> str:
        return f"StaleCorr(age={self.age})"
