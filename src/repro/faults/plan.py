"""Seeded, deterministic fault plans for chaos testing.

A :class:`FaultPlan` is a *schedule* of faults, not a probability: every
fault names the exact message (per-sender data-plane send index), the
exact operation count (crash/stall) and the exact run *attempt* it fires
on.  Two runs of the same plan on the same workflow therefore inject the
same faults at the same points, on either MPI backend — which is what
makes the headline invariant testable at all (recovered results must be
bitwise-identical to a fault-free run, so the faults themselves must be
reproducible).

Attempt scoping is what lets the supervisor make progress: the
supervisor numbers every ``run_spmd`` invocation globally (across epochs
and restarts), and a fault fires only on its declared ``attempt``.  A
crash injected at attempt 0 therefore does not re-fire on the retry at
attempt 1.

``seeded_plan`` derives a randomised-but-reproducible plan from a seed;
``named_plan`` holds the small registry used by ``repro chaos`` and the
check.sh chaos smoke stage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Message fault kinds understood by the injector.
MESSAGE_KINDS = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class MessageFault:
    """Fault one data-plane message (tag >= 0) at a specific send.

    ``nth`` is the 0-based index among the sender rank's matching
    data-plane sends (matching = ``src``/``dst`` constraints, counted per
    fault).  ``src``/``dst`` are world ranks; ``None`` matches any rank.
    ``delay`` reorders: the message is held back and released *after*
    the sender's next data-plane send to the same destination, breaking
    FIFO so the receiver's sequence check detects it deterministically.
    """

    kind: str
    src: int | None = None
    dst: int | None = None
    nth: int = 0
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS:
            raise ValueError(
                f"unknown message fault kind {self.kind!r} "
                f"(expected one of {MESSAGE_KINDS})"
            )
        if self.nth < 0:
            raise ValueError(f"nth must be >= 0, got {self.nth}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")


@dataclass(frozen=True)
class RankCrash:
    """Kill ``rank`` when its operation counter reaches ``at_op``.

    The operation counter increments on every communicator operation the
    injector sees (all sends and receives, any tag, collectives
    included), so ``at_op`` is deterministic for a deterministic
    workload regardless of backend.
    """

    rank: int
    at_op: int
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")


@dataclass(frozen=True)
class RankStall:
    """Freeze ``rank`` for ``seconds`` when its op counter hits ``at_op``.

    A stall past the communicator deadline surfaces as ``RecvTimeout``
    on peers (or a heartbeat termination under the process backend); a
    short stall is absorbed and must not change results.
    """

    rank: int
    at_op: int
    seconds: float
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, fully deterministic schedule of faults.

    ``recoverable`` declares whether a supervised session is expected to
    converge to the fault-free result under this plan — the chaos CLI
    and soak tests only assert bitwise identity for recoverable plans.
    """

    name: str
    messages: tuple[MessageFault, ...] = ()
    crashes: tuple[RankCrash, ...] = ()
    stalls: tuple[RankStall, ...] = ()
    seed: int = 0
    recoverable: bool = True

    def __post_init__(self) -> None:
        # Tolerate lists at construction time; store tuples (hashable,
        # immutable, picklable across both backends).
        object.__setattr__(self, "messages", tuple(self.messages))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))

    @property
    def empty(self) -> bool:
        return not (self.messages or self.crashes or self.stalls)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "recoverable": self.recoverable,
            "messages": [vars(f).copy() for f in self.messages],
            "crashes": [vars(f).copy() for f in self.crashes],
            "stalls": [vars(f).copy() for f in self.stalls],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=data["name"],
            seed=data.get("seed", 0),
            recoverable=data.get("recoverable", True),
            messages=tuple(
                MessageFault(**f) for f in data.get("messages", ())
            ),
            crashes=tuple(RankCrash(**f) for f in data.get("crashes", ())),
            stalls=tuple(RankStall(**f) for f in data.get("stalls", ())),
        )


def seeded_plan(
    seed: int,
    size: int,
    n_message_faults: int = 2,
    n_crashes: int = 1,
    max_nth: int = 12,
    max_op: int = 60,
    name: str | None = None,
) -> FaultPlan:
    """Derive a reproducible randomised recoverable plan from ``seed``.

    Same (seed, size, knobs) always yields the same plan — handy for
    soak loops that want variety without losing reproducibility.
    """
    if size < 2:
        raise ValueError(f"seeded plans need size >= 2, got {size}")
    rng = random.Random(seed)
    messages = []
    for _ in range(n_message_faults):
        messages.append(
            MessageFault(
                kind=rng.choice(MESSAGE_KINDS),
                src=rng.randrange(size),
                dst=None,
                nth=rng.randrange(max_nth),
            )
        )
    crashes = tuple(
        RankCrash(rank=rng.randrange(size), at_op=1 + rng.randrange(max_op))
        for _ in range(n_crashes)
    )
    return FaultPlan(
        name=name if name is not None else f"seeded-{seed}",
        messages=tuple(messages),
        crashes=crashes,
        seed=seed,
    )


@dataclass(frozen=True)
class _PlanSpec:
    build: object = field(repr=False)
    doc: str = ""


def _plan_dup(size: int, stall_seconds: float) -> FaultPlan:
    return FaultPlan(
        name="dup",
        messages=(
            MessageFault("duplicate", src=0, nth=3),
            MessageFault("duplicate", src=size - 1, nth=5),
        ),
    )


def _plan_drop_dup(size: int, stall_seconds: float) -> FaultPlan:
    return FaultPlan(
        name="drop-dup",
        messages=(
            MessageFault("drop", src=0, nth=4),
            MessageFault("duplicate", src=0, nth=9),
        ),
    )


def _plan_crash_mid(size: int, stall_seconds: float) -> FaultPlan:
    return FaultPlan(
        name="crash-mid",
        crashes=(RankCrash(rank=min(1, size - 1), at_op=40),),
    )


def _plan_stall(size: int, stall_seconds: float) -> FaultPlan:
    return FaultPlan(
        name="stall",
        stalls=(
            RankStall(
                rank=min(1, size - 1), at_op=25, seconds=stall_seconds
            ),
        ),
    )


def _plan_delay(size: int, stall_seconds: float) -> FaultPlan:
    return FaultPlan(
        name="delay",
        messages=(MessageFault("delay", src=0, nth=6),),
    )


_NAMED = {
    "dup": _PlanSpec(_plan_dup, "duplicate two envelopes (live dedup)"),
    "drop-dup": _PlanSpec(
        _plan_drop_dup, "drop one envelope + duplicate another (restart)"
    ),
    "crash-mid": _PlanSpec(
        _plan_crash_mid, "crash one rank mid-session (restart)"
    ),
    "stall": _PlanSpec(
        _plan_stall, "stall one rank past the recv deadline (restart)"
    ),
    "delay": _PlanSpec(
        _plan_delay, "reorder one envelope past its successor (restart)"
    ),
}

#: Names accepted by ``named_plan`` / ``repro chaos --plan``.
PLAN_NAMES = tuple(_NAMED)


def plan_descriptions() -> dict[str, str]:
    """{name: one-line description} for the named-plan registry."""
    return {name: spec.doc for name, spec in _NAMED.items()}


def named_plan(
    name: str,
    size: int = 3,
    stall_seconds: float = 2.0,
    at_op: int | None = None,
) -> FaultPlan:
    """Build a named recoverable plan sized for a ``size``-rank session.

    ``at_op`` overrides the crash/stall trigger op so the same named plan
    can target short workloads (the Approach-3 backtest performs an order
    of magnitude fewer communicator ops than a Figure-1 session).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    try:
        spec = _NAMED[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r} (have {', '.join(PLAN_NAMES)})"
        ) from None
    plan = spec.build(size, stall_seconds)
    if at_op is not None:
        plan = FaultPlan(
            name=plan.name,
            messages=plan.messages,
            crashes=tuple(
                RankCrash(rank=c.rank, at_op=at_op, attempt=c.attempt)
                for c in plan.crashes
            ),
            stalls=tuple(
                RankStall(
                    rank=st.rank, at_op=at_op, seconds=st.seconds,
                    attempt=st.attempt,
                )
                for st in plan.stalls
            ),
            seed=plan.seed,
            recoverable=plan.recoverable,
        )
    return plan
