"""Command-line interface.

One executable, ``repro``, with a subcommand per common workflow::

    repro table1                      # print the Table-I parameter grid
    repro taq-sample --symbols 8      # synthesise and print Table-II rows
    repro sweep --symbols 8 --days 3  # run the study, print Tables III-V
    repro pipeline --symbols 6        # stream a Figure-1 live session
    repro top --refresh 0.5           # live telemetry view over a session
    repro chaos --plan crash-mid      # chaos-test a supervised session
    repro screen --symbols 12         # candidate-pair screening funnel
    repro stats obs.json              # render a telemetry report
    repro lint --strict               # graph-spec lint + repo AST lint
    repro analyze --strict            # deepcheck invariant analyzers
    repro store ingest --root DIR     # build a partitioned tick store
    repro store verify --root DIR     # checksum (and --deep re-derive) it
    repro store scan --root DIR       # pushdown column scans over it
    repro serve --port 8972           # multi-tenant HTTP/JSON server

Every command is deterministic given ``--seed`` and prints plain text, so
the CLI doubles as a smoke test of the whole stack.  ``pipeline``,
``sweep`` and ``report`` accept ``--obs-json PATH`` to dump the run's
observability report (schema ``repro.obs/v1``) for ``repro stats``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _add_market_args(parser: argparse.ArgumentParser, symbols: int) -> None:
    parser.add_argument(
        "--symbols", type=int, default=symbols,
        help=f"universe size (default {symbols}, paper scale 61)",
    )
    parser.add_argument(
        "--seconds", type=int, default=23_400 // 2,
        help="trading session length in seconds (paper: 23400)",
    )
    parser.add_argument("--seed", type=int, default=2008)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.strategy.params import format_table1, paper_parameter_grid

    print(format_table1())
    print(f"\n{len(paper_parameter_grid())} parameter sets "
          f"(3 treatments x 14 levels)")
    return 0


def _cmd_taq_sample(args: argparse.Namespace) -> int:
    from repro.taq.io import format_table2
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe

    market = SyntheticMarket(
        default_universe(args.symbols),
        SyntheticMarketConfig(trading_seconds=args.seconds),
        seed=args.seed,
    )
    quotes = market.quotes(0)
    print(format_table2(quotes, market.universe, limit=args.rows))
    print(f"\n{quotes.size} quotes, {args.symbols} symbols, "
          f"{args.seconds} seconds")
    return 0


def _make_obs(args: argparse.Namespace):
    """An enabled Obs when ``--obs-json`` was given, else None."""
    if not getattr(args, "obs_json", None):
        return None
    from repro.obs import Obs

    return Obs(enabled=True)


def _dump_obs(args: argparse.Namespace, report: dict | None) -> None:
    if report is None or not getattr(args, "obs_json", None):
        return
    from repro.obs import write_json

    write_json(report, args.obs_json)
    print(f"\nobservability report written to {args.obs_json}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.backtest.sweep import SweepConfig, run_sweep
    from repro.metrics.summary import (
        format_treatment_table,
        treatment_summaries,
    )
    from repro.strategy.params import StrategyParams

    config = SweepConfig(
        n_symbols=args.symbols,
        n_days=args.days,
        trading_seconds=args.seconds,
        seed=args.seed,
        n_levels=args.levels,
        base_params=StrategyParams(
            m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
        ),
        ranks=args.ranks,
        engine=args.engine,
        on_error="continue" if args.continue_on_error else "abort",
        corr_backend=args.corr_backend,
    )
    obs = _make_obs(args)
    failures: list = []
    store, grid = run_sweep(config, obs=obs, failures=failures)
    print(
        f"{len(store.pairs)} pairs x {len(grid)} parameter sets x "
        f"{args.days} days: {store.n_trades} trades\n"
    )
    for measure, title in (
        ("returns", "Table III: average cumulative returns (gross)"),
        ("drawdown", "Table IV: average maximum daily drawdown"),
        ("winloss", "Table V: average win-loss ratio"),
    ):
        print(format_treatment_table(
            treatment_summaries(store, grid, measure), title
        ))
        print()
    _dump_obs(args, obs.report() if obs is not None else None)
    if failures:
        print(f"\n{len(failures)} cell(s) FAILED and were skipped:")
        for f in failures:
            print(f"  {f.describe()}")
        return 3
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.marketminer.session import run_figure1_session

    workflow = _build_figure1_from_args(args)
    print(workflow.describe())
    results = run_figure1_session(
        workflow, size=args.ranks, collect_stats=True,
        obs_enabled=bool(args.obs_json),
    )
    n_trades = sum(len(v) for v in results["pair_trading"]["trades"].values())
    sink = results["order_sink"]
    print(
        f"\n{results['bar_accumulator']['bars_emitted']} bars, "
        f"{n_trades} trades, {sink['accepted_orders']} orders, "
        f"{sink['open_pairs_at_close']} open at close"
    )
    for rank, stats in results["_runtime"].items():
        print(
            f"  rank {rank}: {stats['messages_local']} local / "
            f"{stats['messages_remote']} remote messages "
            f"({', '.join(stats['components'])})"
        )
    _dump_obs(args, results.get("_obs"))
    return 0


def _chaos_figure1(args: argparse.Namespace, plan) -> int:
    from repro.faults import run_supervised_session, session_results_equal
    from repro.marketminer.session import build_figure1_workflow
    from repro.strategy.params import StrategyParams
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    market = SyntheticMarket(
        default_universe(args.symbols),
        SyntheticMarketConfig(trading_seconds=args.seconds, quote_rate=0.9),
        seed=args.seed,
    )
    grid_time = TimeGrid(30, trading_seconds=args.seconds)
    params = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)
    pairs = list(market.universe.pairs())

    def build():
        return build_figure1_workflow(market, grid_time, pairs, [params])

    options = {"default_timeout": args.timeout}
    clean = run_supervised_session(
        build, size=args.ranks, backend=args.backend,
        backend_options=options,
    )
    chaos = run_supervised_session(
        build, size=args.ranks, backend=args.backend, plan=plan,
        checkpoint_every=args.checkpoint_every,
        max_restarts=args.max_restarts, backend_options=options,
        flight_dump=args.flight_dump,
    )
    print(f"plan {plan.name!r} on figure1 ({args.ranks} ranks, "
          f"{args.backend} backend):")
    for entry in chaos.log:
        if entry[0] == "restart":
            _, epoch, attempt, classified = entry
            detail = "; ".join(
                f"rank {r}: {t}" + (f" ({d})" if d else "")
                for r, t, d in classified
            )
            print(f"  restart epoch {epoch} attempt {attempt}: {detail}")
        else:
            _, epoch, attempt, _, events = entry
            n = sum(len(ev) for _, ev in events)
            print(f"  run epoch {epoch} attempt {attempt}: ok "
                  f"({n} fault event(s))")
    print(f"  {chaos.restarts} restart(s), {chaos.checkpoints} "
          f"checkpoint(s), {chaos.attempts} attempt(s)")
    if args.flight_dump:
        from pathlib import Path

        dumps = sorted(Path(args.flight_dump).glob("rank*-attempt*.jsonl"))
        print(f"  {len(dumps)} flight dump(s) under {args.flight_dump}:")
        for dump in dumps:
            print(f"    {dump.name}")
    identical = session_results_equal(clean.results, chaos.results)
    print(f"recovered results identical to fault-free run: {identical}")
    return 0 if identical else 1


def _chaos_sweep(args: argparse.Namespace, plan) -> int:
    """Approach-3 backtest under chaos: stateless jobs, so recovery is a
    clean re-run at the next fault attempt (faults are attempt-scoped)."""
    from repro.backtest.data import BarProvider
    from repro.backtest.distributed import DistributedBacktester
    from repro.faults.injector import FaultInjector
    from repro.mpi.api import MpiError
    from repro.mpi.launcher import run_spmd
    from repro.strategy.params import StrategyParams
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    market = SyntheticMarket(
        default_universe(args.symbols),
        SyntheticMarketConfig(trading_seconds=args.seconds),
        seed=args.seed,
    )
    provider = BarProvider(
        market, TimeGrid(30, trading_seconds=args.seconds)
    )
    pairs = list(market.universe.pairs())
    # Windows sized so a half-length smoke session still fits m observations.
    params = [StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)]

    def run_once(fault_plan, attempt):
        def spmd(comm):
            if fault_plan is not None:
                injector = FaultInjector(
                    fault_plan, comm.rank, attempt=attempt
                )
                comm.attach_faults(injector)
            try:
                return DistributedBacktester(provider).run(
                    comm, pairs, params, [0]
                )
            finally:
                comm.attach_faults(None)

        return run_spmd(
            spmd, size=args.ranks, backend=args.backend,
            default_timeout=args.timeout,
        )[0]

    clean = run_once(None, 0)
    attempt = 0
    restarts = 0
    while True:
        try:
            chaos = run_once(plan, attempt)
            break
        except MpiError as exc:
            restarts += 1
            print(f"  attempt {attempt} failed: {type(exc).__name__}")
            if restarts > args.max_restarts:
                print("restart budget exhausted", file=sys.stderr)
                return 1
            attempt += 1
    print(f"plan {plan.name!r} on sweep ({args.ranks} ranks, "
          f"{args.backend} backend): {restarts} restart(s)")
    identical = chaos == clean
    print(f"recovered results identical to fault-free run: {identical}")
    return 0 if identical else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import named_plan, plan_descriptions

    if args.list_plans:
        for name, description in plan_descriptions().items():
            print(f"  {name:10s} {description}")
        return 0
    if args.plan is None:
        print("one of --plan or --list-plans is required", file=sys.stderr)
        return 2
    plan = named_plan(
        args.plan, size=args.ranks, stall_seconds=args.stall_seconds,
        at_op=args.at_op if args.at_op is not None
        else (4 if args.target == "sweep" else None),
    )
    if args.target == "figure1":
        return _chaos_figure1(args, plan)
    if args.flight_dump:
        print("--flight-dump requires --target figure1 (the supervised "
              "session owns the recorders)", file=sys.stderr)
        return 2
    return _chaos_sweep(args, plan)


def _parse_resize_specs(specs) -> list[tuple[int, int]]:
    """Parse repeated ``--resize EPOCH:SIZE`` flags, with pointed errors."""
    out = []
    for text in specs or ():
        epoch, sep, size = text.partition(":")
        if not sep or not epoch.isdigit() or not size.isdigit():
            raise ValueError(
                f"bad --resize {text!r}: expected EPOCH:SIZE with two "
                f"non-negative integers, e.g. --resize 1:4"
            )
        out.append((int(epoch), int(size)))
    return out


def _cmd_elastic(args: argparse.Namespace) -> int:
    """Run a supervised session under a resize plan; optionally verify the
    headline invariant (rescaled run == fixed-size run, bitwise)."""
    from repro.elastic import ResizePlan, ResizeRequest
    from repro.faults import (
        fold_obs_counters,
        run_supervised_session,
        session_results_equal,
    )
    from repro.marketminer.session import build_figure1_workflow
    from repro.strategy.params import StrategyParams
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    try:
        resizes = _parse_resize_specs(args.resize)
    except ValueError as exc:
        print(f"elastic: {exc}", file=sys.stderr)
        return 2
    plan = ResizePlan(tuple(ResizeRequest(e, s) for e, s in resizes))

    # Short-session parameters (the chaos/top builder's Table-I values
    # need a near-full trading day before any signal fires).
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)

    def build():
        market = SyntheticMarket(
            default_universe(args.symbols),
            SyntheticMarketConfig(
                trading_seconds=args.seconds, quote_rate=0.9
            ),
            seed=args.seed,
        )
        return build_figure1_workflow(
            market,
            TimeGrid(30, trading_seconds=args.seconds),
            list(market.universe.pairs()),
            [params],
        )

    options = {"default_timeout": args.timeout}
    run = run_supervised_session(
        build, size=args.ranks, backend=args.backend, resize=plan,
        checkpoint_every=args.checkpoint_every, obs_enabled=True,
        backend_options=options,
    )
    pools = "->".join(str(p) for p in run.pool_sizes)
    n_trades = sum(
        len(v) for v in run.results["pair_trading"]["trades"].values()
    )
    print(f"elastic session: pool {pools}, "
          f"{len(run.resizes)} resize(s) applied, "
          f"{run.checkpoints} checkpoint(s), {n_trades} trades")
    for epoch, old, new in run.resizes:
        print(f"  epoch {epoch}: {old} -> {new} ranks")

    if args.compare_fixed is None:
        return 0
    fixed = run_supervised_session(
        build, size=args.compare_fixed, backend=args.backend,
        checkpoint_every=args.checkpoint_every, obs_enabled=True,
        backend_options=options,
    )
    exclude = ("mpi.",)  # transport counters scale with the pool by design
    results_ok = session_results_equal(fixed.results, run.results)
    counters_ok = fold_obs_counters(
        fixed.obs_reports, exclude_prefixes=exclude
    ) == fold_obs_counters(run.obs_reports, exclude_prefixes=exclude)
    print(f"bitwise vs fixed size {args.compare_fixed}: "
          f"results={results_ok} domain_counters={counters_ok}")
    return 0 if results_ok and counters_ok else 1


def _build_figure1_from_args(args: argparse.Namespace):
    from repro.marketminer.session import build_figure1_workflow
    from repro.strategy.params import StrategyParams
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    market = SyntheticMarket(
        default_universe(args.symbols),
        SyntheticMarketConfig(trading_seconds=args.seconds, quote_rate=0.9),
        seed=args.seed,
    )
    grid_time = TimeGrid(30, trading_seconds=args.seconds)
    params = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)
    return build_figure1_workflow(
        market,
        grid_time,
        list(market.universe.pairs()),
        [params],
        n_corr_engines=getattr(args, "engines", 1),
    )


def _top_frame(frame: str, plain: bool) -> None:
    if plain:
        print(frame)
        print("-" * 72)
    else:
        # Clear screen, home cursor, repaint.
        print("\x1b[2J\x1b[H" + frame, flush=True)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live telemetry view: run a session in a worker thread, repaint the
    hub's frame until it finishes, then print the session summary."""
    import threading

    from repro.obs.live import HealthRule, TelemetryHub, render_top

    rules = []
    for text in args.health or ():
        try:
            rules.append(HealthRule.parse(text))
        except ValueError as exc:
            print(f"top: bad --health rule: {exc}", file=sys.stderr)
            return 2
    hub = TelemetryHub(rules=rules)
    outcome: dict = {}
    supervisor = None

    def session() -> None:
        try:
            if args.target == "chaos":
                from repro.faults import named_plan, run_supervised_session

                plan = named_plan(args.plan, size=args.ranks)
                outcome["run"] = run_supervised_session(
                    lambda: _build_figure1_from_args(args),
                    size=args.ranks, plan=plan,
                    checkpoint_every=args.checkpoint_every,
                    obs_enabled=True, obs_hook=hub.register,
                    control=supervisor,
                    backend_options={"default_timeout": args.timeout},
                )
                outcome["results"] = outcome["run"].results
            else:
                from repro.marketminer.session import run_figure1_session

                outcome["results"] = run_figure1_session(
                    _build_figure1_from_args(args),
                    size=args.ranks, collect_stats=True, obs_enabled=True,
                    obs_hook=hub.register,
                )
        except BaseException as exc:  # reported after the final frame
            outcome["error"] = exc

    if args.target == "chaos":
        from repro.marketminer.session import SessionControl

        supervisor = SessionControl(poll_interval=0.02)
    worker = threading.Thread(target=session, name="repro-top", daemon=True)
    plain = args.plain or not sys.stdout.isatty()
    worker.start()
    while worker.is_alive():
        worker.join(timeout=args.refresh)
        hub.sample()
        _top_frame(
            render_top(hub, window=args.window, supervisor=supervisor), plain
        )

    error = outcome.get("error")
    if error is not None:
        print(f"top: session failed: {type(error).__name__}: {error}",
              file=sys.stderr)
        return 1
    results = outcome["results"]
    n_trades = sum(len(v) for v in results["pair_trading"]["trades"].values())
    print(f"\nsession complete: "
          f"{results['bar_accumulator']['bars_emitted']} bars, "
          f"{n_trades} trades")
    run = outcome.get("run")
    if run is not None:
        pools = "->".join(str(p) for p in run.pool_sizes) or "-"
        print(f"  {run.restarts} restart(s), {run.checkpoints} "
              f"checkpoint(s), {run.attempts} attempt(s), "
              f"pool {pools}")
    _dump_obs(args, results.get("_obs"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.backtest.report import StudyReportOptions, study_report
    from repro.backtest.sweep import SweepConfig, run_sweep
    from repro.strategy.params import StrategyParams

    config = SweepConfig(
        n_symbols=args.symbols,
        n_days=args.days,
        trading_seconds=args.seconds,
        seed=args.seed,
        n_levels=args.levels,
        base_params=StrategyParams(
            m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
        ),
        ranks=args.ranks,
    )
    obs = _make_obs(args)
    store, grid = run_sweep(config, obs=obs)
    print(
        study_report(
            store,
            grid,
            StudyReportOptions(
                symbols=config.build_universe().symbols,
                n_bootstrap=args.bootstrap,
                seed=args.seed,
            ),
        )
    )
    _dump_obs(args, obs.report() if obs is not None else None)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import load_report, render_text

    try:
        report = load_report(args.path)
    except FileNotFoundError:
        print(f"stats: no such report: {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    print(render_text(report))
    return 0


def _lint_workflow(args: argparse.Namespace):
    """A small Figure-1 workflow whose spec the graph linter validates."""
    return _build_figure1_from_args(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import DiagnosticReport, lint_graph, lint_tree

    report = DiagnosticReport()
    if not args.skip_graph:
        spec = _lint_workflow(args).spec()
        report.extend(
            lint_graph(spec, size=args.ranks, rank_budget=args.rank_budget)
        )
    if not args.skip_repo:
        root = Path(args.root) if args.root else None
        if root is None:
            import repro

            root = Path(repro.__file__).resolve().parent
        if not root.exists():
            print(f"repo lint root not found: {root}", file=sys.stderr)
            return 2
        for diag in lint_tree(root):
            report.add(diag)
    print(report.render())
    if args.strict:
        _print_deepcheck_summary(args)
    failed = report.errors > 0 or (args.strict and report.warnings > 0)
    return 1 if failed else 0


def _print_deepcheck_summary(args: argparse.Namespace) -> None:
    """One-line deepcheck rollup under ``repro lint --strict``.

    Informational only — never changes lint's exit code.  Uses
    ``analysis_baseline.json`` from the working directory when present,
    so a clean repo prints a clean line.
    """
    from pathlib import Path

    from repro.analysis.deepcheck import (
        ModuleIndex,
        apply_baseline,
        load_baseline,
        run_deepcheck,
    )

    root = Path(args.root) if args.root else None
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    index = ModuleIndex.from_tree(root)
    workflow = None if args.skip_graph else _lint_workflow(args)
    report = run_deepcheck(index, workflow=workflow)
    baseline_path = Path("analysis_baseline.json")
    n_baseline = 0
    if baseline_path.exists():
        doc = load_baseline(baseline_path)
        n_baseline = len(doc.get("entries", []))
        report, _stale = apply_baseline(report, doc, index)
    print(
        f"deepcheck: {report.errors} error(s), {report.warnings} "
        f"warning(s) beyond baseline ({n_baseline} baselined) — "
        f"see `repro analyze`"
    )


def _analyze_workflow(args: argparse.Namespace):
    """The workflow protocheck cross-checks: ``--graph mod:fn`` or Figure-1.

    A ``--graph`` provider function returns either a live ``Workflow`` or
    a ``(GraphSpec, class_map)`` pair (class_map: component name → class
    name), which is how tests feed deliberately-broken specs through the
    CLI.
    """
    if args.graph:
        import importlib

        mod_name, _, fn_name = args.graph.partition(":")
        if not fn_name:
            raise ValueError("--graph takes MODULE:FUNCTION")
        provider = getattr(importlib.import_module(mod_name), fn_name)
        return provider()
    return _build_figure1_from_args(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.deepcheck import (
        ModuleIndex,
        apply_baseline,
        list_rules,
        load_baseline,
        make_baseline,
        run_deepcheck,
        save_baseline,
    )
    from repro.analysis.diagnostics import report_to_json

    if args.list_rules:
        print(list_rules())
        return 0

    root = Path(args.root) if args.root else None
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    if not root.exists():
        print(f"analyze root not found: {root}", file=sys.stderr)
        return 2

    skip = tuple(args.skip or ())
    index = ModuleIndex.from_tree(root)
    workflow = None
    if "proto" not in skip:
        try:
            workflow = _analyze_workflow(args)
        except (ImportError, AttributeError, ValueError) as exc:
            print(f"analyze: cannot build workflow: {exc}", file=sys.stderr)
            return 2
    report = run_deepcheck(index, workflow=workflow, skip=skip)

    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        previous = load_baseline(args.baseline)
        doc = make_baseline(report, index, previous=previous)
        save_baseline(doc, args.baseline)
        print(f"baseline written: {len(doc['entries'])} entr(y/ies) to "
              f"{args.baseline} (hand-edit the justifications)")
        return 0

    if args.baseline:
        report, _stale = apply_baseline(
            report, load_baseline(args.baseline), index
        )

    if args.json:
        print(_json.dumps(report_to_json(report, root=str(root)), indent=2))
    else:
        print(report.render())
    failed = report.errors > 0 or (args.strict and report.warnings > 0)
    return 1 if failed else 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.backtest.data import BarProvider
    from repro.corr.clustering import (
        correlation_clusters,
        screen_candidate_pairs,
    )
    from repro.corr.measures import corr_matrix
    from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
    from repro.taq.universe import default_universe
    from repro.util.timeutil import TimeGrid

    market = SyntheticMarket(
        default_universe(args.symbols),
        SyntheticMarketConfig(trading_seconds=args.seconds),
        seed=args.seed,
    )
    provider = BarProvider(
        market, TimeGrid(30, trading_seconds=args.seconds)
    )
    returns = provider.returns(0)
    matrix = corr_matrix(returns, args.measure)
    symbols = market.universe.symbols

    print(f"Clusters (rho >= {args.threshold}):")
    for cluster in correlation_clusters(matrix, args.threshold):
        if len(cluster) > 1:
            print("  [" + ", ".join(symbols[i] for i in sorted(cluster)) + "]")
    candidates = screen_candidate_pairs(
        matrix, n_obs=returns.shape[0], threshold=args.threshold,
        max_pairs=args.top,
    )
    print(f"\nTop {len(candidates)} candidates "
          f"(Fisher-z lower bound >= {args.threshold}):")
    for c in candidates:
        i, j = c.pair
        print(f"  {symbols[i]}/{symbols[j]:<6} rho={c.correlation:.3f} "
              f"(lb {c.lower_bound:.3f})")
    return 0


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from repro.store import ingest_csv, ingest_synthetic
    from repro.taq.universe import default_universe

    obs = _make_obs(args)
    if args.from_csv:
        manifest = ingest_csv(
            args.root, args.from_csv, default_universe(args.symbols),
            trading_seconds=args.seconds, n_shards=args.shards,
            block_rows=args.block_rows, obs=obs,
        )
    else:
        from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig

        market = SyntheticMarket(
            default_universe(args.symbols),
            SyntheticMarketConfig(trading_seconds=args.seconds),
            seed=args.seed,
        )
        manifest = ingest_synthetic(
            args.root, market, n_days=args.days, n_shards=args.shards,
            block_rows=args.block_rows, obs=obs,
        )
    days = manifest["days"]
    rows = sum(e["rows"] for e in days.values())
    nbytes = sum(s["bytes"] for e in days.values() for s in e["shards"])
    print(
        f"ingested {len(days)} days x "
        f"{len(manifest['universe']['symbols'])} symbols -> "
        f"{rows} rows, {manifest['n_shards']} shards/day, "
        f"{nbytes} segment bytes under {args.root}"
    )
    _dump_obs(args, obs.report() if obs is not None else None)
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    from repro.store import StoreReader

    reader = StoreReader(args.root)
    man = reader.manifest
    source = man.get("source") or {}
    print(
        f"{man['schema']}: {len(reader.days)} days, "
        f"{len(reader.universe)} symbols, {reader.n_shards} shards/day, "
        f"source={source.get('kind', '?')}"
    )
    for day in reader.days:
        entry = man["days"][str(day)]
        t_min, t_max = entry["t_min"], entry["t_max"]
        span = (
            f"t=[{t_min:9.2f}, {t_max:9.2f}]"
            if t_min is not None else "t=[empty]"
        )
        crossed = sum(
            s["quality"]["n_crossed"] for s in entry["shards"]
        )
        print(f"  day {day:3d}: {entry['rows']:9d} rows  {span}  "
              f"{crossed} crossed")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import CodecError, StoreReader, verify_store

    try:
        summary = verify_store(StoreReader(args.root), deep=args.deep)
    except CodecError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {summary['segments']} segments / {summary['blocks']} blocks / "
        f"{summary['rows']} rows across {summary['days']} days verified"
        + (f"; {summary['deep_days']} days re-derived bitwise"
           if args.deep else "")
    )
    return 0


def _cmd_store_scan(args: argparse.Namespace) -> int:
    from repro.store import StoreReader

    obs = _make_obs(args)
    reader = StoreReader(args.root, obs=obs)
    columns = args.columns.split(",") if args.columns else None
    symbols = args.select.split(",") if args.select else None
    days = args.days if args.days else None
    rows = segments = 0
    for batch in reader.scan(
        columns=columns, days=days, symbols=symbols,
        t_min=args.t_min, t_max=args.t_max, cached=args.cached,
    ):
        rows += batch.rows
        segments += 1
    print(f"scanned {rows} rows from {segments} segments")
    if args.cached:
        stats = reader.cache.stats()
        print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
              f"({stats['hit_rate']:.0%}), {stats['bytes']} bytes held")
    _dump_obs(args, obs.report() if obs is not None else None)
    return 0


_STORE_COMMANDS = {
    "ingest": _cmd_store_ingest,
    "ls": _cmd_store_ls,
    "verify": _cmd_store_verify,
    "scan": _cmd_store_scan,
}


def _cmd_store(args: argparse.Namespace) -> int:
    return _STORE_COMMANDS[args.store_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import secrets

    from repro.obs import Obs
    from repro.serve import ServeApp, SessionManager, make_server

    token = args.token
    if token is None:
        token = secrets.token_hex(16)
        print(f"generated bearer token: {token}")
    store = None
    if args.store_root is not None:
        from repro.store import StoreReader

        store = StoreReader(args.store_root)
        print(f"store attached: {args.store_root} "
              f"({len(store.days)} days, {len(store.universe)} symbols)")
    manager = SessionManager(
        max_live=args.max_sessions,
        retain=max(args.retain, args.max_sessions + 1),
        flight_root=args.flight_root,
    )
    app = ServeApp(manager, token=token, obs=Obs(enabled=True), store=store)
    server = make_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port} "
          f"(max {args.max_sessions} live sessions)")
    print("routes: GET /health | GET /telemetry | GET /metrics | "
          "POST /sessions | ...  (see docs/serving.md)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down: killing live sessions...")
    finally:
        manager.kill_all()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A High Performance Pair Trading "
        "Application' (IPPS 2009)",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning"), default=None,
        help="configure the 'repro' logger at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table-I parameter grid")

    p = sub.add_parser("taq-sample", help="print Table-II style quote rows")
    _add_market_args(p, symbols=8)
    p.add_argument("--rows", type=int, default=12)

    p = sub.add_parser("sweep", help="run the study, print Tables III-V")
    _add_market_args(p, symbols=8)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--levels", type=int, default=4,
                   help="factor levels per treatment (max 14)")
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--engine", choices=("distributed", "sequential"),
                   default="distributed")
    p.add_argument("--corr-backend", choices=("scalar", "batch"),
                   default="scalar",
                   help="correlation backend: the per-pair scalar oracle "
                   "or the all-pairs batch kernels (bitwise-identical "
                   "results, batch is faster at scale)")
    p.add_argument("--continue-on-error", action="store_true",
                   help="skip failed (pair, day, set) cells, print a "
                   "failure manifest and exit 3 instead of aborting")
    p.add_argument("--obs-json", metavar="PATH", default=None,
                   help="write the run's observability report here")

    p = sub.add_parser(
        "chaos",
        help="run a session under a seeded fault plan and verify recovery",
    )
    _add_market_args(p, symbols=4)
    p.add_argument("--plan", default=None,
                   help="named fault plan (see --list-plans)")
    p.add_argument("--list-plans", action="store_true",
                   help="list the named fault plans and exit")
    p.add_argument("--target", choices=("figure1", "sweep"),
                   default="figure1",
                   help="chaos a Figure-1 session or an Approach-3 backtest")
    p.add_argument("--ranks", type=int, default=3)
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread")
    p.add_argument("--checkpoint-every", type=int, default=20,
                   help="intervals per checkpoint epoch (figure1 target)")
    p.add_argument("--max-restarts", type=int, default=3)
    p.add_argument("--stall-seconds", type=float, default=0.5,
                   help="sleep injected by the 'stall' plan")
    p.add_argument("--at-op", type=int, default=None,
                   help="override the crash/stall trigger op (default: "
                   "plan value for figure1, 4 for the short sweep target)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-recv timeout for the session's communicators")
    p.add_argument("--flight-dump", metavar="DIR", default=None,
                   help="dump every attempt's per-rank flight-recorder "
                   "rings here as rank<r>-attempt<a>.jsonl (figure1 target)")

    p = sub.add_parser(
        "elastic",
        help="run a session under an epoch-boundary resize plan and "
        "verify the rescaled run matches a fixed-size run bitwise",
    )
    _add_market_args(p, symbols=4)
    p.add_argument("--ranks", type=int, default=2,
                   help="starting rank-pool size")
    p.add_argument("--resize", metavar="EPOCH:SIZE", action="append",
                   default=None,
                   help="resize the pool to SIZE at epoch EPOCH's boundary "
                   "(repeatable, e.g. --resize 1:4 --resize 2:3)")
    p.add_argument("--checkpoint-every", type=int, default=20,
                   help="intervals per checkpoint epoch")
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread")
    p.add_argument("--compare-fixed", type=int, metavar="RANKS",
                   default=None,
                   help="also run at this fixed size and exit 1 unless the "
                   "results and folded domain counters match bitwise")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-recv timeout for the session's communicators")

    p = sub.add_parser("pipeline", help="stream a Figure-1 live session")
    _add_market_args(p, symbols=6)
    p.add_argument("--ranks", type=int, default=3)
    p.add_argument("--engines", type=int, default=1,
                   help="parallel correlation engines")
    p.add_argument("--obs-json", metavar="PATH", default=None,
                   help="write the run's observability report here")

    p = sub.add_parser(
        "top",
        help="live telemetry view (rates, queue depth, component duty) "
        "over a running session",
    )
    _add_market_args(p, symbols=6)
    p.add_argument("--ranks", type=int, default=3)
    p.add_argument("--engines", type=int, default=1,
                   help="parallel correlation engines")
    p.add_argument("--target", choices=("pipeline", "chaos"),
                   default="pipeline",
                   help="watch a plain Figure-1 session or a supervised "
                   "chaos session")
    p.add_argument("--plan", default="crash-mid",
                   help="fault plan for --target chaos")
    p.add_argument("--checkpoint-every", type=int, default=20,
                   help="intervals per checkpoint epoch (chaos target)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-recv timeout (chaos target)")
    p.add_argument("--refresh", type=float, default=0.5,
                   help="seconds between sampling ticks / repaints")
    p.add_argument("--window", type=float, default=5.0,
                   help="rate/percentile window in seconds")
    p.add_argument("--health", metavar="RULE", action="append", default=None,
                   help="health rule, e.g. 'mpi.pending.depth mean[2] > 50' "
                   "(repeatable)")
    p.add_argument("--plain", action="store_true",
                   help="append frames instead of repainting (default when "
                   "stdout is not a tty)")
    p.add_argument("--obs-json", metavar="PATH", default=None,
                   help="write the session's observability report here")

    p = sub.add_parser(
        "report", help="run a study and print the full evaluation report"
    )
    _add_market_args(p, symbols=8)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--levels", type=int, default=4)
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--bootstrap", type=int, default=500)
    p.add_argument("--obs-json", metavar="PATH", default=None,
                   help="write the run's observability report here")

    p = sub.add_parser(
        "stats", help="render an observability report written by --obs-json"
    )
    p.add_argument("path", help="path to a repro.obs/v1 JSON report")

    p = sub.add_parser(
        "lint",
        help="static checks: graph lint on the Figure-1 spec + repo AST lint",
    )
    _add_market_args(p, symbols=6)
    p.add_argument("--ranks", type=int, default=2,
                   help="scheduler size the placement rules validate against")
    p.add_argument("--engines", type=int, default=1,
                   help="parallel correlation engines in the linted spec")
    p.add_argument("--rank-budget", type=float, default=None,
                   help="flag ranks whose placed weight exceeds this budget")
    p.add_argument("--root", metavar="DIR", default=None,
                   help="repo-lint this tree (default: the installed "
                   "repro package)")
    p.add_argument("--skip-graph", action="store_true",
                   help="skip the graph-spec lint pass")
    p.add_argument("--skip-repo", action="store_true",
                   help="skip the repo AST lint pass")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings, not just errors")

    p = sub.add_parser(
        "analyze",
        help="deepcheck: interprocedural state/determinism/protocol "
        "analyzers",
    )
    _add_market_args(p, symbols=6)
    p.add_argument("--engines", type=int, default=1,
                   help="parallel correlation engines in the checked spec")
    p.add_argument("--root", metavar="DIR", default=None,
                   help="analyze this tree (default: the installed repro "
                   "package)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings, not just errors")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.analysis/v1 JSON document")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="subtract audited-OK findings recorded in this "
                   "baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline to cover every current finding "
                   "(justifications preserved by fingerprint)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--skip", action="append", default=None,
                   choices=("state", "det", "proto"),
                   help="skip an analyzer (repeatable)")
    p.add_argument("--graph", metavar="MODULE:FUNCTION", default=None,
                   help="protocheck this workflow provider instead of the "
                   "built-in Figure-1 spec")

    p = sub.add_parser(
        "store", help="partitioned columnar tick store (ingest/ls/verify/scan)"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)

    sp = store_sub.add_parser(
        "ingest", help="build a store from synthetic days or Table-II CSVs"
    )
    sp.add_argument("--root", required=True, metavar="DIR",
                    help="store root directory (created if missing)")
    _add_market_args(sp, symbols=8)
    sp.add_argument("--days", type=int, default=3,
                    help="synthetic days to ingest (ignored with --from-csv)")
    sp.add_argument("--shards", type=int, default=4,
                    help="symbol shards per day")
    sp.add_argument("--block-rows", type=int, default=65_536,
                    help="rows per checksummed block")
    sp.add_argument("--from-csv", nargs="+", metavar="CSV", default=None,
                    help="ingest these Table-II CSV files (one day each) "
                    "instead of synthesising")
    sp.add_argument("--obs-json", metavar="PATH", default=None,
                    help="write the ingest's observability report here")

    sp = store_sub.add_parser("ls", help="list the store's days and stats")
    sp.add_argument("--root", required=True, metavar="DIR")

    sp = store_sub.add_parser(
        "verify", help="checksum every segment block against the manifest"
    )
    sp.add_argument("--root", required=True, metavar="DIR")
    sp.add_argument("--deep", action="store_true",
                    help="also regenerate the synthetic source and compare "
                    "every stored day bitwise")

    sp = store_sub.add_parser(
        "scan", help="columnar scan with predicate pushdown"
    )
    sp.add_argument("--root", required=True, metavar="DIR")
    sp.add_argument("--days", type=int, nargs="+", default=None,
                    help="restrict to these day indices")
    sp.add_argument("--select", metavar="SYM,SYM", default=None,
                    help="comma-separated symbol subset")
    sp.add_argument("--t-min", type=float, default=None,
                    help="inclusive lower time bound (seconds from open)")
    sp.add_argument("--t-max", type=float, default=None,
                    help="exclusive upper time bound (seconds from open)")
    sp.add_argument("--columns", metavar="COL,COL", default=None,
                    help="comma-separated columns (default: quote fields)")
    sp.add_argument("--cached", action="store_true",
                    help="read through the CRC-verified block cache")
    sp.add_argument("--obs-json", metavar="PATH", default=None,
                    help="write the scan's observability report here")

    p = sub.add_parser("screen", help="candidate-pair screening funnel")
    _add_market_args(p, symbols=12)
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--measure", choices=("pearson", "maronna", "combined"),
                   default="pearson")

    p = sub.add_parser(
        "serve", help="multi-tenant HTTP/JSON session server (stdlib-only)"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8972,
                   help="bind port; 0 picks an ephemeral port")
    p.add_argument("--token", default=None,
                   help="bearer token clients must send; generated and "
                   "printed when omitted")
    p.add_argument("--store-root", metavar="DIR", default=None,
                   help="attach this tick store for /store/* routes")
    p.add_argument("--max-sessions", type=int, default=8,
                   help="concurrent live sessions before submits 429")
    p.add_argument("--retain", type=int, default=64,
                   help="total sessions kept before terminal ones are pruned")
    p.add_argument("--flight-root", metavar="DIR", default=None,
                   help="write per-session flight-recorder dumps under here")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "taq-sample": _cmd_taq_sample,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "elastic": _cmd_elastic,
    "pipeline": _cmd_pipeline,
    "top": _cmd_top,
    "report": _cmd_report,
    "screen": _cmd_screen,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "store": _cmd_store,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        import logging as _logging

        from repro.util.logging import configure

        configure(getattr(_logging, args.log_level.upper()))
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
