"""Implementation shortfalls (paper §VI future work).

"Future studies would also benefit from considering various
'implementation shortfalls' that occur in practice such as transaction
costs, moving the market (on big orders) and lost opportunity (inability
to fill an order)."

:class:`ExecutionModel` implements all three:

* **transaction costs** — per-share commission plus per-leg slippage (the
  strategy prices at the bid–ask midpoint; a real fill crosses part of
  the spread);
* **market impact** — an additional per-leg penalty growing with order
  size (square-root law in shares, the standard stylised impact shape);
* **lost opportunity** — entries fail to fill with probability
  ``1 - fill_probability``; an unfilled entry is a skipped trade.

Costs are charged at the round trip's close against the position basis,
so they compose with the paper's return definition (step 6).  Fill
failures are deterministic given the model seed and the entry interval,
keeping every backtest reproducible and the batch/streaming engines
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.strategy.positions import PairPosition
from repro.util.validation import check_probability


def execution_salt(pair: tuple[int, int], param_index: int) -> int:
    """Deterministic per-(pair, parameter set) salt for the fill lottery.

    All backtest engines use this same derivation, so frictional results
    are identical across architectures (the engine-equivalence invariant
    extends to executions with lost opportunity).
    """
    i, j = pair
    return (int(i) * 1_000_003 + int(j)) * 101 + int(param_index)


@dataclass(frozen=True)
class ExecutionModel:
    """Friction parameters applied to each round trip.

    The zero-argument default is frictionless (matching the paper's
    stated simplification: "not including transaction costs").
    """

    #: Commission in dollars per share, charged on every fill.
    commission_per_share: float = 0.0
    #: Slippage per leg in fractions of traded value (e.g. 2e-4 = 2 bps).
    slippage_frac: float = 0.0
    #: Impact coefficient: extra cost fraction per leg scaling with
    #: sqrt(shares) — "moving the market (on big orders)".
    impact_coeff: float = 0.0
    #: Probability an entry order fills; misses are lost opportunity.
    fill_probability: float = 1.0
    #: Seed for the deterministic fill lottery.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.commission_per_share < 0:
            raise ValueError("commission_per_share must be >= 0")
        if self.slippage_frac < 0:
            raise ValueError("slippage_frac must be >= 0")
        if self.impact_coeff < 0:
            raise ValueError("impact_coeff must be >= 0")
        check_probability(self.fill_probability, "fill_probability")

    @property
    def frictionless(self) -> bool:
        return (
            self.commission_per_share == 0.0
            and self.slippage_frac == 0.0
            and self.impact_coeff == 0.0
            and self.fill_probability == 1.0
        )

    # -- lost opportunity ---------------------------------------------------

    def entry_fills(self, entry_s: int, salt: int = 0) -> bool:
        """Deterministic fill lottery for an entry at interval ``entry_s``.

        ``salt`` distinguishes concurrent strategies (e.g. a pair index)
        so their lotteries are independent.
        """
        if self.fill_probability >= 1.0:
            return True
        if self.fill_probability <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(entry_s), int(salt)])
        )
        return bool(rng.random() < self.fill_probability)

    # -- transaction costs + impact -----------------------------------------

    def round_trip_cost(
        self,
        position: PairPosition,
        exit_price_long: float,
        exit_price_short: float,
    ) -> float:
        """Total friction dollars for the four fills of one round trip."""
        shares = (position.n_long, position.n_short)
        entry_values = (
            position.entry_price_long * position.n_long,
            position.entry_price_short * position.n_short,
        )
        exit_values = (
            exit_price_long * position.n_long,
            exit_price_short * position.n_short,
        )
        commission = 2.0 * self.commission_per_share * sum(shares)
        slippage = self.slippage_frac * (sum(entry_values) + sum(exit_values))
        impact = self.impact_coeff * sum(
            np.sqrt(n) * v
            for n, v in zip(shares * 2, entry_values + exit_values)
        )
        return commission + slippage + impact

    def net_return(
        self,
        gross_return: float,
        position: PairPosition,
        exit_price_long: float,
        exit_price_short: float,
    ) -> float:
        """Gross step-6 return minus friction, against the same basis."""
        if self.frictionless:
            return gross_return
        cost = self.round_trip_cost(position, exit_price_long, exit_price_short)
        return gross_return - cost / position.basis
