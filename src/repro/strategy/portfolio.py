"""Basket aggregation and risk limits (paper §IV, Approach 3).

The advantage the paper claims for tight MarketMiner integration is that
"the outputs from each strategy (trade decisions) can be gathered by a
master process to perform additional tasks such as risk management and
liquidity provisioning", with per-pair orders aggregated "into a single
basket" for list-based execution.  This module is that master-side logic:
:class:`OrderRequest` is the unit a strategy component emits,
:class:`BasketAggregator` nets them into per-symbol baskets per interval,
and :class:`RiskLimits` vetoes orders that would breach portfolio limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True, slots=True)
class OrderRequest:
    """A single-leg order emitted by a pair strategy."""

    s: int
    symbol: int
    shares: int  # positive = buy, negative = sell/short
    price: float
    pair: tuple[int, int]
    param_index: int = 0

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError(f"interval must be >= 0, got {self.s}")
        if self.shares == 0:
            raise ValueError("orders must have non-zero share count")
        check_positive(self.price, "price")

    @property
    def notional(self) -> float:
        return abs(self.shares) * self.price


@dataclass(frozen=True)
class RiskLimits:
    """Portfolio-level limits applied before orders join the basket.

    ``max_symbol_shares`` is the liquidity-provisioning limit: many pair
    strategies sharing one symbol can concentrate the book in it; the cap
    bounds the absolute net share position per symbol across all open
    pairs.
    """

    max_gross_notional: float = float("inf")
    max_open_pairs: int = 1_000_000
    max_order_notional: float = float("inf")
    max_symbol_shares: int | None = None

    def __post_init__(self) -> None:
        if self.max_gross_notional <= 0:
            raise ValueError("max_gross_notional must be positive")
        check_positive_int(self.max_open_pairs, "max_open_pairs")
        if self.max_order_notional <= 0:
            raise ValueError("max_order_notional must be positive")
        if self.max_symbol_shares is not None:
            check_positive_int(self.max_symbol_shares, "max_symbol_shares")


class BasketAggregator:
    """Nets per-pair order requests into per-interval symbol baskets.

    Entry orders are accepted or vetoed atomically per pair (both legs or
    neither) against the risk limits; exit orders are always accepted, so
    a limit breach can never strand an open position.
    """

    def __init__(self, limits: RiskLimits | None = None):
        self.limits = limits if limits is not None else RiskLimits()
        self._open_pairs: dict[tuple[int, int, int], float] = {}
        self._gross = 0.0
        self._symbol_net: dict[int, int] = {}
        self._vetoed: list[tuple[OrderRequest, ...]] = []

    @property
    def gross_notional(self) -> float:
        """Total notional of currently open pair positions."""
        return self._gross

    @property
    def open_pair_count(self) -> int:
        return len(self._open_pairs)

    @property
    def vetoed(self) -> list[tuple[OrderRequest, ...]]:
        """Entry order groups rejected by the risk limits."""
        return list(self._vetoed)

    def submit_entry(self, legs: tuple[OrderRequest, ...]) -> bool:
        """Offer an entry (both legs of a new pair position); returns accepted.

        The legs must share the pair, interval and parameter index.
        """
        self._check_legs(legs)
        key = (*legs[0].pair, legs[0].param_index)
        if key in self._open_pairs:
            raise ValueError(f"pair {key} already has an open position")
        notional = sum(leg.notional for leg in legs)
        limits = self.limits
        breaches_concentration = False
        if limits.max_symbol_shares is not None:
            for leg in legs:
                new_net = self._symbol_net.get(leg.symbol, 0) + leg.shares
                if abs(new_net) > limits.max_symbol_shares:
                    breaches_concentration = True
                    break
        if (
            any(leg.notional > limits.max_order_notional for leg in legs)
            or self._gross + notional > limits.max_gross_notional
            or len(self._open_pairs) + 1 > limits.max_open_pairs
            or breaches_concentration
        ):
            self._vetoed.append(tuple(legs))
            return False
        self._open_pairs[key] = notional
        self._gross += notional
        for leg in legs:
            self._symbol_net[leg.symbol] = (
                self._symbol_net.get(leg.symbol, 0) + leg.shares
            )
        return True

    def submit_exit(self, legs: tuple[OrderRequest, ...]) -> None:
        """Close a previously accepted pair position (always accepted)."""
        self._check_legs(legs)
        key = (*legs[0].pair, legs[0].param_index)
        notional = self._open_pairs.pop(key, None)
        if notional is None:
            raise ValueError(f"no open position for pair {key}")
        self._gross -= notional
        for leg in legs:
            self._symbol_net[leg.symbol] = (
                self._symbol_net.get(leg.symbol, 0) + leg.shares
            )

    def symbol_net_shares(self, symbol: int) -> int:
        """Current net share position in ``symbol`` across open pairs."""
        return self._symbol_net.get(symbol, 0)

    @staticmethod
    def _check_legs(legs: tuple[OrderRequest, ...]) -> None:
        if len(legs) != 2:
            raise ValueError(f"pair orders have exactly 2 legs, got {len(legs)}")
        a, b = legs
        if a.pair != b.pair or a.s != b.s or a.param_index != b.param_index:
            raise ValueError("legs must share pair, interval and param_index")
        if (a.shares > 0) == (b.shares > 0):
            raise ValueError("pair legs must be one buy and one sell")

    @staticmethod
    def basket(orders: list[OrderRequest]) -> dict[int, int]:
        """Net a list of accepted orders into {symbol: net shares}.

        Zero-net symbols are dropped — the "single basket" the paper's
        list-based execution algorithm would receive.
        """
        net: dict[int, int] = {}
        for order in orders:
            net[order.symbol] = net.get(order.symbol, 0) + order.shares
        return {sym: sh for sym, sh in net.items() if sh != 0}
