"""List-based basket execution (paper §IV, Approach 3).

"Aggregating the results into a single basket, as opposed to many
individual trade orders, allows the trading system to ... utilize a
sophisticated list-based algorithm to optimize the actual execution of
the trades."  This module is that algorithm:

* :class:`ListExecutionScheduler` slices a basket of net symbol orders
  over a horizon of future intervals (TWAP-style), capping each slice by
  a participation limit against the symbol's expected per-interval
  volume — big orders stretch out instead of moving the market;
* :func:`simulate_fills` executes a plan against bar prices, filling at
  the BAM plus a signed half-spread, and reports the implementation
  shortfall of every symbol against its decision price.

The scheduler is deterministic and purely arithmetical; the simulator is
the measurement harness the cost ablations use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True, slots=True)
class ChildOrder:
    """One slice of a parent order, scheduled at interval ``s``."""

    s: int
    symbol: int
    shares: int  # signed: positive buys, negative sells

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError(f"interval must be >= 0, got {self.s}")
        if self.shares == 0:
            raise ValueError("child orders must have non-zero shares")


@dataclass(frozen=True)
class ListExecutionPlan:
    """A basket sliced into per-interval child orders."""

    decision_s: int
    children: tuple[ChildOrder, ...]
    #: Shares per symbol that could not be scheduled inside the horizon
    #: under the participation cap (to be carried to the next basket).
    unscheduled: dict[int, int] = field(default_factory=dict)

    def shares_of(self, symbol: int) -> int:
        return sum(c.shares for c in self.children if c.symbol == symbol)

    @property
    def horizon_end(self) -> int:
        return max((c.s for c in self.children), default=self.decision_s)


class ListExecutionScheduler:
    """TWAP slicing with a participation cap.

    Parameters
    ----------
    horizon:
        Number of future intervals (starting at the decision interval)
        the basket may execute over.
    max_participation:
        Largest fraction of a symbol's expected per-interval volume one
        slice may take.
    interval_volume:
        Expected tradeable shares per symbol per interval (scalar applied
        to all symbols, or a per-symbol mapping).
    """

    def __init__(
        self,
        horizon: int = 10,
        max_participation: float = 0.1,
        interval_volume: float | dict[int, float] = 1000.0,
    ):
        check_positive_int(horizon, "horizon")
        if not 0.0 < max_participation <= 1.0:
            raise ValueError(
                f"max_participation must be in (0, 1], got {max_participation}"
            )
        self.horizon = horizon
        self.max_participation = max_participation
        if isinstance(interval_volume, dict):
            for sym, vol in interval_volume.items():
                check_positive(vol, f"interval_volume[{sym}]")
            self._volume = dict(interval_volume)
            self._default_volume: float | None = None
        else:
            self._default_volume = check_positive(interval_volume, "interval_volume")
            self._volume = {}

    def _cap_for(self, symbol: int) -> int:
        vol = self._volume.get(symbol, self._default_volume)
        if vol is None:
            raise KeyError(
                f"no interval volume configured for symbol {symbol}"
            )
        return max(1, int(vol * self.max_participation))

    def plan(self, basket: dict[int, int], decision_s: int) -> ListExecutionPlan:
        """Slice a net basket starting at ``decision_s``.

        Shares are spread as evenly as possible over the horizon; any
        per-slice excess above the participation cap is pushed to later
        slices, and whatever cannot fit in the horizon is reported as
        ``unscheduled`` rather than silently executed oversize.
        """
        if decision_s < 0:
            raise ValueError(f"decision_s must be >= 0, got {decision_s}")
        children: list[ChildOrder] = []
        unscheduled: dict[int, int] = {}
        for symbol, shares in sorted(basket.items()):
            if shares == 0:
                continue
            cap = self._cap_for(symbol)
            remaining = abs(shares)
            sign = 1 if shares > 0 else -1
            # Even TWAP target per slice, never above the cap.
            per_slice = min(cap, -(-remaining // self.horizon))  # ceil div
            for k in range(self.horizon):
                if remaining == 0:
                    break
                take = min(per_slice, cap, remaining)
                children.append(
                    ChildOrder(s=decision_s + k, symbol=symbol, shares=sign * take)
                )
                remaining -= take
            if remaining:
                unscheduled[symbol] = sign * remaining
        children.sort(key=lambda c: (c.s, c.symbol))
        return ListExecutionPlan(
            decision_s=decision_s,
            children=tuple(children),
            unscheduled=unscheduled,
        )


@dataclass(frozen=True)
class SymbolExecution:
    """Fill summary for one symbol of a plan."""

    symbol: int
    shares: int
    avg_fill_price: float
    decision_price: float

    @property
    def shortfall_per_share(self) -> float:
        """Signed implementation shortfall: positive = cost.

        Buys cost when filled above the decision price; sells cost when
        filled below it.
        """
        side = 1.0 if self.shares > 0 else -1.0
        return side * (self.avg_fill_price - self.decision_price)

    @property
    def shortfall_frac(self) -> float:
        return self.shortfall_per_share / self.decision_price


@dataclass(frozen=True)
class ExecutionReport:
    """Fills and implementation shortfall for a whole plan."""

    executions: tuple[SymbolExecution, ...]

    @property
    def total_cost(self) -> float:
        """Total shortfall dollars across the basket."""
        return sum(
            e.shortfall_per_share * abs(e.shares) for e in self.executions
        )

    def of(self, symbol: int) -> SymbolExecution:
        for e in self.executions:
            if e.symbol == symbol:
                return e
        raise KeyError(f"symbol {symbol} not in this report")


def simulate_fills(
    plan: ListExecutionPlan,
    prices: np.ndarray,
    half_spread_frac: float = 3e-4,
) -> ExecutionReport:
    """Execute a plan against ``(smax, n)`` bar prices.

    Each child fills at the interval's BAM close plus a signed half
    spread (buys pay the ask side, sells receive the bid side).  The
    decision price is the BAM at the plan's decision interval.
    """
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 2:
        raise ValueError(f"prices must be (smax, n), got {prices.shape}")
    if half_spread_frac < 0:
        raise ValueError("half_spread_frac must be >= 0")
    smax = prices.shape[0]
    if plan.horizon_end >= smax:
        raise ValueError(
            f"plan extends to interval {plan.horizon_end}, beyond the "
            f"session's {smax} intervals"
        )

    by_symbol: dict[int, list[ChildOrder]] = {}
    for child in plan.children:
        by_symbol.setdefault(child.symbol, []).append(child)

    executions = []
    for symbol, children in sorted(by_symbol.items()):
        shares = sum(c.shares for c in children)
        side = 1.0 if shares > 0 else -1.0
        fill_value = sum(
            abs(c.shares)
            * prices[c.s, c.symbol]
            * (1.0 + side * half_spread_frac)
            for c in children
        )
        executions.append(
            SymbolExecution(
                symbol=symbol,
                shares=shares,
                avg_fill_price=fill_value / abs(shares),
                decision_price=float(prices[plan.decision_s, symbol]),
            )
        )
    return ExecutionReport(executions=tuple(executions))
