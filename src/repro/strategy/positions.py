"""Position sizing and trade returns (paper §III, steps 4 and 6).

The share ratio keeps the trade "as close to cash-neutral as possible, but
just slightly on the long side": with prices ``P_i > P_j``, longing ``i``
uses the ratio 1 : ⌊P_i / P_j⌋ (long value ≥ short value), shorting ``i``
uses 1 : ⌈P_i / P_j⌉ (again long value ≥ short value).

The trade return is ``R = π / (P_i N_i + P_j N_j)`` with ``π`` the dollar
profit over both legs and the denominator the entry prices times shares —
the committed capital.  (The paper's worked example contains two slips —
it divides $5 by $180 after computing a $280 basis and reports 2.8%; the
formula as printed gives 5/280 ≈ 1.8% — we implement the formula.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


def cash_neutral_shares(price_long: float, price_short: float) -> tuple[int, int]:
    """Share counts ``(n_long, n_short)`` per paper step 4.

    The expensive leg trades one share; the cheap leg trades the rounded
    price ratio, with rounding chosen so the long side is the larger:
    floor when the expensive leg is long, ceil when it is short.
    """
    price_long = check_positive(price_long, "price_long")
    price_short = check_positive(price_short, "price_short")
    if price_long >= price_short:
        return 1, max(1, math.floor(price_long / price_short))
    return math.ceil(price_short / price_long), 1


@dataclass(frozen=True, slots=True)
class PairPosition:
    """An open pair position.

    ``long_leg`` identifies which element of the (ordered) pair is held
    long (0 or 1); entry prices are the BAM closes at the entry interval.
    """

    entry_s: int
    long_leg: int
    n_long: int
    n_short: int
    entry_price_long: float
    entry_price_short: float
    entry_spread: float
    retracement_level: float
    #: +1 → reverse when the spread rises to the level; -1 → when it falls.
    retracement_direction: int

    def __post_init__(self) -> None:
        if self.long_leg not in (0, 1):
            raise ValueError(f"long_leg must be 0 or 1, got {self.long_leg}")
        if self.n_long < 1 or self.n_short < 1:
            raise ValueError("share counts must be >= 1")
        check_positive(self.entry_price_long, "entry_price_long")
        check_positive(self.entry_price_short, "entry_price_short")
        if self.retracement_direction not in (-1, 1):
            raise ValueError(
                f"retracement_direction must be ±1, got {self.retracement_direction}"
            )

    @property
    def basis(self) -> float:
        """Committed capital: entry prices times shares over both legs."""
        return (
            self.entry_price_long * self.n_long
            + self.entry_price_short * self.n_short
        )

    def retracement_hit(self, spread: float) -> bool:
        """True when the current spread has reached the retracement level."""
        if self.retracement_direction > 0:
            return spread >= self.retracement_level
        return spread <= self.retracement_level


def position_return(
    position: PairPosition, exit_price_long: float, exit_price_short: float
) -> float:
    """Paper step 6: ``R = π / (P_i N_i + P_j N_j)``.

    ``π`` is the profit over both legs: the long leg earns the price rise,
    the short leg earns the price fall.
    """
    check_positive(exit_price_long, "exit_price_long")
    check_positive(exit_price_short, "exit_price_short")
    profit = (exit_price_long - position.entry_price_long) * position.n_long + (
        position.entry_price_short - exit_price_short
    ) * position.n_short
    return profit / position.basis
