"""The canonical pair trading strategy (paper §III).

A statistical pair trade watches the short-window correlation of a pair;
when a fresh breakdown (divergence) is detected against the recent average
correlation, it goes long the under-performer and short the over-performer
in cash-neutral-slightly-long size, then unwinds at a spread retracement
level, a maximum holding period, or the end of the day.

Submodules: parameters and the Table-I grid (:mod:`~repro.strategy.params`),
divergence signal computation (:mod:`~repro.strategy.signals`), position
sizing (:mod:`~repro.strategy.positions`), retracement levels
(:mod:`~repro.strategy.retracement`), the per-pair state machine
(:mod:`~repro.strategy.engine`) and basket/risk aggregation
(:mod:`~repro.strategy.portfolio`).
"""

from repro.strategy.costs import ExecutionModel, execution_salt
from repro.strategy.execution_algo import (
    ChildOrder,
    ExecutionReport,
    ListExecutionPlan,
    ListExecutionScheduler,
    simulate_fills,
)
from repro.strategy.engine import (
    PairStrategy,
    Trade,
    TradeReason,
    align_corr_series,
    run_pair_day,
)
from repro.strategy.params import (
    StrategyParams,
    format_table1,
    paper_parameter_grid,
    small_parameter_grid,
    table1_values,
)
from repro.strategy.portfolio import BasketAggregator, OrderRequest, RiskLimits
from repro.strategy.positions import (
    PairPosition,
    cash_neutral_shares,
    position_return,
)
from repro.strategy.retracement import RetracementLevel, retracement_level
from repro.strategy.signals import average_correlation, divergence_signals

__all__ = [
    "BasketAggregator",
    "ChildOrder",
    "ExecutionModel",
    "ExecutionReport",
    "ListExecutionPlan",
    "ListExecutionScheduler",
    "OrderRequest",
    "PairPosition",
    "PairStrategy",
    "RetracementLevel",
    "RiskLimits",
    "StrategyParams",
    "Trade",
    "TradeReason",
    "average_correlation",
    "cash_neutral_shares",
    "divergence_signals",
    "execution_salt",
    "format_table1",
    "paper_parameter_grid",
    "position_return",
    "retracement_level",
    "run_pair_day",
    "simulate_fills",
    "small_parameter_grid",
    "table1_values",
]
