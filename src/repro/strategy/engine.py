"""The per-pair strategy state machine (paper §III, steps 1–6).

:func:`run_pair_day` executes one (pair, parameter set) combination over
one trading day of bar closes and a correlation series, returning the
day's trades — the paper's return set ``R_p^{t,k}``.  All window
quantities (average correlation, divergence freshness, spread range,
performance returns) are precomputed vectorised; the remaining state
machine is a cheap linear scan.

:class:`PairStrategy` is the streaming form used by the MarketMiner
pipeline component: fed one interval at a time, it emits exactly the
trades the batch function produces (an invariant under test).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.strategy.costs import ExecutionModel
from repro.strategy.params import StrategyParams
from repro.strategy.positions import (
    PairPosition,
    cash_neutral_shares,
    position_return,
)
from repro.strategy.retracement import retracement_level
from repro.strategy.signals import divergence_signals


class TradeReason(enum.Enum):
    """Why a position was closed."""

    RETRACEMENT = "retracement"
    MAX_HOLDING = "max_holding"
    END_OF_DAY = "end_of_day"
    STOP_LOSS = "stop_loss"
    CORR_REVERSION = "corr_reversion"
    #: Forced flat by a degradation policy (stale correlation input).
    DEGRADED = "degraded"


@dataclass(frozen=True, slots=True)
class Trade:
    """One completed round trip on a pair."""

    entry_s: int
    exit_s: int
    ret: float
    reason: TradeReason
    long_leg: int
    n_long: int
    n_short: int

    @property
    def holding_periods(self) -> int:
        return self.exit_s - self.entry_s


def align_corr_series(series: np.ndarray, smax: int, m: int) -> np.ndarray:
    """Embed a rolling-correlation series into full interval indexing.

    ``series`` is the output of :func:`repro.corr.measures.corr_series`
    computed on the day's 1-period returns (length ``smax - 1``): its
    index ``k`` covers returns ``k .. k+m-1``, i.e. prices ``k .. k+m``,
    so it is ``C(s)`` for ``s = k + m``.  The result has length ``smax``
    with NaN for the warm-up intervals ``s < m``.
    """
    series = np.asarray(series, dtype=float)
    expected = smax - m
    if series.shape != (expected,):
        raise ValueError(
            f"series has shape {series.shape}, expected ({expected},) for "
            f"smax={smax}, m={m}"
        )
    out = np.full(smax, np.nan)
    out[m:] = series
    return out


def _open_position(
    s: int,
    prices: np.ndarray,
    spread: np.ndarray,
    perf: np.ndarray,
    params: StrategyParams,
) -> PairPosition:
    """Steps 3–5: choose legs, size the trade, set the retracement target."""
    # Long the under-performer: the leg with the lower W-period return.
    long_leg = 0 if perf[s, 0] <= perf[s, 1] else 1
    short_leg = 1 - long_leg
    p_long = float(prices[s, long_leg])
    p_short = float(prices[s, short_leg])
    n_long, n_short = cash_neutral_shares(p_long, p_short)
    level = retracement_level(
        spread[s - params.rt + 1 : s + 1], float(spread[s]), params.l
    )
    return PairPosition(
        entry_s=s,
        long_leg=long_leg,
        n_long=n_long,
        n_short=n_short,
        entry_price_long=p_long,
        entry_price_short=p_short,
        entry_spread=float(spread[s]),
        retracement_level=level.level,
        retracement_direction=level.direction,
    )


def _close_reason(
    position: PairPosition,
    s: int,
    smax: int,
    prices: np.ndarray,
    spread: np.ndarray,
    corr: np.ndarray,
    c_bar: np.ndarray,
    params: StrategyParams,
) -> TradeReason | None:
    """Exit rules in priority order: retracement, HP, extensions, EOD."""
    if position.retracement_hit(float(spread[s])):
        return TradeReason.RETRACEMENT
    if s - position.entry_s >= params.hp:
        return TradeReason.MAX_HOLDING
    if params.stop_loss is not None:
        p_long = float(prices[s, position.long_leg])
        p_short = float(prices[s, 1 - position.long_leg])
        if position_return(position, p_long, p_short) <= -params.stop_loss:
            return TradeReason.STOP_LOSS
    if params.correlation_reversion and np.isfinite(c_bar[s]):
        if c_bar[s] * (1.0 - params.d) <= corr[s] < c_bar[s]:
            return TradeReason.CORR_REVERSION
    if s == smax - 1:
        return TradeReason.END_OF_DAY
    return None


def _close(
    position: PairPosition,
    s: int,
    prices: np.ndarray,
    reason: TradeReason,
    execution: ExecutionModel | None = None,
) -> Trade:
    p_long = float(prices[s, position.long_leg])
    p_short = float(prices[s, 1 - position.long_leg])
    ret = position_return(position, p_long, p_short)
    if execution is not None:
        ret = execution.net_return(ret, position, p_long, p_short)
    return Trade(
        entry_s=position.entry_s,
        exit_s=s,
        ret=ret,
        reason=reason,
        long_leg=position.long_leg,
        n_long=position.n_long,
        n_short=position.n_short,
    )


def run_pair_day(
    prices: np.ndarray,
    corr: np.ndarray,
    params: StrategyParams,
    execution: ExecutionModel | None = None,
    salt: int = 0,
) -> list[Trade]:
    """Backtest one (pair, parameter set) over one day.

    Parameters
    ----------
    prices:
        ``(smax, 2)`` BAM closes of the pair's two legs.
    corr:
        ``(smax,)`` correlation series ``C(s)`` with NaN warm-up, as
        produced by :func:`align_corr_series`.
    params:
        The parameter set ``k``.
    execution:
        Optional implementation-shortfall model (paper §VI future work):
        transaction costs and impact net against each trade's return,
        and entries may fail to fill (lost opportunity).
    salt:
        Distinguishes the fill lottery of concurrent strategies (pass a
        pair/parameter identifier).

    Returns the day's completed trades in entry order; any position still
    open at the last interval is closed there (step 5: "we should reverse
    all positions at the end of the trading day").
    """
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 2 or prices.shape[1] != 2:
        raise ValueError(f"prices must be (smax, 2), got {prices.shape}")
    smax = prices.shape[0]
    corr = np.asarray(corr, dtype=float)
    if corr.shape != (smax,):
        raise ValueError(f"corr must be ({smax},), got {corr.shape}")
    if np.any(prices <= 0) or np.any(~np.isfinite(prices)):
        raise ValueError("prices must be positive and finite")

    start = params.first_active_interval
    if start >= smax:
        return []

    signal, c_bar = divergence_signals(corr, params.a, params.d, params.w, params.y)
    spread = prices[:, 0] - prices[:, 1]
    # W-period simple returns of each leg, aligned to interval index.
    perf = np.full((smax, 2), np.nan)
    perf[params.w :] = prices[params.w :] / prices[: -params.w] - 1.0

    trades: list[Trade] = []
    position: PairPosition | None = None
    for s in range(start, smax):
        if position is not None:
            reason = _close_reason(
                position, s, smax, prices, spread, corr, c_bar, params
            )
            if reason is not None:
                trades.append(_close(position, s, prices, reason, execution))
                position = None
                continue  # no same-interval re-entry
        if (
            position is None
            and signal[s]
            and (smax - 1 - s) >= params.st
            and (execution is None or execution.entry_fills(s, salt))
        ):
            position = _open_position(s, prices, spread, perf, params)
    return trades


class PairStrategy:
    """Streaming form of the strategy for pipeline use.

    Feed intervals in order with :meth:`step`; each call may emit a
    completed :class:`Trade`.  Produces exactly the trades of
    :func:`run_pair_day` over the same inputs.
    """

    def __init__(
        self,
        params: StrategyParams,
        smax: int,
        execution: ExecutionModel | None = None,
        salt: int = 0,
    ):
        if smax <= 0:
            raise ValueError(f"smax must be positive, got {smax}")
        self.params = params
        self.smax = smax
        self.execution = execution
        self.salt = salt
        self._s = 0
        self._prices = np.full((smax, 2), np.nan)
        self._corr = np.full(smax, np.nan)
        self._position: PairPosition | None = None
        self._trades: list[Trade] = []

    @property
    def trades(self) -> list[Trade]:
        """Completed trades so far."""
        return list(self._trades)

    @property
    def open_position(self) -> PairPosition | None:
        return self._position

    def step(self, s: int, price_0: float, price_1: float, corr_s: float) -> Trade | None:
        """Advance one interval; returns a trade if one closed at ``s``.

        ``corr_s`` may be NaN during warm-up (``s < M``).
        """
        if s != self._s:
            raise ValueError(f"expected interval {self._s}, got {s}")
        if s >= self.smax:
            raise ValueError(f"interval {s} beyond smax={self.smax}")
        if price_0 <= 0 or price_1 <= 0:
            raise ValueError("prices must be positive")
        self._prices[s] = (price_0, price_1)
        self._corr[s] = corr_s
        self._s += 1

        params = self.params
        if s < params.first_active_interval:
            return None

        spread = self._prices[:, 0] - self._prices[:, 1]
        closed: Trade | None = None
        if self._position is not None:
            c_bar_s = self._c_bar(s)
            reason = self._close_reason_stream(s, spread, c_bar_s)
            if reason is not None:
                closed = _close(
                    self._position, s, self._prices, reason, self.execution
                )
                self._trades.append(closed)
                self._position = None
                return closed

        if (
            self._position is None
            and (self.smax - 1 - s) >= params.st
            and self._signal(s)
            and (
                self.execution is None
                or self.execution.entry_fills(s, self.salt)
            )
        ):
            perf = np.full((self.smax, 2), np.nan)
            w = params.w
            perf[s] = self._prices[s] / self._prices[s - w] - 1.0
            self._position = _open_position(s, self._prices, spread, perf, params)
        return closed

    def flatten(
        self, s: int, price_0: float, price_1: float
    ) -> Trade | None:
        """Degraded-mode step: record the interval, never open, close any
        open position (reason ``DEGRADED``).

        Used by the pipeline's :class:`~repro.faults.policy.DegradePolicy`
        when the correlation input for ``s`` is stale: the correlation
        sample is recorded as NaN (a stale value is not evidence), which
        also keeps the entry signal suppressed for the next ``w``
        intervals — re-entry requires a full window of fresh data.
        """
        if s != self._s:
            raise ValueError(f"expected interval {self._s}, got {s}")
        if s >= self.smax:
            raise ValueError(f"interval {s} beyond smax={self.smax}")
        if price_0 <= 0 or price_1 <= 0:
            raise ValueError("prices must be positive")
        self._prices[s] = (price_0, price_1)
        self._corr[s] = float("nan")
        self._s += 1
        if self._position is None:
            return None
        closed = _close(
            self._position, s, self._prices, TradeReason.DEGRADED,
            self.execution,
        )
        self._trades.append(closed)
        self._position = None
        return closed

    # -- streaming reimplementations of the vectorised quantities ---------

    def _c_bar(self, s: int) -> float:
        window = self._corr[s - self.params.w + 1 : s + 1]
        if np.all(np.isfinite(window)):
            return float(window.mean())
        return float("nan")

    def _diverged(self, s: int) -> bool:
        c_bar = self._c_bar(s)
        if not np.isfinite(c_bar):
            return False
        return bool(self._corr[s] < c_bar * (1.0 - self.params.d))

    def _signal(self, s: int) -> bool:
        params = self.params
        c_bar = self._c_bar(s)
        if not np.isfinite(c_bar) or not c_bar > params.a:
            return False
        if not self._diverged(s):
            return False
        if s < params.y:
            return False
        return not all(self._diverged(sigma) for sigma in range(s - params.y, s))

    def _close_reason_stream(self, s: int, spread: np.ndarray, c_bar_s: float) -> TradeReason | None:
        params = self.params
        position = self._position
        assert position is not None
        if position.retracement_hit(float(spread[s])):
            return TradeReason.RETRACEMENT
        if s - position.entry_s >= params.hp:
            return TradeReason.MAX_HOLDING
        if params.stop_loss is not None:
            p_long = float(self._prices[s, position.long_leg])
            p_short = float(self._prices[s, 1 - position.long_leg])
            if position_return(position, p_long, p_short) <= -params.stop_loss:
                return TradeReason.STOP_LOSS
        if params.correlation_reversion and np.isfinite(c_bar_s):
            if c_bar_s * (1.0 - params.d) <= self._corr[s] < c_bar_s:
                return TradeReason.CORR_REVERSION
        if s == self.smax - 1:
            return TradeReason.END_OF_DAY
        return None
