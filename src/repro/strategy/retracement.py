"""Retracement levels (paper §III, step 5).

Let ``Sl``, ``Sh`` and ``S̄`` be the low, high and average of the pair's
spread over the trailing spread window, and ``Se`` the spread at entry.

* Entered near the low (``Se ≤ S̄``): reverse when the spread has risen to
  ``L = Sl + ℓ(Sh − Sl)``.
* Entered near the high (``Se ≥ S̄``): reverse when the spread has fallen
  to ``L = Sh − ℓ(Sh − Sl)``.

``ℓ ∈ (0, 1)`` positions the target inside the recent range: the paper's
example with range $80–$100 and ``ℓ = 1/3`` reverses at $86.67 rising from
the low, or $93.33 falling from the high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_fraction


@dataclass(frozen=True, slots=True)
class RetracementLevel:
    """A reversal target: the level and the direction it is approached from."""

    level: float
    #: +1 → reverse when the spread rises to the level; -1 → when it falls.
    direction: int

    def hit(self, spread: float) -> bool:
        if self.direction > 0:
            return spread >= self.level
        return spread <= self.level


def retracement_level(
    spread_window: np.ndarray, entry_spread: float, l: float
) -> RetracementLevel:
    """Compute the retracement target for a position opened at ``entry_spread``.

    ``spread_window`` holds the spread over the trailing ``RT`` intervals
    (including the entry interval).  The paper leaves ``Se = S̄`` ambiguous
    between its two cases; we resolve it to the rising case (``Se ≤ S̄``),
    which also covers the equality limit continuously.
    """
    check_fraction(l, "l")
    window = np.asarray(spread_window, dtype=float)
    if window.ndim != 1 or window.size == 0:
        raise ValueError("spread_window must be a non-empty 1-D array")
    if not np.all(np.isfinite(window)) or not np.isfinite(entry_spread):
        raise ValueError("spreads must be finite")
    s_low = float(window.min())
    s_high = float(window.max())
    s_avg = float(window.mean())
    if entry_spread <= s_avg:
        return RetracementLevel(level=s_low + l * (s_high - s_low), direction=+1)
    return RetracementLevel(level=s_high - l * (s_high - s_low), direction=-1)
