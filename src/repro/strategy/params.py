"""Strategy parameters and the paper's Table I value grid.

A :class:`StrategyParams` instance is one element of the paper's set ``K``:
a unique combination of parameters that "gives rise to a unique pair
trading strategy".  The paper's experiments use 42 parameter sets — the
three correlation treatments crossed with 14 levels of the non-treatment
factors ``{Δs, A, M, W, Y, d, ℓ, RT, HP, ST}`` — reproduced by
:func:`paper_parameter_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.corr.measures import CorrelationType
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


@dataclass(frozen=True)
class StrategyParams:
    """One parameter set ``k ∈ K`` (paper Table I).

    Time-based parameters (``M``, ``W``, ``Y``, ``RT``, ``HP``, ``ST``) are
    in units of the time window ``Δs``.

    Attributes
    ----------
    delta_s:
        Time window in seconds (paper: 30).
    ctype:
        Correlation measure — Pearson, Maronna or Combined.
    a:
        Minimum average correlation required for trading (paper ``A``).
    m:
        Window length for each correlation calculation (paper ``M``).
    w:
        Window for the average correlation — also the horizon of the
        over/under-performer return (paper ``W``).
    y:
        Window within which a divergence must be fresh (paper ``Y``).
    d:
        Divergence level from the correlation average required to trigger
        a trade, as a fraction (paper ``d``; 0.01% → 0.0001).
    l:
        Retracement level parameter, strictly in (0, 1) (paper ``ℓ``).
    rt:
        Window for measuring the spread level used in the retracement
        calculation (paper ``RT``).  The paper's step-5 prose says the
        spread high/low/average come from "the last M time intervals";
        Table I assigns that role to RT.  We follow Table I — set
        ``rt = m`` to recover the prose reading (ablation benchmark).
    hp:
        Maximum holding period for any position (paper ``HP``).
    st:
        Minimum number of intervals before the close required to open a
        new position (paper ``ST``).
    stop_loss:
        Optional extension (paper §III step 5, "we point out, but do not
        consider any further"): close the position if its mark-to-market
        return drops below ``-stop_loss``.  None disables.
    correlation_reversion:
        Optional extension: close the position when the correlation
        returns within the average range ``[C̄(1 - d), C̄)``.
    """

    delta_s: int = 30
    ctype: CorrelationType = CorrelationType.PEARSON
    a: float = 0.1
    m: int = 100
    w: int = 60
    y: int = 10
    d: float = 0.0001
    l: float = 2.0 / 3.0
    rt: int = 60
    hp: int = 30
    st: int = 20
    stop_loss: float | None = None
    correlation_reversion: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.delta_s, "delta_s")
        object.__setattr__(self, "ctype", CorrelationType.parse(self.ctype))
        check_probability(self.a, "a")
        check_positive_int(self.m, "m")
        if self.m < 3:
            raise ValueError(f"m must be >= 3 (robust fits need it), got {self.m}")
        check_positive_int(self.w, "w")
        check_positive_int(self.y, "y")
        check_positive(self.d, "d")
        if self.d >= 1.0:
            raise ValueError(f"d is a fraction of C̄ and must be < 1, got {self.d}")
        check_fraction(self.l, "l")
        check_positive_int(self.rt, "rt")
        check_positive_int(self.hp, "hp")
        check_positive_int(self.st, "st")
        if self.stop_loss is not None:
            check_positive(self.stop_loss, "stop_loss")

    @property
    def first_active_interval(self) -> int:
        """Earliest interval index at which the strategy can evaluate.

        Needs ``M`` returns (so ``M`` intervals of history plus interval 0's
        price), ``W`` correlation values for the average, and ``RT`` spread
        observations.
        """
        return max(self.m + self.w - 1, self.rt - 1, self.w)

    def with_ctype(self, ctype: CorrelationType | str) -> "StrategyParams":
        """Copy of this parameter set with a different correlation measure."""
        return replace(self, ctype=CorrelationType.parse(ctype))

    def non_treatment_key(self) -> tuple:
        """Hashable identity of the non-treatment factors (everything but
        ``ctype``) — the paper's ``k′``."""
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "ctype"
        )

    def label(self) -> str:
        """Compact human-readable identity, e.g. for benchmark rows."""
        return (
            f"Δs={self.delta_s} C={self.ctype.value} A={self.a} M={self.m} "
            f"W={self.w} Y={self.y} d={self.d:.4%} l={self.l:.3f} RT={self.rt} "
            f"HP={self.hp} ST={self.st}"
        )


def table1_values() -> dict[str, list]:
    """Parameter values of the paper's Table I, keyed by field name."""
    return {
        "delta_s": [30],
        "ctype": [
            CorrelationType.PEARSON,
            CorrelationType.MARONNA,
            CorrelationType.COMBINED,
        ],
        "a": [0.1],
        "m": [50, 100, 200],
        "w": [60, 120],
        "y": [10, 20],
        "d": [0.0001, 0.0002, 0.0003, 0.0004, 0.0005, 0.0010],
        "l": [1.0 / 3.0, 2.0 / 3.0],
        "rt": [60],
        "hp": [30, 40],
        "st": [20],
    }


#: The 14 non-treatment factor levels k' ∈ K'.  The paper states there are
#: 14 levels but not their composition; this grid varies each Table-I value
#: one-at-a-time around the canonical vector (the paper's worked example
#: {Δs=30, A=0.1, M=100, W=60, Y=10, d=0.01%, ℓ=2/3, RT=60, HP=30, ST=20})
#: plus two interaction levels, covering every Table-I value at least once.
_LEVEL_OVERRIDES: tuple[dict, ...] = (
    {},  # canonical
    {"m": 50},
    {"m": 200},
    {"w": 120},
    {"y": 20},
    {"d": 0.0002},
    {"d": 0.0003},
    {"d": 0.0004},
    {"d": 0.0005},
    {"d": 0.0010},
    {"l": 1.0 / 3.0},
    {"hp": 40},
    {"m": 50, "w": 120},
    {"d": 0.0002, "y": 20},
)


def paper_parameter_grid(
    base: StrategyParams | None = None, n_levels: int | None = None
) -> list[StrategyParams]:
    """The paper's 42 parameter sets: 3 treatments × 14 factor levels.

    Ordered treatment-major (all Pearson levels, then Maronna, then
    Combined).  ``n_levels`` truncates the factor levels for scaled-down
    runs; ``base`` overrides the canonical vector (e.g. a smaller ``m``
    for short synthetic sessions).
    """
    base = base if base is not None else StrategyParams()
    overrides = _LEVEL_OVERRIDES
    if n_levels is not None:
        if not 1 <= n_levels <= len(_LEVEL_OVERRIDES):
            raise ValueError(
                f"n_levels must be in [1, {len(_LEVEL_OVERRIDES)}], got {n_levels}"
            )
        overrides = _LEVEL_OVERRIDES[:n_levels]
    grid = []
    for ctype in (
        CorrelationType.PEARSON,
        CorrelationType.MARONNA,
        CorrelationType.COMBINED,
    ):
        for override in overrides:
            grid.append(replace(base, ctype=ctype, **override))
    return grid


def small_parameter_grid(base: StrategyParams | None = None) -> list[StrategyParams]:
    """A 12-set grid (3 treatments × 4 levels) for tests and quick runs."""
    return paper_parameter_grid(base=base, n_levels=4)


def format_table1() -> str:
    """Render Table I: parameter descriptions and values."""
    descriptions = {
        "delta_s": "Time window (seconds)",
        "ctype": "Type of correlation measure",
        "a": "Minimum correlation for trading",
        "m": "Time window for correlation calculation",
        "w": "Time window of average correlation calculation",
        "y": "Time window over which divergences from the correlation "
        "average are considered",
        "d": "Divergence level from correlation average required to "
        "trigger a trade",
        "l": "Retracement level for determining when to reverse a position",
        "rt": "Time window for measuring the spread level (used in "
        "calculating retracement level)",
        "hp": "Maximum holding period for any position",
        "st": "Minimum time before market close required to open a new "
        "position",
    }
    names = {
        "delta_s": "Δs", "ctype": "Ctype", "a": "A", "m": "M", "w": "W",
        "y": "Y", "d": "d", "l": "ℓ", "rt": "RT", "hp": "HP", "st": "ST",
    }
    lines = [f"{'Param':<6} {'Description':<72} Values"]
    for key, values in table1_values().items():
        if key == "ctype":
            rendered = ", ".join(v.value.capitalize() for v in values)
        elif key == "d":
            rendered = ", ".join(f"{v:.2%}" for v in values)
        elif key == "l":
            rendered = ", ".join(f"{v:.3f}" for v in values)
        else:
            rendered = ", ".join(str(v) for v in values)
        lines.append(f"{names[key]:<6} {descriptions[key]:<72} {rendered}")
    return "\n".join(lines)
