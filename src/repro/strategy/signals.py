"""Divergence detection (paper §III, steps 1–3).

At each interval ``s`` the strategy computes the average correlation over
the last ``W`` intervals,

    C̄(s) = (1/W) Σ_{σ=s-W+1..s} C(σ),

and triggers when three conditions hold:

1. the pair is tradeable: ``C̄(s) > A``;
2. the pair is currently diverged: the correlation has broken *down* by
   more than ``d`` (a fraction) from its average — ``C(s) < C̄(s)(1 - d)``
   (a correlation breakdown is a drop; the paper's strategy "exploits
   pairs ... when the co-movement deteriorates");
3. the divergence is fresh: it began within the last ``Y`` intervals,
   i.e. at least one of the previous ``Y`` intervals was not diverged.
   Without freshness a pair that broke down an hour ago would fire on
   every interval of the day.

All three are computed vectorised over the whole correlation series.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_positive_int


def average_correlation(corr: np.ndarray, w: int) -> np.ndarray:
    """Rolling mean over the trailing ``w`` values; same length as input.

    Output index ``s`` is ``C̄`` over ``corr[s - w + 1 .. s]``; the first
    ``w - 1`` entries (incomplete windows) are NaN.
    """
    check_positive_int(w, "w")
    corr = np.asarray(corr, dtype=float)
    if corr.ndim != 1:
        raise ValueError(f"need a 1-D correlation series, got shape {corr.shape}")
    if corr.size < w:
        raise ValueError(f"need at least {w} correlation values, got {corr.size}")
    # NaN entries mark warm-up (no correlation yet); a window is valid only
    # if every entry is finite, so NaNs are zeroed for the cumsum and the
    # affected windows masked back to NaN.
    valid = np.isfinite(corr)
    c = np.concatenate(([0.0], np.cumsum(np.where(valid, corr, 0.0))))
    v = np.concatenate(([0], np.cumsum(valid.astype(np.int64))))
    out = np.full(corr.size, np.nan)
    full_window = (v[w:] - v[:-w]) == w
    sums = c[w:] - c[:-w]
    out[w - 1 :] = np.where(full_window, sums / w, np.nan)
    return out


def divergence_signals(
    corr: np.ndarray, a: float, d: float, w: int, y: int
) -> tuple[np.ndarray, np.ndarray]:
    """Entry signals over a correlation series.

    Parameters mirror :class:`~repro.strategy.params.StrategyParams`:
    minimum average correlation ``a``, divergence fraction ``d``, average
    window ``w``, freshness window ``y``.

    Returns ``(signal, c_bar)``, both aligned with ``corr``: ``signal[s]``
    is True when a trade should trigger at ``s``; ``c_bar`` is the rolling
    average correlation (NaN where the window is incomplete).  Signals are
    False wherever ``c_bar`` is NaN and within the first ``y`` entries
    (freshness cannot be established).
    """
    check_positive(d, "d")
    check_positive_int(y, "y")
    if not 0.0 <= a <= 1.0:
        raise ValueError(f"a must lie in [0, 1], got {a}")
    corr = np.asarray(corr, dtype=float)
    c_bar = average_correlation(corr, w)

    with np.errstate(invalid="ignore"):
        tradeable = c_bar > a
        diverged = corr < c_bar * (1.0 - d)

    # Freshness: at least one of the previous y intervals not diverged.
    div_int = diverged.astype(np.int64)
    c = np.concatenate(([0], np.cumsum(div_int)))
    fresh = np.zeros(corr.size, dtype=bool)
    # count of diverged among corr[s-y .. s-1]
    prev_count = c[y:-1] - c[:-y - 1] if corr.size > y else np.empty(0, dtype=np.int64)
    fresh[y:] = prev_count < y

    signal = tradeable & diverged & fresh
    return signal, c_bar
