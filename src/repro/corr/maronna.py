"""Maronna robust M-estimator of bivariate correlation (Maronna 1976).

The estimator solves the fixed-point equations

    t = Σ u1(d_i) x_i / Σ u1(d_i)
    V = (1/M) Σ u2(d_i²) (x_i - t)(x_i - t)ᵀ
    d_i² = (x_i - t)ᵀ V⁻¹ (x_i - t)

with Huber weight functions ``u1(d) = min(1, k/d)`` and
``u2(d²) = u1(d)²``: observations inside the radius ``k`` get full weight,
outliers are down-weighted by their squared Mahalanobis distance.  The
correlation is read off the converged scatter ``V`` as
``V01 / sqrt(V00 · V11)`` — any consistency constant on ``V`` cancels, so
none is applied.

The computational story matches the paper's: the estimator is iterative and
far more expensive than Pearson, which is why MarketMiner computes robust
matrices with a parallel algorithm (Chilson et al. 2006).  The batched
kernel here (:func:`maronna_corr_batched`) iterates all windows of a block
simultaneously in vectorised NumPy and is the unit the parallel engine
distributes.

Iteration starts from coordinate medians, MAD scales and the quadrant
correlation, and stops when the scatter stabilises.  Windows with zero
robust scale (constant series) yield correlation 0.0, consistent with
:mod:`repro.corr.pearson`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2

from repro.util.validation import check_positive, check_positive_int

#: Huber radius: 95% chi-square quantile for 2 dimensions, the standard
#: tuning for bivariate Huber scatter.
DEFAULT_HUBER_K: float = float(np.sqrt(chi2.ppf(0.95, df=2)))

_EPS = 1e-18


@dataclass(frozen=True, slots=True)
class MaronnaConfig:
    """Tuning of the Maronna fixed-point iteration."""

    k: float = DEFAULT_HUBER_K
    max_iter: int = 60
    tol: float = 1e-8

    def __post_init__(self) -> None:
        check_positive(self.k, "k")
        check_positive_int(self.max_iter, "max_iter")
        check_positive(self.tol, "tol")


def maronna_weights(d: np.ndarray, k: float) -> tuple[np.ndarray, np.ndarray]:
    """Huber weight pair ``(u1, u2)`` at Mahalanobis distances ``d``."""
    d = np.asarray(d, dtype=float)
    if np.any(d < 0):
        raise ValueError("distances must be >= 0")
    with np.errstate(divide="ignore"):
        u1 = np.minimum(1.0, k / np.maximum(d, _EPS))
    return u1, u1 * u1


def _mad(x: np.ndarray, med: np.ndarray) -> np.ndarray:
    """Median absolute deviation per row of (B, M) around per-row medians."""
    return np.median(np.abs(x - med[:, None]), axis=1)


def maronna_corr_batched(
    xw: np.ndarray, yw: np.ndarray, config: MaronnaConfig | None = None
) -> np.ndarray:
    """Maronna correlation per row of two ``(B, M)`` window batches.

    All windows iterate simultaneously; convergence is per-window (the
    iteration stops when every window's scatter has stabilised or
    ``max_iter`` is hit).  Returns shape ``(B,)`` in ``[-1, 1]``.
    """
    cfg = config if config is not None else MaronnaConfig()
    x = np.asarray(xw, dtype=float)
    y = np.asarray(yw, dtype=float)
    if x.ndim != 2 or x.shape != y.shape:
        raise ValueError(f"need matching (B, M) batches, got {x.shape} vs {y.shape}")
    B, m = x.shape
    if m < 3:
        raise ValueError("window length must be >= 3 for a robust fit")

    # -- robust initialisation -------------------------------------------
    tx = np.median(x, axis=1)
    ty = np.median(y, axis=1)
    sx = _mad(x, tx) * 1.4826  # normal-consistent MAD
    sy = _mad(y, ty) * 1.4826
    # MAD can be zero for heavily discretised data; fall back to std.
    sx = np.where(sx > _EPS, sx, x.std(axis=1))
    sy = np.where(sy > _EPS, sy, y.std(axis=1))
    degenerate = (sx <= _EPS) | (sy <= _EPS)
    sx = np.where(degenerate, 1.0, sx)
    sy = np.where(degenerate, 1.0, sy)

    # Quadrant correlation as the initial shape.
    q = np.mean(np.sign(x - tx[:, None]) * np.sign(y - ty[:, None]), axis=1)
    rho0 = np.clip(np.sin(0.5 * np.pi * q), -0.98, 0.98)

    a = sx * sx  # V[0,0]
    c = sy * sy  # V[1,1]
    b = rho0 * sx * sy  # V[0,1]

    k2 = cfg.k * cfg.k
    # Per-window freezing: once a window's scatter has converged it stops
    # updating, so each window's trajectory — and therefore its result —
    # is independent of which other windows share the batch.
    active = ~degenerate
    for _ in range(cfg.max_iter):
        if not np.any(active):
            break
        dx = x[active] - tx[active, None]
        dy = y[active] - ty[active, None]
        aa, bb, cc = a[active], b[active], c[active]
        det = np.maximum(aa * cc - bb * bb, _EPS)
        # Mahalanobis distances under the current 2x2 scatter.
        d2 = (
            cc[:, None] * dx * dx - 2.0 * bb[:, None] * dx * dy + aa[:, None] * dy * dy
        ) / det[:, None]
        d2 = np.maximum(d2, 0.0)
        d = np.sqrt(d2)
        with np.errstate(divide="ignore"):
            u1 = np.minimum(1.0, cfg.k / np.maximum(d, _EPS))
        u2 = np.minimum(1.0, k2 / np.maximum(d2, _EPS))

        w1_sum = u1.sum(axis=1)
        tx_new = (u1 * x[active]).sum(axis=1) / w1_sum
        ty_new = (u1 * y[active]).sum(axis=1) / w1_sum

        dx = x[active] - tx_new[:, None]
        dy = y[active] - ty_new[:, None]
        a_new = (u2 * dx * dx).mean(axis=1)
        c_new = (u2 * dy * dy).mean(axis=1)
        b_new = (u2 * dx * dy).mean(axis=1)

        scale = np.maximum(np.maximum(aa, cc), _EPS)
        delta = np.maximum(
            np.maximum(np.abs(a_new - aa), np.abs(c_new - cc)), np.abs(b_new - bb)
        )
        tx[active], ty[active] = tx_new, ty_new
        a[active], b[active], c[active] = a_new, b_new, c_new
        still = delta > cfg.tol * scale
        idx = np.nonzero(active)[0]
        active[idx[~still]] = False

    denom_sq = a * c
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(
            denom_sq > _EPS, b / np.sqrt(np.maximum(denom_sq, _EPS)), 0.0
        )
    corr = np.where(degenerate, 0.0, corr)
    return np.clip(corr, -1.0, 1.0)


def maronna_corr(x, y, config: MaronnaConfig | None = None) -> float:
    """Maronna correlation of two equal-length 1-D samples."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"need equal-length 1-D inputs, got {x.shape} vs {y.shape}")
    return float(maronna_corr_batched(x[None, :], y[None, :], config)[0])
