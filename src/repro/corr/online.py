"""Online sliding-window correlation engine.

MarketMiner's enabling feature (paper §II) is producing "large correlation
matrices in an online fashion" over "a sliding window of recent data
points".  :class:`OnlineCorrelationEngine` maintains a ring buffer of the
last ``M`` return rows and serves pair or full-matrix queries after each
push:

* **Pearson** queries are O(n²) per push via incrementally maintained
  moment sums (add the new row's outer product, subtract the evicted
  row's), with a periodic full refresh to cancel floating-point drift;
* **Maronna/Combined** queries re-run the batched robust kernel on the
  current window — the honest cost of robustness, and the reason the
  parallel engine exists.
"""

from __future__ import annotations

import numpy as np

from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import CorrelationType, corr_matrix, pairwise_corr
from repro.util.validation import check_positive_int

_EPS = 1e-18


class OnlineCorrelationEngine:
    """Sliding-window correlation over a stream of return rows."""

    def __init__(
        self,
        n_symbols: int,
        m: int,
        ctype: CorrelationType | str = CorrelationType.PEARSON,
        config: MaronnaConfig | None = None,
        refresh_every: int = 1024,
    ):
        check_positive_int(n_symbols, "n_symbols")
        check_positive_int(m, "m")
        if m < 2:
            raise ValueError("window length m must be >= 2")
        check_positive_int(refresh_every, "refresh_every")
        self.n_symbols = n_symbols
        self.m = m
        self.ctype = CorrelationType.parse(ctype)
        self.config = config
        self.refresh_every = refresh_every

        self._buffer = np.zeros((m, n_symbols))
        self._head = 0  # slot the next push writes
        self._count = 0  # rows seen so far
        self._since_refresh = 0
        # Incremental Pearson moments over the current window.
        self._sum = np.zeros(n_symbols)
        self._cross = np.zeros((n_symbols, n_symbols))

    @property
    def ready(self) -> bool:
        """True once a full window of ``m`` rows has been pushed."""
        return self._count >= self.m

    def push(self, row) -> None:
        """Append one return row (length ``n_symbols``) to the window."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.n_symbols,):
            raise ValueError(
                f"expected a row of {self.n_symbols} returns, got shape {row.shape}"
            )
        if not np.all(np.isfinite(row)):
            raise ValueError("return rows must be finite")
        evicted = self._buffer[self._head].copy()
        self._buffer[self._head] = row
        self._head = (self._head + 1) % self.m
        self._count += 1

        self._sum += row
        self._cross += np.outer(row, row)
        if self._count > self.m:
            self._sum -= evicted
            self._cross -= np.outer(evicted, evicted)

        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._refresh_moments()

    def _refresh_moments(self) -> None:
        """Recompute moments from the buffer to cancel accumulated drift."""
        rows = self._buffer if self.ready else self._buffer[: self._count]
        self._sum = rows.sum(axis=0)
        self._cross = rows.T @ rows
        self._since_refresh = 0

    def window(self) -> np.ndarray:
        """Copy of the current window in chronological order, shape (m, n)."""
        if not self.ready:
            raise ValueError(
                f"window not full: {self._count}/{self.m} rows pushed"
            )
        return np.vstack((self._buffer[self._head :], self._buffer[: self._head]))

    def matrix(self) -> np.ndarray:
        """Correlation matrix of the current window, shape (n, n).

        The Pearson branch reuses the maintained rolling moments; the
        robust branch delegates to :func:`corr_matrix`, which already
        evaluates all N·(N−1)/2 pairs of the interval in one batched
        kernel call — there is no per-pair loop to vectorize here.
        """
        if not self.ready:
            raise ValueError(
                f"window not full: {self._count}/{self.m} rows pushed"
            )
        if self.ctype is CorrelationType.PEARSON:
            return self._pearson_from_moments()
        return corr_matrix(self.window(), self.ctype, self.config)

    def pair(self, i: int, j: int) -> float:
        """Correlation of one symbol pair over the current window."""
        if not 0 <= i < self.n_symbols or not 0 <= j < self.n_symbols:
            raise ValueError(f"pair ({i}, {j}) outside [0, {self.n_symbols})")
        if not self.ready:
            raise ValueError(
                f"window not full: {self._count}/{self.m} rows pushed"
            )
        if self.ctype is CorrelationType.PEARSON:
            return float(self._pearson_from_moments()[i, j]) if i != j else 1.0
        if i == j:
            return 1.0
        w = self.window()
        return pairwise_corr(w[:, i], w[:, j], self.ctype, self.config)

    def _pearson_from_moments(self) -> np.ndarray:
        m = self.m
        cov = self._cross - np.outer(self._sum, self._sum) / m
        var = np.diag(cov).copy()
        good = var > _EPS
        scale = np.where(good, np.sqrt(np.maximum(var, _EPS)), 1.0)
        corr = cov / np.outer(scale, scale)
        corr[~good, :] = 0.0
        corr[:, ~good] = 0.0
        np.fill_diagonal(corr, 1.0)
        return np.clip(corr, -1.0, 1.0)
