"""Correlation clustering and candidate-pair screening.

The paper's trader routine starts before any backtest: "The usual routine
for a fundamental pair trader is to first identify a number of candidate
pairs" (§II), and MarketMiner's lineage is "a parallel workflow for
real-time correlation *and clustering* of high-frequency stock market
data" (Rostoker, Wagner & Hoos 2007, the paper's reference [12]).  This
module is that screening stage:

* :func:`threshold_graph` / :func:`correlation_clusters` — the graph view:
  stocks are nodes, edges join pairs whose correlation exceeds a
  threshold; connected components are trading clusters;
* :func:`hierarchical_clusters` — the dendrogram view, using the standard
  correlation distance ``d = sqrt(2 (1 - ρ))``;
* :func:`screen_candidate_pairs` — the output a pair trader wants: the
  highly-correlated pairs, "with a high degree of statistical certainty"
  (a Fisher-z lower confidence bound), ranked.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform
from scipy.stats import norm

from repro.util.validation import check_positive_int


def _check_corr_matrix(matrix) -> np.ndarray:
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"need a square correlation matrix, got {m.shape}")
    if not np.allclose(m, m.T, atol=1e-8):
        raise ValueError("correlation matrix must be symmetric")
    if not np.allclose(np.diag(m), 1.0, atol=1e-8):
        raise ValueError("correlation matrix must have unit diagonal")
    if np.any(np.abs(m) > 1.0 + 1e-8):
        raise ValueError("correlation entries must lie in [-1, 1]")
    return m


def threshold_graph(matrix, threshold: float) -> nx.Graph:
    """Graph with an edge (i, j, weight=ρ) wherever ``ρ_ij >= threshold``."""
    m = _check_corr_matrix(matrix)
    if not -1.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must lie in [-1, 1], got {threshold}")
    n = m.shape[0]
    g = nx.Graph()
    g.add_nodes_from(range(n))
    ii, jj = np.nonzero(np.triu(m >= threshold, k=1))
    g.add_weighted_edges_from(
        (int(i), int(j), float(m[i, j])) for i, j in zip(ii, jj)
    )
    return g


def correlation_clusters(matrix, threshold: float) -> list[set[int]]:
    """Connected components of the threshold graph, largest first.

    Singletons (stocks correlated with nothing above the threshold) are
    included, so the clusters partition the universe.
    """
    g = threshold_graph(matrix, threshold)
    return sorted(nx.connected_components(g), key=lambda c: (-len(c), min(c)))


def hierarchical_clusters(matrix, n_clusters: int) -> list[set[int]]:
    """Average-linkage clustering under correlation distance.

    ``d_ij = sqrt(2 (1 - ρ_ij))`` is the standard metric embedding of
    correlation (0 for perfectly co-moving, 2 for perfectly opposed).
    Returns at most ``n_clusters`` clusters (dendrogram ties can make a
    coarser cut the closest achievable), largest first.
    """
    m = _check_corr_matrix(matrix)
    check_positive_int(n_clusters, "n_clusters")
    n = m.shape[0]
    if n_clusters > n:
        raise ValueError(f"cannot form {n_clusters} clusters from {n} stocks")
    if n == 1:
        return [{0}]
    dist = np.sqrt(np.maximum(2.0 * (1.0 - m), 0.0))
    np.fill_diagonal(dist, 0.0)
    linkage = hierarchy.linkage(squareform(dist, checks=False), method="average")
    labels = hierarchy.fcluster(linkage, t=n_clusters, criterion="maxclust")
    clusters: dict[int, set[int]] = {}
    for node, label in enumerate(labels):
        clusters.setdefault(int(label), set()).add(node)
    return sorted(clusters.values(), key=lambda c: (-len(c), min(c)))


@dataclass(frozen=True, slots=True)
class CandidatePair:
    """A screened pair: correlation plus its Fisher-z lower bound."""

    pair: tuple[int, int]
    correlation: float
    lower_bound: float


def fisher_lower_bound(rho: float, n_obs: int, confidence: float = 0.95) -> float:
    """One-sided lower confidence bound for a correlation coefficient.

    Fisher z-transform: ``z = atanh(ρ)`` is ~normal with sd
    ``1/sqrt(n-3)``; the bound is ``tanh(z - z_alpha / sqrt(n-3))``.
    This is the "high degree of statistical certainty" attached to a
    statistical pair (paper §II).
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must lie in [-1, 1], got {rho}")
    if n_obs < 4:
        raise ValueError(f"need at least 4 observations, got {n_obs}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    rho = float(np.clip(rho, -0.999999, 0.999999))
    z = np.arctanh(rho)
    z_alpha = norm.ppf(confidence)
    return float(np.tanh(z - z_alpha / np.sqrt(n_obs - 3)))


def screen_candidate_pairs(
    matrix,
    n_obs: int,
    threshold: float = 0.5,
    confidence: float = 0.95,
    max_pairs: int | None = None,
) -> list[CandidatePair]:
    """Rank pairs whose correlation lower bound clears ``threshold``.

    The screen demands statistical certainty, not just a high point
    estimate: a pair qualifies when the Fisher-z lower confidence bound
    of its correlation exceeds the threshold.  Results are ranked by
    point correlation, optionally truncated to ``max_pairs``.
    """
    m = _check_corr_matrix(matrix)
    if max_pairs is not None:
        check_positive_int(max_pairs, "max_pairs")
    n = m.shape[0]
    out = []
    for i in range(n):
        for j in range(i + 1, n):
            lb = fisher_lower_bound(m[i, j], n_obs, confidence)
            if lb >= threshold:
                out.append(
                    CandidatePair(
                        pair=(i, j),
                        correlation=float(m[i, j]),
                        lower_bound=lb,
                    )
                )
    out.sort(key=lambda c: -c.correlation)
    if max_pairs is not None:
        out = out[:max_pairs]
    return out
