"""Pearson correlation: scalar, batched, full-matrix and rolling-series forms.

The rolling series uses the O(T) cumulative-sum identity rather than
recomputing each window, which is what makes brute-force market-wide
sliding-window correlation affordable even before parallelisation.

Degenerate windows (zero variance in either series) yield correlation 0.0
rather than NaN: a constant price carries no co-movement signal, and the
trading strategy treats "no signal" and "uncorrelated" identically.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

#: Variance floor below which a window is treated as constant.
_EPS = 1e-18


def _corr_from_moments(sx, sy, sxx, syy, sxy, m: int) -> np.ndarray:
    """Correlation from raw moment sums; vectorised, 0.0 where degenerate."""
    cov = sxy - sx * sy / m
    vx = sxx - sx * sx / m
    vy = syy - sy * sy / m
    denom_sq = vx * vy
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denom_sq > _EPS, cov / np.sqrt(np.maximum(denom_sq, _EPS)), 0.0)
    return np.clip(corr, -1.0, 1.0)


def pearson_corr(x, y) -> float:
    """Pearson correlation of two equal-length 1-D samples."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or y.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"need equal-length 1-D inputs, got {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least 2 observations")
    m = x.size
    # Centring first keeps the moment identities accurate for data with
    # large common offsets (correlation is shift-invariant).
    x = x - x.mean()
    y = y - y.mean()
    return float(
        _corr_from_moments(
            x.sum(), y.sum(), (x * x).sum(), (y * y).sum(), (x * y).sum(), m
        )
    )


def pearson_corr_batched(xw: np.ndarray, yw: np.ndarray) -> np.ndarray:
    """Per-row correlation of two ``(B, M)`` window batches; shape ``(B,)``."""
    xw = np.asarray(xw, dtype=float)
    yw = np.asarray(yw, dtype=float)
    if xw.ndim != 2 or xw.shape != yw.shape:
        raise ValueError(f"need matching (B, M) batches, got {xw.shape} vs {yw.shape}")
    if xw.shape[1] < 2:
        raise ValueError("window length must be >= 2")
    m = xw.shape[1]
    xw = xw - xw.mean(axis=1, keepdims=True)
    yw = yw - yw.mean(axis=1, keepdims=True)
    return _corr_from_moments(
        xw.sum(axis=1),
        yw.sum(axis=1),
        (xw * xw).sum(axis=1),
        (yw * yw).sum(axis=1),
        (xw * yw).sum(axis=1),
        m,
    )


def pearson_matrix(returns: np.ndarray) -> np.ndarray:
    """Full correlation matrix of an ``(M, n)`` return window; shape (n, n).

    Columns with zero variance get correlation 0.0 against everything
    (diagonal stays 1.0).
    """
    r = np.asarray(returns, dtype=float)
    if r.ndim != 2:
        raise ValueError(f"need an (M, n) window, got shape {r.shape}")
    if r.shape[0] < 2:
        raise ValueError("window length must be >= 2")
    centred = r - r.mean(axis=0)
    cov = centred.T @ centred
    var = np.diag(cov).copy()
    good = var > _EPS
    scale = np.where(good, np.sqrt(np.maximum(var, _EPS)), 1.0)
    corr = cov / np.outer(scale, scale)
    corr[~good, :] = 0.0
    corr[:, ~good] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def pearson_series(x: np.ndarray, y: np.ndarray, m: int) -> np.ndarray:
    """Rolling window-``m`` correlation of two 1-D series, O(T) total.

    Output index ``k`` covers observations ``k .. k + m - 1``; length
    ``T - m + 1``.
    """
    check_positive_int(m, "m")
    if m < 2:
        raise ValueError("window length must be >= 2")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"need equal-length 1-D inputs, got {x.shape} vs {y.shape}")
    if x.size < m:
        raise ValueError(f"need at least {m} observations, got {x.size}")

    # Correlation is shift-invariant; centring each series once removes the
    # large common offset that would otherwise cancel catastrophically in
    # the cumulative-sum moment identities (prices ~1e6 vs moves ~1e0).
    x = x - x.mean()
    y = y - y.mean()

    def rolling_sum(v: np.ndarray) -> np.ndarray:
        c = np.concatenate(([0.0], np.cumsum(v)))
        return c[m:] - c[:-m]

    return _corr_from_moments(
        rolling_sum(x),
        rolling_sum(y),
        rolling_sum(x * x),
        rolling_sum(y * y),
        rolling_sum(x * y),
        m,
    )
