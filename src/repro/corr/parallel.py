"""Block-parallel correlation over the MPI substrate.

The parallel algorithm follows Chilson et al. (2006) as used by MarketMiner:
the ``n(n-1)/2`` symbol pairs are partitioned into contiguous blocks, each
rank computes the correlations of its block (using the vectorised batched
kernels), and the partial results are combined with collectives.  Because a
pair's computation is independent of every other pair's, the decomposition
is embarrassingly parallel and the combine step is a single reduction —
which is exactly why "a parallel algorithm is essential for real-time
trading" scales (paper §III).

All entry points are SPMD: every rank calls with the same arguments plus
its own communicator, and every rank returns the full result.
"""

from __future__ import annotations

import numpy as np

from repro.corr.batch import BatchWorkspace, batch_pair_series, check_backend
from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import CorrelationType, corr_matrix, corr_series
from repro.mpi.api import SUM, Comm
from repro.obs import NULL_METRIC, comm_obs


def _method_timer(comm: Comm, method: str):
    """Timer into ``corr.parallel.<method>.seconds`` on the comm's obs."""
    obs = comm_obs(comm)
    if obs is None or not obs.enabled:
        return NULL_METRIC
    return obs.metrics.timer(f"corr.parallel.{method}.seconds")


def partition_pairs(
    pairs: list[tuple[int, int]], size: int
) -> list[list[tuple[int, int]]]:
    """Split a pair list into ``size`` contiguous, near-equal blocks.

    Ranks beyond the pair count receive empty blocks, so any (size, #pairs)
    combination is valid.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    pairs = list(pairs)
    n = len(pairs)
    base, extra = divmod(n, size)
    blocks: list[list[tuple[int, int]]] = []
    start = 0
    for r in range(size):
        count = base + (1 if r < extra else 0)
        blocks.append(pairs[start : start + count])
        start += count
    return blocks


class ParallelCorrelationEngine:
    """Distribute pairwise correlation work across the ranks of a Comm.

    ``backend`` selects how each rank computes its pair block:
    ``"scalar"`` is the per-pair oracle loop, ``"batch"`` drives the
    block through :func:`repro.corr.batch.batch_pair_series`.  Results
    are bitwise-identical across backends, rank counts and MPI backends;
    only the cost profile differs.
    """

    def __init__(
        self,
        ctype: CorrelationType | str = CorrelationType.PEARSON,
        config: MaronnaConfig | None = None,
        backend: str = "scalar",
    ):
        self.ctype = CorrelationType.parse(ctype)
        self.config = config
        self.backend = check_backend(backend)
        self._workspace = BatchWorkspace() if backend == "batch" else None

    def _my_pairs(self, comm: Comm, n: int) -> list[tuple[int, int]]:
        all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        return partition_pairs(all_pairs, comm.size)[comm.rank]

    def matrix(self, comm: Comm, window: np.ndarray) -> np.ndarray:
        """Full (n, n) correlation matrix of an ``(M, n)`` window, SPMD.

        Each rank fills its pair block; a SUM all-reduce assembles the full
        matrix on every rank (off-block entries are zero, so the sum is
        exact assembly, not accumulation).
        """
        window = np.asarray(window, dtype=float)
        if window.ndim != 2:
            raise ValueError(f"need an (M, n) window, got shape {window.shape}")
        with _method_timer(comm, "matrix"):
            n = window.shape[1]
            mine = self._my_pairs(comm, n)
            partial = corr_matrix(window, self.ctype, self.config, pairs=mine)
            full = comm.allreduce(partial, op=SUM)
            np.fill_diagonal(full, 1.0)
            return full

    def pair_series(
        self,
        comm: Comm,
        returns: np.ndarray,
        m: int,
        pairs: list[tuple[int, int]],
    ) -> dict[tuple[int, int], np.ndarray]:
        """Rolling correlation series for each requested pair, SPMD.

        The pair list is partitioned across ranks; each rank computes its
        block's series and an all-gather merges the blocks, so every rank
        returns the complete ``{pair: series}`` mapping.  Series indexing
        matches :func:`repro.corr.measures.corr_series`.
        """
        returns = np.asarray(returns, dtype=float)
        if returns.ndim != 2:
            raise ValueError(f"need (T, n) returns, got shape {returns.shape}")
        n = returns.shape[1]
        for i, j in pairs:
            if not (0 <= i < n and 0 <= j < n and i != j):
                raise ValueError(f"invalid pair ({i}, {j}) for n={n}")
        with _method_timer(comm, "pair_series"):
            blocks = partition_pairs(list(pairs), comm.size)
            mine = blocks[comm.rank]
            obs = comm_obs(comm)
            if obs is not None and obs.enabled:
                obs.metrics.counter("corr.parallel.pairs_local").inc(len(mine))
            local = self._block_series(comm, returns, m, mine)
            merged: dict[tuple[int, int], np.ndarray] = {}
            for part in comm.allgather(local):
                merged.update(part)
            return merged

    def _block_series(
        self,
        comm: Comm,
        returns: np.ndarray,
        m: int,
        mine: list[tuple[int, int]],
    ) -> dict[tuple[int, int], np.ndarray]:
        """This rank's ``{pair: series}`` block under the configured backend."""
        if self.backend == "batch" and mine:
            block = batch_pair_series(
                returns, m, self.ctype, self.config, pairs=mine,
                obs=comm_obs(comm), workspace=self._workspace,
            )
            return {
                pair: np.ascontiguousarray(block[:, p])
                for p, pair in enumerate(mine)
            }
        return {
            (i, j): corr_series(
                returns[:, i], returns[:, j], m, self.ctype, self.config
            )
            for i, j in mine
        }

    def matrix_series(
        self, comm: Comm, returns: np.ndarray, m: int
    ) -> np.ndarray:
        """Series of full correlation matrices, SPMD; shape (T-m+1, n, n).

        The parallel counterpart of
        :func:`repro.corr.measures.corr_matrix_series` — each rank computes
        its pair block's series, assembled by SUM all-reduce.
        """
        returns = np.asarray(returns, dtype=float)
        if returns.ndim != 2:
            raise ValueError(f"need (T, n) returns, got shape {returns.shape}")
        T, n = returns.shape
        if T < m:
            raise ValueError(f"need at least {m} return rows, got {T}")
        with _method_timer(comm, "matrix_series"):
            n_win = T - m + 1
            mine = self._my_pairs(comm, n)
            partial = np.zeros((n_win, n, n))
            if mine:
                local = self._block_series(comm, returns, m, mine)
                block = np.column_stack([local[pair] for pair in mine])
                idx_i = np.asarray([i for i, _ in mine], dtype=np.intp)
                idx_j = np.asarray([j for _, j in mine], dtype=np.intp)
                partial[:, idx_i, idx_j] = block
                partial[:, idx_j, idx_i] = block
            full = comm.allreduce(partial, op=SUM)
            full[:, np.arange(n), np.arange(n)] = 1.0
            return full
