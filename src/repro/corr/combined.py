"""The "Combined" correlation measure.

The paper evaluates three treatments — Pearson, Maronna and "Combined" —
but never defines the third.  Its reported profile (lowest dispersion and
highest Sharpe ratio among the three, Tables III–V) is the signature of an
averaged estimator, so this library defines Combined as the equal-weight
blend of the other two measures on the same window:

    C_combined = (C_pearson + C_maronna) / 2

This interpretation is recorded as a substitution in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.corr.maronna import MaronnaConfig, maronna_corr_batched
from repro.corr.pearson import pearson_corr_batched


def combined_corr_batched(
    xw: np.ndarray, yw: np.ndarray, config: MaronnaConfig | None = None
) -> np.ndarray:
    """Combined correlation per row of two ``(B, M)`` window batches."""
    pearson = pearson_corr_batched(xw, yw)
    maronna = maronna_corr_batched(xw, yw, config)
    return 0.5 * (pearson + maronna)


def combined_corr(x, y, config: MaronnaConfig | None = None) -> float:
    """Combined correlation of two equal-length 1-D samples."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"need equal-length 1-D inputs, got {x.shape} vs {y.shape}")
    return float(combined_corr_batched(x[None, :], y[None, :], config)[0])
