"""Market-wide dependency analysis of correlation matrices.

The paper's introduction expects "the next generation of models and
strategies to be faster, smarter, and have the ability to take into
account market-wide dependencies".  For a correlation matrix those
dependencies live in its spectrum:

* the top eigenvector is the **market mode** — the common factor that
  moves everything together; its eigenvalue share says how much of total
  variance is systemic;
* the **absorption ratio** (variance captured by the top-k modes) is the
  standard systemic-fragility gauge;
* **residual correlation** — the matrix with the top modes projected out
  and re-normalised — is what pair traders actually trade: co-movement
  beyond the market, the source of pair-specific convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corr.clustering import _check_corr_matrix
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class MarketMode:
    """The dominant eigenmode of a correlation matrix."""

    eigenvalue: float
    variance_share: float
    vector: np.ndarray
    participation_ratio: float


def market_mode(matrix) -> MarketMode:
    """Extract the market mode (largest eigenpair).

    The eigenvector is sign-fixed so its mean loading is positive (the
    market mode loads long the whole universe).  The participation ratio
    ``1 / (n Σ v_i⁴)`` is 1 when every stock loads equally and ``1/n``
    when one stock dominates.
    """
    m = _check_corr_matrix(matrix)
    n = m.shape[0]
    eigvals, eigvecs = np.linalg.eigh(m)
    top = eigvals[-1]
    vec = eigvecs[:, -1]
    if vec.sum() < 0:
        vec = -vec
    pr = 1.0 / (n * np.sum(vec**4))
    return MarketMode(
        eigenvalue=float(top),
        variance_share=float(top / n),
        vector=vec,
        participation_ratio=float(pr),
    )


def absorption_ratio(matrix, k: int = 1) -> float:
    """Fraction of total variance absorbed by the top ``k`` eigenmodes."""
    m = _check_corr_matrix(matrix)
    check_positive_int(k, "k")
    n = m.shape[0]
    if k > n:
        raise ValueError(f"k={k} exceeds matrix dimension {n}")
    eigvals = np.linalg.eigvalsh(m)
    return float(eigvals[-k:].sum() / n)


def residual_correlation(matrix, n_modes: int = 1) -> np.ndarray:
    """Correlation with the top ``n_modes`` eigenmodes projected out.

    The residual covariance ``C − Σ λ_i v_i v_iᵀ`` is re-normalised to a
    unit-diagonal correlation matrix.  Entries measure co-movement beyond
    the removed systemic factors; a same-sector pair keeps a strong
    residual correlation while an incidental pair's drops toward zero.
    """
    m = _check_corr_matrix(matrix)
    check_positive_int(n_modes, "n_modes")
    n = m.shape[0]
    if n_modes >= n:
        raise ValueError(
            f"cannot remove {n_modes} modes from an {n}x{n} matrix"
        )
    eigvals, eigvecs = np.linalg.eigh(m)
    residual = m.astype(float).copy()
    for i in range(1, n_modes + 1):
        v = eigvecs[:, -i]
        residual -= eigvals[-i] * np.outer(v, v)
    d = np.sqrt(np.clip(np.diag(residual), 1e-12, None))
    residual = residual / np.outer(d, d)
    residual = 0.5 * (residual + residual.T)
    np.fill_diagonal(residual, 1.0)
    return np.clip(residual, -1.0, 1.0)
