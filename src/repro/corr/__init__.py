"""Correlation measures and engines.

The enabling feature of MarketMiner (paper §II) is producing large
correlation matrices over a sliding window of recent returns, in an online
fashion, with a choice of measures:

* **Pearson** — the standard product-moment coefficient, cheap but
  outlier-sensitive (:mod:`repro.corr.pearson`);
* **Maronna** — the robust M-estimator of bivariate scatter (Maronna 1976),
  far less sensitive to outliers but iterative and therefore expensive
  (:mod:`repro.corr.maronna`); the paper's platform exists largely to make
  this affordable market-wide;
* **Combined** — an equal blend of the two (:mod:`repro.corr.combined`;
  the paper uses but never defines "Combined" — see DESIGN.md).

Supporting machinery: sliding-window series and full-matrix computation
(:mod:`repro.corr.measures`), all-pairs batch kernels behind the
``backend="scalar"|"batch"`` seam (:mod:`repro.corr.batch` — bitwise
equal to the per-pair scalar oracle), an incremental online engine
(:mod:`repro.corr.online`), PSD repair for pairwise-assembled robust
matrices (:mod:`repro.corr.psd`) and the block-parallel matrix engine that
runs over the MPI substrate (:mod:`repro.corr.parallel`).
"""

from repro.corr.batch import (
    BACKENDS,
    BatchWorkspace,
    all_pairs,
    batch_pair_series,
    check_backend,
    pair_series_matrix,
    reference_pair_series,
    scalar_pair_series,
)
from repro.corr.clustering import (
    CandidatePair,
    correlation_clusters,
    fisher_lower_bound,
    hierarchical_clusters,
    screen_candidate_pairs,
    threshold_graph,
)
from repro.corr.combined import combined_corr, combined_corr_batched
from repro.corr.eigen import (
    MarketMode,
    absorption_ratio,
    market_mode,
    residual_correlation,
)
from repro.corr.maronna import (
    MaronnaConfig,
    maronna_corr,
    maronna_corr_batched,
    maronna_weights,
)
from repro.corr.measures import (
    CorrelationType,
    corr_matrix,
    corr_matrix_series,
    corr_series,
    pairwise_corr,
)
from repro.corr.online import OnlineCorrelationEngine
from repro.corr.parallel import (
    ParallelCorrelationEngine,
    partition_pairs,
)
from repro.corr.pearson import (
    pearson_corr,
    pearson_corr_batched,
    pearson_matrix,
    pearson_series,
)
from repro.corr.psd import is_psd, nearest_psd_correlation

__all__ = [
    "BACKENDS",
    "BatchWorkspace",
    "CandidatePair",
    "CorrelationType",
    "MarketMode",
    "MaronnaConfig",
    "OnlineCorrelationEngine",
    "ParallelCorrelationEngine",
    "absorption_ratio",
    "all_pairs",
    "batch_pair_series",
    "check_backend",
    "pair_series_matrix",
    "reference_pair_series",
    "scalar_pair_series",
    "combined_corr",
    "combined_corr_batched",
    "correlation_clusters",
    "corr_matrix",
    "corr_matrix_series",
    "corr_series",
    "fisher_lower_bound",
    "hierarchical_clusters",
    "is_psd",
    "market_mode",
    "maronna_corr",
    "maronna_corr_batched",
    "maronna_weights",
    "nearest_psd_correlation",
    "pairwise_corr",
    "partition_pairs",
    "pearson_corr",
    "pearson_corr_batched",
    "pearson_matrix",
    "pearson_series",
    "residual_correlation",
    "screen_candidate_pairs",
    "threshold_graph",
]
