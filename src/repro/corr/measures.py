"""Measure selection and high-level correlation entry points.

Everything downstream (strategy, backtesters, pipeline components) talks to
correlation through these four functions plus the :class:`CorrelationType`
enum, so swapping the paper's three treatments is a parameter change, never
a code change.

Batched robust computation is chunked to bound peak memory: a full-scale
day at the paper's sizes (1830 pairs × 680 windows × M=100) would otherwise
materialise ~10⁸-element temporaries per iteration.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bars.returns import sliding_windows
from repro.corr.combined import combined_corr, combined_corr_batched
from repro.corr.maronna import MaronnaConfig, maronna_corr, maronna_corr_batched
from repro.corr.pearson import (
    pearson_corr,
    pearson_corr_batched,
    pearson_matrix,
    pearson_series,
)
from repro.util.validation import check_positive_int

#: Cap on elements per batched robust kernel invocation.
_CHUNK_ELEMENTS = 2_000_000


class CorrelationType(enum.Enum):
    """The paper's three correlation treatments."""

    PEARSON = "pearson"
    MARONNA = "maronna"
    COMBINED = "combined"

    @classmethod
    def parse(cls, value) -> "CorrelationType":
        """Accept an enum member or its (case-insensitive) string name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        raise ValueError(
            f"unknown correlation type {value!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


_SCALAR = {
    CorrelationType.PEARSON: lambda x, y, cfg: pearson_corr(x, y),
    CorrelationType.MARONNA: maronna_corr,
    CorrelationType.COMBINED: combined_corr,
}

_BATCHED = {
    CorrelationType.PEARSON: lambda xw, yw, cfg: pearson_corr_batched(xw, yw),
    CorrelationType.MARONNA: maronna_corr_batched,
    CorrelationType.COMBINED: combined_corr_batched,
}


def pairwise_corr(
    x,
    y,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
) -> float:
    """Correlation of two equal-length 1-D samples under ``ctype``."""
    ctype = CorrelationType.parse(ctype)
    return _SCALAR[ctype](x, y, config)


def _batched(ctype: CorrelationType, xw, yw, config) -> np.ndarray:
    return _BATCHED[ctype](xw, yw, config)


def corr_series(
    x,
    y,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
) -> np.ndarray:
    """Rolling window-``m`` correlation series of two 1-D return series.

    Output index ``k`` covers observations ``k .. k + m - 1``
    (length ``T - m + 1``), identical across measures.
    """
    ctype = CorrelationType.parse(ctype)
    check_positive_int(m, "m")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"need equal-length 1-D inputs, got {x.shape} vs {y.shape}")
    if ctype is CorrelationType.PEARSON:
        return pearson_series(x, y, m)

    xw = sliding_windows(x, m)
    yw = sliding_windows(y, m)
    n_win = xw.shape[0]
    chunk = max(1, _CHUNK_ELEMENTS // m)
    out = np.empty(n_win)
    for lo in range(0, n_win, chunk):
        hi = min(lo + chunk, n_win)
        out[lo:hi] = _batched(ctype, xw[lo:hi], yw[lo:hi], config)
    return out


def corr_matrix(
    window: np.ndarray,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    pairs: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """Full (n, n) correlation matrix of an ``(M, n)`` return window.

    With ``pairs`` given, only those entries (and their transposes) are
    computed; the rest are 0 — the form the block-parallel engine uses to
    assemble partial matrices.  Robust matrices are assembled pairwise and
    therefore not guaranteed PSD (paper, Approach 2 caveat); see
    :func:`repro.corr.psd.nearest_psd_correlation`.
    """
    ctype = CorrelationType.parse(ctype)
    window = np.asarray(window, dtype=float)
    if window.ndim != 2:
        raise ValueError(f"need an (M, n) window, got shape {window.shape}")
    n = window.shape[1]

    if pairs is None:
        if ctype is CorrelationType.PEARSON:
            return pearson_matrix(window)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        full = True
    else:
        for i, j in pairs:
            if not (0 <= i < n and 0 <= j < n and i != j):
                raise ValueError(f"invalid pair ({i}, {j}) for n={n}")
        full = False

    out = np.zeros((n, n))
    if pairs:
        idx_i = np.asarray([i for i, _ in pairs], dtype=np.intp)
        idx_j = np.asarray([j for _, j in pairs], dtype=np.intp)
        vals = _batched(ctype, window.T[idx_i], window.T[idx_j], config)
        out[idx_i, idx_j] = vals
        out[idx_j, idx_i] = vals
    if full:
        np.fill_diagonal(out, 1.0)
    return out


def corr_matrix_series(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    backend: str = "scalar",
) -> np.ndarray:
    """Series of full correlation matrices over a rolling window.

    Input ``(T, n)`` returns, output ``(T - m + 1, n, n)``; matrix ``k``
    covers return rows ``k .. k + m - 1``.  This materialises what the
    paper's Approach 1 stored on disk — at full scale it is the memory
    hog the paper complains about, which is the point.

    ``backend`` selects how the robust/blended entries are produced:
    ``"scalar"`` loops one pair at a time (the oracle), ``"batch"`` runs
    the all-pairs kernel of :mod:`repro.corr.batch`; outputs are bitwise
    identical.  The Pearson branch is already a per-interval batch over
    all pairs (one matrix product per window) and is shared by both
    backends.
    """
    from repro.corr.batch import batch_pair_series, check_backend

    ctype = CorrelationType.parse(ctype)
    check_positive_int(m, "m")
    check_backend(backend)
    returns = np.asarray(returns, dtype=float)
    if returns.ndim != 2:
        raise ValueError(f"need (T, n) returns, got shape {returns.shape}")
    T, n = returns.shape
    if T < m:
        raise ValueError(f"need at least {m} return rows, got {T}")
    n_win = T - m + 1
    out = np.empty((n_win, n, n))
    if ctype is CorrelationType.PEARSON:
        for k in range(n_win):
            out[k] = pearson_matrix(returns[k : k + m])
        return out
    out[:] = 0.0
    out[:, np.arange(n), np.arange(n)] = 1.0
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if backend == "batch":
        block = batch_pair_series(returns, m, ctype, config, pairs)
        idx_i = np.asarray([i for i, _ in pairs], dtype=np.intp)
        idx_j = np.asarray([j for _, j in pairs], dtype=np.intp)
        out[:, idx_i, idx_j] = block
        out[:, idx_j, idx_i] = block
        return out
    # Scalar oracle: compute each pair's whole series one pair at a time
    # (the per-pair series kernel re-uses windows efficiently).
    for i, j in pairs:
        series = corr_series(returns[:, i], returns[:, j], m, ctype, config)
        out[:, i, j] = series
        out[:, j, i] = series
    return out
