"""All-pairs batch correlation kernels behind the scalar/batch backend seam.

The paper evaluates every pair of its 61-stock universe — N·(N−1)/2 = 1830
rolling correlation series per (day, window, treatment) — and the engines
historically looped over pairs in Python, calling
:func:`repro.corr.measures.corr_series` once per pair.  This module computes
the same ``(n_windows, n_pairs)`` matrix in a single batch evaluation:

* **Pearson** — per-symbol centred cumulative moments are computed once
  (O(T·n) instead of O(T·n²)), and only the pair cross-moments are formed
  per pair, chunked to bound peak memory;
* **Maronna / Combined** — every pair's windows are stacked into large
  contiguous batches and driven through the vectorised robust kernels, so
  the fixed-point iteration converges *all pairs and all windows
  simultaneously* under one convergence mask instead of per-pair loops.

Equivalence contract
--------------------
``batch`` results are **bitwise-identical** to the scalar per-pair path
(:func:`scalar_pair_series`, which delegates to ``corr_series``) and to the
per-window reference loop (:func:`reference_pair_series`):

* the Pearson batch path reproduces :func:`repro.corr.pearson.pearson_series`
  expression-for-expression (per-column ``.mean()``, columnwise ``cumsum``
  — strictly sequential in NumPy — and the same elementwise
  ``_corr_from_moments``);
* the robust kernels freeze each window once converged, so every window's
  trajectory is independent of which other windows share its batch — batch
  composition and chunk boundaries cannot change any result (guaranteed by
  :func:`repro.corr.maronna.maronna_corr_batched` and asserted by the
  property tests in ``tests/test_corr_batch.py`` and the bench smoke).

The scalar path stays in the tree as the oracle: every engine accepts
``backend="scalar"|"batch"`` (see :func:`pair_series_matrix`) and the test
suite asserts equality to the last ulp on both MPI backends.
"""

from __future__ import annotations

import numpy as np

from repro.bars.returns import sliding_windows
from repro.corr.combined import combined_corr_batched
from repro.corr.maronna import MaronnaConfig, maronna_corr_batched
from repro.corr.measures import CorrelationType, corr_series
from repro.corr.pearson import _corr_from_moments, pearson_series
from repro.obs import NULL_METRIC, Obs
from repro.util.validation import check_positive_int

#: Valid values of the engine ``backend`` seam.
BACKENDS = ("scalar", "batch")

#: Cap on elements materialised per Pearson chunk — same budget as the
#: scalar path's ``repro.corr.measures._CHUNK_ELEMENTS``.
_CHUNK_ELEMENTS = 2_000_000

#: Cap on elements per robust-kernel batch.  The fixed-point iteration
#: touches ~10 temporaries of the batch's size every pass, so the batch
#: must stay cache-resident: 64k elements (512 KiB per buffer) measured
#: ~1.5x faster than megabyte-scale batches on the paper-day workload.
_ROBUST_CHUNK_ELEMENTS = 65_536


def check_backend(backend: str) -> str:
    """Validate a correlation ``backend`` name and return it.

    Parameters
    ----------
    backend : str
        One of :data:`BACKENDS` (``"scalar"`` or ``"batch"``).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def all_pairs(n: int) -> list[tuple[int, int]]:
    """The ``n·(n-1)/2`` ordered symbol pairs ``(i, j)`` with ``i < j``."""
    check_positive_int(n, "n")
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


class BatchWorkspace:
    """Preallocated scratch buffers reused across batch kernel calls.

    The batch kernels allocate working arrays proportional to the chunk
    budget; an engine sweeping many (day, spec) cells passes one workspace
    so those buffers are allocated once and stay cache-warm instead of
    being re-malloc'd per call.  Buffers are keyed by role and reallocated
    only when a call needs a different shape.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """An uninitialised float64 buffer of exactly ``shape``."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape)
            self._buffers[name] = buf
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the workspace."""
        return sum(buf.nbytes for buf in self._buffers.values())


def _validate(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str,
    pairs: list[tuple[int, int]] | None,
) -> tuple[np.ndarray, CorrelationType, list[tuple[int, int]], int]:
    ctype = CorrelationType.parse(ctype)
    check_positive_int(m, "m")
    if m < 2:
        raise ValueError("window length must be >= 2")
    returns = np.asarray(returns, dtype=float)
    if returns.ndim != 2:
        raise ValueError(f"need (T, n) returns, got shape {returns.shape}")
    T, n = returns.shape
    if T < m:
        raise ValueError(f"need at least {m} return rows, got {T}")
    if pairs is None:
        pairs = all_pairs(n)
    else:
        pairs = [tuple(p) for p in pairs]
        for i, j in pairs:
            if not (0 <= i < n and 0 <= j < n and i != j):
                raise ValueError(f"invalid pair ({i}, {j}) for n={n}")
    return returns, ctype, pairs, T - m + 1


def _out_buffer(
    out: np.ndarray | None, n_win: int, n_pairs: int
) -> np.ndarray:
    if out is None:
        return np.empty((n_win, n_pairs))
    if out.shape != (n_win, n_pairs) or out.dtype != np.float64:
        raise ValueError(
            f"out must be float64 of shape {(n_win, n_pairs)}, got "
            f"{out.dtype} {out.shape}"
        )
    return out


def _pearson_batch(
    returns: np.ndarray,
    m: int,
    pairs: list[tuple[int, int]],
    out: np.ndarray,
    ws: BatchWorkspace,
) -> int:
    """All-pairs rolling Pearson into ``out``; returns the chunk count.

    Reproduces :func:`repro.corr.pearson.pearson_series` bitwise: the same
    whole-series centring, the same cumulative-sum rolling moments (NumPy's
    ``cumsum`` is strictly sequential, so a columnwise cumsum equals each
    column's 1-D cumsum), and the same elementwise ``_corr_from_moments``.
    """
    T, n = returns.shape
    idx_i = np.asarray([i for i, _ in pairs], dtype=np.intp)
    idx_j = np.asarray([j for _, j in pairs], dtype=np.intp)

    # Per-symbol means via 1-D column reductions: ``x.mean()`` of a strided
    # column and an axis-0 reduction can differ in the last ulp, and the
    # scalar oracle uses the former — so the batch path must too (n calls,
    # negligible cost).
    mu = np.zeros(n)
    for s in sorted({int(i) for i, j in pairs} | {int(j) for i, j in pairs}):
        mu[s] = returns[:, s].mean()
    centred = ws.get("pearson.centred", (T, n))
    np.subtract(returns, mu[None, :], out=centred)

    # Rolling per-symbol sums S1 = Σx and S2 = Σx² via the cumsum identity.
    cum = ws.get("pearson.cum", (T + 1, n))
    cum[0] = 0.0
    np.cumsum(centred, axis=0, out=cum[1:])
    s1 = cum[m:] - cum[:-m]
    sq = ws.get("pearson.sq", (T, n))
    np.multiply(centred, centred, out=sq)
    cum2 = ws.get("pearson.cum2", (T + 1, n))
    cum2[0] = 0.0
    np.cumsum(sq, axis=0, out=cum2[1:])
    s2 = cum2[m:] - cum2[:-m]

    # Pair cross-moments, chunked over pairs to bound peak memory.
    n_pairs = len(pairs)
    chunk = max(1, _CHUNK_ELEMENTS // T)
    xy = ws.get("pearson.xy", (T, min(chunk, n_pairs)))
    cxy = ws.get("pearson.cxy", (T + 1, min(chunk, n_pairs)))
    n_chunks = 0
    for lo in range(0, n_pairs, chunk):
        hi = min(lo + chunk, n_pairs)
        c = hi - lo
        ii, jj = idx_i[lo:hi], idx_j[lo:hi]
        np.multiply(centred[:, ii], centred[:, jj], out=xy[:, :c])
        cxy[0, :c] = 0.0
        np.cumsum(xy[:, :c], axis=0, out=cxy[1:, :c])
        sxy = cxy[m:, :c] - cxy[: T + 1 - m, :c]
        out[:, lo:hi] = _corr_from_moments(
            s1[:, ii], s1[:, jj], s2[:, ii], s2[:, jj], sxy, m
        )
        n_chunks += 1
    return n_chunks


def _robust_batch(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType,
    config: MaronnaConfig | None,
    pairs: list[tuple[int, int]],
    out: np.ndarray,
    ws: BatchWorkspace,
) -> int:
    """All-pairs robust/blended series into ``out``; returns chunk count.

    Stacks every pair's sliding windows into contiguous ``(rows, m)``
    batches spanning pair boundaries and drives them through the batched
    kernels: one convergence mask over all pairs and windows at once.
    Per-window convergence freezing makes each row's result independent of
    the batch composition, so the flat-row chunking below cannot change
    any value relative to the per-pair scalar path.
    """
    kernel = (
        maronna_corr_batched
        if ctype is CorrelationType.MARONNA
        else combined_corr_batched
    )
    n_win = out.shape[0]
    n_pairs = len(pairs)
    wins = [
        (sliding_windows(returns[:, i], m), sliding_windows(returns[:, j], m))
        for i, j in pairs
    ]
    total_rows = n_pairs * n_win
    chunk_rows = min(max(1, _ROBUST_CHUNK_ELEMENTS // m), total_rows)
    bufx = ws.get("robust.bufx", (chunk_rows, m))
    bufy = ws.get("robust.bufy", (chunk_rows, m))
    n_chunks = 0
    for lo in range(0, total_rows, chunk_rows):
        hi = min(lo + chunk_rows, total_rows)
        # Gather: copy each covered pair's window slice into the stack.
        r, pos = 0, lo
        while pos < hi:
            p, w = divmod(pos, n_win)
            take = min(hi - pos, n_win - w)
            bufx[r : r + take] = wins[p][0][w : w + take]
            bufy[r : r + take] = wins[p][1][w : w + take]
            r += take
            pos += take
        vals = kernel(bufx[:r], bufy[:r], config)
        # Scatter back to (window, pair) coordinates.
        r, pos = 0, lo
        while pos < hi:
            p, w = divmod(pos, n_win)
            take = min(hi - pos, n_win - w)
            out[w : w + take, p] = vals[r : r + take]
            r += take
            pos += take
        n_chunks += 1
    return n_chunks


def batch_pair_series(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    pairs: list[tuple[int, int]] | None = None,
    obs: Obs | None = None,
    workspace: BatchWorkspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rolling correlation series of many pairs in one batch evaluation.

    Parameters
    ----------
    returns : ndarray, shape (T, n)
        Return rows for the whole universe (one column per symbol).
    m : int
        Rolling window length in return rows (>= 2; robust measures
        require >= 3, enforced by the kernels).
    ctype : CorrelationType or str, optional
        Correlation treatment; one of the paper's three measures.
    config : MaronnaConfig, optional
        Robust-iteration tuning for the Maronna/Combined treatments.
    pairs : list of (int, int), optional
        Symbol pairs to evaluate; defaults to all ``n·(n-1)/2`` pairs.
    obs : Obs, optional
        Destination for ``corr.batch.*`` metrics and the ``corr.batch``
        span (which is what `repro top` and the flame table attribute the
        batch path's time to).  Disabled/absent obs costs nothing.
    workspace : BatchWorkspace, optional
        Preallocated scratch reused across calls; engines sweeping many
        (day, spec) cells should pass one.
    out : ndarray, shape (T - m + 1, len(pairs)), optional
        Preallocated float64 output buffer.

    Returns
    -------
    ndarray, shape (T - m + 1, len(pairs))
        Column ``p`` is exactly ``corr_series(returns[:, i_p],
        returns[:, j_p], m, ctype, config)`` — bitwise, not approximately
        (see the module docstring for why).
    """
    returns, ctype, pairs, n_win = _validate(returns, m, ctype, pairs)
    out = _out_buffer(out, n_win, len(pairs))
    ws = workspace if workspace is not None else BatchWorkspace()
    record = obs is not None and obs.enabled
    span = (
        obs.trace.span(
            "corr.batch", pairs=len(pairs), m=m, ctype=ctype.value
        )
        if record
        else NULL_METRIC
    )
    timer = (
        obs.metrics.timer("corr.batch.pair_series.seconds")
        if record
        else NULL_METRIC
    )
    with span, timer:
        if ctype is CorrelationType.PEARSON:
            n_chunks = _pearson_batch(returns, m, pairs, out, ws)
        else:
            n_chunks = _robust_batch(
                returns, m, ctype, config, pairs, out, ws
            )
    if record:
        obs.metrics.counter("corr.batch.pairs").inc(len(pairs))
        obs.metrics.counter("corr.batch.windows").inc(len(pairs) * n_win)
        obs.metrics.counter("corr.batch.chunks").inc(n_chunks)
    return out


def scalar_pair_series(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    pairs: list[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The scalar oracle: one :func:`corr_series` call per pair.

    Same shape and semantics as :func:`batch_pair_series`; this is the
    per-pair path the engines have always run and the reference the batch
    backend is tested bitwise against.
    """
    returns, ctype, pairs, n_win = _validate(returns, m, ctype, pairs)
    out = _out_buffer(out, n_win, len(pairs))
    for p, (i, j) in enumerate(pairs):
        out[:, p] = corr_series(returns[:, i], returns[:, j], m, ctype, config)
    return out


def reference_pair_series(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    pairs: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """The fully scalar per-pair/per-window loop — the bench baseline.

    For the robust measures this really does run one fixed-point iteration
    per window (batch size 1), i.e. the genuine scalar while-loop cost the
    batch path replaces; per-window convergence freezing makes its results
    bitwise-identical to both other paths.  Pearson has no per-window
    scalar form in the tree (the rolling cumsum identity *is* the scalar
    path), so it delegates to :func:`repro.corr.pearson.pearson_series`.
    """
    returns, ctype, pairs, n_win = _validate(returns, m, ctype, pairs)
    out = np.empty((n_win, len(pairs)))
    if ctype is CorrelationType.PEARSON:
        for p, (i, j) in enumerate(pairs):
            out[:, p] = pearson_series(returns[:, i], returns[:, j], m)
        return out
    kernel = (
        maronna_corr_batched
        if ctype is CorrelationType.MARONNA
        else combined_corr_batched
    )
    for p, (i, j) in enumerate(pairs):
        xw = sliding_windows(returns[:, i], m)
        yw = sliding_windows(returns[:, j], m)
        for w in range(n_win):
            out[w, p] = kernel(xw[w : w + 1], yw[w : w + 1], config)[0]
    return out


def pair_series_matrix(
    returns: np.ndarray,
    m: int,
    ctype: CorrelationType | str = CorrelationType.PEARSON,
    config: MaronnaConfig | None = None,
    pairs: list[tuple[int, int]] | None = None,
    backend: str = "batch",
    obs: Obs | None = None,
    workspace: BatchWorkspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Backend-dispatching entry point for all-pairs correlation series.

    Parameters
    ----------
    backend : {"batch", "scalar"}
        ``"batch"`` runs :func:`batch_pair_series`; ``"scalar"`` runs the
        per-pair oracle :func:`scalar_pair_series`.  Outputs are bitwise
        identical; only the cost profile differs.

    Other parameters are as in :func:`batch_pair_series`.
    """
    check_backend(backend)
    if backend == "batch":
        return batch_pair_series(
            returns, m, ctype, config, pairs,
            obs=obs, workspace=workspace, out=out,
        )
    return scalar_pair_series(returns, m, ctype, config, pairs, out=out)
