"""Positive-semi-definite repair for pairwise-assembled correlation matrices.

The paper (Approach 2) notes that "calculating the Maronna correlation
coefficients independently no longer assures the resulting matrix is
positive semi-definite".  Any downstream use that treats the matrix as a
covariance shape (portfolio risk, Cholesky, simulation) needs a PSD
correlation matrix, so this module repairs one by eigenvalue clipping
followed by re-normalisation to unit diagonal — one pass of the standard
Higham-style alternating projection, which empirically suffices for the
mild indefiniteness pairwise assembly produces.
"""

from __future__ import annotations

import numpy as np


def _check_square_symmetric(a: np.ndarray, tol: float) -> np.ndarray:
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"need a square matrix, got shape {a.shape}")
    if not np.allclose(a, a.T, atol=tol):
        raise ValueError("matrix must be symmetric")
    return a


def is_psd(a: np.ndarray, tol: float = 1e-10) -> bool:
    """True if the symmetric matrix has no eigenvalue below ``-tol``."""
    a = _check_square_symmetric(a, tol=max(tol, 1e-8))
    eigvals = np.linalg.eigvalsh(0.5 * (a + a.T))
    return bool(eigvals.min() >= -tol)


def nearest_psd_correlation(
    a: np.ndarray, eig_floor: float = 0.0, tol: float = 1e-8
) -> np.ndarray:
    """Return a PSD correlation matrix near ``a``.

    Clips eigenvalues below ``eig_floor`` (default 0), reconstructs, and
    re-normalises to unit diagonal.  Already-PSD inputs with unit diagonal
    are returned unchanged (up to symmetrisation).
    """
    a = _check_square_symmetric(a, tol=tol)
    sym = 0.5 * (a + a.T)
    eigvals, eigvecs = np.linalg.eigh(sym)
    if eigvals.min() >= eig_floor and np.allclose(np.diag(sym), 1.0, atol=tol):
        return sym
    clipped = np.maximum(eigvals, max(eig_floor, 0.0))
    repaired = (eigvecs * clipped) @ eigvecs.T
    d = np.sqrt(np.clip(np.diag(repaired), 1e-18, None))
    repaired = repaired / np.outer(d, d)
    repaired = 0.5 * (repaired + repaired.T)
    np.fill_diagonal(repaired, 1.0)
    return np.clip(repaired, -1.0, 1.0)
