"""Treatment summaries: the paper's Tables III–V and Figure 2.

The paper's experimental design: the three correlation types are
*treatments*; the 14 non-treatment parameter levels are blocking factors.
For each pair and treatment, the per-(pair, parameter-set) performance
measure is averaged over the factor levels, giving one sample observation
per pair per treatment (1830 observations at full scale).  Descriptive
statistics of those samples form the tables; their quartile structure
forms the box plots.

Measures follow the paper exactly, including its conventions:

* ``returns``: sample is ``mean_k'(r_p^k) + 1`` (the paper reports
  1.1473-style gross returns) and the Sharpe ratio is computed on that
  shifted sample;
* ``drawdown``: maximum *daily* drawdown, eq (7), on the daily
  cumulative-return path, averaged over levels (reported in %);
* ``winloss``: eq (8) per (pair, level) over the month's pooled trades,
  averaged over levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.corr.measures import CorrelationType

if TYPE_CHECKING:  # avoid a circular import; stores are duck-typed at runtime
    from repro.backtest.results import ResultStore
from repro.metrics.drawdown import max_drawdown
from repro.metrics.winloss import win_loss_ratio
from repro.strategy.params import StrategyParams
from repro.util.stats import BoxplotStats, DescriptiveStats, boxplot_stats, describe

#: Valid measure names.
MEASURES = ("returns", "drawdown", "winloss")


@dataclass(frozen=True)
class TreatmentSummary:
    """One treatment's column of a Tables-III–V style table."""

    ctype: CorrelationType
    measure: str
    stats: DescriptiveStats
    samples: np.ndarray


def _pair_level_value(
    store: ResultStore, pair, k: int, measure: str
) -> float:
    if measure == "returns":
        return store.total_return(pair, k)
    if measure == "drawdown":
        return max_drawdown(store.daily_return_path(pair, k))
    if measure == "winloss":
        return win_loss_ratio(store.period_returns(pair, k))
    raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")


def treatment_samples(
    store: ResultStore, grid: list[StrategyParams], measure: str
) -> dict[CorrelationType, np.ndarray]:
    """Per-pair samples (averaged over factor levels) for each treatment.

    ``grid[k]`` must be the parameter set recorded under ``param_index k``.
    Every treatment must cover the same non-treatment levels — guaranteed
    by :func:`repro.strategy.params.paper_parameter_grid`.
    """
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")
    by_ctype: dict[CorrelationType, list[int]] = {}
    for k, params in enumerate(grid):
        by_ctype.setdefault(params.ctype, []).append(k)
    level_counts = {c: len(ks) for c, ks in by_ctype.items()}
    if len(set(level_counts.values())) > 1:
        raise ValueError(
            f"treatments have unequal level counts: {level_counts}"
        )

    pairs = store.pairs
    out: dict[CorrelationType, np.ndarray] = {}
    for ctype, ks in by_ctype.items():
        samples = np.empty(len(pairs))
        for p_idx, pair in enumerate(pairs):
            values = [_pair_level_value(store, pair, k, measure) for k in ks]
            samples[p_idx] = float(np.mean(values))
        if measure == "returns":
            samples = samples + 1.0  # the paper's gross-return convention
        out[ctype] = samples
    return out


def treatment_summaries(
    store: ResultStore, grid: list[StrategyParams], measure: str
) -> dict[CorrelationType, TreatmentSummary]:
    """Full descriptive statistics per treatment for one measure."""
    samples = treatment_samples(store, grid, measure)
    return {
        ctype: TreatmentSummary(
            ctype=ctype, measure=measure, stats=describe(vals), samples=vals
        )
        for ctype, vals in samples.items()
    }


def boxplot_by_treatment(
    store: ResultStore, grid: list[StrategyParams], measure: str
) -> dict[CorrelationType, BoxplotStats]:
    """Figure-2 box-plot statistics per treatment for one measure."""
    samples = treatment_samples(store, grid, measure)
    return {ctype: boxplot_stats(vals) for ctype, vals in samples.items()}


_ROW_ORDER = ("Mean", "Median", "Standard Deviation", "Sharpe Ratio", "Skewness", "Kurtosis")


def format_treatment_table(
    summaries: dict[CorrelationType, TreatmentSummary], title: str
) -> str:
    """Render a paper-style table (Tables III–V layout).

    The Sharpe-ratio row appears only for the ``returns`` measure, as in
    the paper; drawdown values are rendered as percentages.
    """
    if not summaries:
        raise ValueError("no treatment summaries to format")
    measures = {s.measure for s in summaries.values()}
    if len(measures) != 1:
        raise ValueError(f"mixed measures in one table: {measures}")
    measure = measures.pop()
    ctypes = [c for c in CorrelationType if c in summaries]

    def value(stats: DescriptiveStats, row: str) -> float:
        return {
            "Mean": stats.mean,
            "Median": stats.median,
            "Standard Deviation": stats.std,
            "Sharpe Ratio": stats.sharpe,
            "Skewness": stats.skewness,
            "Kurtosis": stats.kurtosis,
        }[row]

    def render(x: float, row: str) -> str:
        # Table IV quotes location/scale rows in percent, shape rows plain.
        if measure == "drawdown" and row in ("Mean", "Median", "Standard Deviation"):
            return f"{x:.4%}"
        return f"{x:.4f}"

    header = f"{'':<20} " + " ".join(f"{c.value.capitalize():>10}" for c in ctypes)
    lines = [title, header]
    for row in _ROW_ORDER:
        if row == "Sharpe Ratio" and measure != "returns":
            continue
        cells = " ".join(
            f"{render(value(summaries[c].stats, row), row):>10}" for c in ctypes
        )
        lines.append(f"{row:<20} {cells}")
    return "\n".join(lines)
