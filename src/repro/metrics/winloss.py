"""Win–loss ratio (paper equations (8)–(9)).

The ratio of winning trades (positive return) to losing trades (negative
return); zero-return trades count as neither, exactly as the paper's set
definitions imply.

Equation (8) is per (pair, parameter set); equation (9) pools trades over
all pairs for one parameter set.  Both reduce to counts, so one counting
function serves both with the caller choosing what to pool.

Division-by-zero policy: the paper's data never exhibits a zero-loss cell
(its ratios are ≈1.27), but small scaled-down runs can.  ``win_loss_ratio``
treats ``L = 0`` as ``L = 1`` ("W wins against the absence of losses") so
that treatment averages stay finite; pass ``strict=True`` to get the
literal ``inf``/``nan`` instead.  The choice is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np


def win_loss_counts(returns) -> tuple[int, int]:
    """Count (winning, losing) trades in a return sequence."""
    arr = np.asarray(returns, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError("returns must be finite")
    return int(np.sum(arr > 0.0)), int(np.sum(arr < 0.0))


def win_loss_ratio(returns, strict: bool = False) -> float:
    """``W / L`` per eq (8)/(9); see module docstring for the L=0 policy.

    With ``strict=True``: no trades → NaN; wins but no losses → inf.
    """
    wins, losses = win_loss_counts(returns)
    if strict:
        if losses == 0:
            return float("nan") if wins == 0 else float("inf")
        return wins / losses
    return wins / max(losses, 1)
