"""Trading-strategy performance metrics (paper §IV, equations (1)–(9)).

Three key measures, each computable per pair, per parameter set, or
summarised across either: cumulative returns (equity growth under full
reinvestment), maximum drawdown (worst peak-to-valley drop) and the
win–loss trade ratio, plus the treatment summaries behind Tables III–V
and the Figure-2 box plots.
"""

from repro.metrics.drawdown import max_drawdown, max_drawdown_path
from repro.metrics.returns import (
    cumulative_return,
    total_cumulative_return,
)
from repro.metrics.significance import (
    PairedComparison,
    format_significance_table,
    paired_comparison,
    treatment_significance,
)
from repro.metrics.summary import (
    TreatmentSummary,
    boxplot_by_treatment,
    format_treatment_table,
    treatment_summaries,
)
from repro.metrics.winloss import win_loss_counts, win_loss_ratio

__all__ = [
    "PairedComparison",
    "TreatmentSummary",
    "boxplot_by_treatment",
    "cumulative_return",
    "format_significance_table",
    "format_treatment_table",
    "paired_comparison",
    "max_drawdown",
    "max_drawdown_path",
    "total_cumulative_return",
    "treatment_significance",
    "treatment_summaries",
    "win_loss_counts",
    "win_loss_ratio",
]
