"""Maximum drawdown (paper equations (6)–(7)).

The paper defines drawdown on the *cumulative return path*: with
``r_q`` the total return from trade 1 through trade ``q``,

    MDD = max over q_a ≤ q_b of (r_{q_a} − r_{q_b})

— the worst peak-to-valley drop.  Eq (7) is the same quantity computed on
the daily cumulative-return path instead of the per-trade path; both call
:func:`max_drawdown` with the appropriate return sequence.
"""

from __future__ import annotations

import numpy as np


def max_drawdown_path(path) -> float:
    """Worst peak-to-valley drop of an arbitrary equity/return path.

    ``max(running_max − value)``; 0.0 for monotone non-decreasing paths
    and for empty or single-point paths.
    """
    arr = np.asarray(path, dtype=float)
    if arr.size <= 1:
        return 0.0
    if not np.all(np.isfinite(arr)):
        raise ValueError("path values must be finite")
    running_max = np.maximum.accumulate(arr)
    return float(np.max(running_max - arr))


def max_drawdown(returns) -> float:
    """Maximum drawdown of a return sequence's cumulative path (eq 6/7).

    The path starts at 0 (no trades yet), so a losing first trade already
    registers as drawdown — matching ``q_a ≤ q_b`` ranging over the whole
    trade sequence.
    """
    arr = np.asarray(returns, dtype=float)
    if arr.size == 0:
        return 0.0
    path = np.empty(arr.size + 1)
    path[0] = 0.0
    if not np.all(np.isfinite(arr)):
        raise ValueError("returns must be finite")
    if np.any(arr <= -1.0):
        raise ValueError("a return of -100% or worse cannot compound")
    path[1:] = np.cumprod(1.0 + arr) - 1.0
    return max_drawdown_path(path)
