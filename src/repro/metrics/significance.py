"""Statistical significance of treatment differences (paper §V).

The paper stops short: "all of these simple comparisons between values in
the tables need to be examined on a more rigorous standard of statistical
significance in order to be truly meaningful ... Details of this more
rigorous statistical approach are not included in this paper, and will be
the subject of further studies."

This module is that further study, using exactly the experimental design
the paper describes: the three correlation types are treatments applied to
the same pairs at the same factor levels, so per-pair samples are
*paired* across treatments.  For each treatment pair we report:

* the paired t-test (parametric; the per-pair averages are means over 14
  levels, so a CLT appeal is defensible),
* the Wilcoxon signed-rank test (the tables show heavy skew and kurtosis,
  so a rank test is the robust cross-check),
* a seeded bootstrap confidence interval for the mean difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import stats as sps

from repro.corr.measures import CorrelationType
from repro.metrics.summary import treatment_samples
from repro.strategy.params import StrategyParams

if TYPE_CHECKING:  # avoid a circular import; stores are duck-typed at runtime
    from repro.backtest.results import ResultStore


@dataclass(frozen=True)
class PairedComparison:
    """One treatment-vs-treatment comparison over paired per-pair samples."""

    treatment_a: CorrelationType
    treatment_b: CorrelationType
    measure: str
    n: int
    mean_diff: float  # mean(a - b)
    t_stat: float
    t_pvalue: float
    wilcoxon_stat: float
    wilcoxon_pvalue: float
    ci_low: float
    ci_high: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when both tests reject at ``alpha`` (conservative AND)."""
        return self.t_pvalue < alpha and self.wilcoxon_pvalue < alpha


def paired_comparison(
    a: np.ndarray,
    b: np.ndarray,
    treatment_a: CorrelationType,
    treatment_b: CorrelationType,
    measure: str,
    n_bootstrap: int = 2000,
    seed: int = 0,
    ci_level: float = 0.95,
) -> PairedComparison:
    """Compare two paired samples (same pairs, same factor levels)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"need matching 1-D samples, got {a.shape} vs {b.shape}")
    if a.size < 3:
        raise ValueError("need at least 3 paired observations")
    if not 0.0 < ci_level < 1.0:
        raise ValueError(f"ci_level must be in (0, 1), got {ci_level}")
    diff = a - b

    if np.allclose(diff, 0.0):
        # Identical samples: no evidence of any difference.
        t_stat, t_p = 0.0, 1.0
        w_stat, w_p = 0.0, 1.0
    else:
        t_stat, t_p = sps.ttest_rel(a, b)
        w_stat, w_p = sps.wilcoxon(a, b, zero_method="wilcox")

    rng = np.random.default_rng(seed)
    boots = np.empty(n_bootstrap)
    for i in range(n_bootstrap):
        sample = rng.choice(diff, size=diff.size, replace=True)
        boots[i] = sample.mean()
    tail = (1.0 - ci_level) / 2.0
    ci_low, ci_high = np.quantile(boots, [tail, 1.0 - tail])

    return PairedComparison(
        treatment_a=treatment_a,
        treatment_b=treatment_b,
        measure=measure,
        n=int(a.size),
        mean_diff=float(diff.mean()),
        t_stat=float(t_stat),
        t_pvalue=float(t_p),
        wilcoxon_stat=float(w_stat),
        wilcoxon_pvalue=float(w_p),
        ci_low=float(ci_low),
        ci_high=float(ci_high),
    )


def treatment_significance(
    store: "ResultStore",
    grid: list[StrategyParams],
    measure: str,
    n_bootstrap: int = 2000,
    seed: int = 0,
) -> list[PairedComparison]:
    """All three pairwise treatment comparisons for one measure.

    Ordering follows the enum: Pearson-vs-Maronna, Pearson-vs-Combined,
    Maronna-vs-Combined.
    """
    samples = treatment_samples(store, grid, measure)
    ctypes = [c for c in CorrelationType if c in samples]
    out = []
    for i, ca in enumerate(ctypes):
        for cb in ctypes[i + 1 :]:
            out.append(
                paired_comparison(
                    samples[ca],
                    samples[cb],
                    ca,
                    cb,
                    measure,
                    n_bootstrap=n_bootstrap,
                    seed=seed,
                )
            )
    return out


def format_significance_table(comparisons: list[PairedComparison]) -> str:
    """Render comparisons as a fixed-width report table."""
    if not comparisons:
        raise ValueError("no comparisons to format")
    lines = [
        f"{'comparison':<22} {'measure':<9} {'mean diff':>10} {'t p-val':>9} "
        f"{'wilcoxon p':>11} {'95% CI':>22} {'sig?':>5}"
    ]
    for c in comparisons:
        name = f"{c.treatment_a.value} vs {c.treatment_b.value}"
        ci = f"[{c.ci_low:+.5f}, {c.ci_high:+.5f}]"
        lines.append(
            f"{name:<22} {c.measure:<9} {c.mean_diff:>+10.5f} "
            f"{c.t_pvalue:>9.4f} {c.wilcoxon_pvalue:>11.4f} {ci:>22} "
            f"{'yes' if c.significant() else 'no':>5}"
        )
    return "\n".join(lines)
