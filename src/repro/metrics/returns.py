"""Cumulative returns (paper equations (2)–(5)).

Cumulative return assumes full reinvestment: a sequence of returns
``r_1 .. r_n`` compounds to ``∏(1 + r_q) − 1``.  The same compounding is
applied at every level of the paper's hierarchy — within a day over
trades (eq 2), across days (eq 3), across pairs for a parameter set
(eq 4) and across parameter sets for a pair (eq 5) — so a single
function serves all four with the appropriate inputs.
"""

from __future__ import annotations

import numpy as np


def cumulative_return(returns) -> float:
    """Compound a sequence of returns: ``∏(1 + r) − 1``; 0.0 if empty.

    An empty sequence (no trades) means capital was never at risk, so the
    cumulative return is zero.
    """
    arr = np.asarray(returns, dtype=float)
    if arr.size == 0:
        return 0.0
    if not np.all(np.isfinite(arr)):
        raise ValueError("returns must be finite")
    if np.any(arr <= -1.0):
        raise ValueError("a return of -100% or worse cannot compound")
    return float(np.prod(1.0 + arr) - 1.0)


def total_cumulative_return(daily_returns) -> float:
    """Eq (3): compound daily cumulative returns over the trading period.

    ``daily_returns[t]`` is eq (2)'s ``r_p^{t,k}``; the result is the
    paper's ``r_p^k``.  Identical compounding to
    :func:`cumulative_return`, named for call-site clarity.
    """
    return cumulative_return(daily_returns)
