"""Thread backend: every rank is a thread inside the current process.

This is the default backend for tests and for one-core benchmark runs: it
has no process spawn cost, shares nothing except the mailbox queues (user
code written in SPMD style communicates only through the communicator), and
surfaces deadlocks as :class:`~repro.mpi.api.RecvTimeout` failures instead
of hangs.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

from repro.mpi.api import MpiError
from repro.mpi.mailbox import MailboxComm


class SpmdFailure(MpiError):
    """At least one rank raised; carries all per-rank exceptions."""

    def __init__(self, errors: dict[int, BaseException]):
        self.errors = errors
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(errors.items())
        )
        super().__init__(f"{len(errors)} rank(s) failed: {detail}")


class ThreadBackend:
    """Run an SPMD function across ``size`` ranks as threads.

    Parameters
    ----------
    default_timeout:
        Per-``recv`` timeout installed on every communicator so a deadlock
        in user code fails the run instead of hanging it.
    obs_enabled:
        Attach a fresh enabled :class:`repro.obs.Obs` to every rank's
        communicator, so MPI-substrate telemetry is recorded without any
        wiring in the SPMD function (which can read it via ``comm.obs``).
    heartbeat:
        Attach a shared :class:`repro.faults.heartbeat.HeartbeatMonitor`
        so every rank ticks a liveness slot from its communicator.  For
        observation only (exposed as ``self.monitor`` after ``run``):
        threads cannot be terminated, so the thread backend never kills a
        stalled rank — use the process backend's ``heartbeat_timeout``
        for enforcement.
    """

    name = "thread"

    #: Largest world this backend will launch.  Threads are cheap but a
    #: mailbox world is all-to-all; past this the queue fan-out (and the
    #: GIL) make more ranks strictly slower, so growth must stop here.
    max_world_size = 64

    def __init__(
        self,
        default_timeout: float | None = 60.0,
        obs_enabled: bool = False,
        heartbeat: bool = False,
    ):
        self.default_timeout = default_timeout
        self.obs_enabled = obs_enabled
        self.heartbeat = heartbeat
        self.monitor = None

    def run(
        self,
        fn: Callable[..., Any],
        size: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on each rank.

        Returns the per-rank return values, indexed by rank.  If any rank
        raises, all ranks are joined and :class:`SpmdFailure` is raised with
        every rank's exception.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if size > self.max_world_size:
            raise ValueError(
                f"thread backend launches at most {self.max_world_size} "
                f"ranks, got size={size}"
            )
        kwargs = dict(kwargs or {})
        inboxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]

        def deliver(dest: int, envelope) -> None:
            inboxes[dest].put(envelope)

        comms = [
            MailboxComm(
                rank=r,
                size=size,
                inbox=inboxes[r],
                deliver=deliver,
                default_timeout=self.default_timeout,
            )
            for r in range(size)
        ]
        if self.obs_enabled:
            from repro.obs import Obs

            for comm in comms:
                comm.attach_obs(Obs(enabled=True))
        if self.heartbeat:
            from repro.faults.heartbeat import HeartbeatMonitor

            self.monitor = HeartbeatMonitor(size)
            self.monitor.start()
            for rank, comm in enumerate(comms):
                comm.attach_heartbeat(self.monitor.handle(rank))

        results: list[Any] = [None] * size
        errors: dict[int, BaseException] = {}
        lock = threading.Lock()

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(comms[rank], *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors[rank] = exc

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}")
            for r in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            raise SpmdFailure(errors)
        return results
