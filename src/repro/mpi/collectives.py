"""Collective operations implemented over point-to-point messaging.

Each collective reserves a private block of negative tags from the
communicator's sequence counter, so back-to-back collectives never
cross-match even when ranks drift out of phase (the per-source FIFO
guarantee then does the rest).  All reductions fold in rank order, making
results deterministic even for non-commutative user operators.

Algorithms: dissemination barrier and binomial-tree broadcast are
O(log size) rounds; gather/scatter/reduce are root-centred O(size), which
is the right trade-off at the rank counts this library targets (every
message is a pickled Python object, so constant factors dominate).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.mpi.api import SUM, Op

#: Tag block reserved per collective invocation; bounds the number of
#: distinct communication steps a single collective may use.
MAX_TAGS_PER_COLLECTIVE = 72

DEFAULT_OP: Op = SUM


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise ValueError(f"root rank {root} outside [0, {comm.size})")


def _count_invocation(comm, name: str) -> None:
    """Record one collective invocation on the rank's telemetry, if any.

    Lives here (not only in the timed MailboxComm wrappers) so nested
    invocations — allgather's internal gather+bcast, Comm.split's
    membership exchange — are observable too.  The comm-checker tracer
    (when attached) is notified through the same seam, giving it the
    per-rank collective call sequence it cross-checks at finalize.
    """
    obs = getattr(comm, "obs", None)
    if obs is not None and obs.enabled:
        obs.metrics.counter(f"mpi.coll.{name}.count").inc()
    tracer = getattr(comm, "comm_tracer", None)
    if tracer is not None:
        tracer.on_collective(comm, name)


def barrier(comm, timeout: float | None = None) -> None:
    """Dissemination barrier: ceil(log2(size)) exchange rounds."""
    _count_invocation(comm, "barrier")
    base = comm._next_coll_tags()
    size = comm.size
    if size == 1:
        return
    step = 0
    dist = 1
    while dist < size:
        tag = base - step
        to = (comm.rank + dist) % size
        frm = (comm.rank - dist) % size
        comm._send_internal(None, to, tag)
        comm.recv(source=frm, tag=tag, timeout=timeout)
        dist *= 2
        step += 1


def bcast(comm, obj: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast from ``root``."""
    _count_invocation(comm, "bcast")
    _check_root(comm, root)
    base = comm._next_coll_tags()
    size = comm.size
    if size == 1:
        return obj
    vrank = (comm.rank - root) % size

    # Receive from the parent (clear lowest set bit of vrank).
    if vrank != 0:
        parent_v = vrank & (vrank - 1)
        parent = (parent_v + root) % size
        obj = comm.recv(source=parent, tag=base)

    # Forward to children: set each bit above the lowest set bit of vrank.
    lowbit = vrank & -vrank if vrank != 0 else size  # children mask ceiling
    mask = 1
    while mask < lowbit and vrank + mask < size:
        child = (vrank + mask + root) % size
        comm._send_internal(obj, child, base)
        mask *= 2
    return obj


def scatter(comm, values: Sequence[Any] | None = None, root: int = 0) -> Any:
    """Root sends ``values[r]`` to each rank ``r``; returns own element."""
    _count_invocation(comm, "scatter")
    _check_root(comm, root)
    base = comm._next_coll_tags()
    if comm.rank == root:
        if values is None:
            raise ValueError("scatter root must supply the value sequence")
        values = list(values)
        if len(values) != comm.size:
            raise ValueError(
                f"scatter needs exactly {comm.size} values, got {len(values)}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm._send_internal(values[dest], dest, base)
        return values[root]
    return comm.recv(source=root, tag=base)


def gather(comm, obj: Any, root: int = 0) -> list[Any] | None:
    """Collect one value per rank at ``root``, ordered by rank."""
    _count_invocation(comm, "gather")
    _check_root(comm, root)
    base = comm._next_coll_tags()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for src in range(comm.size):
            if src != root:
                out[src] = comm.recv(source=src, tag=base)
        return out
    comm._send_internal(obj, root, base)
    return None


def allgather(comm, obj: Any) -> list[Any]:
    """gather at rank 0 followed by a broadcast of the full list."""
    _count_invocation(comm, "allgather")
    gathered = gather(comm, obj, root=0)
    return bcast(comm, gathered, root=0)


def reduce(comm, obj: Any, op: Op = DEFAULT_OP, root: int = 0) -> Any:
    """Fold one value per rank with ``op`` in rank order; result at root."""
    _count_invocation(comm, "reduce")
    _check_root(comm, root)
    if not isinstance(op, Op):
        raise TypeError(f"op must be an mpi.Op, got {op!r}")
    gathered = gather(comm, obj, root=root)
    if comm.rank != root:
        return None
    assert gathered is not None
    acc = gathered[0]
    for value in gathered[1:]:
        acc = op(acc, value)
    return acc


def allreduce(comm, obj: Any, op: Op = DEFAULT_OP) -> Any:
    """reduce at rank 0 followed by a broadcast of the result."""
    _count_invocation(comm, "allreduce")
    result = reduce(comm, obj, op=op, root=0)
    return bcast(comm, result, root=0)


def alltoall(comm, values: Sequence[Any]) -> list[Any]:
    """Personalised exchange: rank ``r`` receives ``values[r]`` of each rank."""
    _count_invocation(comm, "alltoall")
    base = comm._next_coll_tags()
    values = list(values)
    if len(values) != comm.size:
        raise ValueError(
            f"alltoall needs exactly {comm.size} values, got {len(values)}"
        )
    out: list[Any] = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    for dest in range(comm.size):
        if dest != comm.rank:
            comm._send_internal(values[dest], dest, base)
    for src in range(comm.size):
        if src != comm.rank:
            out[src] = comm.recv(source=src, tag=base)
    return out


def scan(comm, obj: Any, op: Op = DEFAULT_OP) -> Any:
    """Inclusive prefix reduction along the rank chain."""
    _count_invocation(comm, "scan")
    if not isinstance(op, Op):
        raise TypeError(f"op must be an mpi.Op, got {op!r}")
    base = comm._next_coll_tags()
    acc = obj
    if comm.rank > 0:
        left = comm.recv(source=comm.rank - 1, tag=base)
        acc = op(left, obj)
    if comm.rank < comm.size - 1:
        comm._send_internal(acc, comm.rank + 1, base)
    return acc
