"""Backend-independent communicator built on per-rank mailboxes.

Both backends (threads, processes) reduce to the same primitive: every rank
owns an inbox queue, and ``send`` enqueues an envelope onto the destination's
inbox.  :class:`MailboxComm` layers MPI matching semantics on top:

* messages are matched by ``(source, tag)`` with wildcards,
* non-matching arrivals are parked in a pending list and re-scanned in
  arrival order (preserving the per-source FIFO guarantee),
* the full collective suite from :mod:`repro.mpi.collectives` is attached
  as methods,
* :meth:`MailboxComm.split` creates MPI_Comm_split-style sub-communicators:
  every communicator carries a *context id* stamped into its envelopes, so
  traffic on different communicators can never cross-match even though all
  communicators of a rank share one physical inbox.

The inbox object only needs ``put(item)`` and ``get(timeout=...)`` raising
``queue.Empty`` — satisfied by both ``queue.Queue`` and
``multiprocessing.Queue``.
"""

from __future__ import annotations

import queue
import time
from typing import Any, Callable

from repro.mpi import collectives as _coll
from repro.mpi.api import ANY_SOURCE, ANY_TAG, Comm, RecvTimeout, Status
from repro.obs.registry import NULL_METRIC, payload_nbytes

#: Envelope layout: (context id, source rank, tag, payload).  Source ranks
#: are expressed in the *receiving communicator's* group numbering.
Envelope = tuple[tuple, int, int, Any]

#: Context id of every backend-created world communicator.
WORLD_CONTEXT: tuple = ("world",)

#: Granularity of the timeout-polling loop in seconds.  Waits are performed
#: in slices so that a ``recv`` with a deadline can abort even when the
#: underlying queue blocks indefinitely between messages.
_POLL_SLICE = 0.05


class _Endpoint:
    """One rank's physical mailbox, shared by all its communicators.

    Holds the inbox queue and the pending (arrived-but-unmatched) list; the
    pending list must be shared so a message parked while one communicator
    was receiving is still found by its real target communicator.  The
    observability handle, the comm tracer (the dynamic comm checker's
    event hook, see :mod:`repro.analysis.commtrace`), the fault injector
    (:mod:`repro.faults.injector`), the heartbeat handle and the recv
    retry policy also live here so that split sub-communicators share
    the rank's instrumentation.  Every seam is no-op-when-detached: the
    hot paths pay one ``is not None`` test per detached layer.
    """

    __slots__ = ("inbox", "pending", "obs", "tracer", "faults", "heartbeat",
                 "retry")

    def __init__(self, inbox):
        self.inbox = inbox
        self.pending: list[Envelope] = []
        self.obs = None
        self.tracer = None
        self.faults = None
        self.heartbeat = None
        self.retry = None


class MailboxComm(Comm):
    """Communicator over a shared endpoint plus a delivery function.

    Parameters
    ----------
    rank, size:
        This communicator's identity within its group.
    inbox:
        Queue this rank receives envelopes from (ignored when ``endpoint``
        is supplied by a parent communicator's ``split``).
    deliver:
        ``deliver(world_dest, envelope)`` enqueues onto the *world* rank
        ``world_dest``'s inbox.
    default_timeout:
        Applied to every blocking ``recv`` that does not pass an explicit
        timeout.  Backends set a generous default so that a deadlocked test
        run fails with :class:`RecvTimeout` instead of hanging forever.
    context:
        Traffic-isolation id; envelopes only match communicators with the
        same context.
    group:
        Maps this communicator's ranks to world ranks (identity for the
        world communicator).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inbox=None,
        deliver: Callable[[int, Envelope], None] = None,
        default_timeout: float | None = 60.0,
        context: tuple = WORLD_CONTEXT,
        group: list[int] | None = None,
        endpoint: _Endpoint | None = None,
    ):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} outside [0, {size})")
        if deliver is None:
            raise TypeError("deliver function is required")
        self._rank = rank
        self._size = size
        self._deliver = deliver
        self._context = context
        self._group = list(group) if group is not None else list(range(size))
        if len(self._group) != size:
            raise ValueError("group must map every rank to a world rank")
        if endpoint is not None:
            self._endpoint = endpoint
        else:
            if inbox is None:
                raise TypeError("either inbox or endpoint is required")
            self._endpoint = _Endpoint(inbox)
        self._coll_seq = 0
        self._split_seq = 0
        self.default_timeout = default_timeout

    # -- identity ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    @property
    def context(self) -> tuple:
        """Traffic-isolation id of this communicator."""
        return self._context

    def world_rank_of(self, rank: int) -> int:
        """Translate a rank in this communicator to its world rank."""
        self._check_peer(rank, "rank")
        return self._group[rank]

    def group_rank_of(self, world_rank: int) -> int:
        """Translate a world rank to this communicator's numbering.

        Raises ``ValueError`` when the world rank is not a member of this
        communicator's group.
        """
        try:
            return self._group.index(world_rank)
        except ValueError:
            raise ValueError(
                f"world rank {world_rank} is not in communicator group "
                f"{self._group}"
            ) from None

    # -- observability ----------------------------------------------------

    @property
    def obs(self):
        """The rank's observability handle (shared across split comms)."""
        return self._endpoint.obs

    def attach_obs(self, obs) -> None:
        """Install a :class:`repro.obs.Obs` recording this rank's traffic."""
        self._endpoint.obs = obs

    def _coll_timer(self, name: str):
        obs = self._endpoint.obs
        if obs is not None and obs.enabled:
            return obs.metrics.timer(f"mpi.coll.{name}.seconds")
        return NULL_METRIC

    # -- comm tracing ------------------------------------------------------

    @property
    def comm_tracer(self):
        """The rank's comm-checker tracer (shared across split comms)."""
        return self._endpoint.tracer

    def attach_comm_tracer(self, tracer) -> None:
        """Install a comm-event tracer (None detaches it).

        The tracer sees every point-to-point envelope and collective
        invocation on this rank; when none is attached (the default) the
        hot paths pay a single attribute check.  See
        :mod:`repro.analysis.commtrace`.
        """
        self._endpoint.tracer = tracer

    # -- fault injection / liveness / retry ---------------------------------

    @property
    def faults(self):
        """The rank's fault injector (shared across split comms)."""
        return self._endpoint.faults

    def attach_faults(self, injector) -> None:
        """Install a fault injector (None detaches it).

        The injector sees every data-plane envelope on this rank (it
        stamps sequence numbers on send and dedups/gap-checks on recv)
        and may drop, duplicate, reorder or crash per its plan; when
        none is attached (the default) the hot paths pay a single
        attribute check.  See :mod:`repro.faults.injector`.
        """
        self._endpoint.faults = injector

    @property
    def heartbeat(self):
        """The rank's heartbeat handle (shared across split comms)."""
        return self._endpoint.heartbeat

    def attach_heartbeat(self, handle) -> None:
        """Install a heartbeat handle ticked on sends and inbox polls."""
        self._endpoint.heartbeat = handle

    @property
    def recv_retry(self):
        """The rank's recv backoff policy (shared across split comms)."""
        return self._endpoint.retry

    def attach_recv_retry(self, policy) -> None:
        """Install a :class:`repro.faults.policy.BackoffPolicy` for recv.

        With a policy attached, a receive that would time out instead
        retries with capped exponential extra waits before raising
        ``RecvTimeout``; retries are counted in ``mpi.recv.retries``.
        """
        self._endpoint.retry = policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MailboxComm rank={self._rank} size={self._size} "
            f"context={self._context}>"
        )

    # -- point-to-point ---------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_peer(dest, "destination")
        self._check_user_tag(tag)
        self._send_internal(obj, dest, tag)

    def _send_internal(self, obj: Any, dest: int, tag: int) -> None:
        """Send without the user-tag check (collectives use negative tags)."""
        obs = self._endpoint.obs
        if obs is not None and obs.enabled:
            m = obs.metrics
            m.counter("mpi.sent.messages").inc()
            m.counter("mpi.sent.bytes").inc(payload_nbytes(obj))
            bucket = tag if tag >= 0 else "collective"
            m.counter(f"mpi.sent.tag[{bucket}]").inc()
            flight = getattr(obs, "flight", None)
            if flight is not None:
                flight.record_send(self._group[dest], tag)
        tracer = self._endpoint.tracer
        if tracer is not None:
            obj = tracer.on_send(self, dest, tag, obj)
        heartbeat = self._endpoint.heartbeat
        if heartbeat is not None:
            heartbeat.tick()
        world_dest = self._group[dest]
        faults = self._endpoint.faults
        if faults is not None:
            # The injector may drop (0), pass/stamp (1) or duplicate (2+)
            # the payload; sequence numbers are per world edge.
            for payload in faults.on_send(world_dest, tag, obj):
                self._deliver(
                    world_dest, (self._context, self._rank, tag, payload)
                )
            return
        self._deliver(world_dest, (self._context, self._rank, tag, obj))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        return_status: bool = False,
    ) -> Any:
        tracer = self._endpoint.tracer
        if tracer is not None:
            # A replay schedule may narrow this receive's matching pattern
            # (e.g. force a wildcard onto one specific source).
            source, tag = tracer.on_recv_request(self, source, tag)
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else time.monotonic() + timeout

        retry_attempt = 0
        retry_t0 = 0.0
        while True:
            try:
                env = self._recv_matched(deadline, source, tag, timeout)
                break
            except RecvTimeout:
                retry = self._endpoint.retry
                if retry is None or retry_attempt >= retry.retries:
                    if tracer is not None:
                        tracer.on_timeout(self, source, tag)
                    self._record_retry_span(source, tag, retry_attempt, retry_t0)
                    raise
                # Backoff-with-retry: grant one more (capped, growing)
                # wait window before declaring failure.
                extra = retry.delay(retry_attempt)
                if retry_attempt == 0:
                    retry_t0 = time.monotonic()
                retry_attempt += 1
                obs = self._endpoint.obs
                if obs is not None and obs.enabled:
                    obs.metrics.counter("mpi.recv.retries").inc()
                deadline = time.monotonic() + extra
        self._record_retry_span(source, tag, retry_attempt, retry_t0)
        _, src, msg_tag, payload = env
        if tracer is not None:
            payload = tracer.on_recv(self, source, tag, src, msg_tag, payload)
        obs = self._endpoint.obs
        if obs is not None and obs.enabled:
            m = obs.metrics
            m.counter("mpi.recv.messages").inc()
            m.counter("mpi.recv.bytes").inc(payload_nbytes(payload))
            m.gauge("mpi.pending.depth").set(len(self._endpoint.pending))
            flight = getattr(obs, "flight", None)
            if flight is not None:
                flight.record_recv(self._group[src], msg_tag)
        if return_status:
            return payload, Status(source=src, tag=msg_tag)
        return payload

    def _record_retry_span(
        self, source: int, tag: int, attempts: int, t0: float
    ) -> None:
        """Attribute backoff-retry wait time to the retrying span.

        Without this, retry sleeps vanish from the flame view: the time
        is spent inside ``recv`` but belongs to whatever span issued it.
        ``add_span`` attaches to the innermost open span, so the wait
        shows up as an ``mpi.recv.retry`` child of the retrying span.
        """
        if attempts == 0:
            return
        obs = self._endpoint.obs
        if obs is None or not obs.enabled:
            return
        wall = time.monotonic() - t0
        obs.trace.add_span(
            "mpi.recv.retry", wall, attempts=attempts, source=source, tag=tag
        )
        obs.metrics.histogram("mpi.recv.retry.seconds").observe(wall)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        self._drain_inbox_nonblocking()
        return any(
            self._matches(env, source, tag) for env in self._endpoint.pending
        )

    # -- matching machinery -----------------------------------------------

    def _matches(self, env: Envelope, source: int, tag: int) -> bool:
        ctx, src, msg_tag, _ = env
        return (
            ctx == self._context
            and (source == ANY_SOURCE or src == source)
            and (tag == ANY_TAG or msg_tag == tag)
        )

    def _match_pending(self, source: int, tag: int) -> Envelope | None:
        pending = self._endpoint.pending
        for i, env in enumerate(pending):
            if self._matches(env, source, tag):
                return pending.pop(i)
        return None

    def _recv_matched(
        self,
        deadline: float | None,
        source: int,
        tag: int,
        timeout: float | None,
    ) -> Envelope:
        """Block for one matching envelope, applying fault-layer delivery.

        With an injector attached, each candidate envelope is unstamped
        and sequence-checked: duplicates are swallowed (the wait
        continues against the same deadline), a sequence gap raises
        :class:`~repro.faults.injector.FaultDetected`.
        """
        while True:
            env = self._match_pending(source, tag)
            while env is None:
                env = self._pull_inbox(deadline, source, tag, timeout)
            faults = self._endpoint.faults
            if faults is None:
                return env
            ctx, src, msg_tag, payload = env
            deliver, payload = faults.on_recv(
                self._group[src], msg_tag, payload
            )
            if deliver:
                return (ctx, src, msg_tag, payload)

    def _pull_inbox(
        self,
        deadline: float | None,
        source: int,
        tag: int,
        timeout: float | None = None,
    ) -> Envelope | None:
        """Block for one inbox envelope; return it if it matches, else park it.

        Returns None when the pulled envelope did not match (caller loops).
        """
        heartbeat = self._endpoint.heartbeat
        while True:
            if heartbeat is not None:
                # A rank blocked waiting on a peer is alive, not stalled.
                heartbeat.tick()
            if deadline is None:
                wait = _POLL_SLICE
            else:
                # Clamp the final poll slice to the remaining deadline so a
                # short timeout cannot overshoot by a whole _POLL_SLICE.
                wait = min(_POLL_SLICE, deadline - time.monotonic())
                if wait <= 0:
                    raise RecvTimeout(self._timeout_message(source, tag, timeout))
            try:
                env = self._endpoint.inbox.get(timeout=wait)
            except queue.Empty:
                continue
            if self._matches(env, source, tag):
                return env
            self._endpoint.pending.append(env)
            return None

    def _timeout_message(
        self, source: int, tag: int, timeout: float | None
    ) -> str:
        """Full context for a recv timeout: who waited, for what, on what.

        Multi-rank deadlocks are diagnosed from this one string, so it
        names the waiting rank and communicator, spells out wildcards, and
        summarises the unmatched messages actually parked at the rank —
        the usual culprits (wrong tag, wrong source) are then visible
        directly instead of being misattributed to a slow sender.
        """
        want_src = "ANY_SOURCE" if source == ANY_SOURCE else str(source)
        want_tag = "ANY_TAG" if tag == ANY_TAG else str(tag)
        within = "" if timeout is None else f" within {timeout:g}s"
        pending = self._endpoint.pending
        if pending:
            shown = ", ".join(
                f"(source={src}, tag={t})" for _, src, t, _ in pending[:8]
            )
            extra = f", +{len(pending) - 8} more" if len(pending) > 8 else ""
            parked = (
                f"; {len(pending)} unmatched message(s) pending at this "
                f"rank: {shown}{extra}"
            )
        else:
            parked = "; no unmatched messages pending at this rank"
        return (
            f"recv timeout: rank {self._rank}/{self._size} (context "
            f"{self._context}) saw no message matching (source={want_src}, "
            f"tag={want_tag}){within}{parked}"
        )

    def _drain_inbox_nonblocking(self) -> None:
        while True:
            try:
                self._endpoint.pending.append(self._endpoint.inbox.get_nowait())
            except queue.Empty:
                return

    # -- sub-communicators --------------------------------------------------

    def split(self, color: int, key: int = 0) -> "MailboxComm | None":
        """MPI_Comm_split: partition ranks by ``color`` into sub-communicators.

        Collective over this communicator.  Ranks passing the same
        ``color`` form a new communicator ordered by ``(key, rank)``;
        ``color=None`` (MPI_UNDEFINED) opts out and returns None.  The
        child shares the physical endpoint but carries a fresh context id,
        so its traffic (including collectives) cannot cross-match the
        parent's or any sibling's.
        """
        split_id = self._split_seq
        self._split_seq += 1
        entries = _coll.allgather(self, (color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        ranks = [r for _, r in members]
        child_rank = ranks.index(self._rank)
        child_group = [self._group[r] for r in ranks]
        return MailboxComm(
            rank=child_rank,
            size=len(ranks),
            deliver=self._deliver,
            default_timeout=self.default_timeout,
            context=(*self._context, split_id, color),
            group=child_group,
            endpoint=self._endpoint,
        )

    # -- collectives --------------------------------------------------------

    def _next_coll_tags(self, steps: int = 1) -> int:
        """Reserve a block of negative tags for one collective invocation.

        All ranks invoke collectives in the same order (an MPI requirement),
        so the per-communicator sequence counter agrees across ranks and
        consecutive collectives never share tags.
        """
        # Start at -2: tag -1 is the ANY_TAG sentinel and must never be a
        # real message tag, or an internal collective receive could match
        # (and steal) arbitrary user traffic.
        base = -(self._coll_seq * _coll.MAX_TAGS_PER_COLLECTIVE + 2)
        self._coll_seq += 1
        if steps > _coll.MAX_TAGS_PER_COLLECTIVE:
            raise ValueError(
                f"collective needs {steps} tags, limit is "
                f"{_coll.MAX_TAGS_PER_COLLECTIVE}"
            )
        return base

    def barrier(self, timeout: float | None = None) -> None:
        """Block until every rank has entered the barrier."""
        with self._coll_timer("barrier"):
            _coll.barrier(self, timeout=timeout)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        with self._coll_timer("bcast"):
            return _coll.bcast(self, obj, root=root)

    def scatter(self, values=None, root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from ``root``; return own item."""
        with self._coll_timer("scatter"):
            return _coll.scatter(self, values, root=root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root`` (rank order); None elsewhere."""
        with self._coll_timer("gather"):
            return _coll.gather(self, obj, root=root)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one value per rank; every rank returns the full list."""
        with self._coll_timer("allgather"):
            return _coll.allgather(self, obj)

    def reduce(self, obj: Any, op=_coll.DEFAULT_OP, root: int = 0) -> Any:
        """Reduce values with ``op`` at ``root``; None elsewhere."""
        with self._coll_timer("reduce"):
            return _coll.reduce(self, obj, op=op, root=root)

    def allreduce(self, obj: Any, op=_coll.DEFAULT_OP) -> Any:
        """Reduce values with ``op``; every rank returns the result."""
        with self._coll_timer("allreduce"):
            return _coll.allreduce(self, obj, op=op)

    def alltoall(self, values) -> list[Any]:
        """Personalised all-to-all: send ``values[d]`` to rank ``d``."""
        with self._coll_timer("alltoall"):
            return _coll.alltoall(self, values)

    def scan(self, obj: Any, op=_coll.DEFAULT_OP) -> Any:
        """Inclusive prefix reduction over ranks ``0..rank``."""
        with self._coll_timer("scan"):
            return _coll.scan(self, obj, op=op)
