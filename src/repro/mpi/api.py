"""Core message-passing API: communicators, requests, reduction operators.

The shapes follow mpi4py's lowercase (pickled-object) interface.  Messages
are arbitrary Python objects; delivery is buffered ("eager" in MPI terms),
so ``send`` never blocks waiting for a matching ``recv``.  Per-(source,
destination) ordering is FIFO, the MPI non-overtaking guarantee that the
collective algorithms in :mod:`repro.mpi.collectives` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Wildcard source for ``recv``: match a message from any rank.
ANY_SOURCE: int = -1

#: Wildcard tag for ``recv``: match a message with any tag.
ANY_TAG: int = -1


class MpiError(RuntimeError):
    """Base class for errors raised by the message-passing substrate."""


class RecvTimeout(MpiError):
    """A blocking ``recv`` exceeded its timeout without a matching message."""


@dataclass(frozen=True, slots=True)
class Status:
    """Envelope metadata returned alongside a received message."""

    source: int
    tag: int


class Op:
    """A reduction operator for ``reduce`` / ``allreduce`` / ``scan``.

    Wraps a binary callable that must be associative; commutativity is
    assumed by the tree-reduction algorithm (all built-ins are commutative).
    Use :meth:`create` for user-defined operators.
    """

    __slots__ = ("fn", "name")

    def __init__(self, fn: Callable[[Any, Any], Any], name: str):
        self.fn = fn
        self.name = name

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name})"

    @classmethod
    def create(cls, fn: Callable[[Any, Any], Any], name: str = "user") -> "Op":
        """Wrap a binary associative callable as a reduction operator."""
        if not callable(fn):
            raise TypeError(f"reduction function must be callable, got {fn!r}")
        return cls(fn, name)


SUM = Op(lambda a, b: a + b, "SUM")
PROD = Op(lambda a, b: a * b, "PROD")
MAX = Op(lambda a, b: a if a >= b else b, "MAX")
MIN = Op(lambda a, b: a if a <= b else b, "MIN")
LAND = Op(lambda a, b: bool(a) and bool(b), "LAND")
LOR = Op(lambda a, b: bool(a) or bool(b), "LOR")


class Request:
    """Handle for a non-blocking operation.

    ``isend`` returns an already-complete request (delivery is eager);
    ``irecv`` returns a request whose :meth:`wait` performs the matching
    receive.  ``test`` never blocks.
    """

    __slots__ = ("_result", "_done", "_waiter")

    def __init__(
        self,
        result: Any = None,
        done: bool = True,
        waiter: Callable[[float | None], Any] | None = None,
    ):
        self._result = result
        self._done = done
        self._waiter = waiter

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the operation completes; return its result."""
        if not self._done:
            assert self._waiter is not None
            self._result = self._waiter(timeout)
            self._done = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Return ``(completed, result-or-None)`` without blocking."""
        if self._done:
            return True, self._result
        return False, None


class Comm:
    """Abstract communicator: ``rank``/``size`` plus point-to-point sends.

    Concrete communicators are created by a backend (never directly by user
    code) and handed to the SPMD function.  Collectives are implemented once
    over this interface in :mod:`repro.mpi.collectives` and attached to
    :class:`repro.mpi.mailbox.MailboxComm`.
    """

    @property
    def rank(self) -> int:
        """This process's rank in ``[0, size)``."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        raise NotImplementedError

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``obj`` to rank ``dest`` (buffered; returns immediately)."""
        raise NotImplementedError

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        return_status: bool = False,
    ) -> Any:
        """Block until a matching message arrives; return its payload.

        With ``return_status=True`` returns ``(payload, Status)``.
        Raises :class:`RecvTimeout` if ``timeout`` (seconds) elapses first.
        """
        raise NotImplementedError

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (delivery is eager)."""
        self.send(obj, dest, tag)
        return Request(result=None, done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` performs the matching recv."""
        return Request(
            done=False,
            waiter=lambda timeout: self.recv(source=source, tag=tag, timeout=timeout),
        )

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Return True if a matching message could be received right now."""
        raise NotImplementedError

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{what} rank {peer} outside [0, {self.size})")

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        # Negative tags are reserved for the collective algorithms.
        if tag < 0:
            raise ValueError(f"user tags must be >= 0, got {tag}")
