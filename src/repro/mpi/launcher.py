"""Front door for SPMD execution: pick a backend, run a function on N ranks.

>>> from repro import mpi
>>> def hello(comm):
...     return comm.allreduce(comm.rank)
>>> mpi.run_spmd(hello, size=4)
[6, 6, 6, 6]
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.mpi.inproc import ThreadBackend
from repro.mpi.procs import ProcessBackend

_BACKENDS = {
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`run_spmd`'s ``backend`` argument."""
    return tuple(sorted(_BACKENDS))


def backend_capacity(backend: str) -> int:
    """Largest world size ``backend`` will launch (its ``max_world_size``).

    The elastic runtime validates grow requests against this before
    tearing anything down, so an over-capacity resize is a pointed
    ``ValueError`` at the boundary, not a half-built world.
    """
    try:
        backend_cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        ) from None
    return backend_cls.max_world_size


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    backend: str = "thread",
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
    **backend_options: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` across ``size`` ranks.

    Parameters
    ----------
    fn:
        The SPMD function.  Its first argument is the communicator.
    size:
        Number of ranks.
    backend:
        ``"thread"`` (default; deterministic, in-process) or ``"process"``
        (OS processes, true parallelism).
    backend_options:
        Forwarded to the backend constructor, e.g. ``default_timeout=5.0``.

    Returns
    -------
    list
        Per-rank return values indexed by rank.
    """
    try:
        backend_cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        ) from None
    return backend_cls(**backend_options).run(fn, size, args=args, kwargs=kwargs)
