"""Mapping workflow DAGs onto ranks.

MarketMiner workflows are directed acyclic graphs of components (Figure 1).
With fewer ranks than components, several components share a rank; this
module computes and queries that assignment.  The placement heuristic is
weighted round-robin over a topological order: heavy components (e.g. the
parallel correlation engine) can declare a weight so that light plumbing
components co-locate while heavy ones spread out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx


@dataclass(frozen=True)
class RankMap:
    """Bidirectional component ↔ rank assignment."""

    assignment: Mapping[Hashable, int]
    size: int
    _by_rank: dict[int, tuple[Hashable, ...]] = field(
        init=False, repr=False, hash=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_rank: dict[int, list[Hashable]] = {r: [] for r in range(self.size)}
        for component, rank in self.assignment.items():
            if not 0 <= rank < self.size:
                raise ValueError(
                    f"component {component!r} assigned to rank {rank}, "
                    f"outside [0, {self.size})"
                )
            by_rank[rank].append(component)
        object.__setattr__(
            self, "_by_rank", {r: tuple(cs) for r, cs in by_rank.items()}
        )

    def rank_of(self, component: Hashable) -> int:
        """Rank hosting ``component``."""
        try:
            return self.assignment[component]
        except KeyError:
            raise KeyError(f"unknown component {component!r}") from None

    def components_of(self, rank: int) -> tuple[Hashable, ...]:
        """Components hosted on ``rank`` (possibly empty)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        return self._by_rank[rank]

    @property
    def components(self) -> tuple[Hashable, ...]:
        return tuple(self.assignment)


def contract_dag(
    dag: nx.DiGraph,
    size: int,
    weights: Mapping[Hashable, float] | None = None,
) -> RankMap:
    """Assign each DAG node to one of ``size`` ranks.

    Nodes are visited in topological order and placed on the rank with the
    lowest accumulated weight, which keeps pipeline stages spread across
    ranks while balancing declared load.  Ties break toward the lowest rank,
    making the placement deterministic.

    Parameters
    ----------
    dag:
        The workflow graph; must be a DAG.
    size:
        Number of ranks available.
    weights:
        Optional per-node load estimates (default 1.0 each).
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if dag.number_of_nodes() == 0:
        raise ValueError("cannot contract an empty DAG")
    if not nx.is_directed_acyclic_graph(dag):
        raise ValueError("workflow graph contains a cycle")
    weights = dict(weights or {})
    for node in weights:
        if node not in dag:
            raise ValueError(f"weight given for unknown node {node!r}")

    load = [0.0] * size
    assignment: dict[Hashable, int] = {}
    for node in nx.lexicographical_topological_sort(dag, key=str):
        rank = min(range(size), key=lambda r: (load[r], r))
        assignment[node] = rank
        load[rank] += float(weights.get(node, 1.0))
    return RankMap(assignment=assignment, size=size)


def placement_moves(
    old: RankMap, new: RankMap
) -> tuple[tuple[Hashable, int, int], ...]:
    """Components whose host rank changes between two placements.

    Returns deterministic ``(component, old_rank, new_rank)`` triples,
    sorted by component name — the elastic supervisor logs these when a
    pool resize re-contracts the workflow DAG, so an operator can see
    exactly which components migrated at each boundary.  Both maps must
    cover the same component set (they come from the same workflow).
    """
    if set(old.assignment) != set(new.assignment):
        only_old = sorted(
            str(c) for c in set(old.assignment) - set(new.assignment)
        )
        only_new = sorted(
            str(c) for c in set(new.assignment) - set(old.assignment)
        )
        raise ValueError(
            f"rank maps disagree on the component set "
            f"(only in old: {only_old}; only in new: {only_new})"
        )
    return tuple(
        (component, old.rank_of(component), new.rank_of(component))
        for component in sorted(old.assignment, key=str)
        if old.rank_of(component) != new.rank_of(component)
    )
