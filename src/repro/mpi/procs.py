"""Process backend: every rank is an OS process (``multiprocessing``).

The moral equivalent of ``mpiexec -n <size> python script.py``: ranks do
not share memory, every message crosses a process boundary pickled, and the
operating system schedules ranks onto cores.  On fork-capable platforms the
SPMD function may be a closure; with the ``spawn`` start method it must be
importable at module top level, exactly like an MPI program's ``main``.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Any, Callable, Sequence

from repro.mpi.api import MpiError
from repro.mpi.mailbox import MailboxComm


class RemoteRankError(MpiError):
    """A rank process raised; carries the remote traceback text."""

    def __init__(self, rank: int, exc_type: str, message: str, tb: str):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = tb
        super().__init__(f"rank {rank} failed: {exc_type}: {message}\n{tb}")


def _rank_main(
    fn: Callable[..., Any],
    rank: int,
    size: int,
    inboxes,
    args: tuple,
    kwargs: dict,
    result_queue,
    default_timeout: float | None,
    obs_enabled: bool = False,
) -> None:
    def deliver(dest: int, envelope) -> None:
        inboxes[dest].put(envelope)

    comm = MailboxComm(
        rank=rank,
        size=size,
        inbox=inboxes[rank],
        deliver=deliver,
        default_timeout=default_timeout,
    )
    if obs_enabled:
        from repro.obs import Obs

        comm.attach_obs(Obs(enabled=True))
    try:
        result = fn(comm, *args, **kwargs)
        result_queue.put(("ok", rank, result))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        result_queue.put(
            ("err", rank, (type(exc).__name__, str(exc), traceback.format_exc()))
        )


class ProcessBackend:
    """Run an SPMD function across ``size`` ranks as OS processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; ``"fork"`` (default on Linux)
        permits closures, ``"spawn"`` requires a module-level function.
    join_timeout:
        Seconds to wait for each rank process to exit after results are in.
    default_timeout:
        Per-``recv`` timeout installed on every communicator.
    obs_enabled:
        Attach a fresh enabled :class:`repro.obs.Obs` to every rank's
        communicator inside its process; the SPMD function is responsible
        for gathering ``comm.obs.to_dict()`` before returning (telemetry
        does not cross the process boundary on its own).
    """

    name = "process"

    def __init__(
        self,
        start_method: str | None = None,
        join_timeout: float = 30.0,
        default_timeout: float | None = 60.0,
        obs_enabled: bool = False,
    ):
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.default_timeout = default_timeout
        self.obs_enabled = obs_enabled

    def run(
        self,
        fn: Callable[..., Any],
        size: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on each rank process.

        Returns per-rank return values indexed by rank; raises
        :class:`RemoteRankError` for the lowest-ranked failure.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        ctx = mp.get_context(self.start_method)
        kwargs = dict(kwargs or {})
        inboxes = [ctx.Queue() for _ in range(size)]
        result_queue = ctx.Queue()

        procs = [
            ctx.Process(
                target=_rank_main,
                args=(
                    fn,
                    rank,
                    size,
                    inboxes,
                    tuple(args),
                    kwargs,
                    result_queue,
                    self.default_timeout,
                    self.obs_enabled,
                ),
                name=f"spmd-rank-{rank}",
            )
            for rank in range(size)
        ]
        for p in procs:
            p.start()

        results: list[Any] = [None] * size
        errors: dict[int, tuple[str, str, str]] = {}
        try:
            for _ in range(size):
                status, rank, payload = result_queue.get()
                if status == "ok":
                    results[rank] = payload
                else:
                    errors[rank] = payload
        finally:
            for p in procs:
                p.join(timeout=self.join_timeout)
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive cleanup
                    p.terminate()
                    p.join(timeout=self.join_timeout)
            # Drain queue feeder threads so the interpreter can exit cleanly.
            for q in inboxes:
                q.cancel_join_thread()
            result_queue.cancel_join_thread()

        if errors:
            rank = min(errors)
            exc_type, message, tb = errors[rank]
            raise RemoteRankError(rank, exc_type, message, tb)
        return results
