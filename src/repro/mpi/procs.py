"""Process backend: every rank is an OS process (``multiprocessing``).

The moral equivalent of ``mpiexec -n <size> python script.py``: ranks do
not share memory, every message crosses a process boundary pickled, and the
operating system schedules ranks onto cores.  On fork-capable platforms the
SPMD function may be a closure; with the ``spawn`` start method it must be
importable at module top level, exactly like an MPI program's ``main``.

Liveness: the parent polls the result queue instead of blocking on it, so
a rank process that dies without reporting (SIGKILL, interpreter abort) is
detected as ``RankDied`` instead of hanging the run forever.  With
``heartbeat_timeout`` set, each rank also ticks a shared heartbeat array
from inside its communicator (sends and recv-poll iterations); a rank
whose beat goes silent past the timeout — wedged in user code, not
blocked in ``recv`` — is terminated and reported as ``RankStalled``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
import traceback
from typing import Any, Callable, Sequence

from repro.mpi.api import MpiError
from repro.mpi.mailbox import MailboxComm

#: How often the parent's collection loop wakes to check rank liveness.
_RESULT_POLL = 0.1

#: Grace period between noticing a dead rank process and declaring it
#: failed — its final result/error may still be in the queue's pipe.
_DEATH_GRACE = 0.5


class RemoteRankError(MpiError):
    """A rank process raised; carries the remote traceback text.

    ``errors`` maps every failed rank to its ``(exc_type, message,
    traceback)`` triple; the exception's own identity fields describe the
    lowest-ranked failure.
    """

    def __init__(
        self,
        rank: int,
        exc_type: str,
        message: str,
        tb: str,
        errors: dict[int, tuple[str, str, str]] | None = None,
    ):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = tb
        self.errors = (
            dict(errors)
            if errors is not None
            else {rank: (exc_type, message, tb)}
        )
        super().__init__(f"rank {rank} failed: {exc_type}: {message}\n{tb}")


def _rank_main(
    fn: Callable[..., Any],
    rank: int,
    size: int,
    inboxes,
    args: tuple,
    kwargs: dict,
    result_queue,
    default_timeout: float | None,
    obs_enabled: bool = False,
    heartbeat=None,
) -> None:
    def deliver(dest: int, envelope) -> None:
        inboxes[dest].put(envelope)

    comm = MailboxComm(
        rank=rank,
        size=size,
        inbox=inboxes[rank],
        deliver=deliver,
        default_timeout=default_timeout,
    )
    if obs_enabled:
        from repro.obs import Obs

        comm.attach_obs(Obs(enabled=True))
    if heartbeat is not None:
        comm.attach_heartbeat(heartbeat)
    try:
        result = fn(comm, *args, **kwargs)
        result_queue.put(("ok", rank, result))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        result_queue.put(
            ("err", rank, (type(exc).__name__, str(exc), traceback.format_exc()))
        )


class ProcessBackend:
    """Run an SPMD function across ``size`` ranks as OS processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; ``"fork"`` (default on Linux)
        permits closures, ``"spawn"`` requires a module-level function.
    join_timeout:
        Seconds to wait for each rank process to exit after results are in.
    default_timeout:
        Per-``recv`` timeout installed on every communicator.
    obs_enabled:
        Attach a fresh enabled :class:`repro.obs.Obs` to every rank's
        communicator inside its process; the SPMD function is responsible
        for gathering ``comm.obs.to_dict()`` before returning (telemetry
        does not cross the process boundary on its own).
    heartbeat_timeout:
        Optional stall detector: ranks tick a shared heartbeat array from
        their communicator; a rank silent for longer than this many
        seconds is terminated and reported as ``RankStalled``.  Must
        exceed the longest pure-compute gap between communicator
        operations in the workload.  ``None`` (default) disables stall
        termination; dead-process detection is always on.
    """

    name = "process"

    #: Largest world this backend will launch: each rank is an OS process
    #: with size-1 pipes to every peer, so fan-out is quadratic in ranks.
    max_world_size = 32

    def __init__(
        self,
        start_method: str | None = None,
        join_timeout: float = 30.0,
        default_timeout: float | None = 60.0,
        obs_enabled: bool = False,
        heartbeat_timeout: float | None = None,
    ):
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.default_timeout = default_timeout
        self.obs_enabled = obs_enabled
        self.heartbeat_timeout = heartbeat_timeout

    def run(
        self,
        fn: Callable[..., Any],
        size: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on each rank process.

        Returns per-rank return values indexed by rank; raises
        :class:`RemoteRankError` (describing the lowest-ranked failure,
        carrying all of them) when any rank fails, dies or stalls.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if size > self.max_world_size:
            raise ValueError(
                f"process backend launches at most {self.max_world_size} "
                f"ranks, got size={size}"
            )
        ctx = mp.get_context(self.start_method)
        kwargs = dict(kwargs or {})
        inboxes = [ctx.Queue() for _ in range(size)]
        result_queue = ctx.Queue()

        monitor = None
        handles: list[Any] = [None] * size
        if self.heartbeat_timeout is not None:
            from repro.faults.heartbeat import HeartbeatMonitor

            monitor = HeartbeatMonitor(size, ctx=ctx)
            handles = [monitor.handle(rank) for rank in range(size)]

        procs = [
            ctx.Process(
                target=_rank_main,
                args=(
                    fn,
                    rank,
                    size,
                    inboxes,
                    tuple(args),
                    kwargs,
                    result_queue,
                    self.default_timeout,
                    self.obs_enabled,
                    handles[rank],
                ),
                name=f"spmd-rank-{rank}",
            )
            for rank in range(size)
        ]
        if monitor is not None:
            monitor.start()
        for p in procs:
            p.start()

        results: list[Any] = [None] * size
        errors: dict[int, tuple[str, str, str]] = {}
        done: set[int] = set()
        first_seen_dead: dict[int, float] = {}
        try:
            while len(done) < size:
                try:
                    status, rank, payload = result_queue.get(
                        timeout=_RESULT_POLL
                    )
                except _queue.Empty:
                    now = time.monotonic()
                    for rank, p in enumerate(procs):
                        if rank in done:
                            continue
                        if not p.is_alive():
                            # Give the queue feeder a moment: the process
                            # may have exited right after posting.
                            first = first_seen_dead.setdefault(rank, now)
                            if now - first >= _DEATH_GRACE:
                                errors[rank] = (
                                    "RankDied",
                                    f"rank {rank} process exited with code "
                                    f"{p.exitcode} without reporting a "
                                    f"result",
                                    "",
                                )
                                done.add(rank)
                        elif (
                            monitor is not None
                            and monitor.age(rank) > self.heartbeat_timeout
                        ):
                            p.terminate()
                            errors[rank] = (
                                "RankStalled",
                                f"rank {rank} heartbeat silent for over "
                                f"{self.heartbeat_timeout:g}s; terminated",
                                "",
                            )
                            done.add(rank)
                    continue
                if rank in done:  # late result for a rank already declared
                    continue
                done.add(rank)
                if status == "ok":
                    results[rank] = payload
                else:
                    errors[rank] = payload
        finally:
            for p in procs:
                p.join(timeout=self.join_timeout)
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive cleanup
                    p.terminate()
                    p.join(timeout=self.join_timeout)
            # Drain queue feeder threads so the interpreter can exit cleanly.
            for q in inboxes:
                q.cancel_join_thread()
            result_queue.cancel_join_thread()

        if errors:
            rank = min(errors)
            exc_type, message, tb = errors[rank]
            raise RemoteRankError(rank, exc_type, message, tb, errors=errors)
        return results
