"""MPI-style message-passing substrate.

The paper's MarketMiner platform is "a modular, MPI-based infrastructure";
its components are linked by MPI middleware (Figure 1).  mpi4py is not
available in this environment, so this subpackage implements the programming
model from scratch with an mpi4py-shaped API:

* SPMD execution of a function across ``size`` ranks
  (:func:`repro.mpi.run_spmd`),
* point-to-point ``send`` / ``recv`` / ``isend`` / ``irecv`` with tag and
  source matching (``ANY_SOURCE`` / ``ANY_TAG`` wildcards),
* the standard collectives: ``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``reduce``, ``allreduce``, ``alltoall``, ``scan``,
* reduction operators ``SUM``, ``PROD``, ``MIN``, ``MAX``, ``LAND``, ``LOR``
  and user-defined operators via :class:`repro.mpi.Op`.

Two interchangeable backends run the same user code:

``thread``
    Every rank is a thread in the current process; deterministic, cheap,
    the default for tests and one-core benchmark runs.
``process``
    Every rank is an OS process (``multiprocessing``); true parallelism,
    the moral equivalent of ``mpiexec -n``.

User code receives a :class:`~repro.mpi.api.Comm` and is oblivious to the
backend, exactly as MPI code is oblivious to the interconnect.
"""

from repro.mpi.api import (
    ANY_SOURCE,
    ANY_TAG,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Comm,
    MpiError,
    Op,
    RecvTimeout,
    Request,
    Status,
)
from repro.mpi.inproc import ThreadBackend
from repro.mpi.launcher import available_backends, run_spmd
from repro.mpi.procs import ProcessBackend
from repro.mpi.topology import RankMap, contract_dag

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "MpiError",
    "Op",
    "PROD",
    "ProcessBackend",
    "RankMap",
    "RecvTimeout",
    "Request",
    "SUM",
    "Status",
    "ThreadBackend",
    "available_backends",
    "contract_dag",
    "run_spmd",
]
