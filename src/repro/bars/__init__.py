"""OHLC bar accumulation and return computation.

MarketMiner's "OHLC Bar Accumulator" component (Figure 1) reduces the raw
quote stream to per-interval bars of the bid–ask midpoint (BAM), the
paper's price approximation; downstream components consume 1-period
log-returns of the bar closes.
"""

from repro.bars.accumulator import (
    OHLC_DTYPE,
    StreamingBarAccumulator,
    accumulate_bam,
    accumulate_ohlc,
)
from repro.bars.returns import log_returns, sliding_windows, w_period_returns

__all__ = [
    "OHLC_DTYPE",
    "StreamingBarAccumulator",
    "accumulate_bam",
    "accumulate_ohlc",
    "log_returns",
    "sliding_windows",
    "w_period_returns",
]
